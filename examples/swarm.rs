//! A 2 000-node friending swarm over the spatially-indexed simulator.
//!
//! Nodes are placed with a Zipf-clustered layout (a few dense hotspots
//! holding most of the crowd — the worst case for a spatial index, since
//! query cost follows local density). An initiator in the busiest region
//! floods a Protocol 1 request; ~1% of the swarm matches and replies by
//! reverse-path unicast. The run prints swarm-level outcomes and the
//! index-efficiency observables.
//!
//! Run with `cargo run --release --example swarm`.

use msb_bench::swarm::{self, build_swarm};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sealed_bottle::dataset::placement;
use sealed_bottle::prelude::*;

fn main() {
    const N: usize = 2_000;
    let side = 1_000.0; // 2k nodes clustered in a 1 km² plaza

    // 8 hotspots, Zipf(1.3) popularity, 60 m spread. The initiator takes
    // the first sampled position — overwhelmingly the busiest hotspot.
    let mut rng = StdRng::seed_from_u64(2024);
    let positions = placement::zipf_clustered(N, side, side, 8, 1.3, 60.0, &mut rng);

    // The shared scalability scenario over the clustered layout, with a
    // 64-hop TTL.
    let mut sim = build_swarm(
        positions,
        &swarm::SwarmParams::new(7, 64).with_spatial(SpatialMode::HexIndex),
        swarm::lighthouse_request(),
        swarm::lighthouse_matching(),
        swarm::noise_profile,
    );

    let started = std::time::Instant::now();
    sim.start();
    sim.run();
    let wall = started.elapsed();

    let summary = SwarmSummary::collect(&sim);
    let metrics = sim.metrics();
    println!("swarm: {N} nodes, Zipf-clustered over {side:.0}x{side:.0} m");
    println!("wall-clock: {wall:?} (simulated time: {} ms)", sim.now_us() / 1000);
    println!(
        "flood: {} requests, {} relays, {} broadcasts, {} deliveries",
        summary.requests_sent, summary.relays, metrics.broadcasts, metrics.delivered
    );
    println!(
        "matching: {} candidates, {} replies, {} matches confirmed",
        summary.candidates, summary.replies, summary.matches
    );
    if let (Some(p50), Some(p90)) =
        (summary.latency_percentile_us(0.5), summary.latency_percentile_us(0.9))
    {
        println!("match latency: p50 {p50} us, p90 {p90} us");
    }
    println!(
        "index: {} neighbor queries, {} cells scanned ({:.1} cells/query vs {} nodes/query naive)",
        metrics.neighbor_queries,
        metrics.cells_scanned,
        metrics.cells_scanned as f64 / metrics.neighbor_queries.max(1) as f64,
        N,
    );

    assert!(summary.matches > 0, "the swarm must confirm matches");
}
