//! Location-private vicinity search (paper §III-D): find people within
//! ~30 m without anyone — including the matcher — ever seeing raw
//! coordinates. Locations are snapped to a hexagonal lattice; vicinity
//! regions become attribute sets; proximity becomes a fuzzy match with
//! threshold Θ.
//!
//! Run with `cargo run --example vicinity_search`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sealed_bottle::core::protocol::ResponderOutcome;
use sealed_bottle::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);

    // Shared lattice parameters: 10 m cells anchored at a public origin.
    let lattice = LatticeConfig::new((0.0, 0.0), 10.0);
    // Vicinity range D = 2·d → a 19-point region; the paper's example
    // threshold Θ = 9/19.
    let range = 20.0;
    let theta = 9.0 / 19.0;
    let config = ProtocolConfig::new(ProtocolKind::P2, 37);

    // The searcher stands at (12, 7).
    let (mut searcher, package, region) =
        create_vicinity_request(&lattice, (12.0, 7.0), range, theta, 0, &config, 0, &mut rng);
    println!(
        "Searcher region: {} lattice points, β = {} shared points required",
        region.len(),
        region.required_shared(theta)
    );
    println!("Package: {} bytes — and provably no coordinates inside", package.wire_size());

    // Three peers: next cell, a block away, another city.
    let peers = [
        ("neighbour (15 m away)", (25.0, 12.0)),
        ("down the street (80 m)", (90.0, 20.0)),
        ("another city", (5_000.0, 5_000.0)),
    ];
    for (i, (label, pos)) in peers.into_iter().enumerate() {
        let (responder, peer_region) =
            vicinity_responder(&lattice, pos, range, i as u32 + 1, &config);
        let shared = peer_region.shared_points(&region);
        match responder.handle(&package, 1_000, &mut rng) {
            ResponderOutcome::Reply { reply, .. } => {
                let confirmed = searcher.process_reply(&reply, 2_000);
                println!(
                    "{label}: shares {shared} lattice points -> {}",
                    if confirmed.is_empty() {
                        "replied but could not prove vicinity"
                    } else {
                        "CONFIRMED in vicinity (secure channel ready)"
                    }
                );
            }
            _ => println!("{label}: shares {shared} lattice points -> not a candidate"),
        }
    }

    assert_eq!(searcher.matches().len(), 1, "exactly the neighbour matches");
    Ok(())
}
