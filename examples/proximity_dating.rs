//! MagnetU-style proximity friending: a crowd of phones in a plaza, one
//! initiator flooding a fuzzy request over the ad hoc network, matches
//! confirmed multi-hop away — with Protocol 2, so relays and candidates
//! learn nothing they cannot prove.
//!
//! Run with `cargo run --example proximity_dating`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sealed_bottle::prelude::*;

fn interest(name: &str) -> Attribute {
    Attribute::new("interest", name)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2013);
    const INTERESTS: [&str; 12] = [
        "salsa",
        "jazz",
        "hiking",
        "sushi",
        "cinema",
        "chess",
        "running",
        "poetry",
        "photography",
        "surfing",
        "baking",
        "astronomy",
    ];

    // The request: someone who likes salsa AND at least 2 of 3 further
    // interests.
    let request = RequestProfile::new(
        vec![interest("salsa")],
        vec![interest("jazz"), interest("sushi"), interest("poetry")],
        2,
    )?;
    let config = ProtocolConfig::new(ProtocolKind::P2, 11);

    // A 200 m × 200 m plaza with 60 phones, 50 m radio range.
    let mut sim = Simulator::new(SimConfig::default(), 42);
    let initiator_profile =
        Profile::from_attributes(vec![interest("salsa"), interest("jazz"), interest("cinema")]);
    sim.add_node((0.0, 0.0), FriendingApp::initiator(initiator_profile, request, config.clone()));

    // Two guaranteed matches placed several hops away.
    for (i, pos) in [(160.0, 160.0), (40.0, 180.0)].into_iter().enumerate() {
        let profile = Profile::from_attributes(vec![
            interest("salsa"),
            interest("jazz"),
            interest("poetry"),
            interest(INTERESTS[i]),
        ]);
        sim.add_node(pos, FriendingApp::participant(profile, config.clone()));
    }

    // The crowd: random interest sets (they may or may not match).
    for _ in 0..57 {
        let k = rng.gen_range(2..=5);
        let mut attrs = Vec::new();
        for _ in 0..k {
            attrs.push(interest(INTERESTS[rng.gen_range(0..INTERESTS.len())]));
        }
        let pos = (rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0));
        sim.add_node(
            pos,
            FriendingApp::participant(Profile::from_attributes(attrs), config.clone()),
        );
    }

    sim.start();
    sim.run();

    let app = sim.app(NodeId::new(0));
    println!("Network metrics after the flood: {:?}", sim.metrics());
    println!(
        "Initiator confirmed {} matches (reply-set sizes: {:?})",
        app.matches().len(),
        app.matches().iter().map(|m| m.reply_set_size).collect::<Vec<_>>()
    );
    for m in app.matches() {
        println!(
            "  match: node {} (reply arrived at t = {:.1} ms)",
            m.responder,
            m.received_at_us as f64 / 1e3
        );
    }
    assert!(
        app.matches().iter().any(|m| m.responder == 1)
            && app.matches().iter().any(|m| m.responder == 2),
        "both planted matches must be found"
    );

    // How many nodes became candidates at all? (Everyone else rejected
    // the request with a handful of modulo operations.)
    let candidates = (0..sim.node_count())
        .filter(|&i| {
            sim.app(NodeId::new(i as u32))
                .events
                .iter()
                .any(|e| matches!(e, AppEvent::BecameCandidate { .. }))
        })
        .count();
    println!(
        "{candidates} of {} phones were candidates; the rest paid only the fast check",
        sim.node_count()
    );
    Ok(())
}
