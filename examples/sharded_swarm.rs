//! The churn swarm on the spatially-sharded engine — and the proof,
//! inline, that sharding changes nothing but the wall-clock.
//!
//! A 2 000-node re-flooding friending swarm (3 islands, random-waypoint
//! mobility, 40 simulated seconds) runs twice: once on the
//! single-threaded oracle [`Simulator`], once on [`ShardedSimulator`]
//! with 4 worker cores synchronized by conservative lookahead
//! (`docs/SIM.md` §6). The two runs are asserted bit-identical —
//! same matches, same event totals, same final clock — before either
//! result is printed, which is the shard contract in one page.
//!
//! Run with `cargo run --release --example sharded_swarm`.

use msb_bench::swarm::{build_churn_swarm, build_churn_swarm_sharded, drive_churn, ChurnSpec};
use sealed_bottle::prelude::*;

fn main() {
    const N: usize = 2_000;
    const SHARDS: usize = 4;

    let spec = ChurnSpec::standard(N, SchedulerMode::Calendar).with_shards(SHARDS);

    // The oracle: the whole swarm on one engine core.
    let (mut oracle, mut mobility) = build_churn_swarm(&spec);
    let started = std::time::Instant::now();
    drive_churn(&mut oracle, &mut mobility, &spec);
    let oracle_wall = started.elapsed();

    // The same swarm — same placement, same seeds, same apps — across
    // 4 spatial shards exchanging cross-shard radio traffic through
    // bounded channels.
    let (mut sharded, mut mobility) = build_churn_swarm_sharded(&spec);
    let started = std::time::Instant::now();
    drive_churn(&mut sharded, &mut mobility, &spec);
    let sharded_wall = started.elapsed();

    // The shard contract: bit identity at any shard count.
    // (peak_queue_len is per-queue depth — the one legitimately
    // shard-dependent observable — hence the mask.)
    let oracle_summary = SwarmSummary::collect(&oracle);
    let sharded_summary = SwarmSummary::collect_sharded(&sharded);
    assert_eq!(sharded_summary, oracle_summary, "app outcomes diverged");
    assert_eq!(sharded.now_us(), oracle.now_us(), "final clocks diverged");
    assert_eq!(
        sharded.metrics().without_queue_pressure(),
        oracle.metrics().without_queue_pressure(),
        "metrics diverged"
    );

    println!("churn swarm: {N} nodes, 3 islands, 40 simulated seconds");
    println!("oracle : 1 core,  wall {oracle_wall:?}");
    println!("sharded: {SHARDS} cores, wall {sharded_wall:?}");
    println!(
        "both   : {} events, {} deliveries, {} matches, clock {} ms — bit-identical",
        sharded.metrics().events_scheduled,
        sharded.metrics().delivered,
        sharded_summary.matches,
        sharded.now_us() / 1000,
    );
    println!("per-shard nodes : {:?}", sharded.shard_node_counts());
    println!(
        "per-shard events: {:?}",
        sharded.shard_metrics().iter().map(|m| m.events_scheduled).collect::<Vec<_>>()
    );

    assert!(sharded_summary.matches > 0, "the swarm must confirm matches");
}
