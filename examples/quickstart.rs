//! Quickstart: seal a request, match a profile, talk over the resulting
//! secure channel — all in memory.
//!
//! Run with `cargo run --example quickstart`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sealed_bottle::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fixed seed keeps the walkthrough reproducible. Real deployments
    // must draw session secrets from an OS CSPRNG instead — the vendored
    // rand shim's `thread_rng()` is time-seeded and NOT cryptographically
    // secure (see vendor/rand).
    let mut rng = StdRng::seed_from_u64(0x5EA1ED);

    // Protocol 1, remainder modulus 11 (a prime larger than the request).
    let config = ProtocolConfig::new(ProtocolKind::P1, 11);

    // Alice is looking for an engineer who shares at least 2 of her 3
    // listed interests (fuzzy search: θ = (1 + 2) / 4 = 0.75).
    let request = RequestProfile::new(
        vec![Attribute::new("profession", "engineer")],
        vec![
            Attribute::new("interest", "basketball"),
            Attribute::new("interest", "jazz"),
            Attribute::new("interest", "rock climbing"),
        ],
        2,
    )?;
    println!(
        "Alice's request: {} necessary + {} optional attributes, θ = {:.2}",
        request.alpha(),
        request.optional().len(),
        request.theta()
    );

    let (mut alice, package) = Initiator::create(&request, 0, &config, 0, &mut rng);
    println!(
        "Request package: {} bytes on the wire (remainders + sealed message + hint)",
        package.wire_size()
    );

    // Bob matches: engineer, basketball + jazz (note the spelling
    // differences — normalization absorbs them).
    let bob_profile = Profile::from_attributes(vec![
        Attribute::new("Profession", "Engineers"),
        Attribute::new("Interest", "Basket-Ball"),
        Attribute::new("interest", "JAZZ"),
        Attribute::new("hometown", "springfield"),
    ]);
    let bob = Responder::new(1, bob_profile, &config);

    // Carol does not match (not an engineer).
    let carol_profile = Profile::from_attributes(vec![
        Attribute::new("profession", "chef"),
        Attribute::new("interest", "jazz"),
    ]);
    let carol = Responder::new(2, carol_profile, &config);

    match carol.handle(&package, 500, &mut rng) {
        ResponderOutcome::NotCandidate | ResponderOutcome::NoVerifiedMatch => {
            println!("Carol: cannot open the bottle, forwards the request, learns nothing")
        }
        other => println!("Carol: unexpected outcome {other:?}"),
    }

    let ResponderOutcome::Reply { reply, sessions, verified, .. } =
        bob.handle(&package, 1_000, &mut rng)
    else {
        panic!("Bob satisfies the request and must be able to reply");
    };
    println!("Bob: opened the bottle (verified = {verified}), sends an acknowledgement");

    let matches = alice.process_reply(&reply, 2_000);
    println!("Alice: confirmed {} match(es), responder id {}", matches.len(), matches[0].responder);

    // The exchanged (x, y) now key an authenticated channel.
    let mut alice_channel = alice.pair_channel(&matches[0]);
    let mut bob_channel = sessions[0].channel();
    let frame = alice_channel.seal(b"Hi Bob! Pick-up game on Saturday?");
    let received = bob_channel.open(&frame)?;
    println!("Bob decrypted: {:?}", String::from_utf8_lossy(&received));
    let frame = bob_channel.seal(b"I'm in. Bring the jazz playlist.");
    println!("Alice decrypted: {:?}", String::from_utf8_lossy(&alice_channel.open(&frame)?));
    Ok(())
}
