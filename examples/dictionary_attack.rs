//! Security demo: dictionary profiling (paper Definition 1) against all
//! three protocols, reproducing the Table II story — Protocol 1 falls to
//! a small-dictionary attacker, Protocol 2 resists on the package alone,
//! Protocol 3 additionally caps what a malicious *initiator* can pry out
//! of candidates.
//!
//! Run with `cargo run --example dictionary_attack`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sealed_bottle::core::adversary::{DictionaryAttackOutcome, DictionaryAttacker};
use sealed_bottle::core::protocol::ResponderOutcome;
use sealed_bottle::prelude::*;
use sealed_bottle::profile::entropy::{phi_k_anonymity, EntropyModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);

    // A *small* closed world: 20 possible attributes. This is the
    // paper's worst case — in the real dataset the space is ~10^30.
    let vocabulary: Vec<Attribute> =
        (0..20).map(|i| Attribute::new("interest", format!("topic-{i}"))).collect();
    let attacker = DictionaryAttacker::new(vocabulary.clone());

    let request = RequestProfile::new(
        vec![vocabulary[0].clone()],
        vec![vocabulary[1].clone(), vocabulary[2].clone(), vocabulary[3].clone()],
        2,
    )?;

    for kind in [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3] {
        let config = ProtocolConfig::new(kind, 11);
        let (_, package) = Initiator::create(&request, 0, &config, 0, &mut rng);
        match attacker.attack_package(&package) {
            DictionaryAttackOutcome::RecoveredRequest { attributes, .. } => {
                println!(
                    "{kind:?}: BROKEN — attacker recovered the request: {:?}",
                    attributes.iter().map(ToString::to_string).collect::<Vec<_>>()
                );
            }
            DictionaryAttackOutcome::Inconclusive { candidate_keys } => {
                println!(
                    "{kind:?}: attacker left with {candidate_keys} unverifiable candidate keys"
                );
            }
            DictionaryAttackOutcome::NotCovered => {
                println!("{kind:?}: attacker's vocabulary cannot even pass the fast check");
            }
        }
    }

    // Protocol 3's ϕ-entropy budget against a malicious initiator.
    println!("\n--- malicious initiator vs Protocol 3 candidate ---");
    let model = EntropyModel::from_counts(
        vocabulary.iter().map(|a| (a.category().to_string(), a.value().to_string(), 50u64)),
    );
    let phi = phi_k_anonymity(1000, 50); // hide among ≥ 50 of 1000 users
    println!("candidate's budget: ϕ = log2(1000/50) = {phi:.2} bits");

    let victim = Profile::from_attributes(vec![
        vocabulary[0].clone(),
        vocabulary[1].clone(),
        vocabulary[2].clone(),
    ]);
    let config = ProtocolConfig::new(ProtocolKind::P3, 11);
    let (_, package) = Initiator::create(&request, 0, &config, 0, &mut rng);
    let responder = Responder::new(1, victim, &config).with_entropy_budget(model.clone(), phi);
    match responder.handle(&package, 1_000, &mut rng) {
        ResponderOutcome::Reply { reply, .. } => {
            let unmasked = attacker.attack_reply(&package, &reply);
            for attrs in &unmasked {
                let leaked: f64 = model.profile_entropy(attrs.iter());
                println!(
                    "initiator unmasked a gamble of {} attributes = {leaked:.2} bits (≤ ϕ ✓)",
                    attrs.len()
                );
                assert!(leaked <= phi + 1e-9);
            }
            if unmasked.is_empty() {
                println!("no gamble could be unmasked at all");
            }
        }
        other => println!("candidate refused to gamble: {other:?}"),
    }
    Ok(())
}
