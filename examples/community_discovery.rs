//! Community discovery with a shared group key (paper §III-F): one
//! request finds every user above the similarity threshold, and the
//! bottle secret `x` doubles as the community's group key — intra-group
//! broadcast encryption with zero extra key exchange.
//!
//! Run with `cargo run --example community_discovery`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sealed_bottle::prelude::*;

fn tag(name: &str) -> Attribute {
    Attribute::new("tag", name)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);
    let config = ProtocolConfig::new(ProtocolKind::P2, 11);

    // Find the local Rust hiking club: rust AND 1 of 2 outdoor tags.
    let request = RequestProfile::new(vec![tag("rust")], vec![tag("hiking"), tag("climbing")], 1)?;
    let (mut organizer, package) = Initiator::create(&request, 0, &config, 0, &mut rng);

    let members = [
        Profile::from_attributes(vec![tag("rust"), tag("hiking")]),
        Profile::from_attributes(vec![tag("rust"), tag("climbing"), tag("coffee")]),
        Profile::from_attributes(vec![tag("rust"), tag("hiking"), tag("climbing")]),
    ];
    let outsiders = [
        Profile::from_attributes(vec![tag("rust"), tag("opera")]), // no outdoor tag
        Profile::from_attributes(vec![tag("go"), tag("hiking")]),  // wrong language
    ];

    let mut member_sessions = Vec::new();
    for (i, profile) in members.iter().enumerate() {
        let responder = Responder::new(i as u32 + 1, profile.clone(), &config);
        if let sealed_bottle::core::protocol::ResponderOutcome::Reply { reply, sessions, .. } =
            responder.handle(&package, 1_000, &mut rng)
        {
            let confirmed = organizer.process_reply(&reply, 2_000);
            assert_eq!(confirmed.len(), 1);
            member_sessions.push(sessions);
        }
    }
    for (i, profile) in outsiders.iter().enumerate() {
        let responder = Responder::new(i as u32 + 10, profile.clone(), &config);
        if let sealed_bottle::core::protocol::ResponderOutcome::Reply { reply, .. } =
            responder.handle(&package, 1_000, &mut rng)
        {
            assert!(organizer.process_reply(&reply, 2_000).is_empty());
        }
    }
    println!("Organizer confirmed {} community members", organizer.matches().len());
    assert_eq!(organizer.matches().len(), 3);

    // The group channel: everyone who truly opened the bottle derives it
    // from x; outsiders cannot.
    let group = organizer.group_channel();
    let announcement = group.seal(b"Trailhead, Saturday 08:00. Bring crampons.", &mut rng);
    for (i, sessions) in member_sessions.iter().enumerate() {
        // A member may hold several candidate sessions (P2!) — the group
        // frame authenticates only under the right one.
        let read = sessions.iter().find_map(|s| s.group_channel().open(&announcement).ok());
        let text = read.expect("every true member can read the announcement");
        println!("member {}: {:?}", i + 1, String::from_utf8_lossy(&text));
    }

    // An outsider with a made-up x gets rejected by the MAC.
    let outsider_group = GroupChannel::from_x(&[0u8; 32]);
    assert!(outsider_group.open(&announcement).is_err());
    println!("outsider: authentication failure (as it should be)");
    Ok(())
}
