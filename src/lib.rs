//! # Sealed Bottle
//!
//! A complete Rust implementation of *"Message in a Sealed Bottle:
//! Privacy Preserving Friending in Social Networks"* (Zhang & Li,
//! ICDCS 2013): one-round privacy-preserving profile matching and secure
//! channel establishment for decentralized mobile social networks, built
//! from symmetric cryptography only — no PKI, no trusted third party, no
//! presetting.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`crypto`] | `msb-crypto` | SHA-256, AES-128/256, CTR/CBC, HMAC, HKDF |
//! | [`bignum`] | `msb-bignum` | big integers, Montgomery modexp, prime fields |
//! | [`profile`] | `msb-profile` | attributes, profile vectors/keys, remainder vectors, hint matrices, entropy |
//! | [`lattice`] | `msb-lattice` | hexagonal location hashing, vicinity regions |
//! | [`net`] | `msb-net` | deterministic MANET simulator |
//! | [`core`] | `msb-core` | Protocols 1/2/3, secure channels, vicinity search, adversaries |
//! | [`baselines`] | `msb-baselines` | Paillier, FNP'04, FC'10, FindU-style PSI-CA, dot product |
//! | [`dataset`] | `msb-dataset` | synthetic Tencent-Weibo population |
//! | [`wire`] | `msb-wire` | the canonical versioned frame codec every message uses |
//! | [`server`] | `msb-server` | the TCP relay: MSBW gateway, store-and-forward inbox, rate guard |
//!
//! # Quickstart
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sealed_bottle::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let config = ProtocolConfig::new(ProtocolKind::P1, 11);
//!
//! // Looking for a jazz-loving engineer.
//! let request = RequestProfile::new(
//!     vec![Attribute::new("profession", "engineer")],
//!     vec![Attribute::new("interest", "jazz"), Attribute::new("interest", "go")],
//!     1,
//! )?;
//! let (mut initiator, package) = Initiator::create(&request, 0, &config, 0, &mut rng);
//!
//! let responder = Responder::new(
//!     1,
//!     Profile::from_attributes(vec![
//!         Attribute::new("profession", "engineer"),
//!         Attribute::new("interest", "jazz"),
//!     ]),
//!     &config,
//! );
//! if let ResponderOutcome::Reply { reply, sessions, .. } =
//!     responder.handle(&package, 1_000, &mut rng)
//! {
//!     let matches = initiator.process_reply(&reply, 2_000);
//!     // Both sides now share (x, y): a secure channel exists.
//!     let mut a = initiator.pair_channel(&matches[0]);
//!     let mut b = sessions[0].channel();
//!     let frame = a.seal(b"hello!");
//!     assert_eq!(b.open(&frame).unwrap(), b"hello!");
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use msb_baselines as baselines;
pub use msb_bignum as bignum;
pub use msb_core as core;
pub use msb_crypto as crypto;
pub use msb_dataset as dataset;
pub use msb_lattice as lattice;
pub use msb_net as net;
pub use msb_profile as profile;
pub use msb_server as server;
pub use msb_telemetry as telemetry;
pub use msb_wire as wire;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use msb_core::app::{AppEvent, FriendingApp, RefloodPolicy, SwarmSummary};
    pub use msb_core::channel::{GroupChannel, Role, SecureChannel};
    pub use msb_core::package::{Reply, RequestPackage};
    pub use msb_core::protocol::{
        ConfirmedMatch, Initiator, Parallelism, ProtocolConfig, ProtocolKind, Responder,
        ResponderOutcome,
    };
    pub use msb_core::vicinity::{create_vicinity_request, vicinity_responder};
    pub use msb_lattice::{LatticeConfig, VicinityRegion};
    pub use msb_net::payload::Payload;
    pub use msb_net::shard::ShardedSimulator;
    pub use msb_net::sim::{
        DeliveryMode, NodeApp, NodeCtx, NodeId, SchedulerMode, SimConfig, SimDriver, Simulator,
        SpatialMode,
    };
    pub use msb_net::spatial::SpatialIndex;
    pub use msb_profile::{
        Attribute, Profile, ProfileKey, ProfileVector, RequestProfile, RequestVector,
    };
    pub use msb_server::{RelayClient, RelayServer, ServerConfig};
    pub use msb_wire::{DecodeError, FrameKind, Message, WireDecode, WireEncode};
}
