//! Monoid laws for [`LogHistogram::merge`] and [`MetricSet::merge`] —
//! the same discipline `metrics_merge.rs` pins for
//! `msb_net::sim::Metrics`, because the sharded engine folds per-shard
//! telemetry in ascending shard order and the fold must be shard-count
//! independent: associative, commutative, with the empty value as
//! identity.
//!
//! Also pinned here: histogram percentile ranks agree with
//! [`percentile_sorted`]'s nearest rank over the raw samples (the rank
//! is exact; only the reported value is bucket-resolved), so the
//! workspace keeps exactly one percentile definition.

use msb_telemetry::{
    bucket_index, bucket_upper_bound, nearest_rank, percentile_sorted, LogHistogram, MetricSet,
};
use proptest::prelude::*;

/// splitmix64 — expands one seed into a value stream (the vendored
/// proptest shim has no collection strategies).
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// An arbitrary histogram: up to 64 samples spread across the full
/// bucket range (shifted so small and huge values both occur).
fn arb_hist(seed: u64) -> LogHistogram {
    let mut next = stream(seed);
    let mut h = LogHistogram::new();
    let n = (next() % 65) as usize;
    for _ in 0..n {
        let raw = next();
        h.record(raw >> (next() % 64));
    }
    h
}

/// An arbitrary metric set exercising all three series kinds across a
/// few labels.
fn arb_set(seed: u64) -> MetricSet {
    let mut next = stream(seed);
    let mut m = MetricSet::new();
    let names: [&'static str; 3] = ["alpha", "beta", "gamma"];
    let n = (next() % 24) as usize;
    for _ in 0..n {
        let name = names[(next() % 3) as usize];
        let label = (next() % 4) as u32;
        match next() % 3 {
            // Bounded so repeated sums cannot overflow u64.
            0 => m.incr(name, label, next() % (1 << 40)),
            1 => m.gauge_max(name, label, next()),
            _ => m.record(name, label, next() >> (next() % 64)),
        }
    }
    m
}

fn merged_h(a: &LogHistogram, b: &LogHistogram) -> LogHistogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn merged_s(a: &MetricSet, b: &MetricSet) -> MetricSet {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn hist_merge_is_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (arb_hist(a), arb_hist(b), arb_hist(c));
        prop_assert_eq!(merged_h(&merged_h(&a, &b), &c), merged_h(&a, &merged_h(&b, &c)));
    }

    #[test]
    fn hist_merge_is_commutative(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (arb_hist(a), arb_hist(b));
        prop_assert_eq!(merged_h(&a, &b), merged_h(&b, &a));
    }

    #[test]
    fn hist_empty_is_identity(a in any::<u64>()) {
        let a = arb_hist(a);
        prop_assert_eq!(merged_h(&a, &LogHistogram::new()), a.clone());
        prop_assert_eq!(merged_h(&LogHistogram::new(), &a), a);
    }

    /// Merging equals recording both sample streams into one
    /// histogram — the property that makes per-shard recording safe.
    #[test]
    fn hist_merge_equals_combined_recording(sa in any::<u64>(), sb in any::<u64>()) {
        let mut next_a = stream(sa);
        let mut next_b = stream(sb);
        let (mut a, mut b, mut both) =
            (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for _ in 0..(sa % 40) {
            let v = next_a() >> (next_a() % 64);
            a.record(v);
            both.record(v);
        }
        for _ in 0..(sb % 40) {
            let v = next_b() >> (next_b() % 64);
            b.record(v);
            both.record(v);
        }
        prop_assert_eq!(merged_h(&a, &b), both);
    }

    /// The histogram's percentile uses the identical nearest rank as
    /// the sorted-sample path, and its bucket-resolved answer brackets
    /// the exact answer within one power of two.
    #[test]
    fn hist_percentile_brackets_exact(seed in any::<u64>(), pq in any::<u64>()) {
        let mut next = stream(seed);
        let n = (seed % 64) as usize + 1;
        let mut samples: Vec<u64> = (0..n).map(|_| next() >> (next() % 64)).collect();
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let p = (pq % 101) as f64 / 100.0;
        let exact = percentile_sorted(&samples, p).unwrap();
        let bucketed = h.percentile(p).unwrap();
        // Same rank, so the bucketed answer is the upper bound of the
        // exact sample's bucket (clamped to the recorded max).
        let rank = nearest_rank(n, p).unwrap();
        prop_assert_eq!(samples[rank - 1], exact);
        prop_assert_eq!(bucketed, bucket_upper_bound(bucket_index(exact)).min(h.max().unwrap()));
        prop_assert!(bucketed >= exact);
    }

    #[test]
    fn set_merge_is_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (arb_set(a), arb_set(b), arb_set(c));
        prop_assert_eq!(merged_s(&merged_s(&a, &b), &c), merged_s(&a, &merged_s(&b, &c)));
    }

    #[test]
    fn set_merge_is_commutative(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (arb_set(a), arb_set(b));
        prop_assert_eq!(merged_s(&a, &b), merged_s(&b, &a));
    }

    #[test]
    fn set_empty_is_identity(a in any::<u64>()) {
        let a = arb_set(a);
        prop_assert_eq!(merged_s(&a, &MetricSet::new()), a.clone());
        prop_assert_eq!(merged_s(&MetricSet::new(), &a), a);
    }
}
