//! Log₂-bucketed histograms and the workspace's one percentile
//! implementation.
//!
//! Bucket layout: bucket 0 holds exactly the value 0; bucket `i` for
//! `i ∈ 1..=64` holds values in `[2^(i-1), 2^i - 1]` (bucket 64's upper
//! bound saturates at `u64::MAX`). A recorded value costs one
//! `leading_zeros` and one array increment; `merge` is element-wise
//! addition plus min/max folds, making the histogram a commutative
//! monoid under `merge` with `new()` as identity — the same discipline
//! as `msb_net::sim::Metrics::merge`, and proptested the same way.
//!
//! Percentile queries are **exact-count**: the rank is the classic
//! nearest-rank `⌈p·n⌉` over the exact number of recorded samples, and
//! only the *value* is resolved to the containing bucket's upper bound.
//! [`percentile_sorted`] applies the identical rank to raw sorted
//! samples, which is how `SwarmSummary` keeps bit-identical results
//! after migrating here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Largest value the bucket holds (`u64::MAX` for the top bucket).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < HIST_BUCKETS);
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Nearest-rank index (1-based) for percentile `p` over `n` samples:
/// `⌈p·n⌉` clamped to `1..=n`. `None` when there are no samples.
///
/// This is the exact computation `SwarmSummary::latency_percentile_us`
/// has always used; it lives here so the workspace has one percentile
/// definition.
#[inline]
pub fn nearest_rank(n: usize, p: f64) -> Option<usize> {
    if n == 0 {
        return None;
    }
    Some(((p * n as f64).ceil() as usize).clamp(1, n))
}

/// Nearest-rank percentile over an already-sorted slice.
#[inline]
pub fn percentile_sorted(sorted: &[u64], p: f64) -> Option<u64> {
    nearest_rank(sorted.len(), p).map(|rank| sorted[rank - 1])
}

/// A log₂-bucketed histogram: 65 exact bucket counts plus exact
/// count/sum/min/max, mergeable as a commutative monoid.
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// The empty histogram — the merge identity.
    pub fn new() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram in. Commutative and associative;
    /// `new()` is the identity (proptested in `tests/prop.rs`).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Raw bucket counts (index by [`bucket_index`]).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Exact-count nearest-rank percentile, resolved to the containing
    /// bucket's upper bound (so p50/p90/p99 are upper bounds accurate
    /// to a factor of 2, while the *rank* is exact).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let rank = nearest_rank(self.count as usize, p)? as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Never report a bound above the recorded max (the top
                // occupied bucket's range can overshoot it).
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        None
    }

    /// Rebuild from exported parts (the relay's `MetricsDump` decode
    /// path). `count` is derived from the buckets so the invariant
    /// `count == Σ buckets` holds by construction.
    pub fn from_parts(buckets: [u64; HIST_BUCKETS], sum: u64, min: u64, max: u64) -> Self {
        let count = buckets.iter().fold(0u64, |a, &b| a.saturating_add(b));
        let (min, max) = if count == 0 { (u64::MAX, 0) } else { (min, max) };
        Self { buckets, count, sum, min, max }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

/// Lock-free histogram for concurrent writers (the relay's gateway
/// threads). All operations are `Relaxed`: the series are monotone
/// counters whose cross-field skew under concurrent snapshot is
/// bounded by in-flight operations, same contract as `ServerStats`.
pub struct AtomicLogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicLogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AtomicLogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

impl AtomicLogHistogram {
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Materialize a point-in-time [`LogHistogram`]. The count is
    /// derived from the bucket reads, so the snapshot is internally
    /// consistent even while writers race.
    pub fn snapshot(&self) -> LogHistogram {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        LogHistogram::from_parts(
            buckets,
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            // Every bucket's upper bound maps back into the bucket.
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
    }

    #[test]
    fn record_and_query() {
        let mut h = LogHistogram::new();
        assert!(h.percentile(0.5).is_none());
        for v in [0u64, 1, 5, 100, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1206);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        // rank(p50, 6) = 3 → third sample (5) → bucket 3 upper bound 7.
        assert_eq!(h.percentile(0.50), Some(7));
        // rank(p99, 6) = 6 → 1000 → bucket 10 upper bound 1023, but
        // clamped to the recorded max.
        assert_eq!(h.percentile(0.99), Some(1000));
    }

    #[test]
    fn percentile_matches_swarm_summary_rank() {
        // Exactly the historical SwarmSummary computation.
        let sorted = [10u64, 20, 30, 40, 50];
        for (p, want) in [(0.0, 10), (0.5, 30), (0.9, 50), (1.0, 50)] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            assert_eq!(percentile_sorted(&sorted, p), Some(sorted[rank - 1]));
            assert_eq!(percentile_sorted(&sorted, p), Some(want));
        }
        assert_eq!(percentile_sorted(&[], 0.5), None);
    }

    #[test]
    fn atomic_snapshot_matches_sequential() {
        let a = AtomicLogHistogram::new();
        let mut h = LogHistogram::new();
        for v in [3u64, 0, 7, 900, 42] {
            a.record(v);
            h.record(v);
        }
        assert_eq!(a.snapshot(), h);
    }

    #[test]
    fn from_parts_derives_count() {
        let mut h = LogHistogram::new();
        h.record(9);
        h.record(77);
        let rebuilt =
            LogHistogram::from_parts(*h.buckets(), h.sum(), h.min().unwrap(), h.max().unwrap());
        assert_eq!(rebuilt, h);
        let empty = LogHistogram::from_parts([0; HIST_BUCKETS], 0, 123, 456);
        assert_eq!(empty, LogHistogram::new());
    }
}
