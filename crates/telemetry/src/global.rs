//! Opt-in process-global [`MetricSet`] for call sites with no
//! `Recorder` to thread through — today, the matching layer's
//! work-queue workers (`msb_profile::matching::parallel`), whose
//! per-worker claim counts and busy time depend on OS scheduling and
//! therefore must stay **out** of the deterministic sinks.
//!
//! Disabled by default: [`with`] is a single relaxed atomic load and a
//! branch until [`install`] is called, so uninstrumented runs (and
//! every deterministic differential) see the status quo. Series
//! recorded here are explicitly outside the determinism contract —
//! wall-clock durations are allowed (see `docs/TELEMETRY.md`).

use crate::recorder::MetricSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn cell() -> &'static Mutex<MetricSet> {
    static CELL: OnceLock<Mutex<MetricSet>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(MetricSet::new()))
}

/// Turn the global registry on (idempotent). Returns whether it was
/// previously off.
pub fn install() -> bool {
    !ENABLED.swap(true, Ordering::Relaxed)
}

/// Is the registry live?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` against the registry if installed; no-op (one atomic load)
/// otherwise.
#[inline]
pub fn with<F: FnOnce(&mut MetricSet)>(f: F) {
    if ENABLED.load(Ordering::Relaxed) {
        f(&mut cell().lock().expect("telemetry global poisoned"));
    }
}

/// Clone the current contents, or `None` when not installed.
pub fn snapshot() -> Option<MetricSet> {
    enabled().then(|| cell().lock().expect("telemetry global poisoned").clone())
}

/// Clear accumulated series (the registry stays installed).
pub fn reset() {
    if enabled() {
        *cell().lock().expect("telemetry global poisoned") = MetricSet::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_then_accumulates() {
        // Single test in this module: install() flips process state,
        // so the off-path assertion must run first.
        let mut touched = false;
        with(|_| touched = true);
        assert!(!touched, "registry must be a no-op before install()");
        assert!(snapshot().is_none());

        install();
        with(|m| m.incr("worker.claims", 3, 11));
        let snap = snapshot().expect("installed");
        assert_eq!(snap.counter("worker.claims", 3), 11);
        reset();
        assert_eq!(snapshot().unwrap().counter("worker.claims", 3), 0);
    }
}
