//! [`MetricSet`] (the mergeable metric store) and [`Recorder`] (the
//! sink instrumented code talks to).

use crate::hist::LogHistogram;
use crate::trace::{TraceBuffer, TraceEvent, TraceTag};
use std::collections::BTreeMap;

/// Metric series key: a static name plus a small integer label
/// (shard id, worker id, 0 when unlabelled). Static-str keys mean a
/// hot-path increment never allocates.
pub type MetricKey = (&'static str, u32);

/// Labelled counters (add-merge), gauges (max-merge), and log₂
/// histograms (bucket-merge) in `BTreeMap`s, so iteration order — and
/// therefore any rendered output — is deterministic.
///
/// `merge` is a commutative monoid with `MetricSet::new()` as
/// identity, matching `msb_net::sim::Metrics::merge` (proptested in
/// `tests/prop.rs`).
#[derive(Clone, Default, PartialEq, Debug)]
pub struct MetricSet {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    hists: BTreeMap<MetricKey, LogHistogram>,
}

impl MetricSet {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn incr(&mut self, name: &'static str, label: u32, by: u64) {
        *self.counters.entry((name, label)).or_insert(0) += by;
    }

    /// Raise a high-water-mark gauge (merge takes the max).
    #[inline]
    pub fn gauge_max(&mut self, name: &'static str, label: u32, v: u64) {
        let g = self.gauges.entry((name, label)).or_insert(0);
        *g = (*g).max(v);
    }

    #[inline]
    pub fn record(&mut self, name: &'static str, label: u32, v: u64) {
        self.hists.entry((name, label)).or_default().record(v);
    }

    pub fn counter(&self, name: &'static str, label: u32) -> u64 {
        self.counters.get(&(name, label)).copied().unwrap_or(0)
    }

    /// Sum of a counter across all labels.
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.counters.iter().filter(|((n, _), _)| *n == name).map(|(_, v)| v).sum()
    }

    pub fn gauge(&self, name: &'static str, label: u32) -> u64 {
        self.gauges.get(&(name, label)).copied().unwrap_or(0)
    }

    pub fn hist(&self, name: &'static str, label: u32) -> Option<&LogHistogram> {
        self.hists.get(&(name, label))
    }

    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, &u64)> {
        self.counters.iter()
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, &u64)> {
        self.gauges.iter()
    }

    pub fn hists(&self) -> impl Iterator<Item = (&MetricKey, &LogHistogram)> {
        self.hists.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Commutative fold: counters add, gauges max, histograms merge.
    pub fn merge(&mut self, other: &Self) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            let g = self.gauges.entry(k).or_insert(0);
            *g = (*g).max(v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(*k).or_default().merge(h);
        }
    }
}

/// The sink instrumented code records into. [`Recorder::off`] (the
/// default everywhere) is a no-op: every method checks one bool and
/// returns, so disabled runs pay a branch per call site and nothing
/// else — no allocation, no buffer, no trace.
#[derive(Clone, PartialEq, Debug)]
pub struct Recorder {
    on: bool,
    set: MetricSet,
    trace: TraceBuffer,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::off()
    }
}

impl Recorder {
    /// The no-op sink (the default).
    pub fn off() -> Self {
        Self { on: false, set: MetricSet::new(), trace: TraceBuffer::with_capacity(0) }
    }

    /// An enabled sink whose trace ring keeps the most recent
    /// `trace_cap` events.
    pub fn on(trace_cap: usize) -> Self {
        Self { on: true, set: MetricSet::new(), trace: TraceBuffer::with_capacity(trace_cap) }
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    #[inline]
    pub fn incr(&mut self, name: &'static str, label: u32, by: u64) {
        if self.on {
            self.set.incr(name, label, by);
        }
    }

    #[inline]
    pub fn gauge_max(&mut self, name: &'static str, label: u32, v: u64) {
        if self.on {
            self.set.gauge_max(name, label, v);
        }
    }

    #[inline]
    pub fn record(&mut self, name: &'static str, label: u32, v: u64) {
        if self.on {
            self.set.record(name, label, v);
        }
    }

    /// Record a span `[at_us, at_us + dur_us)`.
    #[inline]
    pub fn span(&mut self, tag: TraceTag, actor: u32, at_us: u64, dur_us: u64, a: u64, b: u64) {
        if self.on {
            self.trace.push(TraceEvent { at_us, dur_us, actor, tag, a, b });
        }
    }

    /// Record an instant event.
    #[inline]
    pub fn event(&mut self, tag: TraceTag, actor: u32, at_us: u64, a: u64, b: u64) {
        self.span(tag, actor, at_us, 0, a, b);
    }

    pub fn metrics(&self) -> &MetricSet {
        &self.set
    }

    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Merge per-shard recorders into one deterministic view: metric
    /// sets fold commutatively, traces merge sorted by
    /// `(at_us, actor)` via [`crate::merge_buffers`]. The result is
    /// `on` iff any input was, with the largest input trace capacity.
    pub fn merge_all(parts: &[Recorder]) -> Recorder {
        let on = parts.iter().any(|r| r.on);
        let cap = parts.iter().map(|r| r.trace.capacity()).max().unwrap_or(0);
        let mut set = MetricSet::new();
        for r in parts {
            set.merge(&r.set);
        }
        let buffers: Vec<TraceBuffer> = parts.iter().map(|r| r.trace.clone()).collect();
        let trace = crate::merge_buffers(&buffers, cap);
        Recorder { on, set, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_stays_empty() {
        let mut r = Recorder::off();
        r.incr("x", 0, 5);
        r.gauge_max("g", 1, 9);
        r.record("h", 0, 100);
        r.event(TraceTag::Quiesce, 0, 50, 1, 2);
        assert!(!r.is_on());
        assert!(r.metrics().is_empty());
        assert!(r.trace().is_empty());
        assert_eq!(r.trace().dropped(), 0);
    }

    #[test]
    fn on_recorder_accumulates() {
        let mut r = Recorder::on(16);
        r.incr("pops", 2, 3);
        r.incr("pops", 2, 4);
        r.gauge_max("depth", 0, 5);
        r.gauge_max("depth", 0, 3);
        r.record("lat", 0, 1000);
        r.span(TraceTag::Window, 1, 0, 500, 10, 0);
        assert_eq!(r.metrics().counter("pops", 2), 7);
        assert_eq!(r.metrics().gauge("depth", 0), 5);
        assert_eq!(r.metrics().hist("lat", 0).unwrap().count(), 1);
        assert_eq!(r.trace().len(), 1);
    }

    #[test]
    fn merge_all_folds_shards() {
        let mut a = Recorder::on(8);
        let mut b = Recorder::on(8);
        a.incr("pops", 0, 2);
        b.incr("pops", 1, 3);
        a.gauge_max("depth", 0, 4);
        b.gauge_max("depth", 0, 9);
        a.event(TraceTag::Window, 0, 100, 0, 0);
        b.event(TraceTag::Window, 1, 50, 0, 0);
        let ab = Recorder::merge_all(&[a.clone(), b.clone()]);
        let ba = Recorder::merge_all(&[b, a]);
        assert_eq!(ab.metrics(), ba.metrics());
        assert_eq!(ab.trace(), ba.trace());
        assert_eq!(ab.metrics().counter_total("pops"), 5);
        assert_eq!(ab.metrics().gauge("depth", 0), 9);
        assert_eq!(ab.trace().iter().next().unwrap().at_us, 50);
    }
}
