//! Structured trace recorder: a bounded ring of typed spans/events.
//!
//! Events are stamped by the **caller's clock** — on simulator paths
//! that is always the sim clock (`now_us`), never wall clock, so a
//! trace is a pure function of `(seed, config, apps)` and two
//! telemetry-enabled runs of the same scenario produce byte-identical
//! traces (asserted by the root differential suite). The buffer is
//! bounded: once `cap` events are held the oldest is dropped and
//! counted, so a 200k-node run cannot OOM through its own telemetry.
//!
//! Two export formats:
//! * [`TraceBuffer::to_jsonl`] — one JSON object per line, grep-able.
//! * [`TraceBuffer::to_chrome_trace`] — Chrome `trace_event` JSON
//!   (load in `chrome://tracing` or Perfetto); spans become complete
//!   (`"ph":"X"`) events on `tid = actor`, instants become `"ph":"i"`.

use std::collections::VecDeque;

/// What a trace event describes. The `a`/`b` payload words are
/// tag-specific (documented per variant).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceTag {
    /// One shard window `[at_us, at_us+dur_us)`; `a` = events popped,
    /// `b` = cross-shard envelopes ingested at the window boundary.
    Window,
    /// A window in which a shard popped nothing (pure sync overhead);
    /// `a` = 0, `b` = inbound envelopes ingested.
    Stall,
    /// A global quiesce point (mobility rehome); `a` = nodes moved,
    /// `b` = queued events transferred with them.
    Quiesce,
    /// One node handed between shards at a quiesce; `a` = node id,
    /// `b` = `from_shard << 32 | to_shard`.
    Handoff,
    /// The calendar scheduler resized its bucket width; `a` = total
    /// resizes so far, `b` = new bucket width (µs).
    SchedResize,
    /// Scheduler pop batch marker; `a` = pops in the batch.
    SchedPop,
    /// A protocol phase transition observed by an app; `a`/`b` are
    /// protocol-defined.
    ProtocolPhase,
    /// Escape hatch for call sites without a dedicated tag.
    Custom,
}

impl TraceTag {
    pub fn name(self) -> &'static str {
        match self {
            TraceTag::Window => "window",
            TraceTag::Stall => "stall",
            TraceTag::Quiesce => "quiesce",
            TraceTag::Handoff => "handoff",
            TraceTag::SchedResize => "sched_resize",
            TraceTag::SchedPop => "sched_pop",
            TraceTag::ProtocolPhase => "protocol_phase",
            TraceTag::Custom => "custom",
        }
    }
}

/// One span (`dur_us > 0`) or instant (`dur_us == 0`) in a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Start timestamp in simulator microseconds.
    pub at_us: u64,
    /// Span duration in simulator microseconds (0 = instant event).
    pub dur_us: u64,
    /// Who: shard id on engine paths, node id on app paths.
    pub actor: u32,
    pub tag: TraceTag,
    pub a: u64,
    pub b: u64,
}

/// Bounded ring of [`TraceEvent`]s in record order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceBuffer {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer that keeps the most recent `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self { cap, events: VecDeque::new(), dropped: 0 }
    }

    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or refused, for `cap == 0`) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// One JSON object per line. Only integers and fixed keys — no
    /// escaping needed, so this stays dependency-free.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!(
                "{{\"at_us\":{},\"dur_us\":{},\"actor\":{},\"tag\":\"{}\",\"a\":{},\"b\":{}}}\n",
                ev.at_us,
                ev.dur_us,
                ev.actor,
                ev.tag.name(),
                ev.a,
                ev.b
            ));
        }
        out
    }

    /// Chrome `trace_event` JSON array (the "JSON Array Format", which
    /// viewers accept without an enclosing object). Spans map to
    /// complete events, instants to instant events with thread scope.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if ev.dur_us > 0 {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
                     \"args\":{{\"a\":{},\"b\":{}}}}}",
                    ev.tag.name(),
                    ev.at_us,
                    ev.dur_us,
                    ev.actor,
                    ev.a,
                    ev.b
                ));
            } else {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\
                     \"args\":{{\"a\":{},\"b\":{}}}}}",
                    ev.tag.name(),
                    ev.at_us,
                    ev.actor,
                    ev.a,
                    ev.b
                ));
            }
        }
        out.push(']');
        out
    }
}

/// Merge per-shard buffers into one deterministic timeline.
///
/// The concatenation (in the given buffer order — shard index order at
/// call sites) is stably sorted by `(at_us, actor)`, so ties keep each
/// shard's internal record order and the result is independent of
/// which worker thread finished first. Dropped counts add.
pub fn merge_buffers(buffers: &[TraceBuffer], cap: usize) -> TraceBuffer {
    let mut all: Vec<TraceEvent> = Vec::with_capacity(buffers.iter().map(|b| b.len()).sum());
    let mut dropped = 0u64;
    for b in buffers {
        dropped += b.dropped;
        all.extend(b.iter().copied());
    }
    all.sort_by_key(|ev| (ev.at_us, ev.actor));
    let mut out = TraceBuffer::with_capacity(cap);
    out.dropped = dropped;
    for ev in all {
        out.push(ev);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, actor: u32, tag: TraceTag) -> TraceEvent {
        TraceEvent { at_us, dur_us: 0, actor, tag, a: 0, b: 0 }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut buf = TraceBuffer::with_capacity(2);
        buf.push(ev(1, 0, TraceTag::Window));
        buf.push(ev(2, 0, TraceTag::Window));
        buf.push(ev(3, 0, TraceTag::Window));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        assert_eq!(buf.iter().map(|e| e.at_us).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn zero_cap_refuses_everything() {
        let mut buf = TraceBuffer::with_capacity(0);
        buf.push(ev(1, 0, TraceTag::Quiesce));
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = TraceBuffer::with_capacity(8);
        let mut b = TraceBuffer::with_capacity(8);
        a.push(ev(10, 0, TraceTag::Window));
        a.push(ev(30, 0, TraceTag::Window));
        b.push(ev(10, 1, TraceTag::Window));
        b.push(ev(20, 1, TraceTag::Stall));
        let merged = merge_buffers(&[a.clone(), b.clone()], 8);
        let times: Vec<(u64, u32)> = merged.iter().map(|e| (e.at_us, e.actor)).collect();
        assert_eq!(times, vec![(10, 0), (10, 1), (20, 1), (30, 0)]);
    }

    #[test]
    fn exports_are_well_formed() {
        let mut buf = TraceBuffer::with_capacity(4);
        buf.push(TraceEvent { at_us: 5, dur_us: 10, actor: 2, tag: TraceTag::Window, a: 7, b: 1 });
        buf.push(ev(20, 3, TraceTag::Handoff));
        let jsonl = buf.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"tag\":\"window\""));
        let chrome = buf.to_chrome_trace();
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
    }
}
