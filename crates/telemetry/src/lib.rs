//! # msb-telemetry — deterministic observability for the workspace
//!
//! The paper's evaluation is a measurement story (computation cost,
//! communication cost, matching latency), and the reproduction's other
//! crates each grew their own ad-hoc observables: `msb_net::sim::Metrics`
//! is a flat counter struct, the relay's `ServerStats` is a bag of
//! atomics, and `SwarmSummary` carried its own percentile code. This
//! crate is the shared layer they all sit on:
//!
//! * [`LogHistogram`] / [`AtomicLogHistogram`] — log₂-bucketed latency
//!   histograms with exact-count nearest-rank percentile queries and a
//!   commutative [`LogHistogram::merge`] (the same monoid discipline as
//!   `Metrics::merge`, proptested in `tests/prop.rs`).
//! * [`MetricSet`] — labelled counters (add-merge), gauges (max-merge),
//!   and histograms behind one mergeable value, keyed by
//!   `(&'static str, u32)` so per-shard / per-worker series never
//!   allocate on the hot path.
//! * [`TraceBuffer`] — a bounded ring of typed [`TraceEvent`] spans
//!   stamped from the **simulator clock** (never wall clock on sim
//!   paths), exportable as JSONL or Chrome `trace_event` JSON for
//!   flamegraph-style inspection of shard windows, handoffs, scheduler
//!   behaviour, and protocol phases.
//! * [`Recorder`] — the sink handed to instrumented code. The default
//!   [`Recorder::off`] is a no-op sink: every method early-returns on a
//!   single bool, so disabled runs compile and behave as the status
//!   quo. The load-bearing invariant (proven by
//!   `tests/telemetry_differential.rs` at the workspace root) is that
//!   enabling it changes **no** oracle-verified byte.
//! * [`percentile_sorted`] / [`nearest_rank`] — the one percentile
//!   implementation in the workspace; `SwarmSummary` and the histogram
//!   type both defer to it.
//! * [`global`] — an opt-in process-wide [`MetricSet`] for call sites
//!   that have no `Recorder` to thread (the matching layer's worker
//!   threads). Wall-clock timing is allowed there because those series
//!   are explicitly outside the determinism contract (see
//!   `docs/TELEMETRY.md`).
//!
//! Determinism rules in one line: sim-path series are keyed off sim
//! time and deterministic inputs only; anything wall-clock lives in
//! [`global`] or in the relay (which is wall-clock by nature).

mod hist;
mod recorder;
mod trace;

pub mod global;

pub use hist::{
    bucket_index, bucket_upper_bound, nearest_rank, percentile_sorted, AtomicLogHistogram,
    LogHistogram, HIST_BUCKETS,
};
pub use recorder::{MetricKey, MetricSet, Recorder};
pub use trace::{merge_buffers, TraceBuffer, TraceEvent, TraceTag};
