//! The friending application over the simulated MANET.
//!
//! Glues the protocol state machines to [`msb_net`]: the initiator
//! broadcasts the request package; relays run the fast check, forward
//! (TTL-bounded flooding with duplicate suppression and per-initiator
//! rate limiting), candidates compute their candidate keys — modelled
//! with a configurable per-key computation delay, which is what lets the
//! initiator's response-time window expose dictionary attackers — and
//! reply by (reverse-path) unicast.
//!
//! Traffic representation follows the simulation's
//! [`msb_net::sim::SimConfig::delivery`] switch: under
//! [`DeliveryMode::InMemory`] (the default) message structs ride the
//! event queue unserialized, accounted at their exact frame length;
//! under [`DeliveryMode::EncodedFrames`] every message is encoded into
//! its canonical [`msb_wire`] frame at the sender and strictly decoded
//! at each receiver, so the byte metrics *measure* real frames. The two
//! modes produce identical recipients, event order, match results and
//! byte counts — `tests/wire_differential.rs` pins that down.

use crate::package::{DecodeError, Reply, RequestPackage};
use crate::protocol::{
    ConfirmedMatch, Initiator, ProtocolConfig, Responder, ResponderOutcome, SessionSecret,
};
use msb_net::flood::{FloodDecision, FloodState};
use msb_net::guard::RateGuard;
use msb_net::payload::Payload;
use msb_net::sim::{DeliveryMode, NodeApp, NodeCtx, NodeId};
use msb_profile::entropy::EntropyModel;
use msb_profile::profile::Profile;
use msb_profile::request::RequestProfile;
use msb_wire::{peek_kind, FrameKind, Message};
use std::borrow::Cow;
use std::collections::HashMap;

/// An application message, as it rides the event queue under
/// [`DeliveryMode::InMemory`]. Its wire shape is the corresponding
/// [`msb_wire`] frame; [`AppMsg::frame_len`] is exact without encoding.
#[derive(Debug, Clone)]
enum AppMsg {
    Request(RequestPackage),
    Reply(Reply),
}

impl AppMsg {
    fn kind(&self) -> FrameKind {
        match self {
            AppMsg::Request(_) => FrameKind::Request,
            AppMsg::Reply(_) => FrameKind::Reply,
        }
    }

    fn frame_len(&self) -> usize {
        match self {
            AppMsg::Request(p) => p.frame_len(),
            AppMsg::Reply(r) => r.frame_len(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        match self {
            AppMsg::Request(p) => p.encode(),
            AppMsg::Reply(r) => r.encode(),
        }
    }

    /// Builds the payload representation `delivery` asks for.
    fn into_payload(self, delivery: DeliveryMode) -> Payload {
        match delivery {
            DeliveryMode::InMemory => {
                let wire_len = self.frame_len();
                Payload::mem(self, wire_len)
            }
            DeliveryMode::EncodedFrames => Payload::frame(self.encode()),
        }
    }
}

/// Classifies a payload without decoding its body: the in-memory kind,
/// or the envelope kind of an encoded frame.
fn payload_kind(payload: &Payload) -> Option<FrameKind> {
    if let Some(msg) = payload.downcast_ref::<AppMsg>() {
        return Some(msg.kind());
    }
    payload.as_bytes().and_then(|b| peek_kind(b).ok())
}

/// Periodic re-broadcast of carried requests — the mobility-driven
/// re-flooding policy (the paper's "spread by relays until … expiration
/// time" under churn).
///
/// A static flood reaches only the initiator's connected component at
/// t = 0. With a policy attached, every node that *relays* a request
/// (and the initiator itself) keeps the forwarded package and
/// re-broadcasts it every [`RefloodPolicy::period_us`] until the
/// package expires, so nodes that mobility carries into range later
/// still receive it; duplicate suppression makes re-floods cheap for
/// everyone who already processed the request. Driven by the
/// simulator's recurring timers
/// ([`msb_net::sim::NodeCtx::set_recurring_timer`]); see `docs/SIM.md`
/// for the scenario knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefloodPolicy {
    /// Distance between consecutive re-broadcasts of a carried
    /// package, in microseconds. Must be nonzero.
    pub period_us: u64,
    /// When set, each re-broadcast reaches only the `k` nearest
    /// in-range neighbors
    /// ([`msb_net::sim::NodeCtx::broadcast_k_nearest`]) instead of
    /// everyone in range — bounding re-flood traffic in dense crowds.
    pub fanout_cap: Option<usize>,
}

impl RefloodPolicy {
    /// Uncapped re-flooding every `period_us`.
    ///
    /// # Panics
    ///
    /// Panics if `period_us` is zero.
    pub fn every(period_us: u64) -> Self {
        assert!(period_us > 0, "a re-flood period must be nonzero");
        RefloodPolicy { period_us, fanout_cap: None }
    }

    /// Caps each re-broadcast to the `k` nearest in-range neighbors.
    pub fn with_fanout_cap(mut self, k: usize) -> Self {
        self.fanout_cap = Some(k);
        self
    }
}

/// A request this node keeps re-broadcasting while its re-flood timer
/// recurs. The payload is built once at arm time and the id
/// precomputed — re-encoding the frame (or re-hashing it) every period
/// would be wasted work, since [`Payload`] clones are O(1)
/// reference-count bumps either way.
#[derive(Debug)]
struct CarriedRequest {
    payload: Payload,
    request_id: [u8; 32],
    expires_us: u64,
}

/// Things that happened at a node, for inspection by tests, examples and
/// the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub enum AppEvent {
    /// This node broadcast its own request.
    RequestSent {
        /// The flood id of the request.
        request_id: [u8; 32],
    },
    /// This node forwarded someone else's request.
    Relayed {
        /// The flood id of the request.
        request_id: [u8; 32],
    },
    /// The fast check passed and candidate keys were generated.
    BecameCandidate {
        /// The flood id of the request.
        request_id: [u8; 32],
        /// Number of candidate keys gambled.
        keys: usize,
    },
    /// A reply was transmitted back to the initiator.
    ReplySent {
        /// The flood id of the request.
        request_id: [u8; 32],
        /// Acknowledgements included.
        acks: usize,
    },
    /// The initiator confirmed a match.
    MatchConfirmed {
        /// Responder node id.
        responder: u32,
        /// Simulation time of confirmation.
        at_us: u64,
    },
    /// A reply failed validation (see the initiator's reject log).
    ReplyRejected {
        /// Responder node id.
        responder: u32,
    },
    /// A carried request was periodically re-broadcast (see
    /// [`RefloodPolicy`]).
    Reflooded {
        /// The flood id of the request.
        request_id: [u8; 32],
    },
    /// A sender exceeded the request-frequency limit.
    RateLimited {
        /// Offending initiator id.
        from: u32,
    },
    /// A malformed message was discarded.
    DecodeFailed {
        /// Decoder diagnosis (with the failing offset).
        error: DecodeError,
    },
}

/// A node in the friending network (initiator or participant).
#[derive(Debug)]
pub struct FriendingApp {
    profile: Profile,
    config: ProtocolConfig,
    pending_request: Option<RequestProfile>,
    initiator: Option<Initiator>,
    /// Responder state, built lazily on the first incoming request (the
    /// node id is only known then) and reused for every request after —
    /// including whole batches under [`msb_net::sim::SimConfig::batch_delivery`].
    responder: Option<Responder>,
    sessions: Vec<SessionSecret>,
    flood: FloodState,
    guard: RateGuard<u32>,
    pending_replies: HashMap<u64, (u32, Reply)>,
    /// Requests kept for periodic re-broadcast, keyed by the recurring
    /// timer token that re-fires them. Empty unless a [`RefloodPolicy`]
    /// is attached.
    carried: HashMap<u64, CarriedRequest>,
    reflood: Option<RefloodPolicy>,
    next_token: u64,
    per_key_cost_us: u64,
    entropy: Option<(EntropyModel, f64)>,
    /// Event log, in order.
    pub events: Vec<AppEvent>,
}

impl FriendingApp {
    /// A passive participant with the given profile.
    pub fn participant(profile: Profile, config: ProtocolConfig) -> Self {
        FriendingApp {
            profile,
            config,
            pending_request: None,
            initiator: None,
            responder: None,
            sessions: Vec::new(),
            flood: FloodState::new(),
            // Default: at most 3 requests per initiator per 10 s.
            guard: RateGuard::new(10_000_000, 3),
            pending_replies: HashMap::new(),
            carried: HashMap::new(),
            reflood: None,
            next_token: 0,
            per_key_cost_us: 7_000, // paper: ~7 ms per candidate key on a phone
            entropy: None,
            events: Vec::new(),
        }
    }

    /// An initiator: broadcasts `request` at start-up.
    pub fn initiator(profile: Profile, request: RequestProfile, config: ProtocolConfig) -> Self {
        let mut app = Self::participant(profile, config);
        app.pending_request = Some(request);
        app
    }

    /// Attaches a Protocol-3 entropy budget.
    pub fn with_entropy_budget(mut self, model: EntropyModel, phi: f64) -> Self {
        self.entropy = Some((model, phi));
        self.responder = None; // rebuild with the new budget
        self
    }

    /// Overrides the modelled per-candidate-key computation cost.
    pub fn with_per_key_cost(mut self, cost_us: u64) -> Self {
        self.per_key_cost_us = cost_us;
        self
    }

    /// Attaches a re-flooding policy: this node keeps re-broadcasting
    /// its own request (initiators) and every request it relays, each
    /// on a recurring timer, until the request expires. See
    /// [`RefloodPolicy`].
    pub fn with_reflood(mut self, policy: RefloodPolicy) -> Self {
        self.reflood = Some(policy);
        self
    }

    /// The initiator state (populated after `on_start` for initiators).
    pub fn initiator_state(&self) -> Option<&Initiator> {
        self.initiator.as_ref()
    }

    /// Confirmed matches (initiator side).
    pub fn matches(&self) -> &[ConfirmedMatch] {
        self.initiator.as_ref().map(|i| i.matches()).unwrap_or(&[])
    }

    /// Candidate session secrets (responder side).
    pub fn sessions(&self) -> &[SessionSecret] {
        &self.sessions
    }

    /// The cached responder for this node, built on first use.
    fn responder(&mut self, my_id: u32) -> &Responder {
        if self.responder.is_none() {
            let mut responder = Responder::new(my_id, self.profile.clone(), &self.config);
            if let Some((model, phi)) = &self.entropy {
                responder = responder.with_entropy_budget(model.clone(), *phi);
            }
            self.responder = Some(responder);
        }
        self.responder.as_ref().expect("just built")
    }

    /// Borrows an in-memory request or strictly decodes an encoded one;
    /// logs (and swallows) decode failures.
    fn parse_request<'a>(&mut self, payload: &'a Payload) -> Option<Cow<'a, RequestPackage>> {
        if let Some(AppMsg::Request(pkg)) = payload.downcast_ref::<AppMsg>() {
            return Some(Cow::Borrowed(pkg));
        }
        let bytes = payload.as_bytes()?;
        match RequestPackage::decode(bytes) {
            Ok(pkg) => Some(Cow::Owned(pkg)),
            Err(error) => {
                self.events.push(AppEvent::DecodeFailed { error });
                None
            }
        }
    }

    /// Admission control for one incoming request: own-echo drop, flood
    /// classification, per-initiator rate guard. Draws no randomness, so
    /// running it for a whole chunk before any responder work (the
    /// batched path) leaves the RNG stream identical to the
    /// one-at-a-time path.
    fn admit_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        package: &RequestPackage,
    ) -> Option<FloodDecision> {
        let my_id = ctx.node_id().index() as u32;
        if package.initiator == my_id {
            return None; // own flood echo
        }
        let request_id = package.request_id();
        let decision =
            self.flood.classify(request_id, package.ttl, ctx.now_us(), package.expires_us);
        match decision {
            FloodDecision::Duplicate | FloodDecision::Expired => return None,
            FloodDecision::Relay | FloodDecision::Absorb => {}
        }
        // DoS guard: drop over-chatty initiators before any crypto work.
        if !self.guard.allow(package.initiator, ctx.now_us()) {
            self.events.push(AppEvent::RateLimited { from: package.initiator });
            return None;
        }
        Some(decision)
    }

    /// Post-responder bookkeeping for one request: candidate events, the
    /// modelled computation delay before the reply, and the flood relay.
    fn complete_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        package: &RequestPackage,
        decision: FloodDecision,
        outcome: ResponderOutcome,
    ) {
        let request_id = package.request_id();
        let mut verified_match = false;
        if let ResponderOutcome::Reply { reply, sessions, verified, stats } = outcome {
            self.events.push(AppEvent::BecameCandidate { request_id, keys: stats.distinct_keys });
            verified_match = verified;
            // Model the candidate-key computation time before replying.
            let delay = self.per_key_cost_us * sessions.len().max(1) as u64;
            let token = self.next_token;
            self.next_token += 1;
            self.pending_replies.insert(token, (package.initiator, reply));
            self.sessions.extend(sessions);
            ctx.set_timer(delay, token);
        }

        // Relay unless this node verifiably completed the search (P1).
        if decision == FloodDecision::Relay && !verified_match {
            let mut fwd = package.clone();
            fwd.ttl -= 1;
            self.arm_reflood(ctx, &fwd, request_id);
            let payload = AppMsg::Request(fwd).into_payload(ctx.delivery());
            ctx.broadcast(payload);
            self.events.push(AppEvent::Relayed { request_id });
        }
    }

    /// Starts the periodic re-broadcast of `package` when a
    /// [`RefloodPolicy`] is attached and at least one firing fits
    /// before the package expires. The recurring timer stops itself at
    /// the expiry deadline, so re-flooding never keeps a finite
    /// simulation alive.
    fn arm_reflood(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        package: &RequestPackage,
        request_id: [u8; 32],
    ) {
        let Some(policy) = self.reflood else {
            return;
        };
        // Fire strictly before the expiry instant: a re-broadcast *at*
        // expiry would be classified Expired by every receiver.
        let until = package.expires_us.saturating_sub(1);
        if ctx.now_us().saturating_add(policy.period_us) > until {
            return; // expires before the first re-broadcast could land
        }
        let token = self.next_token;
        self.next_token += 1;
        self.carried.insert(
            token,
            CarriedRequest {
                payload: AppMsg::Request(package.clone()).into_payload(ctx.delivery()),
                request_id,
                expires_us: package.expires_us,
            },
        );
        ctx.set_recurring_timer(policy.period_us, policy.period_us, until, token);
    }

    /// One firing of a re-flood timer: re-broadcast the carried
    /// payload (fan-out-capped when the policy says so) and drop it
    /// once no further firing can land before expiry.
    fn fire_reflood(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let Some(carried) = self.carried.get(&token) else {
            return;
        };
        let policy = self.reflood.expect("carried requests exist only under a policy");
        let now = ctx.now_us();
        if carried.expires_us <= now {
            self.carried.remove(&token);
            return;
        }
        let request_id = carried.request_id;
        let payload = carried.payload.clone();
        match policy.fanout_cap {
            Some(k) => ctx.broadcast_k_nearest(k, payload),
            None => ctx.broadcast(payload),
        }
        self.events.push(AppEvent::Reflooded { request_id });
        // The recurring timer stops past `expires_us - 1`; free the
        // carried copy as soon as this was the last firing.
        if now.saturating_add(policy.period_us) > carried.expires_us.saturating_sub(1) {
            self.carried.remove(&token);
        }
    }

    fn handle_request(&mut self, ctx: &mut NodeCtx<'_>, package: &RequestPackage) {
        let Some(decision) = self.admit_request(ctx, package) else {
            return;
        };
        let my_id = ctx.node_id().index() as u32;
        let now = ctx.now_us();
        let outcome = self.responder(my_id).handle(package, now, ctx.rng());
        self.complete_request(ctx, package, decision, outcome);
    }

    /// Batched request handling: parse and admit the whole chunk, run
    /// the cached responder over it in one [`Responder::handle_batch`]
    /// call, then complete each request in order.
    ///
    /// Within the responder pass, randomness is drawn in package order,
    /// exactly like consecutive [`Responder::handle`] calls (that
    /// equivalence is `handle_batch`'s contract and is what the
    /// differential e2e test pins down). At the *simulator* level,
    /// though, batched delivery defers every queued action — and its
    /// jitter/loss draws from the shared sim RNG — until after the whole
    /// chunk, where unbatched delivery interleaves them between
    /// messages. A run with `batch_delivery` on is therefore
    /// deterministic and self-consistent, but not byte-identical to the
    /// unbatched run of the same seed when a chunk mixes relays with
    /// later responder draws; `tests/determinism.rs` compares like with
    /// like and checks decisions, not bytes, across the flag.
    fn handle_request_run(&mut self, ctx: &mut NodeCtx<'_>, msgs: &[(NodeId, Payload)]) {
        let mut packages: Vec<Cow<'_, RequestPackage>> = Vec::with_capacity(msgs.len());
        let mut decisions = Vec::with_capacity(msgs.len());
        for (_, payload) in msgs {
            let Some(package) = self.parse_request(payload) else {
                continue;
            };
            if let Some(decision) = self.admit_request(ctx, &package) {
                packages.push(package);
                decisions.push(decision);
            }
        }
        if packages.is_empty() {
            return;
        }
        let my_id = ctx.node_id().index() as u32;
        let now = ctx.now_us();
        let outcomes = self.responder(my_id).handle_batch(&packages, now, ctx.rng());
        for ((package, decision), outcome) in packages.iter().zip(decisions).zip(outcomes) {
            self.complete_request(ctx, package, decision, outcome);
        }
    }

    fn handle_reply(&mut self, ctx: &mut NodeCtx<'_>, reply: &Reply) {
        let Some(initiator) = self.initiator.as_mut() else {
            return; // replies are only meaningful to the initiator
        };
        let confirmed = initiator.process_reply(reply, ctx.now_us());
        if confirmed.is_empty() {
            self.events.push(AppEvent::ReplyRejected { responder: reply.responder });
        }
        for m in confirmed {
            self.events
                .push(AppEvent::MatchConfirmed { responder: m.responder, at_us: m.received_at_us });
        }
    }
}

/// Swarm-wide aggregation of [`FriendingApp`] outcomes — the metrics the
/// scalability benches and swarm examples report. Collected once after a
/// run by walking every node's event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwarmSummary {
    /// Nodes in the simulation.
    pub nodes: usize,
    /// Requests broadcast by initiators.
    pub requests_sent: u64,
    /// Relay forwards across the whole swarm.
    pub relays: u64,
    /// Periodic re-broadcasts of carried requests ([`RefloodPolicy`]).
    pub refloods: u64,
    /// Nodes that passed the fast check and gambled candidate keys.
    pub candidates: u64,
    /// Replies transmitted back toward initiators.
    pub replies: u64,
    /// Matches confirmed by initiators.
    pub matches: u64,
    /// Senders dropped by the per-initiator rate guard.
    pub rate_limited: u64,
    /// Confirmation times of every confirmed match, ascending, in
    /// microseconds since the simulation start (initiators broadcast at
    /// t = 0, so these are end-to-end match latencies).
    pub match_latencies_us: Vec<u64>,
}

impl SwarmSummary {
    /// Walks every node of a finished single-threaded simulation.
    pub fn collect(sim: &msb_net::sim::Simulator<FriendingApp>) -> Self {
        Self::from_apps(sim.node_count(), |i| sim.app(NodeId::new(i)))
    }

    /// Walks every node of a finished sharded simulation
    /// ([`msb_net::shard::ShardedSimulator`]). The sharded engine is
    /// bit-identical to the single-threaded oracle, so for the same
    /// scenario this summary equals [`SwarmSummary::collect`]'s — the
    /// shard differential suites assert exactly that.
    pub fn collect_sharded(sim: &msb_net::shard::ShardedSimulator<FriendingApp>) -> Self {
        Self::from_apps(sim.node_count(), |i| sim.app(NodeId::new(i)))
    }

    /// Engine-independent aggregation over each node's event log.
    fn from_apps<'a>(nodes: usize, app: impl Fn(u32) -> &'a FriendingApp) -> Self {
        Self::from_event_logs((0..nodes).map(|i| app(i as u32)))
    }

    /// Aggregates apps hosted outside a simulator — e.g. driven through
    /// [`msb_net::harness::AppHarness`] over real sockets. For the same
    /// scenario this must equal the simulator-collected summary; the
    /// `msb-server` loopback parity suite asserts exactly that.
    pub fn from_event_logs<'a>(apps: impl IntoIterator<Item = &'a FriendingApp>) -> Self {
        let mut out = SwarmSummary::default();
        for app in apps {
            out.nodes += 1;
            for event in &app.events {
                match event {
                    AppEvent::RequestSent { .. } => out.requests_sent += 1,
                    AppEvent::Relayed { .. } => out.relays += 1,
                    AppEvent::Reflooded { .. } => out.refloods += 1,
                    AppEvent::BecameCandidate { .. } => out.candidates += 1,
                    AppEvent::ReplySent { .. } => out.replies += 1,
                    AppEvent::MatchConfirmed { at_us, .. } => {
                        out.matches += 1;
                        out.match_latencies_us.push(*at_us);
                    }
                    AppEvent::RateLimited { .. } => out.rate_limited += 1,
                    AppEvent::ReplyRejected { .. } | AppEvent::DecodeFailed { .. } => {}
                }
            }
        }
        out.match_latencies_us.sort_unstable();
        out
    }

    /// The `p`-th percentile (0.0–1.0, nearest-rank) of match latency,
    /// or `None` when nothing matched. Defers to the workspace's one
    /// percentile implementation ([`msb_telemetry::percentile_sorted`],
    /// the same nearest rank the telemetry histograms use) — results
    /// are unchanged from the historical inline computation.
    pub fn latency_percentile_us(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in 0..=1");
        msb_telemetry::percentile_sorted(&self.match_latencies_us, p)
    }

    /// The match-latency distribution as a telemetry histogram — the
    /// log₂-bucketed form the relay and bench layers report. Percentile
    /// *ranks* agree with [`SwarmSummary::latency_percentile_us`]; the
    /// histogram resolves values to bucket upper bounds.
    pub fn latency_histogram(&self) -> msb_telemetry::LogHistogram {
        let mut h = msb_telemetry::LogHistogram::new();
        for &v in &self.match_latencies_us {
            h.record(v);
        }
        h
    }
}

/// Bridges one node's [`AppEvent`] log into a telemetry
/// [`msb_telemetry::Recorder`]: every protocol phase becomes a labelled
/// counter (`app.phase.*`, label = node id), and match confirmations —
/// the one event the log timestamps — additionally become
/// [`msb_telemetry::TraceTag::ProtocolPhase`] trace instants
/// (`a` = responder id). The log is already a pure function of the run,
/// so the bridged telemetry is deterministic by construction; run it
/// post-hoc over a finished simulation, or per window between
/// `run_until` calls.
pub fn trace_protocol_phases(node: u32, events: &[AppEvent], rec: &mut msb_telemetry::Recorder) {
    for event in events {
        let phase = match event {
            AppEvent::RequestSent { .. } => "app.phase.request_sent",
            AppEvent::Relayed { .. } => "app.phase.relayed",
            AppEvent::Reflooded { .. } => "app.phase.reflooded",
            AppEvent::BecameCandidate { .. } => "app.phase.candidate",
            AppEvent::ReplySent { .. } => "app.phase.reply_sent",
            AppEvent::MatchConfirmed { .. } => "app.phase.match_confirmed",
            AppEvent::ReplyRejected { .. } => "app.phase.reply_rejected",
            AppEvent::RateLimited { .. } => "app.phase.rate_limited",
            AppEvent::DecodeFailed { .. } => "app.phase.decode_failed",
        };
        rec.incr(phase, node, 1);
        if let AppEvent::MatchConfirmed { responder, at_us } = event {
            rec.event(
                msb_telemetry::TraceTag::ProtocolPhase,
                node,
                *at_us,
                u64::from(*responder),
                0,
            );
        }
    }
}

impl NodeApp for FriendingApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(request) = self.pending_request.take() {
            let my_id = ctx.node_id().index() as u32;
            let (initiator, package) =
                Initiator::create(&request, my_id, &self.config, ctx.now_us(), ctx.rng());
            let request_id = initiator.request_id();
            self.initiator = Some(initiator);
            self.arm_reflood(ctx, &package, request_id);
            let payload = AppMsg::Request(package).into_payload(ctx.delivery());
            ctx.broadcast(payload);
            self.events.push(AppEvent::RequestSent { request_id });
        }
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, _from: NodeId, payload: &Payload) {
        if let Some(msg) = payload.downcast_ref::<AppMsg>() {
            // Zero-copy: handle straight out of the shared message.
            match msg {
                AppMsg::Request(pkg) => self.handle_request(ctx, pkg),
                AppMsg::Reply(reply) => self.handle_reply(ctx, reply),
            }
            return;
        }
        let Some(bytes) = payload.as_bytes() else {
            return; // a foreign in-memory payload is not our traffic
        };
        match peek_kind(bytes) {
            Ok(FrameKind::Request) => {
                if let Some(pkg) = self.parse_request(payload) {
                    let pkg = pkg.into_owned();
                    self.handle_request(ctx, &pkg);
                }
            }
            Ok(FrameKind::Reply) => match Reply::decode(bytes) {
                Ok(reply) => self.handle_reply(ctx, &reply),
                Err(error) => self.events.push(AppEvent::DecodeFailed { error }),
            },
            Ok(_) => {} // a valid frame of an unrelated kind: ignore
            Err(error) => self.events.push(AppEvent::DecodeFailed { error }),
        }
    }

    /// Batch hook ([`msb_net::sim::SimConfig::batch_delivery`]): runs of
    /// same-instant requests go through the batched responder path in one
    /// [`Responder::handle_batch`] call; everything else falls back to
    /// per-message handling in arrival order.
    fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, batch: &[(NodeId, Payload)]) {
        let mut i = 0;
        while i < batch.len() {
            let (from, payload) = &batch[i];
            if payload_kind(payload) == Some(FrameKind::Request) {
                let mut j = i + 1;
                while j < batch.len() && payload_kind(&batch[j].1) == Some(FrameKind::Request) {
                    j += 1;
                }
                if j - i == 1 {
                    if let Some(pkg) = self.parse_request(payload) {
                        let pkg = pkg.into_owned();
                        self.handle_request(ctx, &pkg);
                    }
                } else {
                    self.handle_request_run(ctx, &batch[i..j]);
                }
                i = j;
            } else {
                self.on_message(ctx, *from, payload);
                i += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if let Some((initiator_node, reply)) = self.pending_replies.remove(&token) {
            let request_id = reply.request_id;
            let acks = reply.acks.len();
            let payload = AppMsg::Reply(reply).into_payload(ctx.delivery());
            ctx.unicast(NodeId::new(initiator_node), payload);
            self.events.push(AppEvent::ReplySent { request_id, acks });
            return;
        }
        // Not a reply token: a recurring re-flood firing (tokens are
        // drawn from one counter, so the namespaces never collide).
        self.fire_reflood(ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolKind;
    use msb_net::sim::{SimConfig, Simulator};
    use msb_profile::Attribute;

    fn attr(c: &str, v: &str) -> Attribute {
        Attribute::new(c, v)
    }

    fn request() -> RequestProfile {
        RequestProfile::new(
            vec![attr("team", "search")],
            vec![attr("i", "jazz"), attr("i", "go"), attr("i", "tea")],
            2,
        )
        .unwrap()
    }

    fn matching_profile() -> Profile {
        Profile::from_attributes(vec![attr("team", "search"), attr("i", "jazz"), attr("i", "go")])
    }

    fn noise_profile(i: usize) -> Profile {
        Profile::from_attributes(vec![
            attr("hobby", &format!("n{i}")),
            attr("city", &format!("c{i}")),
        ])
    }

    fn config(kind: ProtocolKind) -> ProtocolConfig {
        ProtocolConfig::new(kind, 11)
    }

    /// Line topology: initiator at one end, target at the other, relays
    /// between — forces multi-hop flooding and reverse-path replies.
    fn line_sim(kind: ProtocolKind, hops: usize) -> Simulator<FriendingApp> {
        line_sim_with(kind, hops, SimConfig::default())
    }

    fn line_sim_with(
        kind: ProtocolKind,
        hops: usize,
        sim_config: SimConfig,
    ) -> Simulator<FriendingApp> {
        let mut sim = Simulator::new(sim_config, 99);
        sim.add_node(
            (0.0, 0.0),
            FriendingApp::initiator(noise_profile(100), request(), config(kind)),
        );
        for i in 1..hops {
            sim.add_node(
                (i as f64 * 40.0, 0.0),
                FriendingApp::participant(noise_profile(i), config(kind)),
            );
        }
        sim.add_node(
            (hops as f64 * 40.0, 0.0),
            FriendingApp::participant(matching_profile(), config(kind)),
        );
        sim
    }

    #[test]
    fn multihop_friending_p1() {
        let mut sim = line_sim(ProtocolKind::P1, 4);
        sim.start();
        sim.run();
        let initiator = sim.app(msb_net::sim::NodeId::new(0));
        assert_eq!(initiator.matches().len(), 1, "events: {:?}", initiator.events);
        assert_eq!(initiator.matches()[0].responder, 4);
        // Intermediate relays forwarded but learned nothing.
        for i in 1..4 {
            let relay = sim.app(msb_net::sim::NodeId::new(i));
            assert!(relay.events.iter().any(|e| matches!(e, AppEvent::Relayed { .. })));
            assert!(relay.sessions().is_empty(), "relay {i} must not be a candidate");
        }
    }

    #[test]
    fn multihop_friending_p2_and_p3() {
        for kind in [ProtocolKind::P2, ProtocolKind::P3] {
            let mut sim = line_sim(kind, 3);
            sim.start();
            sim.run();
            let initiator = sim.app(msb_net::sim::NodeId::new(0));
            assert_eq!(initiator.matches().len(), 1, "{kind:?}");
        }
    }

    #[test]
    fn multihop_friending_over_encoded_frames() {
        // The full flow again, but with every message encoded into its
        // canonical frame and decoded at each hop.
        let sim_config =
            SimConfig { delivery: DeliveryMode::EncodedFrames, ..SimConfig::default() };
        let mut sim = line_sim_with(ProtocolKind::P1, 4, sim_config);
        sim.start();
        sim.run();
        let initiator = sim.app(msb_net::sim::NodeId::new(0));
        assert_eq!(initiator.matches().len(), 1, "events: {:?}", initiator.events);
        assert_eq!(initiator.matches()[0].responder, 4);
        for i in 0..5 {
            let app = sim.app(msb_net::sim::NodeId::new(i));
            assert!(
                !app.events.iter().any(|e| matches!(e, AppEvent::DecodeFailed { .. })),
                "node {i} failed to decode a canonical frame: {:?}",
                app.events
            );
        }
    }

    #[test]
    fn no_matching_user_no_matches() {
        let mut sim = Simulator::new(SimConfig::default(), 5);
        sim.add_node(
            (0.0, 0.0),
            FriendingApp::initiator(noise_profile(0), request(), config(ProtocolKind::P1)),
        );
        for i in 1..6 {
            sim.add_node(
                (i as f64 * 30.0, 0.0),
                FriendingApp::participant(noise_profile(i), config(ProtocolKind::P1)),
            );
        }
        sim.start();
        sim.run();
        assert!(sim.app(msb_net::sim::NodeId::new(0)).matches().is_empty());
    }

    #[test]
    fn ttl_bounds_flood() {
        // TTL 1: the package reaches direct neighbours, is relayed once,
        // and relays' neighbours absorb without forwarding.
        let mut cfg = config(ProtocolKind::P1);
        cfg.ttl = 1;
        let mut sim = Simulator::new(SimConfig::default(), 5);
        sim.add_node((0.0, 0.0), FriendingApp::initiator(noise_profile(0), request(), cfg.clone()));
        for i in 1..5 {
            sim.add_node(
                (i as f64 * 40.0, 0.0),
                FriendingApp::participant(noise_profile(i), cfg.clone()),
            );
        }
        sim.start();
        sim.run();
        // Node 3 is 3 hops out; with TTL 1 the flood dies at node 2.
        let n3 = sim.app(msb_net::sim::NodeId::new(3));
        assert!(n3.events.is_empty(), "flood must not reach 3 hops: {:?}", n3.events);
    }

    #[test]
    fn matching_user_beyond_expiry_cannot_answer() {
        let mut cfg = config(ProtocolKind::P1);
        cfg.validity_us = 1; // expires immediately
        let mut sim = Simulator::new(SimConfig::default(), 5);
        sim.add_node((0.0, 0.0), FriendingApp::initiator(noise_profile(0), request(), cfg.clone()));
        sim.add_node((40.0, 0.0), FriendingApp::participant(matching_profile(), cfg));
        sim.start();
        sim.run();
        assert!(sim.app(msb_net::sim::NodeId::new(0)).matches().is_empty());
    }

    #[test]
    fn rate_guard_drops_flooding_initiator() {
        // An initiator hammering requests gets rate limited by peers.
        let cfg = config(ProtocolKind::P1);
        let mut sim = Simulator::new(SimConfig::default(), 5);
        sim.add_node((0.0, 0.0), FriendingApp::participant(noise_profile(0), cfg.clone()));
        let victim = msb_net::sim::NodeId::new(0);
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        for _ in 0..10 {
            let (_, pkg) = Initiator::create(&request(), 42, &cfg, 0, &mut r);
            sim.inject(victim, msb_net::sim::NodeId::new(0), pkg.encode());
        }
        sim.run();
        let app = sim.app(victim);
        let limited =
            app.events.iter().filter(|e| matches!(e, AppEvent::RateLimited { from: 42 })).count();
        assert_eq!(limited, 7, "3 allowed, 7 rate-limited: {:?}", app.events);
    }

    #[test]
    fn swarm_summary_aggregates_events_and_percentiles() {
        let mut sim = line_sim(ProtocolKind::P1, 4);
        sim.start();
        sim.run();
        let summary = SwarmSummary::collect(&sim);
        assert_eq!(summary.nodes, 5);
        assert_eq!(summary.requests_sent, 1);
        assert_eq!(summary.matches, 1);
        assert_eq!(summary.candidates, 1);
        assert!(summary.relays >= 3, "relays forwarded the flood: {summary:?}");
        assert_eq!(summary.match_latencies_us.len(), 1);
        assert_eq!(summary.latency_percentile_us(0.5), summary.latency_percentile_us(1.0));
        assert_eq!(SwarmSummary::default().latency_percentile_us(0.99), None);
    }

    #[test]
    fn reflood_reaches_a_node_that_moves_into_range() {
        // The matching user starts out of range of everyone; without
        // re-flooding the initial broadcast misses it forever. Mid-run
        // it moves next to the initiator, and the next periodic
        // re-broadcast completes the match.
        let policy = RefloodPolicy::every(2_000_000);
        let mut sim = Simulator::new(SimConfig::default(), 42);
        let initiator = sim.add_node(
            (0.0, 0.0),
            FriendingApp::initiator(noise_profile(0), request(), config(ProtocolKind::P1))
                .with_reflood(policy),
        );
        let wanderer = sim.add_node(
            (500.0, 0.0), // far outside the 50 m radio range
            FriendingApp::participant(matching_profile(), config(ProtocolKind::P1)),
        );
        sim.start();
        sim.run_until(1_000_000);
        assert!(sim.app(initiator).matches().is_empty(), "nothing reachable yet");
        sim.set_position(wanderer, (30.0, 0.0)); // mobility brings it close
        sim.run();
        assert_eq!(sim.app(initiator).matches().len(), 1, "re-flood found the wanderer");
        let refloods = sim
            .app(initiator)
            .events
            .iter()
            .filter(|e| matches!(e, AppEvent::Reflooded { .. }))
            .count();
        assert!(refloods >= 1, "events: {:?}", sim.app(initiator).events);
    }

    #[test]
    fn reflood_stops_at_expiry_and_run_terminates() {
        let mut cfg = config(ProtocolKind::P1);
        cfg.validity_us = 10_000_000;
        let policy = RefloodPolicy::every(3_000_000);
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let id = sim.add_node(
            (0.0, 0.0),
            FriendingApp::initiator(noise_profile(0), request(), cfg).with_reflood(policy),
        );
        sim.add_node(
            (40.0, 0.0),
            FriendingApp::participant(noise_profile(1), config(ProtocolKind::P1)),
        );
        sim.start();
        sim.run(); // must drain: the recurring timer is expiry-bounded
        let refloods =
            sim.app(id).events.iter().filter(|e| matches!(e, AppEvent::Reflooded { .. })).count();
        // Firings at 3 s, 6 s, 9 s — never at or past the 10 s expiry.
        assert_eq!(refloods, 3, "events: {:?}", sim.app(id).events);
        assert!(sim.now_us() < 10_000_000 + 1_000_000);
    }

    #[test]
    fn reflood_fanout_cap_limits_recipients() {
        // 6 in-range participants; the cap says each re-broadcast may
        // reach only 2. The initial (uncapped) flood still reaches all.
        let policy = RefloodPolicy::every(2_000_000).with_fanout_cap(2);
        let mut cfg = config(ProtocolKind::P1);
        cfg.validity_us = 5_000_000;
        let mut sim = Simulator::new(SimConfig::default(), 9);
        sim.add_node(
            (0.0, 0.0),
            FriendingApp::initiator(noise_profile(0), request(), cfg.clone()).with_reflood(policy),
        );
        for i in 1..7 {
            sim.add_node(
                (i as f64 * 5.0, 0.0),
                FriendingApp::participant(noise_profile(i), cfg.clone()),
            );
        }
        sim.start();
        let before = sim.metrics().delivered;
        sim.run_until(1_000_000);
        let initial_flood = sim.metrics().delivered - before;
        sim.run();
        // Two re-flood firings (2 s, 4 s) × 2 recipients each; relays
        // have nothing new to carry (duplicates are not relayed), so
        // the delta over the initial flood is exactly the capped traffic.
        let refire_traffic = sim.metrics().delivered - before - initial_flood;
        assert_eq!(refire_traffic, 4, "metrics: {:?}", sim.metrics());
    }

    #[test]
    fn swarm_summary_counts_refloods() {
        let policy = RefloodPolicy::every(2_000_000);
        let mut cfg = config(ProtocolKind::P1);
        cfg.validity_us = 5_000_000;
        let mut sim = Simulator::new(SimConfig::default(), 11);
        sim.add_node(
            (0.0, 0.0),
            FriendingApp::initiator(noise_profile(0), request(), cfg.clone()).with_reflood(policy),
        );
        sim.add_node((40.0, 0.0), FriendingApp::participant(noise_profile(1), cfg));
        sim.start();
        sim.run();
        let summary = SwarmSummary::collect(&sim);
        assert_eq!(summary.refloods, 2, "firings at 2 s and 4 s: {summary:?}");
    }

    #[test]
    fn channel_works_over_confirmed_match() {
        let mut sim = line_sim(ProtocolKind::P1, 2);
        sim.start();
        sim.run();
        let m = sim.app(msb_net::sim::NodeId::new(0)).matches()[0];
        let mut ich =
            sim.app(msb_net::sim::NodeId::new(0)).initiator_state().unwrap().pair_channel(&m);
        let responder_app = sim.app(msb_net::sim::NodeId::new(2));
        let mut rch = responder_app.sessions()[0].channel();
        let frame = ich.seal(b"nice to meet you");
        assert_eq!(rch.open(&frame).unwrap(), b"nice to meet you");
    }

    #[test]
    fn corrupted_package_logged_not_crashed() {
        let cfg = config(ProtocolKind::P1);
        let mut sim = Simulator::new(SimConfig::default(), 5);
        let id = sim.add_node((0.0, 0.0), FriendingApp::participant(noise_profile(0), cfg));
        // A frame-shaped prefix with a corrupt body…
        let (_, pkg) = {
            use rand::SeedableRng;
            Initiator::create(
                &request(),
                9,
                &config(ProtocolKind::P1),
                0,
                &mut rand::rngs::StdRng::seed_from_u64(2),
            )
        };
        let mut bytes = pkg.encode();
        bytes.truncate(bytes.len() - 5);
        sim.inject(id, msb_net::sim::NodeId::new(0), bytes);
        // …and plain garbage.
        sim.inject(id, msb_net::sim::NodeId::new(0), vec![1u8, 2, 3]);
        sim.run();
        let failures = sim
            .app(id)
            .events
            .iter()
            .filter(|e| matches!(e, AppEvent::DecodeFailed { .. }))
            .count();
        assert_eq!(failures, 2, "events: {:?}", sim.app(id).events);
    }
}
