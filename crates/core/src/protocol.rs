//! Protocols 1, 2 and 3 (paper §III-E).
//!
//! All three share the same skeleton — seal a random `x` under the
//! request profile key, broadcast, collect acknowledgements carrying `y` —
//! and differ in what a candidate can verify and how much they reveal:
//!
//! * **Protocol 1** includes a public confirmation tag in the bottle, so
//!   a candidate *knows* when they matched (and learns the profile
//!   intersection). Vulnerable to dictionary profiling of the request
//!   when the attribute space is small.
//! * **Protocol 2** omits the confirmation: candidates cannot tell which
//!   of their candidate keys (if any) worked and must gamble an
//!   acknowledgement per candidate key. The initiator unmasks malicious
//!   repliers by response time and reply-set cardinality.
//! * **Protocol 3** additionally caps the entropy of the attribute set a
//!   responder is willing to gamble (`S(⋃ A_c) ≤ ϕ`), protecting
//!   candidates against a dictionary-wielding *initiator*.

use crate::channel::{GroupChannel, Role, SecureChannel};
use crate::package::{Reply, RequestPackage, KIND_P1, KIND_P2, KIND_P3};
use msb_crypto::aes::{Aes256, CipherBackend};
use msb_crypto::modes::Ctr;
use msb_profile::attribute::{Attribute, AttributeHash};
use msb_profile::entropy::{select_within_budget, EntropyModel};
use msb_profile::hint::HintConstruction;
use msb_profile::matching::parallel::enumerate_candidate_keys_with_stats_par;
use msb_profile::matching::{MatchConfig, MatchStats};
use msb_profile::profile::{Profile, ProfileKey, ProfileVector};
use msb_profile::request::{RequestProfile, RequestVector};
use rand::Rng;
use std::collections::HashMap;

pub use msb_profile::matching::parallel::Parallelism;

/// Public confirmation tag sealed into Protocol-1 bottles.
pub const CONFIRMATION: [u8; 16] = *b"MSB/CONFIRM/v1.0";
/// Public acknowledgement tag inside replies.
pub const ACK_TAG: [u8; 8] = *b"MSB/ACK1";

/// Which of the paper's three protocols to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Confirmation in the bottle; responder-verifiable.
    P1,
    /// No confirmation; initiator filters replies.
    P2,
    /// Protocol 2 plus ϕ-entropy candidate selection.
    P3,
}

impl ProtocolKind {
    pub(crate) fn wire(&self) -> u8 {
        match self {
            ProtocolKind::P1 => KIND_P1,
            ProtocolKind::P2 => KIND_P2,
            ProtocolKind::P3 => KIND_P3,
        }
    }

    pub(crate) fn from_wire(v: u8) -> Option<Self> {
        match v {
            KIND_P1 => Some(ProtocolKind::P1),
            KIND_P2 => Some(ProtocolKind::P2),
            KIND_P3 => Some(ProtocolKind::P3),
            _ => None,
        }
    }
}

/// Tunable parameters shared by both sides.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Protocol variant.
    pub kind: ProtocolKind,
    /// Remainder modulus (a small prime `> m_t`; the paper uses 11/23).
    pub p: u64,
    /// Flood TTL for the request package.
    pub ttl: u8,
    /// Request validity window in microseconds.
    pub validity_us: u64,
    /// Replies arriving later than this after sending are treated as
    /// malicious (Protocol 2/3 step 3).
    pub reply_window_us: u64,
    /// Replies with more acknowledgements than this are treated as
    /// malicious (Protocol 2/3 step 3).
    pub max_reply_set: usize,
    /// Candidate enumeration parameters.
    pub match_config: MatchConfig,
    /// Hint-matrix construction.
    pub hint_construction: HintConstruction,
    /// Worker threads for the responder's candidate enumeration and
    /// (Protocol 1) key trials. The parallel path is bit-identical to the
    /// sequential one; the default honours `MSB_THREADS`.
    pub parallelism: Parallelism,
    /// AES backend for sealing/opening bottles and acknowledgements.
    /// Both backends produce identical wire bytes; the S-box oracle is
    /// the default, `MSB_AES_BACKEND=table` opts into T-tables (see
    /// `docs/CRYPTO.md` for when that is safe).
    pub cipher_backend: CipherBackend,
}

impl ProtocolConfig {
    /// Sensible defaults: 8-hop TTL, 60 s validity, 10 s reply window,
    /// reply sets capped at 8.
    pub fn new(kind: ProtocolKind, p: u64) -> Self {
        ProtocolConfig {
            kind,
            p,
            ttl: 8,
            validity_us: 60_000_000,
            reply_window_us: 10_000_000,
            max_reply_set: 8,
            match_config: MatchConfig::default(),
            hint_construction: HintConstruction::Cauchy,
            parallelism: Parallelism::default(),
            cipher_backend: CipherBackend::from_env(),
        }
    }
}

/// Seals the protocol message under the profile key.
pub(crate) fn seal_message<R: Rng + ?Sized>(
    key: &ProfileKey,
    kind: ProtocolKind,
    x: &[u8; 32],
    backend: CipherBackend,
    rng: &mut R,
) -> ([u8; 16], Vec<u8>) {
    let mut nonce = [0u8; 16];
    rng.fill(&mut nonce);
    let mut pt = Vec::with_capacity(48);
    if kind == ProtocolKind::P1 {
        pt.extend_from_slice(&CONFIRMATION);
    }
    pt.extend_from_slice(x);
    let cipher = Aes256::with_backend(key.as_bytes(), backend);
    Ctr::new(&cipher, nonce).apply_keystream(&mut pt);
    (nonce, pt)
}

/// Attempts to open a sealed message with a pre-scheduled cipher: the
/// key-trial loops expand each candidate's key schedule exactly once and
/// reuse it across every trial block of the ciphertext.
///
/// Protocol 1: `Some(x)` only when the confirmation verifies. Protocols
/// 2/3: always yields the decrypted candidate `x` (there is nothing to
/// verify — by design).
pub(crate) fn open_message_with(
    cipher: &Aes256,
    kind: ProtocolKind,
    nonce: &[u8; 16],
    ciphertext: &[u8],
) -> Option<[u8; 32]> {
    let expected_len = match kind {
        ProtocolKind::P1 => 48,
        ProtocolKind::P2 | ProtocolKind::P3 => 32,
    };
    if ciphertext.len() != expected_len {
        return None;
    }
    let mut pt = ciphertext.to_vec();
    Ctr::new(cipher, *nonce).apply_keystream(&mut pt);
    match kind {
        ProtocolKind::P1 => {
            if !msb_crypto::ct::eq(&pt[..16], &CONFIRMATION) {
                return None;
            }
            Some(pt[16..48].try_into().expect("length checked"))
        }
        ProtocolKind::P2 | ProtocolKind::P3 => Some(pt[..32].try_into().expect("length checked")),
    }
}

/// [`open_message_with`] for a candidate [`ProfileKey`], expanding the
/// schedule on the given backend.
pub(crate) fn open_message(
    key: &ProfileKey,
    kind: ProtocolKind,
    nonce: &[u8; 16],
    ciphertext: &[u8],
    backend: CipherBackend,
) -> Option<[u8; 32]> {
    open_message_with(&Aes256::with_backend(key.as_bytes(), backend), kind, nonce, ciphertext)
}

/// Builds one acknowledgement `nonce ‖ E_{x}(ack ‖ y)`.
pub(crate) fn make_ack<R: Rng + ?Sized>(
    x: &[u8; 32],
    y: &[u8; 32],
    backend: CipherBackend,
    rng: &mut R,
) -> Vec<u8> {
    let mut nonce = [0u8; 16];
    rng.fill(&mut nonce);
    let mut pt = Vec::with_capacity(40);
    pt.extend_from_slice(&ACK_TAG);
    pt.extend_from_slice(y);
    let cipher = Aes256::with_backend(x, backend);
    Ctr::new(&cipher, nonce).apply_keystream(&mut pt);
    let mut out = Vec::with_capacity(56);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(&pt);
    out
}

/// Opens an acknowledgement with the true `x`; `Some(y)` iff the ack tag
/// verifies — i.e. the responder really decrypted the bottle.
pub(crate) fn open_ack(x: &[u8; 32], ack: &[u8], backend: CipherBackend) -> Option<[u8; 32]> {
    if ack.len() != 56 {
        return None;
    }
    let nonce: [u8; 16] = ack[..16].try_into().expect("length checked");
    let mut pt = ack[16..].to_vec();
    let cipher = Aes256::with_backend(x, backend);
    Ctr::new(&cipher, nonce).apply_keystream(&mut pt);
    if !msb_crypto::ct::eq(&pt[..8], &ACK_TAG) {
        return None;
    }
    Some(pt[8..40].try_into().expect("length checked"))
}

/// A validated match on the initiator's side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfirmedMatch {
    /// The responder's node id.
    pub responder: u32,
    /// The responder's channel secret.
    pub y: [u8; 32],
    /// When the reply arrived (simulation time).
    pub received_at_us: u64,
    /// Size of the responder's acknowledgement set (1 for honest P1).
    pub reply_set_size: usize,
}

/// Why replies were rejected (Protocol 2/3 step 3 bookkeeping).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectLog {
    /// Replies outside the response-time window.
    pub late: usize,
    /// Replies whose acknowledgement set exceeded the cardinality cap.
    pub oversized: usize,
    /// Replies answering a different request id.
    pub wrong_request: usize,
    /// Replies with no acknowledgement decrypting under `x`.
    pub no_valid_ack: usize,
    /// Additional replies from an already-confirmed responder.
    pub duplicate: usize,
}

/// The initiator's protocol state.
#[derive(Debug, Clone)]
pub struct Initiator {
    config: ProtocolConfig,
    x: [u8; 32],
    request_id: [u8; 32],
    sent_at_us: u64,
    matches: Vec<ConfirmedMatch>,
    rejects: RejectLog,
}

impl Initiator {
    /// Creates the protocol state and the broadcastable package for a
    /// request profile.
    ///
    /// # Panics
    ///
    /// Panics if `config.p <= m_t` (the paper requires `p > m_t`).
    pub fn create<R: Rng + ?Sized>(
        request: &RequestProfile,
        initiator_id: u32,
        config: &ProtocolConfig,
        now_us: u64,
        rng: &mut R,
    ) -> (Self, RequestPackage) {
        Self::create_from_vector(&request.vector(), initiator_id, config, now_us, rng)
    }

    /// Like [`Initiator::create`] but from a pre-hashed request vector
    /// (used by the vicinity search, whose attributes are lattice
    /// points).
    ///
    /// # Panics
    ///
    /// Panics if `config.p <= m_t`.
    pub fn create_from_vector<R: Rng + ?Sized>(
        vector: &RequestVector,
        initiator_id: u32,
        config: &ProtocolConfig,
        now_us: u64,
        rng: &mut R,
    ) -> (Self, RequestPackage) {
        assert!(config.p > vector.len() as u64, "remainder modulus must exceed the request size");
        let key = vector.profile_key();
        let mut x = [0u8; 32];
        rng.fill(&mut x);
        let (nonce, ciphertext) = seal_message(&key, config.kind, &x, config.cipher_backend, rng);
        let package = RequestPackage {
            kind: config.kind.wire(),
            initiator: initiator_id,
            ttl: config.ttl,
            expires_us: now_us + config.validity_us,
            remainder: vector.remainder_vector(config.p),
            hint: vector.hint_matrix(config.hint_construction, rng),
            nonce,
            ciphertext,
        };
        let state = Initiator {
            config: config.clone(),
            x,
            request_id: package.request_id(),
            sent_at_us: now_us,
            matches: Vec::new(),
            rejects: RejectLog::default(),
        };
        (state, package)
    }

    /// The secret `x` (needed to later address the group channel).
    pub fn x(&self) -> &[u8; 32] {
        &self.x
    }

    /// The request id replies must reference.
    pub fn request_id(&self) -> [u8; 32] {
        self.request_id
    }

    /// Confirmed matches so far.
    pub fn matches(&self) -> &[ConfirmedMatch] {
        &self.matches
    }

    /// Reply rejection counters.
    pub fn reject_log(&self) -> &RejectLog {
        &self.rejects
    }

    /// Validates a reply (Protocol 2/3 step 3: response-time window,
    /// reply-set cardinality, then acknowledgement decryption) and
    /// returns the newly confirmed matches.
    pub fn process_reply(&mut self, reply: &Reply, now_us: u64) -> Vec<ConfirmedMatch> {
        if reply.request_id != self.request_id {
            self.rejects.wrong_request += 1;
            return Vec::new();
        }
        if now_us.saturating_sub(self.sent_at_us) > self.config.reply_window_us {
            self.rejects.late += 1;
            return Vec::new();
        }
        if reply.acks.len() > self.config.max_reply_set {
            self.rejects.oversized += 1;
            return Vec::new();
        }
        if self.matches.iter().any(|m| m.responder == reply.responder) {
            self.rejects.duplicate += 1;
            return Vec::new();
        }
        for ack in &reply.acks {
            if let Some(y) = open_ack(&self.x, ack, self.config.cipher_backend) {
                let m = ConfirmedMatch {
                    responder: reply.responder,
                    y,
                    received_at_us: now_us,
                    reply_set_size: reply.acks.len(),
                };
                self.matches.push(m);
                return vec![m];
            }
        }
        self.rejects.no_valid_ack += 1;
        Vec::new()
    }

    /// Pairwise secure channel with a confirmed match (initiator role).
    pub fn pair_channel(&self, with: &ConfirmedMatch) -> SecureChannel {
        SecureChannel::pairwise(&self.x, &with.y, Role::Initiator)
    }

    /// Group channel keyed by `x` for the whole matched community
    /// (paper §III-F).
    pub fn group_channel(&self) -> GroupChannel {
        GroupChannel::from_x(&self.x)
    }
}

/// One gambled candidate on the responder's side: the decrypted `x`
/// candidate plus the fresh `y` that was acknowledged under it.
#[derive(Debug, Clone)]
pub struct SessionSecret {
    /// The candidate `x` recovered with one candidate profile key.
    pub x: [u8; 32],
    /// The responder's channel secret `y` (shared across the reply).
    pub y: [u8; 32],
    /// The recovered request vector behind this candidate — for a true
    /// match this *is* `H_t`, i.e. the profile intersection knowledge the
    /// paper's PPL2 grants a matching user.
    pub recovered: Vec<AttributeHash>,
}

impl SessionSecret {
    /// The responder-side channel for this candidate. For Protocols 2/3
    /// the responder tries each candidate's channel until one of the
    /// initiator's messages authenticates.
    pub fn channel(&self) -> SecureChannel {
        SecureChannel::pairwise(&self.x, &self.y, Role::Responder)
    }

    /// The group channel this candidate would belong to.
    pub fn group_channel(&self) -> GroupChannel {
        GroupChannel::from_x(&self.x)
    }
}

/// Outcome of a responder processing one request package.
#[derive(Debug, Clone)]
pub enum ResponderOutcome {
    /// The request had expired; dropped without processing.
    Expired,
    /// Failed the remainder fast check (or yielded no candidate keys):
    /// forward-only, learn nothing — the paper's non-candidate path.
    NotCandidate,
    /// Protocol 1 only: candidate keys existed but none opened the bottle
    /// (remainder collisions). Indistinguishable from `NotCandidate` to
    /// everyone else; kept separate for instrumentation.
    NoVerifiedMatch,
    /// A reply is warranted.
    Reply {
        /// The acknowledgement set to send back.
        reply: Reply,
        /// The candidate session secrets (one per acknowledgement).
        sessions: Vec<SessionSecret>,
        /// Whether the responder *verified* the match (Protocol 1 only).
        verified: bool,
        /// Enumeration statistics (drives the evaluation figures).
        stats: MatchStats,
    },
}

/// The responder (relay/candidate/matching user) logic.
#[derive(Debug, Clone)]
pub struct Responder {
    id: u32,
    vector: ProfileVector,
    attrs_by_hash: HashMap<AttributeHash, Attribute>,
    config: ProtocolConfig,
    entropy: Option<(EntropyModel, f64)>,
}

impl Responder {
    /// Creates a responder for a user profile.
    pub fn new(id: u32, profile: Profile, config: &ProtocolConfig) -> Self {
        let attrs_by_hash = profile.iter().map(|a| (a.hash(), a.clone())).collect();
        Responder {
            id,
            vector: profile.vector().clone(),
            attrs_by_hash,
            config: config.clone(),
            entropy: None,
        }
    }

    /// Creates a responder from a raw hash vector (vicinity search:
    /// lattice-point "attributes" have no textual form).
    pub fn from_vector(id: u32, vector: ProfileVector, config: &ProtocolConfig) -> Self {
        Responder {
            id,
            vector,
            attrs_by_hash: HashMap::new(),
            config: config.clone(),
            entropy: None,
        }
    }

    /// Attaches the ϕ-entropy budget used by Protocol 3. Without one,
    /// Protocol 3 behaves like Protocol 2 (infinite budget).
    pub fn with_entropy_budget(mut self, model: EntropyModel, phi: f64) -> Self {
        self.entropy = Some((model, phi));
        self
    }

    /// The responder's node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Processes a request package.
    pub fn handle<R: Rng + ?Sized>(
        &self,
        package: &RequestPackage,
        now_us: u64,
        rng: &mut R,
    ) -> ResponderOutcome {
        if package.expires_us <= now_us {
            return ResponderOutcome::Expired;
        }
        let Some(kind) = ProtocolKind::from_wire(package.kind) else {
            return ResponderOutcome::NotCandidate;
        };
        // Fast check: a few modulo comparisons exclude most users.
        if !package.remainder.fast_check(&self.vector) {
            return ResponderOutcome::NotCandidate;
        }
        let (keys, stats) = enumerate_candidate_keys_with_stats_par(
            &self.vector,
            &package.remainder,
            package.hint.as_ref(),
            &self.config.match_config,
            self.config.parallelism,
        );
        if keys.is_empty() {
            return ResponderOutcome::NotCandidate;
        }

        let mut y = [0u8; 32];
        rng.fill(&mut y);

        match kind {
            ProtocolKind::P1 => {
                // Try each candidate key against the bottle; across worker
                // threads for large key sets (dictionary-size responders),
                // always keeping the sequential result: the first
                // verifying key in canonical key order.
                let threads = self.config.parallelism.threads();
                let backend = self.config.cipher_backend;
                let hit: Option<(usize, [u8; 32])> = if threads == 1 || keys.len() < 2 * threads {
                    keys.iter().enumerate().find_map(|(i, key)| {
                        // One schedule expansion per candidate, reused
                        // across all trial blocks of the bottle.
                        let cipher = Aes256::with_backend(key.key.as_bytes(), backend);
                        open_message_with(&cipher, kind, &package.nonce, &package.ciphertext)
                            .map(|x| (i, x))
                    })
                } else {
                    // One thread scope over the whole key range. Workers
                    // scan round-robin in increasing index order and
                    // publish the smallest verifying index found; peers
                    // stop once their next index can no longer beat it.
                    // The global minimum hit index is the sequential
                    // loop's early exit, so the result is deterministic
                    // — first verifying key in canonical order — while a
                    // no-match dictionary responder pays exactly one
                    // spawn per worker.
                    use std::sync::atomic::{AtomicUsize, Ordering};
                    let best = AtomicUsize::new(usize::MAX);
                    let keys_ref = &keys;
                    let best_ref = &best;
                    std::thread::scope(|s| {
                        let handles: Vec<_> = (0..threads)
                            .map(|w| {
                                s.spawn(move || {
                                    let mut i = w;
                                    while i < keys_ref.len() && i < best_ref.load(Ordering::Relaxed)
                                    {
                                        let cipher = Aes256::with_backend(
                                            keys_ref[i].key.as_bytes(),
                                            backend,
                                        );
                                        if let Some(x) = open_message_with(
                                            &cipher,
                                            kind,
                                            &package.nonce,
                                            &package.ciphertext,
                                        ) {
                                            best_ref.fetch_min(i, Ordering::Relaxed);
                                            return Some((i, x));
                                        }
                                        i += threads;
                                    }
                                    None
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .filter_map(|h| h.join().expect("P1 trial worker panicked"))
                            .min_by_key(|&(i, _)| i)
                    })
                };
                if let Some((i, x)) = hit {
                    let ack = make_ack(&x, &y, backend, rng);
                    let reply = Reply {
                        request_id: package.request_id(),
                        responder: self.id,
                        acks: vec![ack],
                    };
                    let sessions =
                        vec![SessionSecret { x, y, recovered: keys[i].recovered.clone() }];
                    return ResponderOutcome::Reply { reply, sessions, verified: true, stats };
                }
                ResponderOutcome::NoVerifiedMatch
            }
            ProtocolKind::P2 | ProtocolKind::P3 => {
                // Protocol 3: keep only candidates within the entropy
                // budget.
                let selected: Vec<&msb_profile::matching::CandidateKey> =
                    if kind == ProtocolKind::P3 {
                        if let Some((model, phi)) = &self.entropy {
                            let sets: Vec<Vec<Attribute>> =
                                keys.iter().map(|k| self.gambled_attributes(k)).collect();
                            let chosen = select_within_budget(model, &sets, *phi);
                            chosen.into_iter().map(|i| &keys[i]).collect()
                        } else {
                            keys.iter().collect()
                        }
                    } else {
                        keys.iter().collect()
                    };
                if selected.is_empty() {
                    return ResponderOutcome::NotCandidate;
                }
                let mut acks = Vec::with_capacity(selected.len());
                let mut sessions = Vec::with_capacity(selected.len());
                let backend = self.config.cipher_backend;
                for key in selected {
                    let cipher = Aes256::with_backend(key.key.as_bytes(), backend);
                    let x = open_message_with(&cipher, kind, &package.nonce, &package.ciphertext)
                        .expect("P2/P3 decryption is unconditional");
                    acks.push(make_ack(&x, &y, backend, rng));
                    sessions.push(SessionSecret { x, y, recovered: key.recovered.clone() });
                }
                let reply = Reply { request_id: package.request_id(), responder: self.id, acks };
                ResponderOutcome::Reply { reply, sessions, verified: false, stats }
            }
        }
    }

    /// Processes a chunk of request packages in arrival order.
    ///
    /// Semantically identical to calling [`Responder::handle`] once per
    /// package with the same `rng` — randomness is drawn in package
    /// order — so batched and one-at-a-time pipelines produce the same
    /// wire bytes. Batching amortises the responder's fixed per-request
    /// setup in the application layer (one responder serves the whole
    /// chunk) and is the unit the parallel enumeration path works on.
    ///
    /// Generic over anything borrowable as a package so callers can
    /// hand over owned packages, references, or the `Cow`s the
    /// application layer's mixed borrowed/decoded batches produce.
    pub fn handle_batch<P, R>(
        &self,
        packages: &[P],
        now_us: u64,
        rng: &mut R,
    ) -> Vec<ResponderOutcome>
    where
        P: std::borrow::Borrow<RequestPackage>,
        R: Rng + ?Sized,
    {
        packages.iter().map(|package| self.handle(package.borrow(), now_us, rng)).collect()
    }

    /// The attributes a candidate key would gamble: the user's own
    /// attributes used as known values in the assignment.
    fn gambled_attributes(&self, key: &msb_profile::matching::CandidateKey) -> Vec<Attribute> {
        key.used_indices
            .iter()
            .filter_map(|&i| {
                let h = self.vector.hashes().get(i)?;
                self.attrs_by_hash.get(h).cloned()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(c: &str, v: &str) -> Attribute {
        Attribute::new(c, v)
    }

    fn request() -> RequestProfile {
        RequestProfile::new(
            vec![attr("profession", "engineer")],
            vec![attr("i", "jazz"), attr("i", "go"), attr("i", "tea")],
            2,
        )
        .unwrap()
    }

    fn matching_profile() -> Profile {
        Profile::from_attributes(vec![
            attr("profession", "engineer"),
            attr("i", "jazz"),
            attr("i", "go"),
            attr("hometown", "unrelated"),
        ])
    }

    fn unmatching_profile() -> Profile {
        Profile::from_attributes(vec![attr("hobby", "x"), attr("hobby", "y")])
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    fn run(kind: ProtocolKind, profile: Profile) -> (Initiator, ResponderOutcome) {
        let mut r = rng();
        let config = ProtocolConfig::new(kind, 11);
        let (initiator, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let responder = Responder::new(1, profile, &config);
        let outcome = responder.handle(&pkg, 1_000, &mut r);
        (initiator, outcome)
    }

    #[test]
    fn p1_matching_roundtrip() {
        let (mut initiator, outcome) = run(ProtocolKind::P1, matching_profile());
        let ResponderOutcome::Reply { reply, sessions, verified, .. } = outcome else {
            panic!("expected reply, got {outcome:?}");
        };
        assert!(verified, "P1 responder verifies the match");
        assert_eq!(reply.acks.len(), 1);
        let confirmed = initiator.process_reply(&reply, 2_000);
        assert_eq!(confirmed.len(), 1);
        assert_eq!(confirmed[0].responder, 1);
        assert_eq!(confirmed[0].y, sessions[0].y);
        // Shared secret agreement.
        assert_eq!(initiator.x(), &sessions[0].x);
    }

    #[test]
    fn p2_matching_roundtrip() {
        let (mut initiator, outcome) = run(ProtocolKind::P2, matching_profile());
        let ResponderOutcome::Reply { reply, verified, .. } = outcome else {
            panic!("expected reply");
        };
        assert!(!verified, "P2 responder cannot verify");
        let confirmed = initiator.process_reply(&reply, 2_000);
        assert_eq!(confirmed.len(), 1, "one ack must decrypt under x");
    }

    #[test]
    fn p3_with_budget_roundtrip() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P3, 11);
        let (mut initiator, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        // Generous budget: everything selected.
        let model = EntropyModel::from_counts([
            ("profession", "engineer", 10u64),
            ("profession", "doctor", 10),
            ("i", "jazz", 5),
            ("i", "go", 5),
            ("i", "tea", 5),
            ("hometown", "unrelated", 1),
        ]);
        let responder =
            Responder::new(1, matching_profile(), &config).with_entropy_budget(model, 100.0);
        let outcome = responder.handle(&pkg, 1_000, &mut r);
        let ResponderOutcome::Reply { reply, .. } = outcome else {
            panic!("expected reply");
        };
        assert_eq!(initiator.process_reply(&reply, 2_000).len(), 1);
    }

    #[test]
    fn p3_zero_budget_blocks_reply() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P3, 11);
        let (_, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let model = EntropyModel::from_counts([
            ("profession", "engineer", 1u64),
            ("profession", "doctor", 1),
        ]);
        let responder =
            Responder::new(1, matching_profile(), &config).with_entropy_budget(model, 0.0);
        let outcome = responder.handle(&pkg, 1_000, &mut r);
        assert!(
            matches!(outcome, ResponderOutcome::NotCandidate),
            "zero budget must suppress the gamble"
        );
    }

    #[test]
    fn unmatching_user_is_not_candidate_or_fails() {
        let (_, outcome) = run(ProtocolKind::P1, unmatching_profile());
        assert!(
            matches!(outcome, ResponderOutcome::NotCandidate | ResponderOutcome::NoVerifiedMatch),
            "{outcome:?}"
        );
    }

    #[test]
    fn below_threshold_candidate_cannot_forge_valid_ack() {
        // A user owning only 1 of 3 optional attributes may, via
        // collisions, still produce candidate keys — but none decrypts to
        // the initiator's x, so P2 replies (if any) are rejected.
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P2, 11);
        let (mut initiator, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let weak =
            Profile::from_attributes(vec![attr("profession", "engineer"), attr("i", "jazz")]);
        let responder = Responder::new(2, weak, &config);
        match responder.handle(&pkg, 1_000, &mut r) {
            ResponderOutcome::NotCandidate | ResponderOutcome::NoVerifiedMatch => {}
            ResponderOutcome::Reply { reply, .. } => {
                assert!(initiator.process_reply(&reply, 2_000).is_empty());
                assert_eq!(initiator.reject_log().no_valid_ack, 1);
            }
            ResponderOutcome::Expired => panic!("not expired"),
        }
    }

    #[test]
    fn expired_request_dropped() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P1, 11);
        let (_, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let responder = Responder::new(1, matching_profile(), &config);
        let outcome = responder.handle(&pkg, pkg.expires_us, &mut r);
        assert!(matches!(outcome, ResponderOutcome::Expired));
    }

    #[test]
    fn late_reply_rejected() {
        let (mut initiator, outcome) = run(ProtocolKind::P2, matching_profile());
        let ResponderOutcome::Reply { reply, .. } = outcome else {
            panic!("expected reply");
        };
        let confirmed = initiator.process_reply(&reply, 20_000_000); // past 10s window
        assert!(confirmed.is_empty());
        assert_eq!(initiator.reject_log().late, 1);
    }

    #[test]
    fn oversized_reply_set_rejected() {
        let (mut initiator, outcome) = run(ProtocolKind::P2, matching_profile());
        let ResponderOutcome::Reply { mut reply, .. } = outcome else {
            panic!("expected reply");
        };
        // A dictionary attacker pads the ack set with guesses.
        while reply.acks.len() <= 8 {
            reply.acks.push(vec![0u8; 56]);
        }
        assert!(initiator.process_reply(&reply, 2_000).is_empty());
        assert_eq!(initiator.reject_log().oversized, 1);
    }

    #[test]
    fn wrong_request_id_rejected() {
        let (mut initiator, outcome) = run(ProtocolKind::P1, matching_profile());
        let ResponderOutcome::Reply { mut reply, .. } = outcome else {
            panic!("expected reply");
        };
        reply.request_id[0] ^= 1;
        assert!(initiator.process_reply(&reply, 2_000).is_empty());
        assert_eq!(initiator.reject_log().wrong_request, 1);
    }

    #[test]
    fn duplicate_responder_rejected() {
        let (mut initiator, outcome) = run(ProtocolKind::P1, matching_profile());
        let ResponderOutcome::Reply { reply, .. } = outcome else {
            panic!("expected reply");
        };
        assert_eq!(initiator.process_reply(&reply, 2_000).len(), 1);
        assert!(initiator.process_reply(&reply, 2_500).is_empty());
        assert_eq!(initiator.reject_log().duplicate, 1);
    }

    #[test]
    fn forged_ack_without_x_rejected() {
        // A cheater who never decrypted the bottle cannot produce a valid
        // ack (verifiability, §IV-A3).
        let (mut initiator, _) = run(ProtocolKind::P2, matching_profile());
        // A different seed than the protocol run: the forger cannot know x.
        let mut r = StdRng::seed_from_u64(0xbad);
        let mut fake_x = [0u8; 32];
        r.fill(&mut fake_x);
        let mut fake_y = [0u8; 32];
        r.fill(&mut fake_y);
        let reply = Reply {
            request_id: initiator.request_id(),
            responder: 9,
            acks: vec![make_ack(&fake_x, &fake_y, CipherBackend::default(), &mut r)],
        };
        assert!(initiator.process_reply(&reply, 2_000).is_empty());
        assert_eq!(initiator.reject_log().no_valid_ack, 1);
    }

    #[test]
    fn channel_established_end_to_end() {
        let (mut initiator, outcome) = run(ProtocolKind::P1, matching_profile());
        let ResponderOutcome::Reply { reply, sessions, .. } = outcome else {
            panic!("expected reply");
        };
        let confirmed = initiator.process_reply(&reply, 2_000)[0];
        let mut ich = initiator.pair_channel(&confirmed);
        let mut rch = sessions[0].channel();
        let ct = ich.seal(b"hello, sealed world");
        assert_eq!(rch.open(&ct).unwrap(), b"hello, sealed world");
        let ct2 = rch.seal(b"hello back");
        assert_eq!(ich.open(&ct2).unwrap(), b"hello back");
    }

    #[test]
    fn perfect_match_request_works() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P1, 11);
        let req = RequestProfile::exact(vec![attr("a", "1"), attr("b", "2")]).unwrap();
        let (mut initiator, pkg) = Initiator::create(&req, 0, &config, 0, &mut r);
        assert!(pkg.hint.is_none());
        let exact_owner = Profile::from_attributes(vec![attr("a", "1"), attr("b", "2")]);
        let responder = Responder::new(3, exact_owner, &config);
        let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut r) else {
            panic!("perfect owner must match");
        };
        assert_eq!(initiator.process_reply(&reply, 200).len(), 1);
    }

    #[test]
    fn superset_profile_still_matches_exact_request() {
        // The paper's "flexible search": a user owning MORE than the
        // requested attributes still matches an exact request for a
        // subset of their profile.
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P1, 11);
        let req = RequestProfile::exact(vec![attr("a", "1"), attr("b", "2")]).unwrap();
        let (mut initiator, pkg) = Initiator::create(&req, 0, &config, 0, &mut r);
        let superset = Profile::from_attributes(vec![
            attr("a", "1"),
            attr("b", "2"),
            attr("c", "3"),
            attr("d", "4"),
        ]);
        let responder = Responder::new(4, superset, &config);
        let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut r) else {
            panic!("superset owner must match");
        };
        assert_eq!(initiator.process_reply(&reply, 200).len(), 1);
    }
}
