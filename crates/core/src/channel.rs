//! Secure channels from the exchanged secrets (paper §III-F).
//!
//! After a successful match, the initiator holds `x` and the matching
//! user holds `y`; both know the other's secret. The paper keys the
//! pairwise channel with "x + y" — here realised as HKDF over `x ‖ y`
//! with direction-separated encryption and MAC keys — and the group
//! channel with `x` alone. Construction is encrypt-then-MAC
//! (AES-256-CTR + HMAC-SHA256) with strictly increasing sequence numbers
//! for replay protection. Because key material only ever travelled inside
//! the sealed bottle, a man in the middle never sees it — the MITM
//! resistance claim of §IV-A2.

use msb_crypto::aes::Aes256;
use msb_crypto::hmac::HmacSha256;
use msb_crypto::kdf;
use msb_crypto::modes::Ctr;
use msb_crypto::CryptoError;
use rand::Rng;

const SALT: &[u8] = b"msb-channel-v1";

/// Which side of the pairwise channel this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The request initiator (holds `x`, learned `y`).
    Initiator,
    /// The matching responder (holds `y`, learned `x`).
    Responder,
}

/// An authenticated pairwise channel.
///
/// Frames are `seq(8) ‖ ciphertext ‖ tag(32)`. Each direction has its own
/// encryption and MAC keys; sequence numbers must arrive strictly in
/// order (a replayed or reordered frame fails).
#[derive(Debug)]
pub struct SecureChannel {
    send_enc: Aes256,
    send_mac: [u8; 32],
    recv_enc: Aes256,
    recv_mac: [u8; 32],
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    /// Derives the channel from the exchanged secrets.
    pub fn pairwise(x: &[u8; 32], y: &[u8; 32], role: Role) -> Self {
        let mut ikm = [0u8; 64];
        ikm[..32].copy_from_slice(x);
        ikm[32..].copy_from_slice(y);
        let enc_i2r = kdf::derive_key32(SALT, &ikm, b"enc:i2r");
        let mac_i2r = kdf::derive_key32(SALT, &ikm, b"mac:i2r");
        let enc_r2i = kdf::derive_key32(SALT, &ikm, b"enc:r2i");
        let mac_r2i = kdf::derive_key32(SALT, &ikm, b"mac:r2i");
        let (se, sm, re, rm) = match role {
            Role::Initiator => (enc_i2r, mac_i2r, enc_r2i, mac_r2i),
            Role::Responder => (enc_r2i, mac_r2i, enc_i2r, mac_i2r),
        };
        SecureChannel {
            send_enc: Aes256::new(&se),
            send_mac: sm,
            recv_enc: Aes256::new(&re),
            recv_mac: rm,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Encrypts and authenticates a message.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&seq.to_be_bytes());
        let mut ct = plaintext.to_vec();
        Ctr::new(&self.send_enc, nonce).apply_keystream(&mut ct);
        let mut frame = Vec::with_capacity(8 + ct.len() + 32);
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(&ct);
        let tag = HmacSha256::mac(&self.send_mac, &frame);
        frame.extend_from_slice(&tag);
        frame
    }

    /// Verifies and decrypts a frame.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::CiphertextTooShort`] — malformed frame.
    /// * [`CryptoError::BadTag`] — authentication failure, wrong peer,
    ///   out-of-order or replayed sequence number.
    pub fn open(&mut self, frame: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if frame.len() < 8 + 32 {
            return Err(CryptoError::CiphertextTooShort);
        }
        let (body, tag) = frame.split_at(frame.len() - 32);
        if !HmacSha256::verify(&self.recv_mac, body, tag) {
            return Err(CryptoError::BadTag);
        }
        let seq = u64::from_be_bytes(body[..8].try_into().expect("length checked"));
        if seq != self.recv_seq {
            return Err(CryptoError::BadTag);
        }
        self.recv_seq += 1;
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&seq.to_be_bytes());
        let mut pt = body[8..].to_vec();
        Ctr::new(&self.recv_enc, nonce).apply_keystream(&mut pt);
        Ok(pt)
    }
}

/// A group channel keyed by the initiator's `x` — every matching user of
/// one request shares it (community discovery, §III-F).
///
/// Frames are `nonce(16) ‖ ciphertext ‖ tag(32)`; nonces are random, so
/// group members can all send without coordination (no replay protection
/// — layer sequence numbers on top if the application needs them).
#[derive(Debug)]
pub struct GroupChannel {
    enc: Aes256,
    mac: [u8; 32],
}

impl GroupChannel {
    /// Derives the group channel from `x`.
    pub fn from_x(x: &[u8; 32]) -> Self {
        let enc = kdf::derive_key32(SALT, x, b"group:enc");
        let mac = kdf::derive_key32(SALT, x, b"group:mac");
        GroupChannel { enc: Aes256::new(&enc), mac }
    }

    /// Encrypts and authenticates a group message.
    pub fn seal<R: Rng + ?Sized>(&self, plaintext: &[u8], rng: &mut R) -> Vec<u8> {
        let mut nonce = [0u8; 16];
        rng.fill(&mut nonce);
        let mut ct = plaintext.to_vec();
        Ctr::new(&self.enc, nonce).apply_keystream(&mut ct);
        let mut frame = Vec::with_capacity(16 + ct.len() + 32);
        frame.extend_from_slice(&nonce);
        frame.extend_from_slice(&ct);
        let tag = HmacSha256::mac(&self.mac, &frame);
        frame.extend_from_slice(&tag);
        frame
    }

    /// Verifies and decrypts a group message.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::CiphertextTooShort`] — malformed frame.
    /// * [`CryptoError::BadTag`] — authentication failure.
    pub fn open(&self, frame: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if frame.len() < 16 + 32 {
            return Err(CryptoError::CiphertextTooShort);
        }
        let (body, tag) = frame.split_at(frame.len() - 32);
        if !HmacSha256::verify(&self.mac, body, tag) {
            return Err(CryptoError::BadTag);
        }
        let nonce: [u8; 16] = body[..16].try_into().expect("length checked");
        let mut pt = body[16..].to_vec();
        Ctr::new(&self.enc, nonce).apply_keystream(&mut pt);
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> (SecureChannel, SecureChannel) {
        let x = [1u8; 32];
        let y = [2u8; 32];
        (
            SecureChannel::pairwise(&x, &y, Role::Initiator),
            SecureChannel::pairwise(&x, &y, Role::Responder),
        )
    }

    #[test]
    fn bidirectional_roundtrip() {
        let (mut a, mut b) = pair();
        for i in 0..5 {
            let msg = format!("message {i}");
            let ct = a.seal(msg.as_bytes());
            assert_eq!(b.open(&ct).unwrap(), msg.as_bytes());
            let ct2 = b.seal(msg.as_bytes());
            assert_eq!(a.open(&ct2).unwrap(), msg.as_bytes());
        }
    }

    #[test]
    fn tamper_detected() {
        let (mut a, mut b) = pair();
        let mut ct = a.seal(b"important");
        let mid = ct.len() / 2;
        ct[mid] ^= 1;
        assert_eq!(b.open(&ct), Err(CryptoError::BadTag));
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = pair();
        let ct = a.seal(b"once");
        assert!(b.open(&ct).is_ok());
        assert_eq!(b.open(&ct), Err(CryptoError::BadTag));
    }

    #[test]
    fn reorder_rejected() {
        let (mut a, mut b) = pair();
        let c1 = a.seal(b"first");
        let c2 = a.seal(b"second");
        assert_eq!(b.open(&c2), Err(CryptoError::BadTag));
        assert!(b.open(&c1).is_ok());
        assert!(b.open(&c2).is_ok(), "in-order after catching up");
    }

    #[test]
    fn directions_are_independent_keys() {
        let (mut a, _) = pair();
        let ct = a.seal(b"to responder");
        // The initiator must not accept its own outbound frame (an
        // attacker reflecting traffic).
        let mut a2 = SecureChannel::pairwise(&[1u8; 32], &[2u8; 32], Role::Initiator);
        assert_eq!(a2.open(&ct), Err(CryptoError::BadTag));
    }

    #[test]
    fn wrong_secret_fails() {
        let x = [1u8; 32];
        let y = [2u8; 32];
        let z = [3u8; 32];
        let mut a = SecureChannel::pairwise(&x, &y, Role::Initiator);
        let mut eavesdropper = SecureChannel::pairwise(&x, &z, Role::Responder);
        let ct = a.seal(b"secret");
        assert_eq!(eavesdropper.open(&ct), Err(CryptoError::BadTag));
    }

    #[test]
    fn short_frame_rejected() {
        let (_, mut b) = pair();
        assert_eq!(b.open(&[0u8; 10]), Err(CryptoError::CiphertextTooShort));
    }

    #[test]
    fn group_channel_shared_by_members() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = [9u8; 32];
        let g1 = GroupChannel::from_x(&x);
        let g2 = GroupChannel::from_x(&x);
        let ct = g1.seal(b"community update", &mut rng);
        assert_eq!(g2.open(&ct).unwrap(), b"community update");
    }

    #[test]
    fn group_channel_rejects_outsiders_and_tampering() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = GroupChannel::from_x(&[9u8; 32]);
        let outsider = GroupChannel::from_x(&[8u8; 32]);
        let mut ct = g.seal(b"community update", &mut rng);
        assert_eq!(outsider.open(&ct), Err(CryptoError::BadTag));
        let last = ct.len() - 1;
        ct[last] ^= 1;
        assert_eq!(g.open(&ct), Err(CryptoError::BadTag));
    }

    #[test]
    fn group_nonces_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = GroupChannel::from_x(&[9u8; 32]);
        let c1 = g.seal(b"same", &mut rng);
        let c2 = g.seal(b"same", &mut rng);
        assert_ne!(c1, c2, "random nonces must differ");
    }
}
