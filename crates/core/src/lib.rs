//! Message in a Sealed Bottle: one-round privacy-preserving profile
//! matching and secure channel establishment for decentralized mobile
//! social networks (Zhang & Li, ICDCS 2013).
//!
//! The mechanism encrypts a secret under the *request profile key* — a
//! hash of the attributes the initiator is looking for — and floods the
//! resulting package through the ad hoc network. Only a user whose
//! profile satisfies the request can regenerate the key, open the bottle,
//! and answer; matching and authenticated key exchange complete in a
//! single round with symmetric cryptography only: no PKI, no trusted
//! third party, no presetting.
//!
//! # Modules
//!
//! * [`package`] — the request package wire format (encrypted message,
//!   remainder vector, hint matrix) and the reply format.
//! * [`protocol`] — Protocols 1, 2 and 3 (§III-E): initiator and
//!   responder state machines, reply validation (time window and
//!   reply-set cardinality), ϕ-entropy candidate selection.
//! * [`channel`] — pairwise (`x`,`y`) and group (`x`) secure channels
//!   (§III-F): HKDF-derived directional keys, AES-256-CTR,
//!   encrypt-then-MAC, replay protection.
//! * [`vicinity`] — location-private vicinity search (§III-D) built on
//!   [`msb_lattice`].
//! * [`app`] — a [`msb_net`] application that runs the full friending
//!   flow over a simulated multi-hop MANET: flooding, relaying, rate
//!   limiting, reply routing.
//! * [`adversary`] — instrumented attackers (HBC observer, dictionary
//!   profiler, cheating responder, MITM) used by the security evaluation.
//! * [`ppl`] — the privacy-protection-level probes that regenerate
//!   Tables I and II.
//!
//! # Quickstart
//!
//! ```
//! use msb_core::protocol::{Initiator, ProtocolConfig, ProtocolKind, Responder, ResponderOutcome};
//! use msb_profile::{Attribute, Profile, RequestProfile};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let config = ProtocolConfig::new(ProtocolKind::P1, 11);
//!
//! // Initiator seeks an engineer who likes 2 of 3 interests.
//! let request = RequestProfile::new(
//!     vec![Attribute::new("profession", "engineer")],
//!     vec![
//!         Attribute::new("interest", "basketball"),
//!         Attribute::new("interest", "jazz"),
//!         Attribute::new("interest", "hiking"),
//!     ],
//!     2,
//! )?;
//! let (mut initiator, package) = Initiator::create(&request, 0, &config, 0, &mut rng);
//!
//! // A matching participant opens the bottle and replies.
//! let profile = Profile::from_attributes(vec![
//!     Attribute::new("profession", "engineer"),
//!     Attribute::new("interest", "basketball"),
//!     Attribute::new("interest", "jazz"),
//! ]);
//! let responder = Responder::new(1, profile, &config);
//! let outcome = responder.handle(&package, 50_000, &mut rng);
//! let msb_core::protocol::ResponderOutcome::Reply { reply, .. } = outcome else {
//!     panic!("should match")
//! };
//!
//! // The initiator validates the reply and both sides share (x, y).
//! let confirmed = initiator.process_reply(&reply, 100_000);
//! assert_eq!(confirmed.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod app;
pub mod channel;
pub mod package;
pub mod ppl;
pub mod protocol;
pub mod vicinity;

pub use channel::{GroupChannel, SecureChannel};
pub use package::{Reply, RequestPackage};
pub use protocol::{Initiator, ProtocolConfig, ProtocolKind, Responder, ResponderOutcome};
