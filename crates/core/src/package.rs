//! Wire formats: the request package and the reply.
//!
//! A request package (paper Fig. 1) carries the encrypted message, the
//! remainder vector and (for fuzzy requests) the hint matrix — and
//! nothing else derived from the request profile. The request vector and
//! the profile key never leave the initiator.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use msb_bignum::linalg::Matrix;
use msb_bignum::BigUint;
use msb_crypto::sha256::Sha256;
use msb_profile::hint::{HintConstruction, HintMatrix};
use msb_profile::remainder::RemainderVector;

/// Field-element width on the wire (Goldilocks-448 → 56 bytes).
const FIELD_BYTES: usize = 56;
/// Wire magic (versioned).
const MAGIC: &[u8; 4] = b"MSB1";

/// Protocol discriminant carried in the package (public by design: the
/// responder must know whether a confirmation tag is present).
pub(crate) const KIND_P1: u8 = 1;
pub(crate) const KIND_P2: u8 = 2;
pub(crate) const KIND_P3: u8 = 3;

/// Errors decoding wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes or version.
    BadMagic,
    /// Message ended prematurely.
    Truncated,
    /// A field held an invalid value.
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic or unsupported version"),
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The broadcast request package.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestPackage {
    /// Protocol kind (1, 2 or 3).
    pub kind: u8,
    /// Initiator's node id (the reply destination).
    pub initiator: u32,
    /// Remaining relay hops.
    pub ttl: u8,
    /// Absolute expiry in simulation microseconds; expired requests are
    /// dropped by relays (paper §III-E).
    pub expires_us: u64,
    /// The remainder vector (necessary block, optional block, β, p).
    pub remainder: RemainderVector,
    /// The hint matrix for fuzzy requests.
    pub hint: Option<HintMatrix>,
    /// CTR nonce for the sealed message.
    pub nonce: [u8; 16],
    /// The sealed message `E_{K_t}(…)`.
    pub ciphertext: Vec<u8>,
}

impl RequestPackage {
    /// The request id: the hash of the serialized package with TTL
    /// zeroed, so the id is stable across relay hops. Used for flood
    /// de-duplication and to bind replies to requests.
    pub fn request_id(&self) -> [u8; 32] {
        let mut clone = self.clone();
        clone.ttl = 0;
        Sha256::digest(&clone.encode())
    }

    /// Serializes the package.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(128 + 4 * self.remainder.len());
        buf.put_slice(MAGIC);
        buf.put_u8(self.kind);
        buf.put_u32(self.initiator);
        buf.put_u8(self.ttl);
        buf.put_u64(self.expires_us);
        buf.put_u64(self.remainder.p());
        buf.put_u16(self.remainder.alpha() as u16);
        buf.put_u16(self.remainder.optional().len() as u16);
        buf.put_u16(self.remainder.beta() as u16);
        for &r in self.remainder.necessary() {
            buf.put_u32(r as u32);
        }
        for &r in self.remainder.optional() {
            buf.put_u32(r as u32);
        }
        buf.put_slice(&self.nonce);
        buf.put_u16(self.ciphertext.len() as u16);
        buf.put_slice(&self.ciphertext);
        match &self.hint {
            None => buf.put_u8(0),
            Some(h) => {
                let tag = match h.construction() {
                    HintConstruction::Cauchy => 1,
                    HintConstruction::Random => 2,
                };
                buf.put_u8(tag);
                for b in h.b() {
                    buf.put_slice(&b.to_be_bytes_padded(FIELD_BYTES));
                }
                if h.construction() == HintConstruction::Random {
                    let c = h.constraint_matrix();
                    for i in 0..h.gamma() {
                        for j in 0..h.beta() {
                            let v = c.at(i, h.gamma() + j);
                            buf.put_slice(&v.to_be_bytes_padded(FIELD_BYTES));
                        }
                    }
                }
            }
        }
        buf.to_vec()
    }

    /// Deserializes a package.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input; decoding is total
    /// (no panics) for arbitrary bytes.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut buf = Bytes::copy_from_slice(data);
        let mut take = |n: usize| -> Result<Bytes, DecodeError> {
            if buf.remaining() < n {
                return Err(DecodeError::Truncated);
            }
            Ok(buf.split_to(n))
        };
        let magic = take(4)?;
        if magic.as_ref() != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let kind = take(1)?.get_u8();
        if !(KIND_P1..=KIND_P3).contains(&kind) {
            return Err(DecodeError::Invalid("kind"));
        }
        let initiator = take(4)?.get_u32();
        let ttl = take(1)?.get_u8();
        let expires_us = take(8)?.get_u64();
        let p = take(8)?.get_u64();
        if p < 2 {
            return Err(DecodeError::Invalid("modulus"));
        }
        let alpha = take(2)?.get_u16() as usize;
        let opt_len = take(2)?.get_u16() as usize;
        let beta = take(2)?.get_u16() as usize;
        if alpha + opt_len == 0 || beta > opt_len {
            return Err(DecodeError::Invalid("shape"));
        }
        let mut necessary = Vec::with_capacity(alpha);
        for _ in 0..alpha {
            let r = take(4)?.get_u32() as u64;
            if r >= p {
                return Err(DecodeError::Invalid("remainder"));
            }
            necessary.push(r);
        }
        let mut optional = Vec::with_capacity(opt_len);
        for _ in 0..opt_len {
            let r = take(4)?.get_u32() as u64;
            if r >= p {
                return Err(DecodeError::Invalid("remainder"));
            }
            optional.push(r);
        }
        let remainder = RemainderVector::from_remainders(p, necessary, optional, beta);
        let gamma = remainder.gamma();

        let mut nonce = [0u8; 16];
        nonce.copy_from_slice(&take(16)?);
        let ct_len = take(2)?.get_u16() as usize;
        let ciphertext = take(ct_len)?.to_vec();

        let hint_tag = take(1)?.get_u8();
        let hint = match hint_tag {
            0 => {
                if gamma != 0 {
                    return Err(DecodeError::Invalid("missing hint for fuzzy request"));
                }
                None
            }
            1 | 2 => {
                if gamma == 0 {
                    return Err(DecodeError::Invalid("hint on perfect-match request"));
                }
                let mut b = Vec::with_capacity(gamma);
                for _ in 0..gamma {
                    b.push(BigUint::from_be_bytes(&take(FIELD_BYTES)?));
                }
                let construction =
                    if hint_tag == 1 { HintConstruction::Cauchy } else { HintConstruction::Random };
                let r_block = if hint_tag == 2 {
                    let mut m = Matrix::zeros(gamma, beta);
                    for i in 0..gamma {
                        for j in 0..beta {
                            *m.at_mut(i, j) = BigUint::from_be_bytes(&take(FIELD_BYTES)?);
                        }
                    }
                    Some(m)
                } else {
                    None
                };
                Some(HintMatrix::from_parts(beta, construction, r_block, b))
            }
            _ => return Err(DecodeError::Invalid("hint tag")),
        };
        if buf.has_remaining() {
            return Err(DecodeError::Invalid("trailing bytes"));
        }
        Ok(RequestPackage { kind, initiator, ttl, expires_us, remainder, hint, nonce, ciphertext })
    }

    /// Total serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

/// A reply: the acknowledgement set for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The request this answers.
    pub request_id: [u8; 32],
    /// Responder's node id.
    pub responder: u32,
    /// One acknowledgement per candidate key the responder gambled:
    /// `nonce ‖ E_{x_j}(ack ‖ y)`.
    pub acks: Vec<Vec<u8>>,
}

impl Reply {
    /// Serializes the reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64 + self.acks.iter().map(Vec::len).sum::<usize>());
        buf.put_slice(b"MSBR");
        buf.put_slice(&self.request_id);
        buf.put_u32(self.responder);
        buf.put_u16(self.acks.len() as u16);
        for ack in &self.acks {
            buf.put_u16(ack.len() as u16);
            buf.put_slice(ack);
        }
        buf.to_vec()
    }

    /// Deserializes a reply.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut buf = Bytes::copy_from_slice(data);
        let mut take = |n: usize| -> Result<Bytes, DecodeError> {
            if buf.remaining() < n {
                return Err(DecodeError::Truncated);
            }
            Ok(buf.split_to(n))
        };
        if take(4)?.as_ref() != b"MSBR" {
            return Err(DecodeError::BadMagic);
        }
        let mut request_id = [0u8; 32];
        request_id.copy_from_slice(&take(32)?);
        let responder = take(4)?.get_u32();
        let count = take(2)?.get_u16() as usize;
        let mut acks = Vec::with_capacity(count);
        for _ in 0..count {
            let len = take(2)?.get_u16() as usize;
            acks.push(take(len)?.to_vec());
        }
        if buf.has_remaining() {
            return Err(DecodeError::Invalid("trailing bytes"));
        }
        Ok(Reply { request_id, responder, acks })
    }

    /// Total serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msb_profile::{Attribute, RequestProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_package(kind: u8, fuzzy: bool) -> RequestPackage {
        let mut rng = StdRng::seed_from_u64(3);
        let request = if fuzzy {
            RequestProfile::new(
                vec![Attribute::new("a", "1")],
                vec![Attribute::new("b", "2"), Attribute::new("c", "3"), Attribute::new("d", "4")],
                2,
            )
            .unwrap()
        } else {
            RequestProfile::exact(vec![Attribute::new("a", "1"), Attribute::new("b", "2")]).unwrap()
        };
        let sealed = request.seal(11, &mut rng);
        RequestPackage {
            kind,
            initiator: 7,
            ttl: 4,
            expires_us: 1_000_000,
            remainder: sealed.remainder,
            hint: sealed.hint,
            nonce: [9u8; 16],
            ciphertext: vec![0xab; 48],
        }
    }

    #[test]
    fn package_roundtrip_exact() {
        let pkg = sample_package(KIND_P1, false);
        let decoded = RequestPackage::decode(&pkg.encode()).unwrap();
        assert_eq!(decoded, pkg);
    }

    #[test]
    fn package_roundtrip_fuzzy() {
        let pkg = sample_package(KIND_P2, true);
        let decoded = RequestPackage::decode(&pkg.encode()).unwrap();
        assert_eq!(decoded, pkg);
        assert!(decoded.hint.is_some());
    }

    #[test]
    fn request_id_stable_across_ttl() {
        let mut pkg = sample_package(KIND_P1, true);
        let id1 = pkg.request_id();
        pkg.ttl -= 1;
        assert_eq!(pkg.request_id(), id1, "relaying must not change the id");
        pkg.ciphertext[0] ^= 1;
        assert_ne!(pkg.request_id(), id1, "content changes must change the id");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RequestPackage::decode(b"nope"), Err(DecodeError::BadMagic));
        assert_eq!(RequestPackage::decode(b"no"), Err(DecodeError::Truncated));
        assert_eq!(RequestPackage::decode(b"XXXX_________________"), Err(DecodeError::BadMagic));
        let pkg = sample_package(KIND_P1, true);
        let mut bytes = pkg.encode();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(RequestPackage::decode(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let pkg = sample_package(KIND_P1, false);
        let mut bytes = pkg.encode();
        bytes.push(0);
        assert_eq!(RequestPackage::decode(&bytes), Err(DecodeError::Invalid("trailing bytes")));
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let pkg = sample_package(KIND_P1, false);
        let mut bytes = pkg.encode();
        bytes[4] = 9; // kind byte
        assert_eq!(RequestPackage::decode(&bytes), Err(DecodeError::Invalid("kind")));
    }

    #[test]
    fn decode_never_panics_on_fuzz() {
        // Cheap deterministic fuzz: bit-flip every byte of a valid
        // encoding and ensure decode returns (not panics).
        let pkg = sample_package(KIND_P3, true);
        let bytes = pkg.encode();
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0xff;
            let _ = RequestPackage::decode(&m);
        }
    }

    #[test]
    fn reply_roundtrip() {
        let reply =
            Reply { request_id: [3u8; 32], responder: 42, acks: vec![vec![1, 2, 3], vec![4; 56]] };
        let decoded = Reply::decode(&reply.encode()).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn reply_empty_acks() {
        let reply = Reply { request_id: [0u8; 32], responder: 0, acks: vec![] };
        assert_eq!(Reply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn wire_size_close_to_paper_estimate() {
        // Paper §IV-B2: a 6-attribute, θ=0.6 request ≈ 190 B on average.
        // Our package adds framing, a nonce and 448-bit hint entries; it
        // must stay within the same order of magnitude (< 1 KB).
        let mut rng = StdRng::seed_from_u64(1);
        let attrs: Vec<Attribute> =
            (0..6).map(|i| Attribute::new("tag", format!("t{i}"))).collect();
        let request = RequestProfile::new(vec![], attrs, 4).unwrap(); // θ ≈ 0.67
        let sealed = request.seal(11, &mut rng);
        let pkg = RequestPackage {
            kind: KIND_P1,
            initiator: 0,
            ttl: 8,
            expires_us: u64::MAX,
            remainder: sealed.remainder,
            hint: sealed.hint,
            nonce: [0u8; 16],
            ciphertext: vec![0; 48],
        };
        let size = pkg.wire_size();
        assert!(size < 1024, "package size {size} B");
    }
}
