//! The protocol messages and their canonical wire format.
//!
//! A request package (paper Fig. 1) carries the encrypted message, the
//! remainder vector and (for fuzzy requests) the hint matrix — and
//! nothing else derived from the request profile. The request vector and
//! the profile key never leave the initiator. The reply carries the
//! acknowledgement set back to the initiator and doubles as the match
//! confirmation (Protocol 1 verifies *before* replying; Protocols 2/3
//! let the initiator confirm by decrypting an acknowledgement).
//!
//! Both messages are [`msb_wire::Message`]s: they travel inside the
//! versioned `MSBW` frame envelope and are encoded/decoded by the shared
//! [`msb_wire`] engine — strictly (trailing garbage is rejected with the
//! failing offset) and without copying the input. See `docs/WIRE.md`
//! for the byte-level layouts.

use msb_crypto::sha256::Sha256;
use msb_profile::hint::HintMatrix;
use msb_profile::remainder::RemainderVector;
use msb_wire::{Message, Reader, WireDecode, WireEncode, Writer};

pub use msb_wire::{DecodeError, FrameKind};

/// Protocol discriminant carried in the package (public by design: the
/// responder must know whether a confirmation tag is present).
pub(crate) const KIND_P1: u8 = 1;
pub(crate) const KIND_P2: u8 = 2;
pub(crate) const KIND_P3: u8 = 3;

/// Offset of the TTL byte inside an encoded request frame (envelope,
/// then `kind(1) ‖ initiator(4)`). Fixed by the wire format; lets
/// [`RequestPackage::request_id`] zero the TTL without re-encoding.
const TTL_FRAME_OFFSET: usize = msb_wire::FRAME_HEADER_LEN + 1 + 4;

/// The broadcast request package.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestPackage {
    /// Protocol kind (1, 2 or 3).
    pub kind: u8,
    /// Initiator's node id (the reply destination).
    pub initiator: u32,
    /// Remaining relay hops.
    pub ttl: u8,
    /// Absolute expiry in simulation microseconds; expired requests are
    /// dropped by relays (paper §III-E).
    pub expires_us: u64,
    /// The remainder vector (necessary block, optional block, β, p).
    pub remainder: RemainderVector,
    /// The hint matrix for fuzzy requests.
    pub hint: Option<HintMatrix>,
    /// CTR nonce for the sealed message.
    pub nonce: [u8; 16],
    /// The sealed message `E_{K_t}(…)`.
    pub ciphertext: Vec<u8>,
}

impl WireEncode for RequestPackage {
    fn encoded_len(&self) -> usize {
        1 + 4
            + 1
            + 8
            + self.remainder.encoded_len()
            + 16
            + 2
            + self.ciphertext.len()
            + self.hint.as_ref().map_or(1, WireEncode::encoded_len)
    }

    fn encode_into(&self, w: &mut Writer) {
        w.u8(self.kind);
        w.u32(self.initiator);
        w.u8(self.ttl);
        w.u64(self.expires_us);
        self.remainder.encode_into(w);
        w.bytes(&self.nonce);
        assert!(self.ciphertext.len() <= u16::MAX as usize, "ciphertext too long for u16 length");
        w.u16(self.ciphertext.len() as u16);
        w.bytes(&self.ciphertext);
        match &self.hint {
            None => w.u8(0),
            Some(h) => h.encode_into(w),
        }
    }
}

impl WireDecode for RequestPackage {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let kind_at = r.offset();
        let kind = r.u8()?;
        if !(KIND_P1..=KIND_P3).contains(&kind) {
            return Err(r.invalid(kind_at, "protocol kind"));
        }
        let initiator = r.u32()?;
        let ttl = r.u8()?;
        let expires_us = r.u64()?;
        let remainder = RemainderVector::decode_from(r)?;
        let nonce: [u8; 16] = r.array()?;
        let ct_len = r.u16()? as usize;
        let ciphertext = r.take(ct_len)?.to_vec();

        // The hint section must agree with the remainder vector: absent
        // exactly for perfect-match requests (γ = 0), and carrying the
        // same (γ, β) shape otherwise.
        let hint_at = r.offset();
        let gamma = remainder.gamma();
        let hint = if r.peek_u8()? == 0 {
            r.u8()?;
            if gamma != 0 {
                return Err(r.invalid(hint_at, "missing hint for fuzzy request"));
            }
            None
        } else {
            if gamma == 0 {
                return Err(r.invalid(hint_at, "hint on perfect-match request"));
            }
            // Shape-checked decode: the hint's claimed (γ, β) must equal
            // the remainder vector's *before* any element is read or the
            // constraint matrix is constructed, so inconsistent or
            // oversized dimension claims cost O(1) to reject.
            Some(msb_profile::wire::decode_hint_with_shape(r, gamma, remainder.beta())?)
        };
        Ok(RequestPackage { kind, initiator, ttl, expires_us, remainder, hint, nonce, ciphertext })
    }
}

impl Message for RequestPackage {
    const KIND: FrameKind = FrameKind::Request;
}

impl RequestPackage {
    /// The request id: the hash of the encoded frame with TTL zeroed, so
    /// the id is stable across relay hops. Used for flood de-duplication
    /// and to bind replies to requests.
    pub fn request_id(&self) -> [u8; 32] {
        let mut bytes = Message::encode(self);
        bytes[TTL_FRAME_OFFSET] = 0;
        Sha256::digest(&bytes)
    }

    /// Encodes the package as a framed wire message.
    pub fn encode(&self) -> Vec<u8> {
        Message::encode(self)
    }

    /// Decodes a framed package, strictly.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] locating the failure on malformed
    /// input; decoding is total (no panics) for arbitrary bytes.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        Message::decode(data)
    }

    /// Total serialized frame size in bytes (computed, not encoded).
    pub fn wire_size(&self) -> usize {
        self.frame_len()
    }
}

/// A reply: the acknowledgement set for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The request this answers.
    pub request_id: [u8; 32],
    /// Responder's node id.
    pub responder: u32,
    /// One acknowledgement per candidate key the responder gambled:
    /// `nonce ‖ E_{x_j}(ack ‖ y)`.
    pub acks: Vec<Vec<u8>>,
}

impl WireEncode for Reply {
    fn encoded_len(&self) -> usize {
        32 + 4 + 2 + self.acks.iter().map(|a| 2 + a.len()).sum::<usize>()
    }

    fn encode_into(&self, w: &mut Writer) {
        w.bytes(&self.request_id);
        w.u32(self.responder);
        assert!(self.acks.len() <= u16::MAX as usize, "too many acknowledgements");
        w.u16(self.acks.len() as u16);
        for ack in &self.acks {
            assert!(ack.len() <= u16::MAX as usize, "acknowledgement too long");
            w.u16(ack.len() as u16);
            w.bytes(ack);
        }
    }
}

impl WireDecode for Reply {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let request_id: [u8; 32] = r.array()?;
        let responder = r.u32()?;
        let count = r.u16()? as usize;
        let mut acks = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let len = r.u16()? as usize;
            acks.push(r.take(len)?.to_vec());
        }
        Ok(Reply { request_id, responder, acks })
    }
}

impl Message for Reply {
    const KIND: FrameKind = FrameKind::Reply;
}

impl Reply {
    /// Encodes the reply as a framed wire message.
    pub fn encode(&self) -> Vec<u8> {
        Message::encode(self)
    }

    /// Decodes a framed reply, strictly.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] locating the failure on malformed input.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        Message::decode(data)
    }

    /// Total serialized frame size in bytes (computed, not encoded).
    pub fn wire_size(&self) -> usize {
        self.frame_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msb_profile::{Attribute, RequestProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_package(kind: u8, fuzzy: bool) -> RequestPackage {
        let mut rng = StdRng::seed_from_u64(3);
        let request = if fuzzy {
            RequestProfile::new(
                vec![Attribute::new("a", "1")],
                vec![Attribute::new("b", "2"), Attribute::new("c", "3"), Attribute::new("d", "4")],
                2,
            )
            .unwrap()
        } else {
            RequestProfile::exact(vec![Attribute::new("a", "1"), Attribute::new("b", "2")]).unwrap()
        };
        let sealed = request.seal(11, &mut rng);
        RequestPackage {
            kind,
            initiator: 7,
            ttl: 4,
            expires_us: 1_000_000,
            remainder: sealed.remainder,
            hint: sealed.hint,
            nonce: [9u8; 16],
            ciphertext: vec![0xab; 48],
        }
    }

    #[test]
    fn package_roundtrip_exact() {
        let pkg = sample_package(KIND_P1, false);
        let decoded = RequestPackage::decode(&pkg.encode()).unwrap();
        assert_eq!(decoded, pkg);
    }

    #[test]
    fn package_roundtrip_fuzzy() {
        let pkg = sample_package(KIND_P2, true);
        let decoded = RequestPackage::decode(&pkg.encode()).unwrap();
        assert_eq!(decoded, pkg);
        assert!(decoded.hint.is_some());
    }

    #[test]
    fn wire_size_is_exact() {
        for fuzzy in [false, true] {
            let pkg = sample_package(KIND_P3, fuzzy);
            assert_eq!(pkg.wire_size(), pkg.encode().len(), "fuzzy={fuzzy}");
        }
    }

    #[test]
    fn request_id_stable_across_ttl() {
        let mut pkg = sample_package(KIND_P1, true);
        let id1 = pkg.request_id();
        pkg.ttl -= 1;
        assert_eq!(pkg.request_id(), id1, "relaying must not change the id");
        pkg.ciphertext[0] ^= 1;
        assert_ne!(pkg.request_id(), id1, "content changes must change the id");
    }

    #[test]
    fn ttl_frame_offset_is_the_ttl_byte() {
        let pkg = sample_package(KIND_P1, true);
        assert_eq!(pkg.encode()[TTL_FRAME_OFFSET], pkg.ttl);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RequestPackage::decode(b"no"), Err(DecodeError::Truncated { offset: 0 }));
        assert_eq!(RequestPackage::decode(b"nope"), Err(DecodeError::BadMagic));
        assert_eq!(RequestPackage::decode(b"XXXX_________________"), Err(DecodeError::BadMagic));
        let pkg = sample_package(KIND_P1, true);
        let mut bytes = pkg.encode();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(
            RequestPackage::decode(&bytes),
            Err(DecodeError::Truncated { offset: bytes.len() })
        );
    }

    #[test]
    fn decode_rejects_trailing_bytes_with_offset() {
        let pkg = sample_package(KIND_P1, false);
        let mut bytes = pkg.encode();
        let valid_len = bytes.len();
        bytes.push(0);
        assert_eq!(
            RequestPackage::decode(&bytes),
            Err(DecodeError::Trailing { offset: valid_len })
        );
    }

    #[test]
    fn decode_rejects_bad_kinds() {
        let pkg = sample_package(KIND_P1, false);
        let bytes = pkg.encode();

        // Envelope kind byte.
        let mut bad = bytes.clone();
        bad[5] = 0x77;
        assert_eq!(RequestPackage::decode(&bad), Err(DecodeError::UnknownKind(0x77)));

        // A valid Reply frame is not a request.
        let mut wrong = bytes.clone();
        wrong[5] = FrameKind::Reply as u8;
        assert_eq!(
            RequestPackage::decode(&wrong),
            Err(DecodeError::WrongKind { expected: FrameKind::Request, found: FrameKind::Reply })
        );

        // Protocol kind inside the body (first payload byte).
        let mut bad = bytes.clone();
        bad[msb_wire::FRAME_HEADER_LEN] = 9;
        assert_eq!(
            RequestPackage::decode(&bad),
            Err(DecodeError::Invalid { offset: msb_wire::FRAME_HEADER_LEN, what: "protocol kind" })
        );

        // Unsupported envelope version.
        let mut bad = bytes.clone();
        bad[4] = 2;
        assert_eq!(RequestPackage::decode(&bad), Err(DecodeError::UnsupportedVersion(2)));
    }

    #[test]
    fn decode_enforces_hint_consistency() {
        // Fuzzy request without its hint.
        let fuzzy = sample_package(KIND_P2, true);
        let mut stripped = fuzzy.clone();
        stripped.hint = None;
        // Encode manually: the normal encoder would write tag 0.
        let bytes = stripped.encode();
        assert!(matches!(
            RequestPackage::decode(&bytes),
            Err(DecodeError::Invalid { what: "missing hint for fuzzy request", .. })
        ));

        // Perfect-match request carrying a hint.
        let exact = sample_package(KIND_P1, false);
        let mut adorned = exact.clone();
        adorned.hint = fuzzy.hint.clone();
        let bytes = adorned.encode();
        assert!(matches!(
            RequestPackage::decode(&bytes),
            Err(DecodeError::Invalid { what: "hint on perfect-match request", .. })
        ));
    }

    #[test]
    fn decode_never_panics_on_fuzz() {
        // Cheap deterministic fuzz: bit-flip every byte of a valid
        // encoding and ensure decode returns (not panics).
        let pkg = sample_package(KIND_P3, true);
        let bytes = pkg.encode();
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0xff;
            let _ = RequestPackage::decode(&m);
        }
    }

    #[test]
    fn reply_roundtrip() {
        let reply =
            Reply { request_id: [3u8; 32], responder: 42, acks: vec![vec![1, 2, 3], vec![4; 56]] };
        let decoded = Reply::decode(&reply.encode()).unwrap();
        assert_eq!(decoded, reply);
        assert_eq!(reply.wire_size(), reply.encode().len());
    }

    #[test]
    fn reply_empty_acks() {
        let reply = Reply { request_id: [0u8; 32], responder: 0, acks: vec![] };
        assert_eq!(Reply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn reply_rejects_trailing_bytes() {
        let reply = Reply { request_id: [1u8; 32], responder: 9, acks: vec![vec![7; 10]] };
        let mut bytes = reply.encode();
        let valid_len = bytes.len();
        bytes.extend_from_slice(b"junk");
        assert_eq!(Reply::decode(&bytes), Err(DecodeError::Trailing { offset: valid_len }));
    }

    #[test]
    fn wire_size_close_to_paper_estimate() {
        // Paper §IV-B2: a 6-attribute, θ=0.6 request ≈ 190 B on average.
        // Our package adds framing, a nonce and 448-bit hint entries; it
        // must stay within the same order of magnitude (< 1 KB).
        let mut rng = StdRng::seed_from_u64(1);
        let attrs: Vec<Attribute> =
            (0..6).map(|i| Attribute::new("tag", format!("t{i}"))).collect();
        let request = RequestProfile::new(vec![], attrs, 4).unwrap(); // θ ≈ 0.67
        let sealed = request.seal(11, &mut rng);
        let pkg = RequestPackage {
            kind: KIND_P1,
            initiator: 0,
            ttl: 8,
            expires_us: u64::MAX,
            remainder: sealed.remainder,
            hint: sealed.hint,
            nonce: [0u8; 16],
            ciphertext: vec![0; 48],
        };
        let size = pkg.wire_size();
        assert!(size < 1024, "package size {size} B");
    }
}
