//! Location-privacy-preserving vicinity search (paper §III-D-2/3).
//!
//! A vicinity search is a fuzzy profile match whose "attributes" are the
//! hashes of vicinity lattice points: the initiator builds a request from
//! their own region with threshold Θ, and only users whose region shares
//! at least ⌈Θ·|V|⌉ lattice points can recover the dynamic profile key.
//! No coordinates are transmitted — only remainders and the hint matrix.

use crate::protocol::{Initiator, ProtocolConfig, Responder};
use crate::RequestPackage;
use msb_lattice::{DynamicKey, LatticeConfig, VicinityRegion};
use msb_profile::profile::{Profile, ProfileVector};
use msb_profile::request::RequestVector;
use rand::Rng;

/// Builds a vicinity-search request from the initiator's location.
///
/// `theta` is the intersection threshold Θ of Eq. 16. The returned
/// initiator/package pair works with the ordinary protocol machinery.
///
/// # Panics
///
/// Panics if `theta` is outside `(0, 1]` or if `config.p` is not larger
/// than the region size (pick a larger prime for wide regions).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list (O, d, D, Θ, …)
pub fn create_vicinity_request<R: Rng + ?Sized>(
    lattice: &LatticeConfig,
    location: (f64, f64),
    range: f64,
    theta: f64,
    initiator_id: u32,
    config: &ProtocolConfig,
    now_us: u64,
    rng: &mut R,
) -> (Initiator, RequestPackage, VicinityRegion) {
    let region = VicinityRegion::around(lattice, location, range);
    let beta = region.required_shared(theta);
    let vector = RequestVector::from_hashes(Vec::new(), region.hashes().to_vec(), beta);
    let (initiator, package) =
        Initiator::create_from_vector(&vector, initiator_id, config, now_us, rng);
    (initiator, package, region)
}

/// Builds the responder for a participant at `location`: their "profile"
/// is their own vicinity region's lattice-point hashes.
pub fn vicinity_responder(
    lattice: &LatticeConfig,
    location: (f64, f64),
    range: f64,
    responder_id: u32,
    config: &ProtocolConfig,
) -> (Responder, VicinityRegion) {
    let region = VicinityRegion::around(lattice, location, range);
    let vector = ProfileVector::from_hashes(region.hashes().iter().copied());
    (Responder::from_vector(responder_id, vector, config), region)
}

/// The cell-level dynamic key for location-bound static attributes
/// (§III-D-3): users snapped to the same lattice cell derive the same
/// key, so their bound attribute hashes agree while users elsewhere
/// produce unrelated hashes.
pub fn cell_key(lattice: &LatticeConfig, location: (f64, f64)) -> DynamicKey {
    let cell_only = VicinityRegion::around(lattice, location, 0.0);
    DynamicKey::from_region(&cell_only)
}

/// Binds a profile's static attributes to the local cell, yielding the
/// vector to hand to [`Responder::from_vector`]. Both parties must be in
/// the same cell (and use the same lattice) for their hashes to align.
pub fn location_bound_vector(
    lattice: &LatticeConfig,
    location: (f64, f64),
    profile: &Profile,
) -> ProfileVector {
    cell_key(lattice, location).bind_profile(profile.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ProtocolKind, ResponderOutcome};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn lattice() -> LatticeConfig {
        LatticeConfig::new((0.0, 0.0), 10.0)
    }

    fn config() -> ProtocolConfig {
        // Region sizes reach dozens of points: use a larger prime.
        ProtocolConfig::new(ProtocolKind::P2, 37)
    }

    #[test]
    fn nearby_user_matches() {
        let mut r = rng();
        let lat = lattice();
        let cfg = config();
        let (mut initiator, pkg, _region) =
            create_vicinity_request(&lat, (0.0, 0.0), 20.0, 9.0 / 19.0, 0, &cfg, 0, &mut r);
        // A user one cell away shares most of the 19-point region.
        let (responder, their_region) = vicinity_responder(&lat, (10.0, 0.0), 20.0, 1, &cfg);
        assert!(their_region.shared_points(&VicinityRegion::around(&lat, (0.0, 0.0), 20.0)) >= 9);
        let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut r) else {
            panic!("nearby user must be able to answer");
        };
        assert_eq!(initiator.process_reply(&reply, 200).len(), 1);
    }

    #[test]
    fn far_user_cannot_match() {
        let mut r = rng();
        let lat = lattice();
        let cfg = config();
        let (mut initiator, pkg, _) =
            create_vicinity_request(&lat, (0.0, 0.0), 20.0, 9.0 / 19.0, 0, &cfg, 0, &mut r);
        let (responder, _) = vicinity_responder(&lat, (500.0, 500.0), 20.0, 2, &cfg);
        match responder.handle(&pkg, 100, &mut r) {
            ResponderOutcome::NotCandidate => {}
            ResponderOutcome::Reply { reply, .. } => {
                // Collisions may produce gambles, but none can decrypt.
                assert!(initiator.process_reply(&reply, 200).is_empty());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn same_location_perfect_overlap() {
        let mut r = rng();
        let lat = lattice();
        let cfg = config();
        let (mut initiator, pkg, _) =
            create_vicinity_request(&lat, (3.0, 3.0), 20.0, 1.0, 0, &cfg, 0, &mut r);
        let (responder, _) = vicinity_responder(&lat, (2.0, 4.0), 20.0, 1, &cfg);
        let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut r) else {
            panic!("co-located user must match at theta = 1");
        };
        assert_eq!(initiator.process_reply(&reply, 200).len(), 1);
    }

    #[test]
    fn no_coordinates_on_the_wire() {
        let mut r = rng();
        let lat = lattice();
        let cfg = config();
        let location = (1234.5, 6789.0);
        let (_, pkg, _) = create_vicinity_request(&lat, location, 20.0, 0.5, 0, &cfg, 0, &mut r);
        let bytes = pkg.encode();
        // The raw coordinates must not appear anywhere in the package.
        for needle in [location.0.to_be_bytes(), location.1.to_be_bytes()] {
            assert!(
                !bytes.windows(8).any(|w| w == needle),
                "coordinate bytes leaked into the package"
            );
        }
    }

    #[test]
    fn location_bound_vectors_agree_within_cell() {
        let lat = lattice();
        let profile = Profile::from_attributes(vec![
            msb_profile::Attribute::new("interest", "jazz"),
            msb_profile::Attribute::new("interest", "go"),
        ]);
        let v1 = location_bound_vector(&lat, (1.0, 1.0), &profile);
        let v2 = location_bound_vector(&lat, (0.5, 1.5), &profile); // same cell
        let v3 = location_bound_vector(&lat, (300.0, 0.0), &profile);
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
        // And bound hashes differ from plain ones (dictionary defence).
        assert_ne!(v1, profile.vector().clone());
    }
}
