//! Instrumented adversaries (paper §II-B, §IV-A).
//!
//! Each adversary exercises one threat from the paper's model:
//!
//! * [`Eavesdropper`] — passive HBC observer of all traffic.
//! * [`DictionaryAttacker`] — holds the full attribute vocabulary
//!   (Definition 1, *dictionary profiling*) and attacks packages and
//!   replies with it.
//! * [`CheatingResponder`] — claims to match without opening the bottle
//!   (Definition 2, *cheating*).
//! * [`MitmAttacker`] — substitutes package contents in flight.
//!
//! The [`crate::ppl`] probes use these to *measure* the protection levels
//! of Tables I and II rather than merely restating them.

use crate::package::{Reply, RequestPackage};
use crate::protocol::{make_ack, open_ack, open_message, ProtocolKind};
use msb_crypto::aes::CipherBackend;
use msb_profile::attribute::{Attribute, AttributeHash};
use msb_profile::matching::{enumerate_candidate_keys, EnumerationMode, MatchConfig};
use msb_profile::profile::ProfileVector;
use rand::Rng;
use std::collections::HashMap;

/// A passive observer that records everything on the air.
#[derive(Debug, Default)]
pub struct Eavesdropper {
    /// Captured request packages.
    pub packages: Vec<RequestPackage>,
    /// Captured replies.
    pub replies: Vec<Reply>,
}

impl Eavesdropper {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a package.
    pub fn observe_package(&mut self, pkg: &RequestPackage) {
        self.packages.push(pkg.clone());
    }

    /// Records a reply.
    pub fn observe_reply(&mut self, reply: &Reply) {
        self.replies.push(reply.clone());
    }

    /// Information an observer gets about each request attribute without
    /// any dictionary: the remainder narrows a 256-bit hash to one of
    /// `2^256 / p` possibilities — `log2(p)` bits per attribute.
    pub fn remainder_leak_bits(pkg: &RequestPackage) -> f64 {
        (pkg.remainder.p() as f64).log2() * pkg.remainder.len() as f64
    }
}

/// Result of a dictionary attack on a request package.
#[derive(Debug, Clone)]
pub enum DictionaryAttackOutcome {
    /// Protocol 1 only: the confirmation tag verified, so the attacker
    /// *knows* these attributes form the request profile.
    RecoveredRequest {
        /// The recovered request attributes (dictionary hits; hashes the
        /// dictionary cannot name are counted in `unnamed_hashes`).
        attributes: Vec<Attribute>,
        /// Recovered hashes with no dictionary pre-image (solved via the
        /// hint matrix but outside the vocabulary).
        unnamed_hashes: usize,
        /// The recovered bottle secret `x`.
        x: [u8; 32],
    },
    /// Candidate keys were produced but none could be *verified*
    /// (Protocols 2/3 have no confirmation oracle in the package itself).
    Inconclusive {
        /// Number of plausible request profiles the attacker is left with.
        candidate_keys: usize,
    },
    /// The attacker's vocabulary cannot even pass the fast check.
    NotCovered,
}

/// An adversary holding (a superset of) the attribute vocabulary.
#[derive(Debug)]
pub struct DictionaryAttacker {
    vector: ProfileVector,
    by_hash: HashMap<AttributeHash, Attribute>,
    config: MatchConfig,
}

impl DictionaryAttacker {
    /// Builds the attacker from its vocabulary.
    pub fn new(vocabulary: Vec<Attribute>) -> Self {
        let by_hash: HashMap<AttributeHash, Attribute> =
            vocabulary.iter().map(|a| (a.hash(), a.clone())).collect();
        let vector = ProfileVector::from_hashes(by_hash.keys().copied());
        DictionaryAttacker {
            vector,
            by_hash,
            config: MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 200_000 },
        }
    }

    /// Vocabulary size.
    pub fn vocabulary_size(&self) -> usize {
        self.by_hash.len()
    }

    /// Attacks a request package by treating the whole vocabulary as the
    /// attacker's own profile and enumerating candidate keys.
    pub fn attack_package(&self, pkg: &RequestPackage) -> DictionaryAttackOutcome {
        let Some(kind) = ProtocolKind::from_wire(pkg.kind) else {
            return DictionaryAttackOutcome::NotCovered;
        };
        let keys =
            enumerate_candidate_keys(&self.vector, &pkg.remainder, pkg.hint.as_ref(), &self.config);
        if keys.is_empty() {
            return DictionaryAttackOutcome::NotCovered;
        }
        if kind == ProtocolKind::P1 {
            // An attacker has no key material of its own to protect, so the
            // env-selected backend (tables included) is always fair game.
            let backend = CipherBackend::from_env();
            for key in &keys {
                if let Some(x) = open_message(&key.key, kind, &pkg.nonce, &pkg.ciphertext, backend)
                {
                    let mut attributes = Vec::new();
                    let mut unnamed = 0usize;
                    for h in &key.recovered {
                        match self.by_hash.get(h) {
                            Some(a) => attributes.push(a.clone()),
                            None => unnamed += 1,
                        }
                    }
                    return DictionaryAttackOutcome::RecoveredRequest {
                        attributes,
                        unnamed_hashes: unnamed,
                        x,
                    };
                }
            }
        }
        DictionaryAttackOutcome::Inconclusive { candidate_keys: keys.len() }
    }

    /// The acknowledgement oracle: given a package *and* an observed
    /// reply, try every dictionary-derived candidate `x` against every
    /// acknowledgement. A verifying tag simultaneously confirms the
    /// request profile (for the eavesdropper) and the responder's gambled
    /// attributes (for a malicious initiator).
    ///
    /// Returns, per verified acknowledgement, the dictionary attributes
    /// whose assignment produced the confirming key.
    pub fn attack_reply(&self, pkg: &RequestPackage, reply: &Reply) -> Vec<Vec<Attribute>> {
        let Some(kind) = ProtocolKind::from_wire(pkg.kind) else {
            return Vec::new();
        };
        let keys =
            enumerate_candidate_keys(&self.vector, &pkg.remainder, pkg.hint.as_ref(), &self.config);
        let mut unmasked = Vec::new();
        let backend = CipherBackend::from_env();
        for key in &keys {
            let Some(x) = open_message(&key.key, kind, &pkg.nonce, &pkg.ciphertext, backend) else {
                continue;
            };
            for ack in &reply.acks {
                if open_ack(&x, ack, backend).is_some() {
                    let attrs: Vec<Attribute> = key
                        .used_indices
                        .iter()
                        .filter_map(|&i| {
                            self.vector.hashes().get(i).and_then(|h| self.by_hash.get(h).cloned())
                        })
                        .collect();
                    unmasked.push(attrs);
                }
            }
        }
        unmasked
    }
}

/// A responder that claims to match without having opened the bottle.
#[derive(Debug, Clone, Copy)]
pub struct CheatingResponder {
    /// The forged responder id.
    pub id: u32,
}

impl CheatingResponder {
    /// Forges a reply with `n_acks` random acknowledgements. Without the
    /// true `x`, none can carry a verifying tag (verifiability, §IV-A3),
    /// except with probability `2⁻⁶⁴` per ack.
    pub fn forge_reply<R: Rng + ?Sized>(
        &self,
        request_id: [u8; 32],
        n_acks: usize,
        rng: &mut R,
    ) -> Reply {
        let acks = (0..n_acks)
            .map(|_| {
                let mut guess_x = [0u8; 32];
                rng.fill(&mut guess_x);
                let mut y = [0u8; 32];
                rng.fill(&mut y);
                make_ack(&guess_x, &y, CipherBackend::from_env(), rng)
            })
            .collect();
        Reply { request_id, responder: self.id, acks }
    }
}

/// A man in the middle who intercepts and rewrites packages.
#[derive(Debug, Default)]
pub struct MitmAttacker;

impl MitmAttacker {
    /// Substitutes the sealed message with attacker-chosen bytes. Without
    /// the profile key the attacker cannot encrypt a chosen `x`, so the
    /// best they can do is garbage — which downstream candidates decrypt
    /// into an `x′` the attacker cannot predict either.
    pub fn substitute_message<R: Rng + ?Sized>(
        &self,
        pkg: &RequestPackage,
        rng: &mut R,
    ) -> RequestPackage {
        let mut forged = pkg.clone();
        rng.fill(&mut forged.nonce);
        let mut garbage = vec![0u8; forged.ciphertext.len()];
        rng.fill(&mut garbage[..]);
        forged.ciphertext = garbage;
        forged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Initiator, ProtocolConfig, Responder, ResponderOutcome};
    use msb_profile::{Profile, RequestProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(c: &str, v: &str) -> Attribute {
        Attribute::new(c, v)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    /// A small closed world of attributes (the paper's "worst case":
    /// the dictionary is small enough to enumerate).
    fn vocabulary() -> Vec<Attribute> {
        let mut v = vec![attr("profession", "engineer"), attr("profession", "doctor")];
        for i in 0..10 {
            v.push(attr("interest", &format!("topic-{i}")));
        }
        v
    }

    fn request() -> RequestProfile {
        RequestProfile::new(
            vec![attr("profession", "engineer")],
            vec![
                attr("interest", "topic-0"),
                attr("interest", "topic-1"),
                attr("interest", "topic-2"),
            ],
            2,
        )
        .unwrap()
    }

    fn matching_profile() -> Profile {
        Profile::from_attributes(vec![
            attr("profession", "engineer"),
            attr("interest", "topic-0"),
            attr("interest", "topic-1"),
        ])
    }

    #[test]
    fn dictionary_breaks_p1_requests() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P1, 11);
        let (_, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let attacker = DictionaryAttacker::new(vocabulary());
        match attacker.attack_package(&pkg) {
            DictionaryAttackOutcome::RecoveredRequest { attributes, unnamed_hashes, .. } => {
                assert_eq!(unnamed_hashes, 0, "vocabulary covers the request");
                let recovered: std::collections::BTreeSet<_> =
                    attributes.iter().map(|a| a.hash()).collect();
                for a in request().necessary() {
                    assert!(recovered.contains(&a.hash()));
                }
            }
            other => panic!("P1 must fall to dictionary profiling, got {other:?}"),
        }
    }

    #[test]
    fn dictionary_inconclusive_on_p2_package_alone() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P2, 11);
        let (_, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let attacker = DictionaryAttacker::new(vocabulary());
        match attacker.attack_package(&pkg) {
            DictionaryAttackOutcome::Inconclusive { candidate_keys } => {
                assert!(candidate_keys >= 1);
            }
            other => panic!("P2 package alone must stay inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn ack_oracle_unmasks_p2_when_reply_observed() {
        // Our measured deviation from the paper's Table II: with a small
        // dictionary AND an observed matching reply, the predefined ack
        // tag acts as a confirmation oracle even for Protocol 2.
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P2, 11);
        let (_, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let responder = Responder::new(1, matching_profile(), &config);
        let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut r) else {
            panic!("matching user replies");
        };
        let attacker = DictionaryAttacker::new(vocabulary());
        let unmasked = attacker.attack_reply(&pkg, &reply);
        assert!(!unmasked.is_empty(), "the ack oracle must confirm at least one candidate");
    }

    #[test]
    fn dictionary_useless_without_coverage() {
        // If the request contains attributes outside the vocabulary, the
        // attacker cannot verify P1 packages.
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P1, 11);
        let secret_request =
            RequestProfile::exact(vec![attr("secret", "handshake"), attr("secret", "password")])
                .unwrap();
        let (_, pkg) = Initiator::create(&secret_request, 0, &config, 0, &mut r);
        let attacker = DictionaryAttacker::new(vocabulary());
        match attacker.attack_package(&pkg) {
            DictionaryAttackOutcome::NotCovered | DictionaryAttackOutcome::Inconclusive { .. } => {}
            DictionaryAttackOutcome::RecoveredRequest { .. } => {
                panic!("cannot recover attributes outside the vocabulary")
            }
        }
    }

    #[test]
    fn cheater_cannot_forge_acks() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P2, 11);
        let (mut initiator, _) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let cheater = CheatingResponder { id: 66 };
        let forged = cheater.forge_reply(initiator.request_id(), 5, &mut r);
        assert!(initiator.process_reply(&forged, 1_000).is_empty());
        assert_eq!(initiator.reject_log().no_valid_ack, 1);
    }

    #[test]
    fn mitm_substitution_neutralized() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P2, 11);
        let (mut initiator, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let mitm = MitmAttacker;
        let forged = mitm.substitute_message(&pkg, &mut r);
        // The matching user processes the forged package...
        let responder = Responder::new(1, matching_profile(), &config);
        match responder.handle(&forged, 100, &mut r) {
            ResponderOutcome::Reply { reply, sessions, .. } => {
                // ...but the recovered x′ is garbage: the initiator
                // rejects the acks, and the attacker cannot predict x′
                // either (it depends on the profile key they lack).
                assert!(initiator.process_reply(&reply, 1_000).is_empty());
                assert_ne!(&sessions[0].x, initiator.x());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn eavesdropper_quantifies_remainder_leak() {
        let mut r = rng();
        let config = ProtocolConfig::new(ProtocolKind::P1, 11);
        let (_, pkg) = Initiator::create(&request(), 0, &config, 0, &mut r);
        let bits = Eavesdropper::remainder_leak_bits(&pkg);
        // 4 attributes × log2(11) ≈ 13.8 bits — far below the 1024 bits
        // of the hashes themselves.
        assert!(bits > 13.0 && bits < 14.0, "{bits}");
        let mut eve = Eavesdropper::new();
        eve.observe_package(&pkg);
        assert_eq!(eve.packages.len(), 1);
    }
}
