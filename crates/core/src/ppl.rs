//! Privacy-protection-level (PPL) probes — the machinery behind Tables I
//! and II of the paper.
//!
//! Definition 3 grades what an observer `v` can learn about a profile
//! `A`: PPL0 (the full profile), PPL1 (the intersection with their own),
//! PPL2 (the α necessary attributes plus the ≥β fact), PPL3 (nothing).
//! Protocol 3 additionally offers ϕ-entropy bounds.
//!
//! Instead of restating the paper's tables, each cell is *measured*: a
//! probe runs the protocol with instrumented parties/adversaries and
//! asserts what was and was not learned. The bench binaries print the
//! verified tables; any deviation found by the probes (there is one — see
//! [`measured_deviations`]) is reported alongside.

use crate::adversary::{DictionaryAttackOutcome, DictionaryAttacker};
use crate::protocol::{Initiator, ProtocolConfig, ProtocolKind, Responder, ResponderOutcome};
use msb_profile::entropy::EntropyModel;
use msb_profile::{Attribute, Profile, RequestProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// A privacy protection level (paper Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PplLevel {
    /// The observer learns the full profile.
    L0,
    /// The observer learns the intersection with their own profile.
    L1,
    /// The observer learns the necessary attributes and the ≥β fact.
    L2,
    /// The observer learns nothing.
    L3,
    /// Leakage bounded by the user-chosen entropy budget ϕ.
    PhiEntropy,
}

impl std::fmt::Display for PplLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PplLevel::L0 => write!(f, "0"),
            PplLevel::L1 => write!(f, "1"),
            PplLevel::L2 => write!(f, "2"),
            PplLevel::L3 => write!(f, "3"),
            PplLevel::PhiEntropy => write!(f, "ϕ-entropy"),
        }
    }
}

/// One verified table row.
#[derive(Debug, Clone)]
pub struct PplRow {
    /// Row label (protocol or baseline name).
    pub scheme: String,
    /// Cell values, index-aligned with the table's column headers.
    pub cells: Vec<String>,
}

/// A rendered, probe-verified table.
#[derive(Debug, Clone)]
pub struct PplTable {
    /// Table caption.
    pub caption: &'static str,
    /// Column headers.
    pub headers: Vec<&'static str>,
    /// Rows.
    pub rows: Vec<PplRow>,
}

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

fn closed_world() -> Vec<Attribute> {
    let mut v = vec![attr("profession", "engineer"), attr("profession", "doctor")];
    for i in 0..8 {
        v.push(attr("interest", &format!("topic-{i}")));
    }
    v
}

fn probe_request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("profession", "engineer")],
        vec![attr("interest", "topic-0"), attr("interest", "topic-1"), attr("interest", "topic-2")],
        2,
    )
    .unwrap()
}

fn matching_profile() -> Profile {
    Profile::from_attributes(vec![
        attr("profession", "engineer"),
        attr("interest", "topic-0"),
        attr("interest", "topic-1"),
    ])
}

fn unmatching_profile() -> Profile {
    Profile::from_attributes(vec![attr("interest", "topic-7"), attr("city", "elsewhere")])
}

fn entropy_model() -> EntropyModel {
    EntropyModel::from_counts(
        closed_world()
            .into_iter()
            .map(|a| (a.category().to_string(), a.value().to_string(), 10u64)),
    )
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(31337)
}

/// What the matching user learns about the request profile `A_I` in the
/// HBC model — column (A_I, v_M) of Table I.
pub fn probe_initiator_privacy_vs_matcher(kind: ProtocolKind) -> PplLevel {
    let mut r = rng();
    let config = ProtocolConfig::new(kind, 11);
    let request = probe_request();
    let (_, pkg) = Initiator::create(&request, 0, &config, 0, &mut r);
    let responder = Responder::new(1, matching_profile(), &config);
    let outcome = responder.handle(&pkg, 100, &mut r);
    let ResponderOutcome::Reply { sessions, verified, .. } = outcome else {
        panic!("matching user must be able to reply");
    };
    // Mechanically, the recovered vector always equals H_t for the true
    // candidate…
    let truth: Vec<_> = request.vector().full();
    assert!(sessions.iter().any(|s| s.recovered == truth));
    // …but only a *verified* recovery is knowledge (Protocol 1). Without
    // the confirmation the responder cannot distinguish the true vector
    // from any other candidate, so nothing is provably learned.
    if verified {
        PplLevel::L1
    } else {
        PplLevel::L3
    }
}

/// What an unmatching user learns about `A_I` — column (A_I, v_U).
pub fn probe_initiator_privacy_vs_unmatcher(kind: ProtocolKind) -> PplLevel {
    let mut r = rng();
    let config = ProtocolConfig::new(kind, 11);
    let (_, pkg) = Initiator::create(&probe_request(), 0, &config, 0, &mut r);
    let responder = Responder::new(2, unmatching_profile(), &config);
    match responder.handle(&pkg, 100, &mut r) {
        ResponderOutcome::NotCandidate | ResponderOutcome::NoVerifiedMatch => PplLevel::L3,
        ResponderOutcome::Reply { sessions, verified, .. } => {
            // Collision-induced gambles never verify and never equal H_t.
            assert!(!verified);
            let truth = probe_request().vector().full();
            assert!(sessions.iter().all(|s| s.recovered != truth));
            PplLevel::L3
        }
        ResponderOutcome::Expired => panic!("not expired"),
    }
}

/// What the initiator learns about a matching user's profile `A_M` —
/// column (A_M, v_I).
pub fn probe_matcher_privacy_vs_initiator(kind: ProtocolKind) -> PplLevel {
    let mut r = rng();
    let config = ProtocolConfig::new(kind, 11);
    let (mut initiator, pkg) = Initiator::create(&probe_request(), 0, &config, 0, &mut r);
    let responder = Responder::new(1, matching_profile(), &config);
    let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut r) else {
        panic!("matching user must reply");
    };
    let confirmed = initiator.process_reply(&reply, 1_000);
    assert_eq!(confirmed.len(), 1);
    // The valid ack proves: responder holds the α necessary attributes
    // and at least β optional ones. That is exactly PPL2 — not the full
    // profile (the reply carries no attribute material at all).
    PplLevel::L2
}

/// What the initiator learns about an unmatching user's profile `A_U` —
/// column (A_U, v_I).
pub fn probe_unmatcher_privacy_vs_initiator(kind: ProtocolKind) -> PplLevel {
    let mut r = rng();
    let config = ProtocolConfig::new(kind, 11);
    let (mut initiator, pkg) = Initiator::create(&probe_request(), 0, &config, 0, &mut r);
    let responder = Responder::new(2, unmatching_profile(), &config);
    match responder.handle(&pkg, 100, &mut r) {
        ResponderOutcome::NotCandidate | ResponderOutcome::NoVerifiedMatch => PplLevel::L3,
        ResponderOutcome::Reply { reply, .. } => {
            assert!(initiator.process_reply(&reply, 1_000).is_empty());
            PplLevel::L3
        }
        ResponderOutcome::Expired => panic!("not expired"),
    }
}

/// Table I: verified protection levels in the HBC model, plus the paper's
/// PSI/PCSI reference rows.
pub fn table1() -> PplTable {
    let mut rows = Vec::new();
    for (name, kind) in [
        ("Protocol 1", ProtocolKind::P1),
        ("Protocol 2", ProtocolKind::P2),
        ("Protocol 3", ProtocolKind::P3),
    ] {
        rows.push(PplRow {
            scheme: name.to_string(),
            cells: vec![
                probe_initiator_privacy_vs_matcher(kind).to_string(),
                probe_initiator_privacy_vs_unmatcher(kind).to_string(),
                probe_matcher_privacy_vs_initiator(kind).to_string(),
                probe_unmatcher_privacy_vs_initiator(kind).to_string(),
            ],
        });
    }
    // Reference rows from the paper (these schemes are implemented in
    // msb-baselines; their levels are structural, not probed here).
    rows.push(PplRow {
        scheme: "PSI".to_string(),
        cells: vec!["3".into(), "3".into(), "1".into(), "1".into()],
    });
    rows.push(PplRow {
        scheme: "PCSI".to_string(),
        cells: vec!["3".into(), "3".into(), "|A_I ∩ A_U|".into(), "|A_I ∩ A_U|".into()],
    });
    PplTable {
        caption: "Table I — privacy protection levels, HBC model (probe-verified)",
        headers: vec!["(A_I, v_M)", "(A_I, v_U)", "(A_M, v_I)", "(A_U, v_I)"],
        rows,
    }
}

/// Dictionary probe for column (A_I, v′_P): a malicious participant with
/// the full vocabulary attacking the request package.
pub fn probe_dictionary_vs_request(kind: ProtocolKind) -> PplLevel {
    let mut r = rng();
    let config = ProtocolConfig::new(kind, 11);
    let (_, pkg) = Initiator::create(&probe_request(), 0, &config, 0, &mut r);
    let attacker = DictionaryAttacker::new(closed_world());
    match attacker.attack_package(&pkg) {
        DictionaryAttackOutcome::RecoveredRequest { attributes, .. } => {
            assert_eq!(kind, ProtocolKind::P1, "only P1 has the confirmation oracle");
            let recovered: BTreeSet<_> = attributes.iter().map(Attribute::hash).collect();
            let requested: BTreeSet<_> = probe_request()
                .necessary()
                .iter()
                .chain(probe_request().optional())
                .map(Attribute::hash)
                .collect();
            assert_eq!(recovered, requested, "full request profile exposed");
            PplLevel::L0
        }
        DictionaryAttackOutcome::Inconclusive { .. } => PplLevel::L3,
        DictionaryAttackOutcome::NotCovered => PplLevel::L3,
    }
}

/// Dictionary probe for column (A_M, v′_I): a malicious initiator
/// unmasking the attributes a matching candidate gambled. For Protocol 3
/// the leak is verified to respect the responder's ϕ budget.
pub fn probe_dictionary_initiator_vs_matcher(kind: ProtocolKind, phi: f64) -> PplLevel {
    let mut r = rng();
    let config = ProtocolConfig::new(kind, 11);
    let (_, pkg) = Initiator::create(&probe_request(), 0, &config, 0, &mut r);
    let model = entropy_model();
    let mut responder = Responder::new(1, matching_profile(), &config);
    if kind == ProtocolKind::P3 {
        responder = responder.with_entropy_budget(model.clone(), phi);
    }
    match responder.handle(&pkg, 100, &mut r) {
        ResponderOutcome::Reply { reply, .. } => {
            let attacker = DictionaryAttacker::new(closed_world());
            let unmasked = attacker.attack_reply(&pkg, &reply);
            if kind == ProtocolKind::P3 {
                // Every unmasked gamble stays within the entropy budget.
                for attrs in &unmasked {
                    let leak = model.profile_entropy(attrs.iter());
                    assert!(leak <= phi + 1e-9, "P3 leak {leak} bits exceeds ϕ = {phi}");
                }
                PplLevel::PhiEntropy
            } else {
                assert!(!unmasked.is_empty(), "P1/P2 gambles are unmasked");
                PplLevel::L2
            }
        }
        // With a tight budget the responder may refuse to gamble at all.
        ResponderOutcome::NotCandidate if kind == ProtocolKind::P3 => PplLevel::PhiEntropy,
        other => panic!("unexpected outcome {other:?}"),
    }
}

/// Table II: verified protection levels in the malicious model with a
/// small dictionary.
pub fn table2() -> PplTable {
    let phi = 20.0;
    let rows = vec![
        PplRow {
            scheme: "Protocol 1".to_string(),
            cells: vec![
                probe_dictionary_vs_request(ProtocolKind::P1).to_string(),
                probe_dictionary_initiator_vs_matcher(ProtocolKind::P1, phi).to_string(),
                "2".into(), // (A_M, v'_P): P1's oracle also serves eavesdroppers
                "3".into(),
                "3".into(),
            ],
        },
        PplRow {
            scheme: "Protocol 2".to_string(),
            cells: vec![
                probe_dictionary_vs_request(ProtocolKind::P2).to_string(),
                probe_dictionary_initiator_vs_matcher(ProtocolKind::P2, phi).to_string(),
                "3 (paper; see deviations)".into(),
                "3 (noncand) / A_c (cand)".into(),
                "3".into(),
            ],
        },
        PplRow {
            scheme: "Protocol 3".to_string(),
            cells: vec![
                probe_dictionary_vs_request(ProtocolKind::P3).to_string(),
                probe_dictionary_initiator_vs_matcher(ProtocolKind::P3, phi).to_string(),
                "3 (paper; see deviations)".into(),
                "3 (noncand) / ϕ (cand)".into(),
                "3".into(),
            ],
        },
    ];
    PplTable {
        caption: "Table II — privacy protection levels, malicious model with small dictionary",
        headers: vec!["(A_I, v'_P)", "(A_M, v'_I)", "(A_M, v'_P)", "(A_U, v'_I)", "(A_U, v'_P)"],
        rows,
    }
}

/// Deviations our probes measured from the paper's claimed levels.
pub fn measured_deviations() -> Vec<String> {
    let mut out = Vec::new();
    // The ack-oracle finding (see adversary::tests::ack_oracle_…):
    // Protocol 2/3 claim PPL3 for (A_I, v'_P) and (A_M, v'_P), but a
    // small-dictionary eavesdropper who also observes a *matching reply*
    // can use the predefined ack tag as a confirmation oracle.
    let mut r = rng();
    let config = ProtocolConfig::new(ProtocolKind::P2, 11);
    let (_, pkg) = Initiator::create(&probe_request(), 0, &config, 0, &mut r);
    let responder = Responder::new(1, matching_profile(), &config);
    if let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut r) {
        let attacker = DictionaryAttacker::new(closed_world());
        let unmasked = attacker.attack_reply(&pkg, &reply);
        if !unmasked.is_empty() {
            out.push(
                "Measured: with a small dictionary AND an observed matching reply, the \
                 predefined ack tag is a confirmation oracle — (A_I, v'_P) and (A_M, v'_P) \
                 degrade from the paper's claimed PPL3 for Protocols 2/3. The paper's claim \
                 holds only while no matching user replies or the dictionary is large."
                    .to_string(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        let cells: Vec<&Vec<String>> = t.rows.iter().map(|r| &r.cells).collect();
        assert_eq!(cells[0], &vec!["1", "3", "2", "3"]); // Protocol 1
        assert_eq!(cells[1], &vec!["3", "3", "2", "3"]); // Protocol 2
        assert_eq!(cells[2], &vec!["3", "3", "2", "3"]); // Protocol 3
    }

    #[test]
    fn table2_key_cells_match_paper() {
        let t = table2();
        assert_eq!(t.rows[0].cells[0], "0"); // P1 falls to dictionary
        assert_eq!(t.rows[1].cells[0], "3"); // P2 request stays hidden
        assert_eq!(t.rows[0].cells[1], "2");
        assert_eq!(t.rows[2].cells[1], "ϕ-entropy"); // P3 bounds the leak
    }

    #[test]
    fn deviations_are_detected() {
        let d = measured_deviations();
        assert_eq!(d.len(), 1, "the ack-oracle deviation must be measured");
    }

    #[test]
    fn phi_zero_means_no_gamble() {
        assert_eq!(
            probe_dictionary_initiator_vs_matcher(ProtocolKind::P3, 0.0),
            PplLevel::PhiEntropy
        );
    }
}
