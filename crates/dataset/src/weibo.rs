//! The synthetic Weibo population generator.
//!
//! Populations are persistable: [`WeiboConfig`], [`WeiboUser`] and
//! [`WeiboDataset`] carry canonical [`msb_wire`] encodings (users and
//! whole datasets are framed [`Message`]s), so a generated population
//! can be written to disk and reloaded bit-identically — the same codec
//! every protocol message uses, not a parallel serde path.

use crate::zipf::Zipf;
use msb_profile::attribute::Attribute;
use msb_profile::entropy::EntropyModel;
use msb_profile::profile::Profile;
use msb_wire::{DecodeError, FrameKind, Message, Reader, WireDecode, WireEncode, Writer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Generation parameters, defaulting to the published Tencent Weibo
/// marginals (scaled population).
#[derive(Debug, Clone, PartialEq)]
pub struct WeiboConfig {
    /// Number of users to generate (the paper's dump has 2.32 M; the
    /// evaluation subsets are tens of thousands).
    pub users: usize,
    /// Tag vocabulary size (paper: 560 419).
    pub tag_vocabulary: u64,
    /// Keyword vocabulary size (paper: 713 747).
    pub keyword_vocabulary: u64,
    /// Zipf exponent for tag/keyword popularity.
    pub zipf_exponent: f64,
    /// Minimum tags per user (the paper's Fig. 5 support starts at 2).
    pub min_tags: usize,
    /// Mean tags per user (paper: 6) — calibrates the count distribution.
    pub mean_tags: f64,
    /// Maximum tags per user (paper: 20).
    pub max_tags: usize,
    /// Mean keywords per user (paper: 7).
    pub mean_keywords: f64,
    /// Maximum keywords per user (paper: 129).
    pub max_keywords: usize,
}

impl Default for WeiboConfig {
    fn default() -> Self {
        WeiboConfig {
            users: 50_000,
            tag_vocabulary: 560_419,
            keyword_vocabulary: 713_747,
            zipf_exponent: 1.08,
            min_tags: 2,
            mean_tags: 6.0,
            max_tags: 20,
            mean_keywords: 7.0,
            max_keywords: 129,
        }
    }
}

impl WeiboConfig {
    /// A small population for unit tests and doc examples.
    pub fn small() -> Self {
        WeiboConfig { users: 2_000, ..Self::default() }
    }

    /// The evaluation-scale population used by the figure harnesses.
    pub fn evaluation() -> Self {
        WeiboConfig { users: 100_000, ..Self::default() }
    }
}

/// One synthetic user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeiboUser {
    /// Stable user id.
    pub id: u32,
    /// Birth year.
    pub birth_year: u16,
    /// Gender flag (the dump has a binary field).
    pub female: bool,
    /// Tag ids (sorted, unique).
    pub tags: Vec<u64>,
    /// Keyword ids (sorted, unique).
    pub keywords: Vec<u64>,
}

impl WeiboUser {
    /// The user's tag attributes.
    pub fn tag_attributes(&self) -> Vec<Attribute> {
        self.tags.iter().map(|t| Attribute::new("tag", format!("t{t}"))).collect()
    }

    /// The user's tag+keyword attributes.
    pub fn full_attributes(&self) -> Vec<Attribute> {
        let mut attrs = self.tag_attributes();
        attrs.extend(self.keywords.iter().map(|k| Attribute::new("kw", format!("k{k}"))));
        attrs
    }

    /// The user's tag-only profile (the evaluation's default granularity).
    pub fn profile(&self) -> Profile {
        Profile::from_attributes(self.tag_attributes())
    }

    /// Profile including keywords.
    pub fn full_profile(&self) -> Profile {
        Profile::from_attributes(self.full_attributes())
    }

    /// Signature for collision counting: the sorted tag ids
    /// (plus keyword ids when `with_keywords`).
    pub fn signature(&self, with_keywords: bool) -> Vec<u64> {
        let mut sig = self.tags.clone();
        if with_keywords {
            sig.push(u64::MAX); // separator
            sig.extend(&self.keywords);
        }
        sig
    }
}

/// A generated population.
#[derive(Debug, Clone, PartialEq)]
pub struct WeiboDataset {
    config: WeiboConfig,
    users: Vec<WeiboUser>,
}

impl WeiboDataset {
    /// Generates a deterministic population from a seed.
    pub fn generate(config: &WeiboConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let tag_zipf = Zipf::new(config.tag_vocabulary, config.zipf_exponent);
        let kw_zipf = Zipf::new(config.keyword_vocabulary, config.zipf_exponent);
        let tag_counts = CountDistribution::calibrated(
            config.min_tags.max(1),
            config.mean_tags,
            config.max_tags,
        );
        let kw_counts = CountDistribution::calibrated(1, config.mean_keywords, config.max_keywords);

        let users = (0..config.users)
            .map(|id| {
                let n_tags = tag_counts.sample(&mut rng);
                let n_kws = kw_counts.sample(&mut rng);
                let tags = draw_distinct(&tag_zipf, n_tags, &mut rng);
                let keywords = draw_distinct(&kw_zipf, n_kws, &mut rng);
                WeiboUser {
                    id: id as u32,
                    birth_year: rng.gen_range(1950..=2005),
                    female: rng.gen_bool(0.5),
                    tags,
                    keywords,
                }
            })
            .collect();
        WeiboDataset { config: config.clone(), users }
    }

    /// Assembles a dataset from already-built parts (loading persisted
    /// populations, carving sub-populations).
    pub fn from_parts(config: WeiboConfig, users: Vec<WeiboUser>) -> Self {
        WeiboDataset { config, users }
    }

    /// The generated users.
    pub fn users(&self) -> &[WeiboUser] {
        &self.users
    }

    /// The generating configuration.
    pub fn config(&self) -> &WeiboConfig {
        &self.config
    }

    /// Mean tag count across the population.
    pub fn mean_tag_count(&self) -> f64 {
        self.users.iter().map(|u| u.tags.len()).sum::<usize>() as f64
            / self.users.len().max(1) as f64
    }

    /// Users with exactly `k` tags (the paper's "52 248 users with 6
    /// attributes" slice for Fig. 6a).
    pub fn users_with_tag_count(&self, k: usize) -> Vec<&WeiboUser> {
        self.users.iter().filter(|u| u.tags.len() == k).collect()
    }

    /// A deterministic random sample of `n` users (Fig. 6b's "1000
    /// random users").
    pub fn sample_users(&self, n: usize, seed: u64) -> Vec<&WeiboUser> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.users.len()).collect();
        // Partial Fisher–Yates.
        let n = n.min(idx.len());
        for i in 0..n {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..n].iter().map(|&i| &self.users[i]).collect()
    }

    /// Empirical entropy model over tag values (drives Protocol 3's ϕ).
    pub fn entropy_model(&self) -> EntropyModel {
        let mut model = EntropyModel::new();
        for u in &self.users {
            for t in &u.tags {
                model.observe("tag", &format!("t{t}"));
            }
            for k in &u.keywords {
                model.observe("kw", &format!("k{k}"));
            }
        }
        model
    }
}

/// Writes an `f64` as its IEEE-754 bit pattern (big-endian u64).
fn put_f64(w: &mut Writer, v: f64) {
    w.u64(v.to_bits());
}

/// Reads an `f64`, rejecting NaN/infinities (no generated marginal is
/// ever non-finite, so a non-finite value can only be corruption).
fn take_f64(r: &mut Reader<'_>) -> Result<f64, DecodeError> {
    let at = r.offset();
    let v = f64::from_bits(r.u64()?);
    if !v.is_finite() {
        return Err(r.invalid(at, "non-finite float"));
    }
    Ok(v)
}

/// Reads a sorted-unique id block (`u32 count` then `count` u64 ids).
fn take_id_block(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<u64>, DecodeError> {
    let count = r.u32()? as usize;
    let mut ids = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let at = r.offset();
        let id = r.u64()?;
        if let Some(&last) = ids.last() {
            if id <= last {
                return Err(r.invalid(at, what));
            }
        }
        ids.push(id);
    }
    Ok(ids)
}

impl WireEncode for WeiboConfig {
    fn encoded_len(&self) -> usize {
        9 * 8
    }

    fn encode_into(&self, w: &mut Writer) {
        w.u64(self.users as u64);
        w.u64(self.tag_vocabulary);
        w.u64(self.keyword_vocabulary);
        put_f64(w, self.zipf_exponent);
        w.u64(self.min_tags as u64);
        put_f64(w, self.mean_tags);
        w.u64(self.max_tags as u64);
        put_f64(w, self.mean_keywords);
        w.u64(self.max_keywords as u64);
    }
}

impl WireDecode for WeiboConfig {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let start = r.offset();
        let users = r.u64()? as usize;
        let tag_vocabulary = r.u64()?;
        let keyword_vocabulary = r.u64()?;
        let zipf_exponent = take_f64(r)?;
        let min_tags = r.u64()? as usize;
        let mean_tags = take_f64(r)?;
        let max_tags = r.u64()? as usize;
        let mean_keywords = take_f64(r)?;
        let max_keywords = r.u64()? as usize;
        // Reject configurations [`WeiboDataset::generate`] would assert
        // on, so a decoded config is always generatable.
        if tag_vocabulary == 0 || keyword_vocabulary == 0 {
            return Err(r.invalid(start, "empty vocabulary"));
        }
        if zipf_exponent <= 0.0 {
            return Err(r.invalid(start, "non-positive Zipf exponent"));
        }
        let min_eff = min_tags.max(1) as f64;
        if max_tags < min_tags.max(1) || mean_tags < min_eff || mean_tags > max_tags as f64 {
            return Err(r.invalid(start, "tag count marginals inconsistent"));
        }
        if max_keywords < 1 || mean_keywords < 1.0 || mean_keywords > max_keywords as f64 {
            return Err(r.invalid(start, "keyword count marginals inconsistent"));
        }
        Ok(WeiboConfig {
            users,
            tag_vocabulary,
            keyword_vocabulary,
            zipf_exponent,
            min_tags,
            mean_tags,
            max_tags,
            mean_keywords,
            max_keywords,
        })
    }
}

impl WireEncode for WeiboUser {
    fn encoded_len(&self) -> usize {
        4 + 2 + 1 + 4 + 8 * self.tags.len() + 4 + 8 * self.keywords.len()
    }

    fn encode_into(&self, w: &mut Writer) {
        w.u32(self.id);
        w.u16(self.birth_year);
        w.u8(self.female as u8);
        w.u32(self.tags.len() as u32);
        for &t in &self.tags {
            w.u64(t);
        }
        w.u32(self.keywords.len() as u32);
        for &k in &self.keywords {
            w.u64(k);
        }
    }
}

impl WireDecode for WeiboUser {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let id = r.u32()?;
        let birth_year = r.u16()?;
        let female_at = r.offset();
        let female = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(r.invalid(female_at, "gender flag not 0/1")),
        };
        let tags = take_id_block(r, "tag ids not strictly increasing")?;
        let keywords = take_id_block(r, "keyword ids not strictly increasing")?;
        Ok(WeiboUser { id, birth_year, female, tags, keywords })
    }
}

impl Message for WeiboUser {
    const KIND: FrameKind = FrameKind::WeiboUser;
}

impl WireEncode for WeiboDataset {
    fn encoded_len(&self) -> usize {
        self.config.encoded_len()
            + 4
            + self.users.iter().map(WireEncode::encoded_len).sum::<usize>()
    }

    fn encode_into(&self, w: &mut Writer) {
        self.config.encode_into(w);
        assert!(self.users.len() <= u32::MAX as usize, "too many users for u32 count");
        w.u32(self.users.len() as u32);
        for u in &self.users {
            u.encode_into(w);
        }
    }
}

impl WireDecode for WeiboDataset {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = WeiboConfig::decode_from(r)?;
        let count = r.u32()? as usize;
        let mut users = Vec::with_capacity(count.min(65536));
        for _ in 0..count {
            users.push(WeiboUser::decode_from(r)?);
        }
        Ok(WeiboDataset { config, users })
    }
}

impl Message for WeiboDataset {
    const KIND: FrameKind = FrameKind::WeiboDataset;
}

/// Truncated-geometric attribute-count distribution `P(k) ∝ q^k`,
/// `k ∈ min..=max`, with `q` calibrated so the mean matches the target.
#[derive(Debug, Clone)]
struct CountDistribution {
    min: usize,
    cumulative: Vec<f64>,
}

impl CountDistribution {
    fn calibrated(min: usize, target_mean: f64, max: usize) -> Self {
        assert!(min >= 1 && max >= min);
        assert!(target_mean >= min as f64 && target_mean <= max as f64);
        // Bisection on q: mean is monotone increasing in q.
        let mean_for = |q: f64| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for k in min..=max {
                let w = q.powi(k as i32);
                num += k as f64 * w;
                den += w;
            }
            num / den
        };
        let (mut lo, mut hi) = (1e-6, 4.0);
        for _ in 0..80 {
            let mid = (lo + hi) / 2.0;
            if mean_for(mid) < target_mean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let q = (lo + hi) / 2.0;
        let mut cumulative = Vec::with_capacity(max - min + 1);
        let mut acc = 0.0;
        for k in min..=max {
            acc += q.powi(k as i32);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        CountDistribution { min, cumulative }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let idx = match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN")) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        };
        self.min + idx
    }
}

/// Draws `n` distinct Zipf ranks.
fn draw_distinct<R: Rng + ?Sized>(zipf: &Zipf, n: usize, rng: &mut R) -> Vec<u64> {
    let mut set = BTreeSet::new();
    let mut guard = 0usize;
    while set.len() < n && guard < n * 1000 {
        set.insert(zipf.sample(rng));
        guard += 1;
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> WeiboDataset {
        WeiboDataset::generate(&WeiboConfig::small(), 42)
    }

    #[test]
    fn deterministic_generation() {
        let d1 = WeiboDataset::generate(&WeiboConfig::small(), 9);
        let d2 = WeiboDataset::generate(&WeiboConfig::small(), 9);
        assert_eq!(d1.users(), d2.users());
        let d3 = WeiboDataset::generate(&WeiboConfig::small(), 10);
        assert_ne!(d1.users(), d3.users());
    }

    #[test]
    fn marginals_match_paper() {
        let d = dataset();
        let mean_tags = d.mean_tag_count();
        assert!((mean_tags - 6.0).abs() < 0.8, "mean tags should be ≈ 6, got {mean_tags}");
        let max_tags = d.users().iter().map(|u| u.tags.len()).max().unwrap();
        assert!(max_tags <= 20);
        let mean_kw: f64 = d.users().iter().map(|u| u.keywords.len()).sum::<usize>() as f64
            / d.users().len() as f64;
        assert!((mean_kw - 7.0).abs() < 1.0, "mean keywords ≈ 7, got {mean_kw}");
        let max_kw = d.users().iter().map(|u| u.keywords.len()).max().unwrap();
        assert!(max_kw <= 129);
    }

    #[test]
    fn tags_sorted_unique_nonempty() {
        for u in dataset().users() {
            assert!(!u.tags.is_empty());
            assert!(u.tags.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn majority_unique_profiles() {
        // The paper's headline: > 90 % unique profiles (Fig. 4).
        let d = dataset();
        let mut sigs: Vec<Vec<u64>> = d.users().iter().map(|u| u.signature(false)).collect();
        sigs.sort_unstable();
        let total = sigs.len();
        let mut unique = 0usize;
        let mut i = 0;
        while i < total {
            let mut j = i;
            while j < total && sigs[j] == sigs[i] {
                j += 1;
            }
            if j - i == 1 {
                unique += 1;
            }
            i = j;
        }
        let frac = unique as f64 / total as f64;
        assert!(frac > 0.85, "unique fraction {frac}");
    }

    #[test]
    fn profile_roundtrip() {
        let d = dataset();
        let u = &d.users()[0];
        let p = u.profile();
        assert_eq!(p.len(), u.tags.len());
        let fp = u.full_profile();
        assert_eq!(fp.len(), u.tags.len() + u.keywords.len());
    }

    #[test]
    fn users_with_tag_count_filter() {
        let d = dataset();
        for u in d.users_with_tag_count(6) {
            assert_eq!(u.tags.len(), 6);
        }
    }

    #[test]
    fn sample_users_distinct_and_sized() {
        let d = dataset();
        let s = d.sample_users(100, 5);
        assert_eq!(s.len(), 100);
        let ids: BTreeSet<u32> = s.iter().map(|u| u.id).collect();
        assert_eq!(ids.len(), 100, "sampling without replacement");
    }

    #[test]
    fn entropy_model_has_tag_entropy() {
        let d = dataset();
        let m = d.entropy_model();
        let s = m.attribute_entropy("tag");
        assert!(s > 1.0, "tag entropy should be substantial, got {s}");
    }

    #[test]
    fn count_distribution_mean_calibration() {
        let cd = CountDistribution::calibrated(1, 6.0, 20);
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| cd.sample(&mut rng)).sum::<usize>() as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.3, "calibrated mean {mean}");
    }

    #[test]
    fn user_wire_roundtrip() {
        let d = dataset();
        for u in d.users().iter().take(50) {
            let frame = Message::encode(u);
            assert_eq!(frame.len(), u.frame_len());
            assert_eq!(&WeiboUser::decode(&frame).unwrap(), u);
        }
    }

    #[test]
    fn dataset_wire_roundtrip_is_bit_identical() {
        let d = WeiboDataset::generate(&WeiboConfig { users: 200, ..WeiboConfig::default() }, 11);
        let frame = Message::encode(&d);
        assert_eq!(frame.len(), d.frame_len());
        let back = WeiboDataset::decode(&frame).unwrap();
        assert_eq!(back, d);
        assert_eq!(Message::encode(&back), frame, "re-encoding must be bit-identical");
    }

    #[test]
    fn user_decode_rejects_unsorted_and_bad_gender() {
        let u = dataset().users()[0].clone();
        let mut body = u.encode_body();
        // Gender flag.
        body[6] = 3;
        assert!(matches!(
            WeiboUser::decode_body(&body),
            Err(DecodeError::Invalid { offset: 6, what: "gender flag not 0/1" })
        ));
        // Swap the first two tag ids (they are strictly increasing).
        let mut body = u.encode_body();
        assert!(u.tags.len() >= 2, "seed user has several tags");
        let a = 11; // id(4) + year(2) + flag(1) + count(4)
        let (x, y) = (body[a..a + 8].to_vec(), body[a + 8..a + 16].to_vec());
        body[a..a + 8].copy_from_slice(&y);
        body[a + 8..a + 16].copy_from_slice(&x);
        assert!(matches!(
            WeiboUser::decode_body(&body),
            Err(DecodeError::Invalid { what: "tag ids not strictly increasing", .. })
        ));
    }

    #[test]
    fn config_decode_rejects_ungeneratable_marginals() {
        let cfg = WeiboConfig::default();
        let good = cfg.encode_body();
        assert_eq!(WeiboConfig::decode_body(&good).unwrap(), cfg);

        // mean_tags above max_tags.
        let mut bad = good.clone();
        bad[40..48].copy_from_slice(&999.0f64.to_bits().to_be_bytes());
        assert!(matches!(
            WeiboConfig::decode_body(&bad),
            Err(DecodeError::Invalid { what: "tag count marginals inconsistent", .. })
        ));

        // Non-finite Zipf exponent.
        let mut bad = good.clone();
        bad[24..32].copy_from_slice(&f64::NAN.to_bits().to_be_bytes());
        assert!(matches!(
            WeiboConfig::decode_body(&bad),
            Err(DecodeError::Invalid { what: "non-finite float", .. })
        ));

        // A decoded config must generate without panicking.
        let decoded = WeiboConfig::decode_body(&good).unwrap();
        let _ = WeiboDataset::generate(&WeiboConfig { users: 10, ..decoded }, 1);
    }

    #[test]
    fn count_distribution_decreasing_tail() {
        // Fig. 5's shape: fewer users at higher attribute counts (beyond
        // the mode).
        let d = WeiboDataset::generate(&WeiboConfig { users: 20_000, ..WeiboConfig::default() }, 3);
        let hist = {
            let mut h = vec![0usize; 21];
            for u in d.users() {
                h[u.tags.len()] += 1;
            }
            h
        };
        assert!(hist[19] + hist[20] < hist[2] + hist[3], "{hist:?}");
    }
}
