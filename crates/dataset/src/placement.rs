//! Node placement samplers for swarm scenarios.
//!
//! The simulator needs initial positions for thousands of nodes. Three
//! layouts cover the evaluation's needs: a uniform scatter (the MANET
//! literature's default, constant expected density), a Zipf-clustered
//! layout modelling real crowds — a few dense hotspots (malls, campus
//! quads) holding most of the population, a heavy tail of sparse cells —
//! using the same [`Zipf`] popularity law the profile generator uses for
//! tags, and an [`islands`] layout of equal, well-separated discs whose
//! initial connectivity graph is partitioned: the churn scenarios start
//! there so that only mobility plus re-flooding can carry a request
//! across the gaps (see `docs/SIM.md`).
//!
//! All samplers are pure functions of their RNG, so placements are
//! reproducible from a seed and composable with the simulator's own
//! seeded determinism.

use crate::zipf::Zipf;
use rand::Rng;

/// Uniformly random positions in the `width × height` rectangle.
///
/// # Panics
///
/// Panics unless `width` and `height` are strictly positive and finite.
pub fn uniform<R: Rng + ?Sized>(n: usize, width: f64, height: f64, rng: &mut R) -> Vec<(f64, f64)> {
    assert!(width > 0.0 && width.is_finite(), "width must be positive");
    assert!(height > 0.0 && height.is_finite(), "height must be positive");
    (0..n).map(|_| (rng.gen_range(0.0..width), rng.gen_range(0.0..height))).collect()
}

/// Zipf-clustered positions: `clusters` hotspot centers scattered
/// uniformly, each node assigned to a hotspot by a `Zipf(s)` draw (rank 1
/// is the busiest) and placed uniformly within a disc of radius `spread`
/// around it, clamped to the rectangle.
///
/// With `s ≈ 1.2–1.5` the busiest hotspot holds a large constant share
/// of all nodes — the worst case for a spatial index, since query cost
/// follows local density. Benches use this layout to bound hotspot
/// behaviour.
///
/// # Panics
///
/// Panics unless the rectangle is positive and finite, `clusters >= 1`,
/// `spread` is non-negative and finite, and `s > 1` (the [`Zipf`]
/// sampler's requirement).
pub fn zipf_clustered<R: Rng + ?Sized>(
    n: usize,
    width: f64,
    height: f64,
    clusters: usize,
    s: f64,
    spread: f64,
    rng: &mut R,
) -> Vec<(f64, f64)> {
    assert!(width > 0.0 && width.is_finite(), "width must be positive");
    assert!(height > 0.0 && height.is_finite(), "height must be positive");
    assert!(clusters >= 1, "need at least one cluster");
    assert!(spread >= 0.0 && spread.is_finite(), "spread must be non-negative");
    let centers: Vec<(f64, f64)> =
        (0..clusters).map(|_| (rng.gen_range(0.0..width), rng.gen_range(0.0..height))).collect();
    let zipf = Zipf::new(clusters as u64, s);
    (0..n)
        .map(|_| {
            let c = centers[(zipf.sample(rng) - 1) as usize];
            // Uniform in the disc: r = spread·√u keeps area density flat.
            let r = spread * rng.gen_range(0.0..1.0f64).sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let x = (c.0 + r * theta.cos()).clamp(0.0, width);
            let y = (c.1 + r * theta.sin()).clamp(0.0, height);
            (x, y)
        })
        .collect()
}

/// Geometry of an [`islands`] layout, so scenario builders, mobility
/// bounds, and tests agree on the same arena without re-deriving it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslandLayout {
    /// Islands per side of the square grid.
    pub grid: usize,
    /// Radius of each island disc, in meters.
    pub radius: f64,
    /// Arena width = height, in meters.
    pub side: f64,
    /// Center-to-center spacing of adjacent islands, in meters.
    pub pitch: f64,
}

impl IslandLayout {
    /// Computes the layout for `n` nodes over `islands` discs at
    /// `area_per_node` m² of disc area per node (constant density —
    /// what keeps broadcast fan-out independent of swarm size), with
    /// `gap` meters of empty space between adjacent disc rims.
    ///
    /// Islands sit on the smallest square grid that holds them, so the
    /// arena side is `grid · (2·radius + gap)`.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= islands >= 1`, `area_per_node` is positive
    /// and finite, and `gap` is non-negative and finite.
    pub fn compute(n: usize, islands: usize, area_per_node: f64, gap: f64) -> Self {
        assert!(islands >= 1, "need at least one island");
        assert!(n >= islands, "need at least one node per island");
        assert!(area_per_node > 0.0 && area_per_node.is_finite(), "density must be positive");
        assert!(gap >= 0.0 && gap.is_finite(), "gap must be non-negative");
        let per_island = n.div_ceil(islands);
        let radius = (per_island as f64 * area_per_node / std::f64::consts::PI).sqrt();
        let grid = (islands as f64).sqrt().ceil() as usize;
        let pitch = 2.0 * radius + gap;
        IslandLayout { grid, radius, side: grid as f64 * pitch, pitch }
    }

    /// Center of island `i` (row-major on the grid).
    pub fn center(&self, i: usize) -> (f64, f64) {
        let (col, row) = (i % self.grid, i / self.grid);
        ((col as f64 + 0.5) * self.pitch, (row as f64 + 0.5) * self.pitch)
    }
}

/// Positions for `n` nodes split round-robin across `layout`-geometry
/// islands (node `i` lives on island `i % islands`), each placed
/// uniformly inside its island's disc. With a positive gap wider than
/// the radio range, the initial connectivity graph has (at least) one
/// component per island — the starting point of the churn scenarios,
/// where mobility plus re-flooding must bridge the gaps.
///
/// # Panics
///
/// Panics on the same inputs [`IslandLayout::compute`] rejects.
pub fn islands<R: Rng + ?Sized>(
    n: usize,
    islands: usize,
    area_per_node: f64,
    gap: f64,
    rng: &mut R,
) -> (Vec<(f64, f64)>, IslandLayout) {
    let layout = IslandLayout::compute(n, islands, area_per_node, gap);
    let positions = (0..n)
        .map(|i| {
            let c = layout.center(i % islands);
            // Uniform in the disc: r = R·√u keeps area density flat.
            let r = layout.radius * rng.gen_range(0.0..1.0f64).sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            (c.0 + r * theta.cos(), c.1 + r * theta.sin())
        })
        .collect();
    (positions, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_bounds_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = uniform(500, 300.0, 200.0, &mut r1);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|p| (0.0..=300.0).contains(&p.0) && (0.0..=200.0).contains(&p.1)));
        assert_eq!(a, uniform(500, 300.0, 200.0, &mut r2));
    }

    #[test]
    fn uniform_spreads_over_quadrants() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts = uniform(2000, 100.0, 100.0, &mut rng);
        let q1 = pts.iter().filter(|p| p.0 < 50.0 && p.1 < 50.0).count();
        assert!((350..650).contains(&q1), "quadrant share ~25%, got {q1}/2000");
    }

    #[test]
    fn clustered_in_bounds_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = zipf_clustered(800, 500.0, 500.0, 10, 1.3, 40.0, &mut r1);
        assert_eq!(a.len(), 800);
        assert!(a.iter().all(|p| (0.0..=500.0).contains(&p.0) && (0.0..=500.0).contains(&p.1)));
        assert_eq!(a, zipf_clustered(800, 500.0, 500.0, 10, 1.3, 40.0, &mut r2));
    }

    #[test]
    fn clustering_concentrates_mass() {
        // Most nodes sit within `spread` of *some* hotspot, and the
        // busiest hotspot's disc holds far more than a uniform share.
        let mut rng = StdRng::seed_from_u64(21);
        let spread = 30.0;
        let pts = zipf_clustered(3000, 1000.0, 1000.0, 12, 1.4, spread, &mut rng);
        // Recover hotspot discs by brute force: count points per point's
        // neighborhood; a uniform scatter of 3000 over 1e6 m² puts ~8.5
        // nodes in a 30m disc, so dense discs are unambiguous.
        let dense = pts
            .iter()
            .filter(|&&p| {
                let within = pts
                    .iter()
                    .filter(|&&q| ((p.0 - q.0).powi(2) + (p.1 - q.1).powi(2)).sqrt() <= spread)
                    .count();
                within > 100
            })
            .count();
        assert!(dense > 1500, "clustered mass missing: {dense}/3000 in dense discs");
    }

    #[test]
    fn single_cluster_zero_spread_collapses() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = zipf_clustered(50, 100.0, 100.0, 1, 1.5, 0.0, &mut rng);
        assert!(pts.windows(2).all(|w| w[0] == w[1]), "all nodes at the single center");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uniform(1, 0.0, 10.0, &mut rng);
    }

    #[test]
    fn islands_are_partitioned_by_the_gap() {
        let mut rng = StdRng::seed_from_u64(3);
        let gap = 120.0;
        let (pts, layout) = islands(800, 4, 700.0, gap, &mut rng);
        assert_eq!(pts.len(), 800);
        assert_eq!(layout.grid, 2);
        // Every node is inside its island's disc, and nodes of
        // different islands are at least `gap` apart — farther than any
        // plausible radio range, so the initial graph is partitioned.
        for (i, &p) in pts.iter().enumerate() {
            let c = layout.center(i % 4);
            let d = ((p.0 - c.0).powi(2) + (p.1 - c.1).powi(2)).sqrt();
            assert!(d <= layout.radius + 1e-9, "node {i} left its island: {d}");
            assert!(p.0 >= 0.0 && p.0 <= layout.side && p.1 >= 0.0 && p.1 <= layout.side);
        }
        for (i, &p) in pts.iter().enumerate().step_by(97) {
            for (j, &q) in pts.iter().enumerate().step_by(89) {
                if i % 4 != j % 4 {
                    let d = ((p.0 - q.0).powi(2) + (p.1 - q.1).powi(2)).sqrt();
                    assert!(d >= gap - 1e-9, "cross-island pair {i},{j} only {d} m apart");
                }
            }
        }
    }

    #[test]
    fn islands_deterministic_and_balanced() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let (a, la) = islands(100, 3, 500.0, 50.0, &mut r1);
        let (b, lb) = islands(100, 3, 500.0, 50.0, &mut r2);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        // Round-robin assignment: island populations differ by <= 1.
        let mut counts = [0usize; 3];
        for i in 0..100 {
            counts[i % 3] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    #[should_panic(expected = "at least one node per island")]
    fn more_islands_than_nodes_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = islands(2, 5, 100.0, 10.0, &mut rng);
    }
}
