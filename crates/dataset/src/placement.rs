//! Node placement samplers for swarm scenarios.
//!
//! The simulator needs initial positions for thousands of nodes. Two
//! layouts cover the evaluation's needs: a uniform scatter (the MANET
//! literature's default, constant expected density) and a Zipf-clustered
//! layout modelling real crowds — a few dense hotspots (malls, campus
//! quads) holding most of the population, a heavy tail of sparse cells —
//! using the same [`Zipf`] popularity law the profile generator uses for
//! tags.
//!
//! All samplers are pure functions of their RNG, so placements are
//! reproducible from a seed and composable with the simulator's own
//! seeded determinism.

use crate::zipf::Zipf;
use rand::Rng;

/// Uniformly random positions in the `width × height` rectangle.
///
/// # Panics
///
/// Panics unless `width` and `height` are strictly positive and finite.
pub fn uniform<R: Rng + ?Sized>(n: usize, width: f64, height: f64, rng: &mut R) -> Vec<(f64, f64)> {
    assert!(width > 0.0 && width.is_finite(), "width must be positive");
    assert!(height > 0.0 && height.is_finite(), "height must be positive");
    (0..n).map(|_| (rng.gen_range(0.0..width), rng.gen_range(0.0..height))).collect()
}

/// Zipf-clustered positions: `clusters` hotspot centers scattered
/// uniformly, each node assigned to a hotspot by a `Zipf(s)` draw (rank 1
/// is the busiest) and placed uniformly within a disc of radius `spread`
/// around it, clamped to the rectangle.
///
/// With `s ≈ 1.2–1.5` the busiest hotspot holds a large constant share
/// of all nodes — the worst case for a spatial index, since query cost
/// follows local density. Benches use this layout to bound hotspot
/// behaviour.
///
/// # Panics
///
/// Panics unless the rectangle is positive and finite, `clusters >= 1`,
/// `spread` is non-negative and finite, and `s > 1` (the [`Zipf`]
/// sampler's requirement).
pub fn zipf_clustered<R: Rng + ?Sized>(
    n: usize,
    width: f64,
    height: f64,
    clusters: usize,
    s: f64,
    spread: f64,
    rng: &mut R,
) -> Vec<(f64, f64)> {
    assert!(width > 0.0 && width.is_finite(), "width must be positive");
    assert!(height > 0.0 && height.is_finite(), "height must be positive");
    assert!(clusters >= 1, "need at least one cluster");
    assert!(spread >= 0.0 && spread.is_finite(), "spread must be non-negative");
    let centers: Vec<(f64, f64)> =
        (0..clusters).map(|_| (rng.gen_range(0.0..width), rng.gen_range(0.0..height))).collect();
    let zipf = Zipf::new(clusters as u64, s);
    (0..n)
        .map(|_| {
            let c = centers[(zipf.sample(rng) - 1) as usize];
            // Uniform in the disc: r = spread·√u keeps area density flat.
            let r = spread * rng.gen_range(0.0..1.0f64).sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let x = (c.0 + r * theta.cos()).clamp(0.0, width);
            let y = (c.1 + r * theta.sin()).clamp(0.0, height);
            (x, y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_bounds_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = uniform(500, 300.0, 200.0, &mut r1);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|p| (0.0..=300.0).contains(&p.0) && (0.0..=200.0).contains(&p.1)));
        assert_eq!(a, uniform(500, 300.0, 200.0, &mut r2));
    }

    #[test]
    fn uniform_spreads_over_quadrants() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts = uniform(2000, 100.0, 100.0, &mut rng);
        let q1 = pts.iter().filter(|p| p.0 < 50.0 && p.1 < 50.0).count();
        assert!((350..650).contains(&q1), "quadrant share ~25%, got {q1}/2000");
    }

    #[test]
    fn clustered_in_bounds_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = zipf_clustered(800, 500.0, 500.0, 10, 1.3, 40.0, &mut r1);
        assert_eq!(a.len(), 800);
        assert!(a.iter().all(|p| (0.0..=500.0).contains(&p.0) && (0.0..=500.0).contains(&p.1)));
        assert_eq!(a, zipf_clustered(800, 500.0, 500.0, 10, 1.3, 40.0, &mut r2));
    }

    #[test]
    fn clustering_concentrates_mass() {
        // Most nodes sit within `spread` of *some* hotspot, and the
        // busiest hotspot's disc holds far more than a uniform share.
        let mut rng = StdRng::seed_from_u64(21);
        let spread = 30.0;
        let pts = zipf_clustered(3000, 1000.0, 1000.0, 12, 1.4, spread, &mut rng);
        // Recover hotspot discs by brute force: count points per point's
        // neighborhood; a uniform scatter of 3000 over 1e6 m² puts ~8.5
        // nodes in a 30m disc, so dense discs are unambiguous.
        let dense = pts
            .iter()
            .filter(|&&p| {
                let within = pts
                    .iter()
                    .filter(|&&q| ((p.0 - q.0).powi(2) + (p.1 - q.1).powi(2)).sqrt() <= spread)
                    .count();
                within > 100
            })
            .count();
        assert!(dense > 1500, "clustered mass missing: {dense}/3000 in dense discs");
    }

    #[test]
    fn single_cluster_zero_spread_collapses() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = zipf_clustered(50, 100.0, 100.0, 1, 1.5, 0.0, &mut rng);
        assert!(pts.windows(2).all(|w| w[0] == w[1]), "all nodes at the single center");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uniform(1, 0.0, 10.0, &mut rng);
    }
}
