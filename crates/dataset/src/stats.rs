//! Population statistics behind Figures 4–5 and the ground truth behind
//! Figures 6–7.

use crate::weibo::{WeiboDataset, WeiboUser};
use std::collections::HashMap;

/// Profile-collision statistics (paper Fig. 4): for each collision class
/// size `c`, the fraction of users whose exact profile is shared by `c`
/// users in total (1 = unique).
pub fn collision_distribution(data: &WeiboDataset, with_keywords: bool) -> Vec<(usize, f64)> {
    let mut classes: HashMap<Vec<u64>, usize> = HashMap::new();
    for u in data.users() {
        *classes.entry(u.signature(with_keywords)).or_insert(0) += 1;
    }
    let total = data.users().len() as f64;
    let mut by_size: HashMap<usize, usize> = HashMap::new();
    for (_, size) in classes {
        *by_size.entry(size).or_insert(0) += size; // users, not classes
    }
    let mut out: Vec<(usize, f64)> =
        by_size.into_iter().map(|(size, users)| (size, users as f64 / total)).collect();
    out.sort_unstable_by_key(|&(size, _)| size);
    out
}

/// Cumulative form of [`collision_distribution`]: fraction of users in
/// classes of size ≤ `x` for `x = 1..=cap` — the curve Fig. 4 plots.
pub fn collision_cdf(data: &WeiboDataset, with_keywords: bool, cap: usize) -> Vec<(usize, f64)> {
    let dist = collision_distribution(data, with_keywords);
    let mut out = Vec::with_capacity(cap);
    let mut acc = 0.0;
    let mut iter = dist.into_iter().peekable();
    for x in 1..=cap {
        while let Some(&(size, frac)) = iter.peek() {
            if size <= x {
                acc += frac;
                iter.next();
            } else {
                break;
            }
        }
        out.push((x, acc));
    }
    out
}

/// Fraction of users whose profile is unique.
pub fn unique_fraction(data: &WeiboDataset, with_keywords: bool) -> f64 {
    collision_distribution(data, with_keywords)
        .first()
        .filter(|&&(size, _)| size == 1)
        .map(|&(_, frac)| frac)
        .unwrap_or(0.0)
}

/// Users per tag count (paper Fig. 5, log-scale y).
pub fn tag_count_histogram(data: &WeiboDataset) -> Vec<(usize, usize)> {
    let max = data.users().iter().map(|u| u.tags.len()).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for u in data.users() {
        hist[u.tags.len()] += 1;
    }
    hist.into_iter().enumerate().filter(|&(_, n)| n > 0).collect()
}

/// Shared-tag count between two users (the evaluation's similarity
/// ground truth).
pub fn shared_tags(a: &WeiboUser, b: &WeiboUser) -> usize {
    // Both sorted: linear merge.
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.tags.len() && j < b.tags.len() {
        match a.tags[i].cmp(&b.tags[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// For one requester, the fraction of `population` sharing at least `s`
/// tags, for every `s in 1..=max_s` — the "Similar User Proportion
/// (Truth)" series of Fig. 6.
pub fn similar_user_proportions(
    requester: &WeiboUser,
    population: &[&WeiboUser],
    max_s: usize,
) -> Vec<f64> {
    let mut counts = vec![0usize; max_s + 1];
    for other in population {
        if other.id == requester.id {
            continue;
        }
        let shared = shared_tags(requester, other).min(max_s);
        for c in counts.iter_mut().take(shared + 1).skip(1) {
            *c += 1;
        }
    }
    let denom = (population.len().saturating_sub(1)).max(1) as f64;
    counts[1..].iter().map(|&c| c as f64 / denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weibo::WeiboConfig;

    fn data() -> WeiboDataset {
        WeiboDataset::generate(&WeiboConfig::small(), 77)
    }

    #[test]
    fn collision_fractions_sum_to_one() {
        let d = data();
        for wk in [false, true] {
            let total: f64 = collision_distribution(&d, wk).iter().map(|&(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9, "with_keywords={wk}: {total}");
        }
    }

    #[test]
    fn keywords_increase_uniqueness() {
        let d = data();
        assert!(unique_fraction(&d, true) >= unique_fraction(&d, false));
    }

    #[test]
    fn cdf_monotone_and_capped() {
        let d = data();
        let cdf = collision_cdf(&d, false, 10);
        assert_eq!(cdf.len(), 10);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(cdf.last().unwrap().1 <= 1.0 + 1e-9);
        assert!(cdf[0].1 > 0.5, "most users unique: {}", cdf[0].1);
    }

    #[test]
    fn histogram_covers_population() {
        let d = data();
        let total: usize = tag_count_histogram(&d).iter().map(|&(_, n)| n).sum();
        assert_eq!(total, d.users().len());
    }

    #[test]
    fn shared_tags_matches_naive() {
        let d = data();
        let users = d.users();
        for i in 0..20 {
            for j in 0..20 {
                let naive = users[i].tags.iter().filter(|t| users[j].tags.contains(t)).count();
                assert_eq!(shared_tags(&users[i], &users[j]), naive);
            }
        }
    }

    #[test]
    fn self_similarity_full() {
        let d = data();
        let u = &d.users()[0];
        assert_eq!(shared_tags(u, u), u.tags.len());
    }

    #[test]
    fn proportions_decrease_with_threshold() {
        let d = data();
        let pop: Vec<&WeiboUser> = d.users().iter().collect();
        let props = similar_user_proportions(&d.users()[0], &pop, 6);
        assert_eq!(props.len(), 6);
        assert!(props.windows(2).all(|w| w[0] >= w[1]), "{props:?}");
    }
}
