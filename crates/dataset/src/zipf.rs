//! Zipf-distributed sampling (Devroye's rejection method).
//!
//! Tag and keyword popularity in microblogging systems is famously
//! heavy-tailed; we model it as Zipf with exponent `s > 1` over a finite
//! vocabulary. The rejection sampler is O(1) per draw independent of the
//! vocabulary size, which matters with half-million-entry vocabularies.

use rand::Rng;

/// A Zipf(s) sampler over ranks `1..=n`.
///
/// # Example
///
/// ```
/// use msb_dataset::zipf::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(1000, 1.2);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!((1..=1000).contains(&r));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Precomputed `2^(s-1)`.
    b: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 1` and `s > 1` (the rejection method requires
    /// a strictly super-harmonic tail).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "vocabulary must be nonempty");
        assert!(s > 1.0, "exponent must exceed 1");
        Zipf { n, s, b: 2f64.powf(s - 1.0) }
    }

    /// Draws one rank in `1..=n` (rank 1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(f64::EPSILON..1.0);
            let x = u1.powf(-1.0 / (self.s - 1.0)).floor();
            if !(x >= 1.0 && x <= self.n as f64) {
                continue;
            }
            let t = (1.0 + 1.0 / x).powf(self.s - 1.0);
            if u2 * x * (t - 1.0) / (self.b - 1.0) <= t / self.b {
                return x as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(10_000, 1.3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 4]; // rank 1, 2, 3, rest
        for _ in 0..20_000 {
            match z.sample(&mut rng) {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                3 => counts[2] += 1,
                _ => counts[3] += 1,
            }
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[2], "{counts:?}");
        // Rank 1 of Zipf(1.3) holds a sizeable share.
        assert!(counts[0] > 2_000, "{counts:?}");
    }

    #[test]
    fn ratio_approximates_power_law() {
        let z = Zipf::new(1_000_000, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let (mut c1, mut c2) = (0f64, 0f64);
        for _ in 0..200_000 {
            match z.sample(&mut rng) {
                1 => c1 += 1.0,
                2 => c2 += 1.0,
                _ => {}
            }
        }
        // P(1)/P(2) = 2^s = 4 for s = 2.
        let ratio = c1 / c2;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn tiny_vocabulary_works() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(z.sample(&mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_s_one() {
        let _ = Zipf::new(10, 1.0);
    }
}
