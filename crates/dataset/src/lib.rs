//! Synthetic Tencent-Weibo-calibrated social profile dataset.
//!
//! The paper evaluates on a 2.32-million-user Tencent Weibo dump with
//! 560 419 distinct tags and 713 747 distinct keywords; each user has 6
//! tags on average (20 max) and 7 keywords on average (129 max), and more
//! than 90 % of users have a unique profile (paper §V-A, Figs. 4–5).
//! That dump is proprietary, so this crate generates a synthetic
//! population reproducing those published marginals: Zipf-distributed
//! tag/keyword popularity, a truncated-geometric attribute-count
//! distribution calibrated to the published means, and the resulting
//! uniqueness profile. Every quantity the evaluation needs (collision
//! CDF, attribute histogram, candidate proportions, key-set sizes)
//! depends only on these marginals.
//!
//! [`placement`] supplies the *spatial* side of swarm scenarios —
//! uniform and Zipf-clustered node layouts feeding the simulator's bulk
//! node APIs.
//!
//! # Example
//!
//! ```
//! use msb_dataset::weibo::{WeiboConfig, WeiboDataset};
//!
//! let data = WeiboDataset::generate(&WeiboConfig::small(), 7);
//! assert_eq!(data.users().len(), 2000);
//! let mean = data.mean_tag_count();
//! assert!(mean > 4.0 && mean < 8.0, "mean tags ≈ 6, got {mean}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod placement;
pub mod stats;
pub mod weibo;
pub mod zipf;

pub use weibo::{WeiboConfig, WeiboDataset, WeiboUser};
