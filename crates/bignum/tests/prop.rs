//! Property-based tests for the bignum substrate.

use msb_bignum::linalg::{cauchy_matrix, Matrix};
use msb_bignum::modexp::{mod_pow, Montgomery};
use msb_bignum::{BigUint, PrimeField};
use proptest::prelude::*;

fn big_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..48)
}

proptest! {
    #[test]
    fn add_commutative_associative(a in big_bytes(), b in big_bytes(), c in big_bytes()) {
        let (a, b, c) = (
            BigUint::from_be_bytes(&a),
            BigUint::from_be_bytes(&b),
            BigUint::from_be_bytes(&c),
        );
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative_distributive(a in big_bytes(), b in big_bytes(), c in big_bytes()) {
        let (a, b, c) = (
            BigUint::from_be_bytes(&a),
            BigUint::from_be_bytes(&b),
            BigUint::from_be_bytes(&c),
        );
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_invariant(a in big_bytes(), b in big_bytes()) {
        let a = BigUint::from_be_bytes(&a);
        let b = BigUint::from_be_bytes(&b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn sub_inverts_add(a in big_bytes(), b in big_bytes()) {
        let a = BigUint::from_be_bytes(&a);
        let b = BigUint::from_be_bytes(&b);
        let sum = &a + &b;
        prop_assert_eq!(sum.checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn shifts_are_mul_div_by_powers(a in big_bytes(), bits in 0usize..100) {
        let a = BigUint::from_be_bytes(&a);
        let shifted = a.shl_bits(bits);
        let pow = BigUint::one().shl_bits(bits);
        prop_assert_eq!(&shifted, &(&a * &pow));
        prop_assert_eq!(shifted.shr_bits(bits), a);
    }

    #[test]
    fn gcd_divides_both(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        let g = ba.gcd(&bb);
        if !g.is_zero() {
            prop_assert!(ba.rem(&g).is_zero());
            prop_assert!(bb.rem(&g).is_zero());
        } else {
            prop_assert!(a == 0 && b == 0);
        }
    }

    #[test]
    fn montgomery_matches_naive(a in big_bytes(), b in big_bytes(), m in big_bytes()) {
        let mut m = BigUint::from_be_bytes(&m);
        if m.is_even() {
            m = &m + &BigUint::one();
        }
        prop_assume!(m > BigUint::one());
        let a = BigUint::from_be_bytes(&a);
        let b = BigUint::from_be_bytes(&b);
        let mont = Montgomery::new(&m);
        prop_assert_eq!(mont.mul_mod(&a, &b), a.mul_mod(&b, &m));
    }

    #[test]
    fn mod_pow_matches_iterated_mul(base in any::<u64>(), exp in 0u32..40, m in 3u64..100_000) {
        let m = BigUint::from(m | 1);
        prop_assume!(!m.is_one());
        let b = BigUint::from(base);
        let mut naive = BigUint::one();
        for _ in 0..exp {
            naive = naive.mul_mod(&b, &m);
        }
        prop_assert_eq!(mod_pow(&b, &BigUint::from(exp as u64), &m), naive);
    }

    #[test]
    fn field_inverse_roundtrip(v in 1u64..u64::MAX) {
        let f = PrimeField::goldilocks448();
        let x = f.element(BigUint::from(v));
        let inv = f.inv(&x).unwrap();
        prop_assert_eq!(f.mul(&x, &inv), f.one());
    }

    #[test]
    fn solve_recovers_random_systems(
        n in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = PrimeField::goldilocks448();
        // Random square matrix; singular ones are astronomically unlikely
        // over a 448-bit field, but handle the error branch anyway.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                *m.at_mut(i, j) = f.random(&mut rng);
            }
        }
        let x: Vec<BigUint> = (0..n).map(|_| f.random(&mut rng)).collect();
        let b = m.mul_vec(&f, &x);
        if let Ok(solved) = m.solve(&f, &b) {
            prop_assert_eq!(solved, x);
        } // singular draws: nothing to check
    }

    #[test]
    fn cauchy_submatrix_solvable(gamma in 1usize..5, beta in 1usize..5, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = PrimeField::goldilocks448();
        let c = Matrix::identity(gamma).hconcat(&cauchy_matrix(&f, gamma, beta));
        let secret: Vec<BigUint> = (0..gamma + beta).map(|_| f.random(&mut rng)).collect();
        let b = c.mul_vec(&f, &secret);
        // Pick gamma random unknown columns.
        let mut cols: Vec<usize> = (0..gamma + beta).collect();
        for i in 0..gamma {
            let j = i + (seed as usize + i) % (cols.len() - i);
            cols.swap(i, j);
        }
        let unknowns = &cols[..gamma];
        let mut rhs = b.clone();
        for (j, s) in secret.iter().enumerate() {
            if unknowns.contains(&j) {
                continue;
            }
            for (i, r) in rhs.iter_mut().enumerate() {
                let delta = f.mul(c.at(i, j), s);
                *r = f.sub(r, &delta);
            }
        }
        let cu = c.select_columns(unknowns);
        let solved = cu.solve(&f, &rhs).expect("Cauchy systems are nonsingular");
        for (k, &col) in unknowns.iter().enumerate() {
            prop_assert_eq!(&solved[k], &secret[col]);
        }
    }
}
