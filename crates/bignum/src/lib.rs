//! Arbitrary-precision unsigned integer arithmetic and prime-field algebra.
//!
//! Two consumers drive this crate's design:
//!
//! 1. **The hint matrix** of the Sealed Bottle mechanism (paper §III-C)
//!    solves small linear systems whose entries are 256-bit attribute
//!    hashes. We perform that algebra in a prime field whose modulus
//!    (the Ed448 "Goldilocks" prime, 2⁴⁴⁸ − 2²²⁴ − 1) exceeds 2²⁵⁶, so every
//!    SHA-256 output embeds canonically and recovered hashes are exact.
//! 2. **The asymmetric baselines** (FNP'04, FC'10, FindU) that the paper
//!    compares against need 1024/2048-bit modular exponentiation — the very
//!    operations benchmarked in Table V.
//!
//! # Modules
//!
//! * [`biguint`] — the [`biguint::BigUint`] type: school-book
//!   multiplication, Knuth Algorithm-D division, shifts, radix conversions.
//! * [`modexp`] — Montgomery (CIOS) modular multiplication and windowed
//!   exponentiation for odd moduli, with a generic fallback.
//! * [`prime`] — Miller–Rabin testing and random prime generation.
//! * [`field`] — prime-field arithmetic ([`field::PrimeField`]) including
//!   the Goldilocks-448 field used by the hint matrix.
//! * [`linalg`] — matrices and Gaussian elimination over a prime field.
//!
//! # Example
//!
//! ```
//! use msb_bignum::biguint::BigUint;
//! use msb_bignum::modexp::mod_pow;
//!
//! let base = BigUint::from(7u64);
//! let exp = BigUint::from(560u64);
//! let modulus = BigUint::from(561u64); // Carmichael number
//! assert_eq!(mod_pow(&base, &exp, &modulus), BigUint::from(1u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biguint;
pub mod field;
pub mod linalg;
pub mod modexp;
pub mod prime;

pub use biguint::BigUint;
pub use field::PrimeField;
