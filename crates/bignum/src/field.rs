//! Prime-field arithmetic.
//!
//! The hint matrix (paper §III-C-2) performs its linear algebra over the
//! Ed448 "Goldilocks" prime field, whose modulus 2⁴⁴⁸ − 2²²⁴ − 1 exceeds
//! 2²⁵⁶ so that every SHA-256 attribute hash is a canonical field element —
//! the solved unknowns are therefore bit-exact recoveries of the original
//! hashes.

use crate::biguint::BigUint;

/// A prime field 𝔽ₚ. Elements are reduced [`BigUint`] values.
///
/// The struct validates *oddness* and `> 2`, not primality (verifying a
/// 448-bit prime on every construction would be wasteful); use
/// [`PrimeField::new_checked`] when the modulus comes from untrusted input.
///
/// # Example
///
/// ```
/// use msb_bignum::{BigUint, PrimeField};
///
/// let f = PrimeField::goldilocks448();
/// let a = f.element(BigUint::from(7u64));
/// let inv = f.inv(&a).unwrap();
/// assert_eq!(f.mul(&a, &inv), BigUint::from(1u64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimeField {
    modulus: BigUint,
}

impl PrimeField {
    /// Creates a field with the given odd modulus `> 2`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even or `<= 2`.
    pub fn new(modulus: BigUint) -> Self {
        assert!(modulus.is_odd(), "field modulus must be odd");
        assert!(modulus > BigUint::from(2u64), "field modulus must exceed 2");
        PrimeField { modulus }
    }

    /// Creates a field, verifying primality with Miller–Rabin.
    ///
    /// Returns `None` when the candidate fails the primality test.
    pub fn new_checked<R: rand::Rng + ?Sized>(modulus: BigUint, rng: &mut R) -> Option<Self> {
        if !crate::prime::is_probable_prime(&modulus, 32, rng) {
            return None;
        }
        Some(Self::new(modulus))
    }

    /// The Ed448 "Goldilocks" field: p = 2⁴⁴⁸ − 2²²⁴ − 1.
    pub fn goldilocks448() -> Self {
        let p = BigUint::one()
            .shl_bits(448)
            .checked_sub(&BigUint::one().shl_bits(224))
            .expect("2^448 > 2^224")
            .checked_sub(&BigUint::one())
            .expect("nonzero");
        PrimeField { modulus: p }
    }

    /// The field modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Canonicalizes an arbitrary integer into the field.
    pub fn element(&self, v: BigUint) -> BigUint {
        v.rem(&self.modulus)
    }

    /// The additive identity.
    pub fn zero(&self) -> BigUint {
        BigUint::zero()
    }

    /// The multiplicative identity.
    pub fn one(&self) -> BigUint {
        BigUint::one()
    }

    /// Field addition. Operands must be reduced.
    pub fn add(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.add_mod(b, &self.modulus)
    }

    /// Field subtraction. Operands must be reduced.
    pub fn sub(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.sub_mod(b, &self.modulus)
    }

    /// Field multiplication. Operands must be reduced.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mul_mod(b, &self.modulus)
    }

    /// Additive inverse.
    pub fn neg(&self, a: &BigUint) -> BigUint {
        if a.is_zero() {
            BigUint::zero()
        } else {
            self.modulus.checked_sub(a).expect("reduced operand")
        }
    }

    /// Multiplicative inverse, `None` for zero.
    pub fn inv(&self, a: &BigUint) -> Option<BigUint> {
        a.mod_inverse(&self.modulus)
    }

    /// Field exponentiation.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        crate::modexp::mod_pow(base, exp, &self.modulus)
    }

    /// Uniformly random field element.
    pub fn random<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        crate::prime::random_below(rng, &self.modulus)
    }

    /// Uniformly random *nonzero* field element — the paper's "random
    /// nonzero integer" entries for the hint-matrix block `R`.
    pub fn random_nonzero<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let v = self.random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn f97() -> PrimeField {
        PrimeField::new(BigUint::from(97u64))
    }

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn goldilocks_modulus_is_prime() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = PrimeField::goldilocks448();
        assert_eq!(f.modulus().bit_len(), 448);
        assert!(crate::prime::is_probable_prime(f.modulus(), 16, &mut rng));
    }

    #[test]
    fn goldilocks_exceeds_sha256_range() {
        let f = PrimeField::goldilocks448();
        let max_hash = BigUint::from_be_bytes(&[0xff; 32]);
        assert!(&max_hash < f.modulus());
    }

    #[test]
    fn axioms_small_field() {
        let f = f97();
        for a in 0..97u64 {
            let ea = big(a);
            assert_eq!(f.add(&ea, &f.neg(&ea)), f.zero(), "a + (-a) = 0");
            if a != 0 {
                let inv = f.inv(&ea).unwrap();
                assert_eq!(f.mul(&ea, &inv), f.one(), "a * a^-1 = 1");
            }
        }
        assert_eq!(f.inv(&f.zero()), None);
    }

    #[test]
    fn distributivity_samples() {
        let f = f97();
        for (a, b, c) in [(3u64, 5, 7), (96, 96, 96), (0, 50, 13)] {
            let lhs = f.mul(&big(a), &f.add(&big(b), &big(c)));
            let rhs = f.add(&f.mul(&big(a), &big(b)), &f.mul(&big(a), &big(c)));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn element_reduces() {
        let f = f97();
        assert_eq!(f.element(big(100)), big(3));
        assert_eq!(f.element(big(97)), f.zero());
    }

    #[test]
    fn fermat_in_goldilocks() {
        let f = PrimeField::goldilocks448();
        let a = f.element(BigUint::from_be_bytes(&[0x5c; 32]));
        let pm1 = f.modulus().checked_sub(&BigUint::one()).unwrap();
        assert_eq!(f.pow(&a, &pm1), f.one());
    }

    #[test]
    fn random_nonzero_is_nonzero_and_reduced() {
        let f = f97();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = f.random_nonzero(&mut rng);
            assert!(!v.is_zero());
            assert!(&v < f.modulus());
        }
    }

    #[test]
    fn new_checked_accepts_prime_rejects_composite() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(PrimeField::new_checked(big(101), &mut rng).is_some());
        assert!(PrimeField::new_checked(big(91), &mut rng).is_none()); // 7*13
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        let _ = PrimeField::new(big(10));
    }
}
