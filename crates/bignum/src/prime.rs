//! Primality testing and random prime generation.
//!
//! The asymmetric baselines (Paillier for FNP'04, RSA for FC'10) need random
//! primes of 512–1024 bits. Miller–Rabin with 40 random rounds gives an error
//! probability below 2⁻⁸⁰, standard for evaluation work.

use crate::biguint::BigUint;
use crate::modexp::mod_pow;
use rand::Rng;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Deterministic `false` for even numbers and numbers with small factors;
/// the error is one-sided (may call a composite "prime" with probability
/// ≤ 4^-rounds).
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from(p);
        if n == &pb {
            return true;
        }
        if n.rem_u64(p) == 0 {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.checked_sub(&one).expect("n > 1");
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr_bits(s);

    'witness: for _ in 0..rounds {
        let a = random_below(rng, &n_minus_1);
        if a < BigUint::from(2u64) {
            continue;
        }
        let mut x = mod_pow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Number of trailing zero bits.
fn trailing_zeros(v: &BigUint) -> usize {
    if v.is_zero() {
        return 0;
    }
    let mut count = 0;
    for (i, &limb) in v.limbs().iter().enumerate() {
        if limb == 0 {
            count = (i + 1) * 64;
        } else {
            return i * 64 + limb.trailing_zeros() as usize;
        }
    }
    count
}

/// Uniformly random value in `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bit_len();
    let bytes = bits.div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf[..]);
        // Mask excess top bits so the rejection rate stays below 1/2.
        let excess = bytes * 8 - bits;
        buf[0] &= 0xffu8 >> excess;
        let candidate = BigUint::from_be_bytes(&buf);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Uniformly random value with exactly `bits` bits (top bit set).
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits > 0, "need at least one bit");
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill(&mut buf[..]);
    let excess = bytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    buf[0] |= 0x80u8 >> excess;
    BigUint::from_be_bytes(&buf)
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = random_bits(rng, bits);
        // Force odd.
        if candidate.is_even() {
            candidate = &candidate + &BigUint::one();
            if candidate.bit_len() != bits {
                continue;
            }
        }
        if is_probable_prime(&candidate, 24, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xdecaf)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 101, 997, 65537] {
            assert!(is_probable_prime(&BigUint::from(p), 16, &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 100, 561, 1105, 6601, 8911, 62745] {
            // includes Carmichael numbers
            assert!(!is_probable_prime(&BigUint::from(c), 16, &mut r), "{c}");
        }
    }

    #[test]
    fn mersenne_127_is_prime() {
        let p = BigUint::from((1u128 << 127) - 1);
        assert!(is_probable_prime(&p, 16, &mut rng()));
    }

    #[test]
    fn big_composite_rejected() {
        // (2^127 - 1) * 3
        let p = BigUint::from((1u128 << 127) - 1);
        let c = &p + &(&p + &p);
        assert!(!is_probable_prime(&c, 16, &mut rng()));
    }

    #[test]
    fn gen_prime_has_exact_bits() {
        let mut r = rng();
        for bits in [8usize, 16, 64, 128, 256] {
            let p = gen_prime(&mut r, bits);
            assert_eq!(p.bit_len(), bits, "requested {bits} bits");
            assert!(is_probable_prime(&p, 16, &mut r));
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = BigUint::from(1000u64);
        for _ in 0..200 {
            let v = random_below(&mut r, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        // With bound 2, both values must appear.
        let mut r = rng();
        let bound = BigUint::from(2u64);
        let mut saw = [false; 2];
        for _ in 0..64 {
            let v = random_below(&mut r, &bound);
            saw[u64::try_from(&v).unwrap() as usize] = true;
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn trailing_zeros_cases() {
        assert_eq!(trailing_zeros(&BigUint::from(1u64)), 0);
        assert_eq!(trailing_zeros(&BigUint::from(8u64)), 3);
        assert_eq!(trailing_zeros(&BigUint::one().shl_bits(100)), 100);
    }

    #[test]
    fn two_generated_primes_multiply_to_semiprime() {
        // Sanity flow used by the Paillier baseline.
        let mut r = rng();
        let p = gen_prime(&mut r, 96);
        let q = gen_prime(&mut r, 96);
        assert_ne!(p, q);
        let n = &p * &q;
        assert!(!is_probable_prime(&n, 8, &mut r));
        assert_eq!(n.bit_len(), 191 + (n.bit(191) as usize));
    }
}
