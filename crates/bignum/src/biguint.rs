//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u64` limbs, always normalized (no trailing zero limbs;
//! zero is the empty limb vector). School-book multiplication and Knuth
//! Algorithm-D division — ample for the 2048-bit moduli the baselines use.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use msb_bignum::biguint::BigUint;
///
/// let a = BigUint::from_be_bytes(&[0x01, 0x00]); // 256
/// let b = BigUint::from(4u64);
/// assert_eq!((&a * &b).to_string(), "1024");
/// let (q, r) = a.div_rem(&BigUint::from(10u64));
/// assert_eq!(q, BigUint::from(25u64));
/// assert_eq!(r, BigUint::from(6u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Whether this is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the low bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Whether the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Constructs from little-endian limbs (normalizes).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrow the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Constructs from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let bytes = self.to_be_bytes();
        assert!(bytes.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - bytes.len()];
        out.extend_from_slice(&bytes);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// Returns `None` on any non-hex character or empty input.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut value = BigUint::zero();
        for c in s.bytes() {
            let d = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return None,
            };
            value = value.shl_bits(4);
            value = &value + &BigUint::from(d as u64);
        }
        Some(value)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (LSB is bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> Self {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Self::from_limbs(limbs)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> Self {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let mut l = src[i] >> bit_shift;
                if i + 1 < src.len() {
                    l |= src[i + 1] << (64 - bit_shift);
                }
                limbs.push(l);
            }
        }
        Self::from_limbs(limbs)
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            limbs.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        Some(Self::from_limbs(limbs))
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, Self::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Division by a single limb.
    pub fn div_rem_u64(&self, divisor: u64) -> (Self, u64) {
        assert!(divisor != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (Self::from_limbs(q), rem as u64)
    }

    /// Remainder modulo a small `u64` divisor — the paper's "mod p" basic
    /// operation (remainder-vector entries, §III-C-1).
    pub fn rem_u64(&self, divisor: u64) -> u64 {
        assert!(divisor != 0, "division by zero");
        let mut rem = 0u128;
        for &l in self.limbs.iter().rev() {
            rem = ((rem << 64) | l as u128) % divisor as u128;
        }
        rem as u64
    }

    /// Knuth Algorithm D (TAOCP vol. 2, 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &Self) -> (Self, Self) {
        let shift = divisor.limbs.last().expect("nonzero").leading_zeros() as usize;
        let b = divisor.shl_bits(shift);
        let mut a = self.shl_bits(shift).limbs;
        let n = b.limbs.len();
        let m = a.len() - n;
        a.push(0); // a has m + n + 1 limbs
        let mut q = vec![0u64; m + 1];
        let btop = b.limbs[n - 1] as u128;
        let bsecond = b.limbs[n - 2] as u128;

        for j in (0..=m).rev() {
            let top2 = ((a[j + n] as u128) << 64) | a[j + n - 1] as u128;
            let mut qhat = top2 / btop;
            let mut rhat = top2 % btop;
            while qhat >> 64 != 0 || qhat * bsecond > ((rhat << 64) | a[j + n - 2] as u128) {
                qhat -= 1;
                rhat += btop;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * b from a[j .. j+n+1].
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let product = qhat * b.limbs[i] as u128 + carry;
                carry = product >> 64;
                let sub = (a[j + i] as i128) - (product as u64 as i128) + borrow;
                a[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (a[j + n] as i128) - (carry as i128) + borrow;
            a[j + n] = sub as u64;
            borrow = sub >> 64;

            if borrow != 0 {
                // qhat was one too large; add b back.
                qhat -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let sum = a[j + i] as u128 + b.limbs[i] as u128 + carry2;
                    a[j + i] = sum as u64;
                    carry2 = sum >> 64;
                }
                a[j + n] = a[j + n].wrapping_add(carry2 as u64);
            }
            q[j] = qhat as u64;
        }
        let rem = Self::from_limbs(a[..n].to_vec()).shr_bits(shift);
        (Self::from_limbs(q), rem)
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &Self) -> Self {
        self.div_rem(modulus).1
    }

    /// `(self + other) mod modulus`. Inputs must already be reduced.
    pub fn add_mod(&self, other: &Self, modulus: &Self) -> Self {
        let sum = self + other;
        if &sum >= modulus {
            sum.checked_sub(modulus).expect("sum >= modulus")
        } else {
            sum
        }
    }

    /// `(self - other) mod modulus`. Inputs must already be reduced.
    pub fn sub_mod(&self, other: &Self, modulus: &Self) -> Self {
        if self >= other {
            self.checked_sub(other).expect("checked above")
        } else {
            let diff = other.checked_sub(self).expect("other > self");
            modulus.checked_sub(&diff).expect("inputs reduced")
        }
    }

    /// `(self * other) mod modulus` via full multiply then Algorithm-D
    /// reduction. This is the "M2/M3 modular multiplication" basic operation
    /// of the paper's Table V.
    pub fn mul_mod(&self, other: &Self, modulus: &Self) -> Self {
        (self * other).rem(modulus)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr_bits(1);
            b = b.shr_bits(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr_bits(1);
        }
        loop {
            while b.is_even() {
                b = b.shr_bits(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a after swap");
            if b.is_zero() {
                return a.shl_bits(shift);
            }
        }
    }

    /// Modular inverse of `self` modulo `modulus`, if
    /// `gcd(self, modulus) == 1`.
    ///
    /// Extended Euclid over signed cofactors, tracked as (sign, magnitude).
    pub fn mod_inverse(&self, modulus: &Self) -> Option<Self> {
        if modulus.is_zero() || self.is_zero() {
            return None;
        }
        // Invariants: old_r = old_s * self (mod modulus), r = s * self.
        let mut old_r = self.rem(modulus);
        let mut r = modulus.clone();
        // (sign, magnitude) pairs.
        let mut old_s: (bool, BigUint) = (false, BigUint::one());
        let mut s: (bool, BigUint) = (false, BigUint::zero());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s
            let qs = &q * &s.1;
            let new_s = signed_sub(&old_s, &(s.0, qs));
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return None;
        }
        let inv = if old_s.0 {
            modulus.checked_sub(&old_s.1.rem(modulus)).map(|v| v.rem(modulus))?
        } else {
            old_s.1.rem(modulus)
        };
        Some(inv)
    }
}

/// `(a_sign, a) - (b_sign, b)` over sign-magnitude integers.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        (false, true) => (false, &a.1 + &b.1), // a - (-b) = a + b
        (true, false) => (true, &a.1 + &b.1),  // -a - b = -(a + b)
        (false, false) => {
            if a.1 >= b.1 {
                (false, a.1.checked_sub(&b.1).expect("a >= b"))
            } else {
                (true, b.1.checked_sub(&a.1).expect("b > a"))
            }
        }
        (true, true) => {
            // -a - (-b) = b - a
            if b.1 >= a.1 {
                (false, b.1.checked_sub(&a.1).expect("b >= a"))
            } else {
                (true, a.1.checked_sub(&b.1).expect("a > b"))
            }
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl TryFrom<&BigUint> for u64 {
    type Error = ();
    fn try_from(v: &BigUint) -> Result<u64, ()> {
        match v.limbs.len() {
            0 => Ok(0),
            1 => Ok(v.limbs[0]),
            _ => Err(()),
        }
    }
}

impl TryFrom<&BigUint> for u128 {
    type Error = ();
    fn try_from(v: &BigUint) -> Result<u128, ()> {
        match v.limbs.len() {
            0 => Ok(0),
            1 => Ok(v.limbs[0] as u128),
            2 => Ok((v.limbs[1] as u128) << 64 | v.limbs[0] as u128),
            _ => Err(()),
        }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) =
            if self.limbs.len() >= rhs.limbs.len() { (self, rhs) } else { (rhs, self) };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let rhs_l = short.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = long.limbs[i].overflowing_add(rhs_l);
            let (s2, c2) = s1.overflowing_add(carry);
            limbs.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            limbs.push(carry);
        }
        BigUint::from_limbs(limbs)
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut acc = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + acc[i + j] as u128 + carry;
                acc[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let t = acc[k] as u128 + carry;
                acc[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(acc)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{:x})", self)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut v = self.clone();
        while !v.is_zero() {
            let (q, r) = v.div_rem_u64(10);
            digits.push(b'0' + r as u8);
            v = q;
        }
        digits.reverse();
        write!(f, "{}", std::str::from_utf8(&digits).expect("ascii digits"))
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for limb in self.limbs.iter().rev() {
            if first {
                write!(f, "{limb:x}")?;
                first = false;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::UpperHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{:x}", self);
        write!(f, "{}", lower.to_uppercase())
    }
}

impl fmt::Binary for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for i in (0..self.bit_len()).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn roundtrip_bytes() {
        let cases: [&[u8]; 4] = [&[], &[1], &[0xde, 0xad, 0xbe, 0xef], &[1; 33]];
        for c in cases {
            let v = BigUint::from_be_bytes(c);
            let back = v.to_be_bytes();
            let trimmed: Vec<u8> = c.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(back, trimmed);
        }
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(BigUint::from_be_bytes(&[0, 0, 5]), big(5));
    }

    #[test]
    fn padded_bytes() {
        assert_eq!(big(5).to_be_bytes_padded(4), vec![0, 0, 0, 5]);
        assert_eq!(BigUint::zero().to_be_bytes_padded(2), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        let _ = big(0x1_0000).to_be_bytes_padded(2);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = big(1);
        let sum = &a + &b;
        assert_eq!(sum, BigUint::from_limbs(vec![0, 0, 1]));
    }

    #[test]
    fn sub_borrow_chain() {
        let a = BigUint::from_limbs(vec![0, 0, 1]);
        let b = big(1);
        assert_eq!(a.checked_sub(&b).unwrap(), BigUint::from_limbs(vec![u64::MAX, u64::MAX]));
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn mul_matches_u128() {
        for a in [0u128, 1, 7, 0xffff_ffff, 1 << 63, (1 << 64) - 1] {
            for b in [0u128, 1, 3, 0x1234_5678, (1 << 64) - 1] {
                assert_eq!(&big(a) * &big(b), big(a * b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn div_rem_matches_u128() {
        let pairs = [
            (0u128, 1u128),
            (100, 7),
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (1 << 100, (1 << 64) + 5),
            ((1 << 90) + 12345, (1 << 65) + 1),
        ];
        for (a, b) in pairs {
            let (q, r) = big(a).div_rem(&big(b));
            assert_eq!(q, big(a / b), "{a} / {b}");
            assert_eq!(r, big(a % b), "{a} % {b}");
        }
    }

    #[test]
    fn div_rem_identity_large() {
        // (q*b + r) == a for multi-limb values exercising Algorithm D.
        let a = BigUint::from_be_bytes(&[0xab; 64]);
        let b = BigUint::from_be_bytes(&[0x13; 24]);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_needs_addback() {
        // A case engineered to trigger the Algorithm-D "add back" branch:
        // divisor with top limb just above 2^63 and dividend crafted so
        // qhat overshoots. We verify the invariant holds regardless.
        let b = BigUint::from_limbs(vec![0, u64::MAX, 1u64 << 63]);
        let a = &b.shl_bits(130) + &BigUint::from_limbs(vec![5, 5, 5]);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn rem_u64_small_prime() {
        // Matches the remainder-vector operation: 256-bit value mod 11.
        let h = BigUint::from_be_bytes(&[0x5a; 32]);
        let direct = h.rem(&big(11));
        assert_eq!(u64::try_from(&direct).unwrap(), h.rem_u64(11));
    }

    #[test]
    fn shifts_roundtrip() {
        let v = BigUint::from_be_bytes(&[0x99; 20]);
        for bits in [0usize, 1, 63, 64, 65, 127, 128, 200] {
            assert_eq!(v.shl_bits(bits).shr_bits(bits), v, "shift {bits}");
        }
    }

    #[test]
    fn shr_below_zero() {
        assert_eq!(big(5).shr_bits(3), BigUint::zero());
    }

    #[test]
    fn bit_len_and_bit() {
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(big(1).bit_len(), 1);
        assert_eq!(big(0xff).bit_len(), 8);
        let v = big(1 << 70);
        assert_eq!(v.bit_len(), 71);
        assert!(v.bit(70));
        assert!(!v.bit(69));
        assert!(!v.bit(1000));
    }

    #[test]
    fn cmp_ordering() {
        assert!(big(3) < big(5));
        assert!(BigUint::from_limbs(vec![0, 1]) > big(u64::MAX as u128));
        assert_eq!(big(7).cmp(&big(7)), Ordering::Equal);
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(13)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        assert_eq!(big(48).gcd(&big(64)), big(16));
    }

    #[test]
    fn mod_inverse_cases() {
        let p = big(1_000_000_007);
        for a in [1u128, 2, 3, 999_999_999, 12345] {
            let inv = big(a).mod_inverse(&p).unwrap();
            assert_eq!(big(a).mul_mod(&inv, &p), big(1), "a = {a}");
        }
        // Non-invertible.
        assert_eq!(big(6).mod_inverse(&big(9)), None);
        assert_eq!(BigUint::zero().mod_inverse(&p), None);
    }

    #[test]
    fn mod_inverse_large() {
        // Goldilocks-448: 2^448 - 2^224 - 1.
        let p = BigUint::one()
            .shl_bits(448)
            .checked_sub(&BigUint::one().shl_bits(224))
            .unwrap()
            .checked_sub(&BigUint::one())
            .unwrap();
        let a = BigUint::from_be_bytes(&[0xc3; 32]);
        let inv = a.mod_inverse(&p).unwrap();
        assert_eq!(a.mul_mod(&inv, &p), BigUint::one());
    }

    #[test]
    fn add_sub_mod() {
        let m = big(97);
        assert_eq!(big(50).add_mod(&big(60), &m), big(13));
        assert_eq!(big(10).sub_mod(&big(20), &m), big(87));
        assert_eq!(big(20).sub_mod(&big(10), &m), big(10));
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(big(12345678901234567890).to_string(), "12345678901234567890");
        let v = &big(u128::MAX) + &big(1);
        assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn hex_formats() {
        let v = big(0xdead_beef);
        assert_eq!(format!("{v:x}"), "deadbeef");
        assert_eq!(format!("{v:X}"), "DEADBEEF");
        assert_eq!(format!("{:b}", big(5)), "101");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
    }

    #[test]
    fn from_hex_roundtrip() {
        let v = BigUint::from_hex("deadbeef0123456789abcdef").unwrap();
        assert_eq!(format!("{v:x}"), "deadbeef0123456789abcdef");
        assert_eq!(BigUint::from_hex(""), None);
        assert_eq!(BigUint::from_hex("xyz"), None);
    }

    #[test]
    fn u128_roundtrip() {
        let v = big(u128::MAX - 5);
        assert_eq!(u128::try_from(&v).unwrap(), u128::MAX - 5);
        let too_big = BigUint::from_limbs(vec![1, 1, 1]);
        assert!(u128::try_from(&too_big).is_err());
    }
}
