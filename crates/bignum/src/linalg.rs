//! Dense matrices and Gaussian elimination over a prime field.
//!
//! The hint-matrix mechanism reduces to solving a small linear system
//! `A·x = b` (at most γ equations, at most γ unknowns, γ ≤ a few dozen) over
//! the Goldilocks field. Systems may be *overdetermined* for a candidate
//! with fewer than γ unknowns — inconsistency then proves the candidate
//! wrong before any decryption is attempted.

#![allow(clippy::needless_range_loop)] // explicit indices read better in elimination kernels
use crate::biguint::BigUint;
use crate::field::PrimeField;

/// A dense row-major matrix over a prime field.
///
/// # Example
///
/// ```
/// use msb_bignum::{BigUint, PrimeField};
/// use msb_bignum::linalg::Matrix;
///
/// let f = PrimeField::new(BigUint::from(97u64));
/// let a = Matrix::from_rows(vec![
///     vec![BigUint::from(2u64), BigUint::from(1u64)],
///     vec![BigUint::from(1u64), BigUint::from(3u64)],
/// ]);
/// let b = vec![BigUint::from(5u64), BigUint::from(10u64)];
/// let x = a.solve(&f, &b).expect("nonsingular");
/// assert_eq!(x[0], BigUint::from(1u64));
/// assert_eq!(x[1], BigUint::from(3u64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<BigUint>,
}

/// Outcome of an elimination that cannot produce a unique solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The system is inconsistent (no solution exists).
    Inconsistent,
    /// The system is underdetermined (rank < number of unknowns).
    Underdetermined,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Inconsistent => write!(f, "linear system is inconsistent"),
            SolveError::Underdetermined => write!(f, "linear system is underdetermined"),
        }
    }
}

impl std::error::Error for SolveError {}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![BigUint::zero(); rows * cols] }
    }

    /// Creates the identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            *m.at_mut(i, i) = BigUint::one();
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or there are no rows.
    pub fn from_rows(rows: Vec<Vec<BigUint>>) -> Self {
        let r = rows.len();
        assert!(r > 0, "matrix needs at least one row");
        let c = rows[0].len();
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix { rows: r, cols: c, data: rows.into_iter().flatten().collect() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn at(&self, r: usize, c: usize) -> &BigUint {
        &self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut BigUint {
        &mut self.data[r * self.cols + c]
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(r, c) = self.at(r, c).clone();
            }
            for c in 0..other.cols {
                *out.at_mut(r, self.cols + c) = other.at(r, c).clone();
            }
        }
        out
    }

    /// Extracts the listed columns, preserving order.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (i, &c) in cols.iter().enumerate() {
                *out.at_mut(r, i) = self.at(r, c).clone();
            }
        }
        out
    }

    /// Matrix–vector product over `field`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, field: &PrimeField, v: &[BigUint]) -> Vec<BigUint> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                let mut acc = BigUint::zero();
                for c in 0..self.cols {
                    acc = field.add(&acc, &field.mul(self.at(r, c), &v[c]));
                }
                acc
            })
            .collect()
    }

    /// Matrix–matrix product over `field`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions differ.
    pub fn mul_mat(&self, field: &PrimeField, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for c in 0..other.cols {
                let mut acc = BigUint::zero();
                for k in 0..self.cols {
                    acc = field.add(&acc, &field.mul(self.at(r, k), other.at(k, c)));
                }
                *out.at_mut(r, c) = acc;
            }
        }
        out
    }

    /// Solves `self · x = b` by Gaussian elimination with partial pivoting
    /// (pivot = first nonzero). Accepts overdetermined systems
    /// (`rows >= cols`): redundant consistent rows are fine; any
    /// contradictory row yields [`SolveError::Inconsistent`].
    ///
    /// # Errors
    ///
    /// * [`SolveError::Underdetermined`] if `rows < cols` or rank deficient.
    /// * [`SolveError::Inconsistent`] if no solution exists.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve(&self, field: &PrimeField, b: &[BigUint]) -> Result<Vec<BigUint>, SolveError> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        if self.rows < self.cols {
            return Err(SolveError::Underdetermined);
        }
        // Augmented matrix [A | b].
        let mut a = self.clone();
        let mut rhs: Vec<BigUint> = b.to_vec();
        let mut pivot_row = 0usize;

        for col in 0..self.cols {
            // Find a pivot.
            let found = (pivot_row..self.rows).find(|&r| !a.at(r, col).is_zero());
            let Some(p) = found else {
                return Err(SolveError::Underdetermined);
            };
            if p != pivot_row {
                a.swap_rows(p, pivot_row);
                rhs.swap(p, pivot_row);
            }
            // Normalize the pivot row.
            let inv = field.inv(a.at(pivot_row, col)).expect("pivot is nonzero in a prime field");
            for c in col..self.cols {
                *a.at_mut(pivot_row, c) = field.mul(a.at(pivot_row, c), &inv);
            }
            rhs[pivot_row] = field.mul(&rhs[pivot_row], &inv);
            // Eliminate below.
            for r in pivot_row + 1..self.rows {
                if a.at(r, col).is_zero() {
                    continue;
                }
                let factor = a.at(r, col).clone();
                for c in col..self.cols {
                    let delta = field.mul(&factor, a.at(pivot_row, c));
                    *a.at_mut(r, c) = field.sub(a.at(r, c), &delta);
                }
                let delta = field.mul(&factor, &rhs[pivot_row]);
                rhs[r] = field.sub(&rhs[r], &delta);
            }
            pivot_row += 1;
        }

        // Extra rows must have been reduced to 0 = 0.
        for r in pivot_row..self.rows {
            if !rhs[r].is_zero() {
                return Err(SolveError::Inconsistent);
            }
        }

        // Back substitution.
        let mut x = vec![BigUint::zero(); self.cols];
        for col in (0..self.cols).rev() {
            let mut acc = rhs[col].clone();
            for c in col + 1..self.cols {
                let delta = field.mul(a.at(col, c), &x[c]);
                acc = field.sub(&acc, &delta);
            }
            x[col] = acc;
        }
        Ok(x)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }
}

/// Builds a γ×β Cauchy matrix over `field`: `R[i][j] = 1 / (x_i + y_j)`
/// with `x_i = i + 1` and `y_j = γ + j + 1`, all distinct, so every square
/// submatrix is nonsingular.
///
/// This instantiates the paper's "random nonzero integer" block `R` of the
/// constraint matrix `C = [I | R]` with a structured choice that makes the
/// claimed unique solvability (paper Eq. 12–13) unconditional: for any set
/// of ≤ γ unknown positions the restricted system is nonsingular.
pub fn cauchy_matrix(field: &PrimeField, rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let xi = field.element(BigUint::from((i + 1) as u64));
            let yj = field.element(BigUint::from((rows + j + 1) as u64));
            let sum = field.add(&xi, &yj);
            let inv = field.inv(&sum).expect("x_i + y_j < p and nonzero");
            *m.at_mut(i, j) = inv;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f97() -> PrimeField {
        PrimeField::new(BigUint::from(97u64))
    }

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    fn mat(rows: &[&[u64]]) -> Matrix {
        Matrix::from_rows(rows.iter().map(|r| r.iter().map(|&v| big(v)).collect()).collect())
    }

    #[test]
    fn identity_solve() {
        let f = f97();
        let i3 = Matrix::identity(3);
        let b = vec![big(4), big(5), big(6)];
        assert_eq!(i3.solve(&f, &b).unwrap(), b);
    }

    #[test]
    fn solve_2x2() {
        let f = f97();
        let a = mat(&[&[2, 1], &[1, 3]]);
        let b = vec![big(5), big(10)];
        let x = a.solve(&f, &b).unwrap();
        assert_eq!(a.mul_vec(&f, &x), b);
    }

    #[test]
    fn solve_requires_pivoting() {
        let f = f97();
        // Leading zero forces a row swap.
        let a = mat(&[&[0, 1], &[1, 0]]);
        let b = vec![big(7), big(9)];
        let x = a.solve(&f, &b).unwrap();
        assert_eq!(x, vec![big(9), big(7)]);
    }

    #[test]
    fn overdetermined_consistent() {
        let f = f97();
        // Third row = row0 + row1.
        let a = mat(&[&[1, 0], &[0, 1], &[1, 1]]);
        let b = vec![big(3), big(4), big(7)];
        assert_eq!(a.solve(&f, &b).unwrap(), vec![big(3), big(4)]);
    }

    #[test]
    fn overdetermined_inconsistent() {
        let f = f97();
        let a = mat(&[&[1, 0], &[0, 1], &[1, 1]]);
        let b = vec![big(3), big(4), big(8)];
        assert_eq!(a.solve(&f, &b), Err(SolveError::Inconsistent));
    }

    #[test]
    fn singular_detected() {
        let f = f97();
        let a = mat(&[&[1, 2], &[2, 4]]);
        let b = vec![big(1), big(2)];
        assert_eq!(a.solve(&f, &b), Err(SolveError::Underdetermined));
    }

    #[test]
    fn underdetermined_shape() {
        let f = f97();
        let a = mat(&[&[1, 2, 3]]);
        assert_eq!(a.solve(&f, &[big(1)]), Err(SolveError::Underdetermined));
    }

    #[test]
    fn mul_mat_identity() {
        let f = f97();
        let a = mat(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.mul_mat(&f, &Matrix::identity(2)), a);
    }

    #[test]
    fn hconcat_and_select() {
        let a = mat(&[&[1, 2], &[3, 4]]);
        let b = mat(&[&[5], &[6]]);
        let c = a.hconcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(*c.at(1, 2), big(6));
        let sel = c.select_columns(&[2, 0]);
        assert_eq!(*sel.at(0, 0), big(5));
        assert_eq!(*sel.at(0, 1), big(1));
    }

    #[test]
    fn cauchy_all_square_submatrices_nonsingular_small() {
        let f = f97();
        let m = cauchy_matrix(&f, 3, 4);
        // Every 2x2 submatrix must be nonsingular: det != 0.
        for r1 in 0..3 {
            for r2 in r1 + 1..3 {
                for c1 in 0..4 {
                    for c2 in c1 + 1..4 {
                        let det = f.sub(
                            &f.mul(m.at(r1, c1), m.at(r2, c2)),
                            &f.mul(m.at(r1, c2), m.at(r2, c1)),
                        );
                        assert!(!det.is_zero(), "singular 2x2 at {r1},{r2},{c1},{c2}");
                    }
                }
            }
        }
    }

    #[test]
    fn cauchy_identity_concat_solves_any_unknown_pattern() {
        // [I | Cauchy] restricted to any <= rows unknown columns solves.
        let f = PrimeField::goldilocks448();
        let gamma = 3;
        let beta = 4;
        let c = Matrix::identity(gamma).hconcat(&cauchy_matrix(&f, gamma, beta));
        // True secret vector.
        let secret: Vec<BigUint> =
            (0..gamma + beta).map(|i| f.element(BigUint::from((1000 + i * 37) as u64))).collect();
        let b = c.mul_vec(&f, &secret);
        // Try every pattern of up to gamma unknowns.
        let n = gamma + beta;
        for mask in 0u32..(1 << n) {
            let unknowns: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if unknowns.is_empty() || unknowns.len() > gamma {
                continue;
            }
            let knowns: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 0).collect();
            // rhs = b - C_K * x_K
            let ck = c.select_columns(&knowns);
            let xk: Vec<BigUint> = knowns.iter().map(|&i| secret[i].clone()).collect();
            let ckxk = ck.mul_vec(&f, &xk);
            let rhs: Vec<BigUint> = b.iter().zip(&ckxk).map(|(x, y)| f.sub(x, y)).collect();
            let cu = c.select_columns(&unknowns);
            let solved = cu.solve(&f, &rhs).unwrap_or_else(|e| {
                panic!("pattern {unknowns:?} failed: {e}");
            });
            for (i, &u) in unknowns.iter().enumerate() {
                assert_eq!(solved[i], secret[u], "unknown {u} in pattern {unknowns:?}");
            }
        }
    }
}
