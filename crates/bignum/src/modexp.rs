//! Modular exponentiation.
//!
//! Odd moduli (the only kind RSA/Paillier produce) go through Montgomery
//! multiplication in CIOS form with a fixed 4-bit window; the window
//! ladder's square steps use a dedicated SOS squaring (`mont_sqr`,
//! ~25% fewer word multiplies — see `docs/CRYPTO.md` §6 for the
//! measured ratios). Other moduli fall back to square-and-multiply
//! with Algorithm-D reductions. These are the `E2`/`E3` (1024/2048-bit
//! exponentiation) basic operations of the paper's cost model
//! (Table III and Table V).

#![allow(clippy::needless_range_loop)] // explicit indices read better in CIOS kernels
#![allow(clippy::wrong_self_convention)] // from_mont converts *out of* Montgomery form
use crate::biguint::BigUint;

/// Reusable Montgomery context for a fixed odd modulus.
///
/// Converting into Montgomery form costs one division; every subsequent
/// multiplication is division-free. RSA/Paillier baselines create one
/// context per modulus and reuse it across the whole protocol run.
#[derive(Debug, Clone)]
pub struct Montgomery {
    modulus: BigUint,
    n: Vec<u64>,
    /// `-modulus^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod modulus` where `R = 2^(64 * limbs)`.
    r2: BigUint,
}

impl Montgomery {
    /// Creates a context for an odd modulus `> 1`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even or `<= 1`.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(modulus.is_odd(), "Montgomery requires an odd modulus");
        assert!(!modulus.is_one(), "modulus must exceed 1");
        let n = modulus.limbs().to_vec();
        let n0 = n[0];
        // Newton iteration for the inverse of n0 mod 2^64.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        let r2 = BigUint::one().shl_bits(128 * n.len()).rem(modulus);
        Montgomery { modulus: modulus.clone(), n, n0_inv, r2 }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    fn limb_count(&self) -> usize {
        self.n.len()
    }

    /// Montgomery product of two Montgomery-form numbers (CIOS).
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let len = self.limb_count();
        let mut t = vec![0u64; len + 2];
        for i in 0..len {
            let ai = a.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..len {
                let bj = b.get(j).copied().unwrap_or(0);
                let sum = ai as u128 * bj as u128 + t[j] as u128 + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[len] as u128 + carry;
            t[len] = sum as u64;
            t[len + 1] = (sum >> 64) as u64;

            // Reduce: add m * n where m makes the low limb vanish.
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry = (m as u128 * self.n[0] as u128 + t[0] as u128) >> 64;
            for j in 1..len {
                let sum = m as u128 * self.n[j] as u128 + t[j] as u128 + carry;
                t[j - 1] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[len] as u128 + carry;
            t[len - 1] = sum as u64;
            t[len] = t[len + 1].wrapping_add((sum >> 64) as u64);
            t[len + 1] = 0;
        }
        // Conditional subtraction to bring the result below the modulus.
        let mut result = t[..=len].to_vec();
        if result[len] != 0 || ge(&result[..len], &self.n) {
            sub_in_place(&mut result, &self.n);
        }
        result.truncate(len);
        result
    }

    /// Montgomery square (SOS form): cross products `a[i]·a[j]` for
    /// `i < j` are computed once and doubled by a 1-bit shift, the
    /// diagonal squares `a[i]²` are added, and a separate Montgomery
    /// reduction pass folds the double-width product — about 25% fewer
    /// 64×64 multiplies than `mont_mul(a, a)`. Bit-identical to
    /// `mont_mul(a, a)` (pinned by a differential test below).
    fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        let len = self.limb_count();
        debug_assert!(a.len() <= len);
        let mut t = vec![0u64; 2 * len + 1];
        // Cross products a[i]·a[j], i < j, accumulated at position i+j.
        // Slice iterators (no index arithmetic) keep the inner loop free
        // of bounds checks.
        for i in 0..a.len() {
            let ai = a[i];
            let (row, rest) = t[2 * i + 1..].split_at_mut(a.len() - i - 1);
            let mut carry = 0u128;
            for (tj, &aj) in row.iter_mut().zip(&a[i + 1..]) {
                let sum = ai as u128 * aj as u128 + *tj as u128 + carry;
                *tj = sum as u64;
                carry = sum >> 64;
            }
            for tk in rest.iter_mut() {
                if carry == 0 {
                    break;
                }
                let sum = *tk as u128 + carry;
                *tk = sum as u64;
                carry = sum >> 64;
            }
        }
        // Double the cross-product sum (S < R²/2, so no overflow out of
        // t) and add the diagonal a[i]² at position 2i, in one pass.
        let mut top = 0u64;
        for limb in t.iter_mut() {
            let next = *limb >> 63;
            *limb = (*limb << 1) | top;
            top = next;
        }
        debug_assert_eq!(top, 0, "doubled cross products overflow");
        let mut carry = 0u64;
        for i in 0..len {
            let ai = a.get(i).copied().unwrap_or(0) as u128;
            let sq = ai * ai;
            let s0 = t[2 * i] as u128 + (sq as u64) as u128 + carry as u128;
            t[2 * i] = s0 as u64;
            let s1 = t[2 * i + 1] as u128 + (sq >> 64) + (s0 >> 64);
            t[2 * i + 1] = s1 as u64;
            carry = (s1 >> 64) as u64;
        }
        if carry != 0 {
            let s = t[2 * len] as u128 + carry as u128;
            t[2 * len] = s as u64;
            debug_assert_eq!(s >> 64, 0, "square overflow");
        }
        // Montgomery reduction of the double-width square.
        for i in 0..len {
            let m = t[i].wrapping_mul(self.n0_inv);
            let (row, rest) = t[i..].split_at_mut(len);
            let mut carry = 0u128;
            for (tj, &nj) in row.iter_mut().zip(&self.n) {
                let sum = m as u128 * nj as u128 + *tj as u128 + carry;
                *tj = sum as u64;
                carry = sum >> 64;
            }
            for tk in rest.iter_mut() {
                if carry == 0 {
                    break;
                }
                let sum = *tk as u128 + carry;
                *tk = sum as u64;
                carry = sum >> 64;
            }
        }
        let mut result = t[len..=2 * len].to_vec();
        if result[len] != 0 || ge(&result[..len], &self.n) {
            sub_in_place(&mut result, &self.n);
        }
        result.truncate(len);
        result
    }

    /// Converts into Montgomery form.
    fn to_mont(&self, v: &BigUint) -> Vec<u64> {
        let reduced = v.rem(&self.modulus);
        self.mont_mul(reduced.limbs(), self.r2.limbs())
    }

    /// Converts out of Montgomery form.
    fn from_mont(&self, v: &[u64]) -> BigUint {
        let one = [1u64];
        BigUint::from_limbs(self.mont_mul(v, &one))
    }

    /// `(a * b) mod modulus` through a Montgomery round-trip.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod modulus` with a fixed 4-bit window.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let one_m = self.to_mont(&BigUint::one());
        let base_m = self.to_mont(base);
        // Precompute base^0..base^15 in Montgomery form.
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(16);
        table.push(one_m.clone());
        table.push(base_m.clone());
        for i in 2..16 {
            let prev = table[i - 1].clone();
            table.push(self.mont_mul(&prev, &base_m));
        }

        let bits = exp.bit_len();
        // Process exponent in 4-bit windows from the most significant end.
        let windows = bits.div_ceil(4);
        let mut acc = one_m;
        for w in (0..windows).rev() {
            if w + 1 != windows {
                for _ in 0..4 {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut idx = 0usize;
            for b in 0..4 {
                let bit_pos = w * 4 + (3 - b);
                idx <<= 1;
                if bit_pos < bits && exp.bit(bit_pos) {
                    idx |= 1;
                }
            }
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
            }
        }
        self.from_mont(&acc)
    }
}

/// Limb-slice comparison `a >= b` (equal lengths assumed, zero-extended).
fn ge(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().max(b.len());
    for i in (0..n).rev() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        if x != y {
            return x > y;
        }
    }
    true
}

/// `a -= b` in place (assumes `a >= b`).
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let rhs = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = a[i].overflowing_sub(rhs);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "sub_in_place underflow");
}

/// `base^exp mod modulus` for any modulus `> 1`.
///
/// Dispatches to Montgomery for odd moduli, otherwise plain
/// square-and-multiply with trial division each step.
///
/// # Panics
///
/// Panics if `modulus` is zero or one.
pub fn mod_pow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero() && !modulus.is_one(), "modulus must exceed 1");
    if modulus.is_odd() {
        return Montgomery::new(modulus).pow_mod(base, exp);
    }
    // Generic fallback.
    let mut result = BigUint::one();
    let mut b = base.rem(modulus);
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            result = result.mul_mod(&b, modulus);
        }
        b = b.mul_mod(&b, modulus);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn small_cases_match_u128() {
        let cases = [
            (2u128, 10u128, 1000u128),
            (3, 0, 7),
            (0, 5, 13),
            (7, 13, 11),
            (5, 117, 19),
            (123456789, 987654321, 1000000007),
        ];
        for (b, e, m) in cases {
            let expect = u128_pow_mod(b, e, m);
            assert_eq!(mod_pow(&big(b), &big(e), &big(m)), big(expect), "{b}^{e} mod {m}");
        }
    }

    fn u128_pow_mod(mut b: u128, mut e: u128, m: u128) -> u128 {
        let mut r = 1u128 % m;
        b %= m;
        while e > 0 {
            if e & 1 == 1 {
                r = r * b % m;
            }
            b = b * b % m;
            e >>= 1;
        }
        r
    }

    #[test]
    fn even_modulus_fallback() {
        assert_eq!(mod_pow(&big(3), &big(4), &big(16)), big(81 % 16));
        assert_eq!(mod_pow(&big(7), &big(2), &big(100)), big(49));
    }

    #[test]
    fn fermat_little_theorem_large_prime() {
        // p = 2^127 - 1 (Mersenne prime): a^(p-1) ≡ 1 (mod p).
        let p = big((1u128 << 127) - 1);
        let pm1 = p.checked_sub(&BigUint::one()).unwrap();
        for a in [2u128, 3, 65537, 1 << 80] {
            assert_eq!(mod_pow(&big(a), &pm1, &p), BigUint::one(), "a = {a}");
        }
    }

    #[test]
    fn mont_sqr_matches_mont_mul_self() {
        // Differential: the SOS squaring path must be bit-identical to the
        // generic CIOS product with both operands equal, across widths.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for limbs in 1..=9 {
            let mut m_limbs: Vec<u64> = (0..limbs).map(|_| next()).collect();
            m_limbs[0] |= 1; // odd
            m_limbs[limbs - 1] |= 1 << 63; // full width
            let modulus = BigUint::from_limbs(m_limbs);
            let mont = Montgomery::new(&modulus);
            for _ in 0..20 {
                let a_limbs: Vec<u64> = (0..limbs).map(|_| next()).collect();
                let a = BigUint::from_limbs(a_limbs).rem(&modulus);
                let am = mont.to_mont(&a);
                assert_eq!(mont.mont_sqr(&am), mont.mont_mul(&am, &am), "{limbs} limbs");
            }
            // Edge operands: zero, one, modulus - 1.
            for edge in
                [BigUint::zero(), BigUint::one(), modulus.checked_sub(&BigUint::one()).unwrap()]
            {
                let em = mont.to_mont(&edge);
                assert_eq!(mont.mont_sqr(&em), mont.mont_mul(&em, &em), "{limbs} limbs edge");
            }
        }
    }

    #[test]
    fn mont_mul_mod_matches_plain() {
        let m = big(0xffff_ffff_ffff_ffc5); // large odd
        let mont = Montgomery::new(&m);
        for (a, b) in
            [(3u128, 5u128), (u64::MAX as u128, 2), (12345678901234567, 98765432109876543)]
        {
            assert_eq!(mont.mul_mod(&big(a), &big(b)), big(a).mul_mod(&big(b), &m));
        }
    }

    #[test]
    fn rsa_style_roundtrip_512_bit() {
        // Fixed 512-bit RSA modulus built from two known 256-bit primes
        // would be slow to verify here; instead check the group law
        // x^(e1) * x^(e2) == x^(e1+e2) mod an odd modulus.
        let m = BigUint::from_be_bytes(&[0xf1; 64]); // odd (0xf1 ends in 1)
        let x = BigUint::from_be_bytes(&[0x42; 63]);
        let e1 = big(65537);
        let e2 = big(99991);
        let lhs = mod_pow(&x, &e1, &m).mul_mod(&mod_pow(&x, &e2, &m), &m);
        let rhs = mod_pow(&x, &(&e1 + &e2), &m);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn exponent_zero_and_one() {
        let m = big(1019);
        assert_eq!(mod_pow(&big(55), &BigUint::zero(), &m), BigUint::one());
        assert_eq!(mod_pow(&big(55), &BigUint::one(), &m), big(55));
    }

    #[test]
    fn base_larger_than_modulus() {
        let m = big(97);
        assert_eq!(mod_pow(&big(1000), &big(3), &m), big(u128_pow_mod(1000, 3, 97)));
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn montgomery_rejects_even() {
        let _ = Montgomery::new(&big(100));
    }

    #[test]
    fn window_boundary_exponents() {
        // Exponents around multiples of the 4-bit window size.
        let m = big(1_000_003);
        for e in [15u128, 16, 17, 255, 256, 257, 65535, 65536] {
            assert_eq!(
                mod_pow(&big(3), &big(e), &m),
                big(u128_pow_mod(3, e, 1_000_003)),
                "e = {e}"
            );
        }
    }
}
