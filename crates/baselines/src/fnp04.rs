//! Freedman–Nissim–Pinkas private set intersection (EUROCRYPT'04) —
//! oblivious polynomial evaluation over Paillier.
//!
//! The client encodes their set `X` as the coefficients of
//! `P(x) = Π (x − xᵢ)` and sends the Paillier-encrypted coefficients.
//! The server evaluates `Enc(r·P(y) + y)` homomorphically for each of
//! their elements `y` (Horner's rule) and returns the shuffled
//! ciphertexts. Decrypting, the client sees `y` exactly when `P(y) = 0`,
//! i.e. `y ∈ X`, and uniform garbage otherwise.

use crate::cost::OpCounts;
use crate::paillier::{Ciphertext, PaillierKeyPair};
use msb_bignum::prime::random_below;
use msb_bignum::BigUint;
use rand::Rng;

/// Result of one FNP'04 run.
#[derive(Debug)]
pub struct FnpRun {
    /// Elements of the client set found in the server set.
    pub intersection: Vec<u64>,
    /// Client-side operation counts.
    pub client_ops: OpCounts,
    /// Server-side operation counts.
    pub server_ops: OpCounts,
    /// Bytes transferred (coefficients down, evaluations up).
    pub bytes_transferred: usize,
}

/// The FNP'04 protocol.
#[derive(Debug)]
pub struct Fnp04;

impl Fnp04 {
    /// Runs the protocol on `u64` sets (hashed into the plaintext space
    /// in a deployment; small integers suffice for evaluation).
    pub fn run_u64<R: Rng + ?Sized>(
        keys: &PaillierKeyPair,
        client_set: &[u64],
        server_set: &[u64],
        rng: &mut R,
    ) -> FnpRun {
        let client: Vec<BigUint> = client_set.iter().map(|&v| BigUint::from(v)).collect();
        let server: Vec<BigUint> = server_set.iter().map(|&v| BigUint::from(v)).collect();

        // --- Client: polynomial coefficients, encrypted. ---
        keys.reset_counts();
        let coeffs = polynomial_from_roots(&client, &keys.n);
        let enc_coeffs: Vec<Ciphertext> = coeffs.iter().map(|c| keys.encrypt(c, rng)).collect();
        let client_ops = keys.counts();

        // --- Server: oblivious evaluation per element. ---
        keys.reset_counts();
        let mut evaluations = Vec::with_capacity(server.len());
        for y in &server {
            // Horner: acc = Enc(P(y)) built from the top coefficient.
            let mut acc = enc_coeffs.last().expect("nonempty polynomial").clone();
            for c in enc_coeffs.iter().rev().skip(1) {
                acc = keys.scalar_mul(&acc, y);
                acc = keys.add(&acc, c);
            }
            // r·P(y) + y
            let r = loop {
                let r = random_below(rng, &keys.n);
                if !r.is_zero() {
                    break r;
                }
            };
            let blinded = keys.scalar_mul(&acc, &r);
            let y_enc = keys.encrypt(y, rng);
            evaluations.push(keys.add(&blinded, &y_enc));
        }
        // Shuffle so positions leak nothing.
        for i in (1..evaluations.len()).rev() {
            let j = rng.gen_range(0..=i);
            evaluations.swap(i, j);
        }
        let server_ops = keys.counts();

        // --- Client: decrypt, recognize own elements. ---
        keys.reset_counts();
        let mut intersection: Vec<u64> = Vec::new();
        for ev in &evaluations {
            let m = keys.decrypt(ev);
            if let Ok(small) = u64::try_from(&m) {
                if client_set.contains(&small) {
                    intersection.push(small);
                }
            }
        }
        intersection.sort_unstable();
        intersection.dedup();
        let mut client_total = client_ops;
        client_total += keys.counts();

        let ct_bytes = keys.n_squared().bit_len().div_ceil(8);
        let bytes_transferred = ct_bytes * (enc_coeffs.len() + evaluations.len());

        FnpRun { intersection, client_ops: client_total, server_ops, bytes_transferred }
    }
}

/// Monic polynomial with the given roots, coefficients mod `n`
/// (constant term first).
fn polynomial_from_roots(roots: &[BigUint], n: &BigUint) -> Vec<BigUint> {
    let mut coeffs = vec![BigUint::one()];
    for root in roots {
        // Multiply by (x - root): new[i] = old[i-1] - root·old[i].
        let neg_root = BigUint::zero().sub_mod(&root.rem(n), n);
        let mut next = vec![BigUint::zero(); coeffs.len() + 1];
        for (i, c) in coeffs.iter().enumerate() {
            next[i + 1] = next[i + 1].add_mod(c, n);
            next[i] = next[i].add_mod(&c.mul_mod(&neg_root, n), n);
        }
        coeffs = next;
    }
    coeffs // constant term first
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(10);
        PaillierKeyPair::generate(256, &mut rng)
    }

    #[test]
    fn polynomial_vanishes_on_roots() {
        let n = BigUint::from(1_000_003u64);
        let roots = vec![BigUint::from(3u64), BigUint::from(7u64), BigUint::from(11u64)];
        let coeffs = polynomial_from_roots(&roots, &n);
        assert_eq!(coeffs.len(), 4);
        for root in &roots {
            let mut acc = BigUint::zero();
            let mut pow = BigUint::one();
            for c in &coeffs {
                acc = acc.add_mod(&c.mul_mod(&pow, &n), &n);
                pow = pow.mul_mod(root, &n);
            }
            assert!(acc.is_zero(), "P({root}) != 0");
        }
        // And does not vanish off-root.
        let x = BigUint::from(5u64);
        let mut acc = BigUint::zero();
        let mut pow = BigUint::one();
        for c in &coeffs {
            acc = acc.add_mod(&c.mul_mod(&pow, &n), &n);
            pow = pow.mul_mod(&x, &n);
        }
        assert!(!acc.is_zero());
    }

    #[test]
    fn intersection_correct() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(11);
        let run = Fnp04::run_u64(&k, &[10, 20, 30, 40], &[20, 40, 50], &mut rng);
        assert_eq!(run.intersection, vec![20, 40]);
    }

    #[test]
    fn disjoint_sets_empty_intersection() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(12);
        let run = Fnp04::run_u64(&k, &[1, 2, 3], &[4, 5, 6], &mut rng);
        assert!(run.intersection.is_empty());
    }

    #[test]
    fn identical_sets_full_intersection() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(13);
        let run = Fnp04::run_u64(&k, &[7, 8, 9], &[7, 8, 9], &mut rng);
        assert_eq!(run.intersection, vec![7, 8, 9]);
    }

    #[test]
    fn op_counts_scale_with_sets() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(14);
        let small = Fnp04::run_u64(&k, &[1, 2], &[1, 2], &mut rng);
        let large = Fnp04::run_u64(&k, &[1, 2, 3, 4, 5, 6], &[1, 2, 3, 4, 5, 6], &mut rng);
        assert!(large.server_ops.e3 > small.server_ops.e3);
        assert!(large.bytes_transferred > small.bytes_transferred);
        // Server does ~mt scalar-muls per element: mt·mk exps at least.
        assert!(large.server_ops.e3 >= 36);
    }
}
