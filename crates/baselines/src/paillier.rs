//! The Paillier additively homomorphic cryptosystem.
//!
//! The FNP'04 PSI, the FindU-style PSI-CA and the private dot product all
//! run on Paillier. We use the standard `g = n + 1` simplification:
//! `Enc(m; r) = (1 + m·n) · rⁿ mod n²`, `Dec(c) = L(c^λ mod n²) · λ⁻¹
//! mod n` with `L(u) = (u − 1)/n`.
//!
//! Every operation updates a [`crate::cost::OpCounts`]: an
//! exponentiation mod `n²` of a 1024-bit `n` is the paper's `E3`
//! (2048-bit exponentiation), a multiplication mod `n²` its `M3`.

use crate::cost::OpCounts;
use msb_bignum::modexp::Montgomery;
use msb_bignum::prime::{gen_prime, random_below};
use msb_bignum::BigUint;
use rand::Rng;
use std::cell::RefCell;

/// A Paillier key pair with instrumented operations.
#[derive(Debug)]
pub struct PaillierKeyPair {
    /// Modulus `n = p·q`.
    pub n: BigUint,
    n_squared: BigUint,
    mont_n2: Montgomery,
    /// `λ = lcm(p−1, q−1)`.
    lambda: BigUint,
    /// `λ⁻¹ mod n`.
    mu: BigUint,
    counts: RefCell<OpCounts>,
}

/// A Paillier ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext(pub BigUint);

impl PaillierKeyPair {
    /// Generates a key with an `n` of roughly `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 16, "modulus too small to be meaningful");
        let (p, q) = loop {
            let p = gen_prime(rng, bits / 2);
            let q = gen_prime(rng, bits / 2);
            if p != q {
                break (p, q);
            }
        };
        let n = &p * &q;
        let n_squared = &n * &n;
        let one = BigUint::one();
        let pm1 = p.checked_sub(&one).expect("p > 1");
        let qm1 = q.checked_sub(&one).expect("q > 1");
        let gcd = pm1.gcd(&qm1);
        let lambda = (&pm1 * &qm1).div_rem(&gcd).0;
        let mu = lambda.mod_inverse(&n).expect("λ is invertible mod n for distinct primes");
        let mont_n2 = Montgomery::new(&n_squared);
        PaillierKeyPair {
            n,
            n_squared,
            mont_n2,
            lambda,
            mu,
            counts: RefCell::new(OpCounts::default()),
        }
    }

    /// The modulus squared (ciphertext space).
    pub fn n_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// Accumulated operation counts (shared across users of this key —
    /// protocols snapshot and diff).
    pub fn counts(&self) -> OpCounts {
        *self.counts.borrow()
    }

    /// Resets the operation counters.
    pub fn reset_counts(&self) {
        *self.counts.borrow_mut() = OpCounts::default();
    }

    /// Encrypts `m < n`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n`.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Ciphertext {
        assert!(m < &self.n, "plaintext out of range");
        let r = loop {
            let r = random_below(rng, &self.n);
            if !r.is_zero() && r.gcd(&self.n).is_one() {
                break r;
            }
        };
        // (1 + m·n) · r^n mod n²
        let gm = BigUint::one().add_mod(&(m * &self.n).rem(&self.n_squared), &self.n_squared);
        let rn = self.mont_n2.pow_mod(&r, &self.n);
        self.counts.borrow_mut().e3 += 1;
        self.counts.borrow_mut().m3 += 1;
        Ciphertext(gm.mul_mod(&rn, &self.n_squared))
    }

    /// Decrypts a ciphertext.
    pub fn decrypt(&self, c: &Ciphertext) -> BigUint {
        let u = self.mont_n2.pow_mod(&c.0, &self.lambda);
        self.counts.borrow_mut().e3 += 1;
        let l = u
            .checked_sub(&BigUint::one())
            .expect("u >= 1 in the Paillier group")
            .div_rem(&self.n)
            .0;
        self.counts.borrow_mut().m2 += 1;
        l.mul_mod(&self.mu, &self.n)
    }

    /// Homomorphic addition: `Enc(a) ⊕ Enc(b) = Enc(a + b)`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.counts.borrow_mut().m3 += 1;
        Ciphertext(a.0.mul_mod(&b.0, &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `Enc(a)^k = Enc(k·a)`.
    pub fn scalar_mul(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        self.counts.borrow_mut().e3 += 1;
        Ciphertext(self.mont_n2.pow_mod(&a.0, k))
    }

    /// Encryption of zero with fresh randomness (re-randomization).
    pub fn rerandomize<R: Rng + ?Sized>(&self, c: &Ciphertext, rng: &mut R) -> Ciphertext {
        let zero = self.encrypt(&BigUint::zero(), rng);
        self.add(c, &zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(1);
        PaillierKeyPair::generate(256, &mut rng)
    }

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(2);
        for m in [0u64, 1, 42, 123456789] {
            let c = k.encrypt(&big(m), &mut rng);
            assert_eq!(k.decrypt(&c), big(m), "m = {m}");
        }
    }

    #[test]
    fn ciphertexts_randomized() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(3);
        let c1 = k.encrypt(&big(7), &mut rng);
        let c2 = k.encrypt(&big(7), &mut rng);
        assert_ne!(c1, c2, "semantic security needs fresh randomness");
        assert_eq!(k.decrypt(&c1), k.decrypt(&c2));
    }

    #[test]
    fn homomorphic_addition() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(4);
        let a = k.encrypt(&big(1000), &mut rng);
        let b = k.encrypt(&big(234), &mut rng);
        assert_eq!(k.decrypt(&k.add(&a, &b)), big(1234));
    }

    #[test]
    fn homomorphic_scalar_mul() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(5);
        let a = k.encrypt(&big(21), &mut rng);
        assert_eq!(k.decrypt(&k.scalar_mul(&a, &big(2))), big(42));
    }

    #[test]
    fn additive_wraparound_mod_n() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(6);
        let n_minus_1 = k.n.checked_sub(&BigUint::one()).unwrap();
        let a = k.encrypt(&n_minus_1, &mut rng);
        let b = k.encrypt(&big(2), &mut rng);
        assert_eq!(k.decrypt(&k.add(&a, &b)), BigUint::one());
    }

    #[test]
    fn rerandomize_preserves_plaintext() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(7);
        let c = k.encrypt(&big(99), &mut rng);
        let c2 = k.rerandomize(&c, &mut rng);
        assert_ne!(c, c2);
        assert_eq!(k.decrypt(&c2), big(99));
    }

    #[test]
    fn op_counts_accumulate() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(8);
        k.reset_counts();
        let c = k.encrypt(&big(5), &mut rng);
        let _ = k.decrypt(&c);
        let counts = k.counts();
        assert_eq!(counts.e3, 2, "one exp to encrypt, one to decrypt");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_plaintext_rejected() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(9);
        let _ = k.encrypt(&k.n.clone(), &mut rng);
    }
}
