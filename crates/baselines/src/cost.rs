//! Operation counting and the symbolic cost formulas of Table III.
//!
//! The paper prices protocols in basic operations: `M1/M2/M3` (24, 1024,
//! 2048-bit modular multiplication), `E2/E3` (1024/2048-bit modular
//! exponentiation) for the asymmetric schemes; `H` (SHA-256), `M` (hash
//! mod small prime), `E`/`D` (AES-256) for Sealed Bottle.

use std::ops::AddAssign;

/// Basic-operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// 1024-bit modular exponentiations.
    pub e2: u64,
    /// 2048-bit modular exponentiations.
    pub e3: u64,
    /// 1024-bit modular multiplications.
    pub m2: u64,
    /// 2048-bit modular multiplications.
    pub m3: u64,
    /// SHA-256 invocations.
    pub h: u64,
    /// Hash-mod-small-prime operations.
    pub modp: u64,
    /// AES-256 encryptions (per message).
    pub aes_enc: u64,
    /// AES-256 decryptions (per message).
    pub aes_dec: u64,
    /// 256-bit multiplications (hint-matrix algebra).
    pub mul256: u64,
    /// 256-bit comparisons.
    pub cmp256: u64,
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.e2 += rhs.e2;
        self.e3 += rhs.e3;
        self.m2 += rhs.m2;
        self.m3 += rhs.m3;
        self.h += rhs.h;
        self.modp += rhs.modp;
        self.aes_enc += rhs.aes_enc;
        self.aes_dec += rhs.aes_dec;
        self.mul256 += rhs.mul256;
        self.cmp256 += rhs.cmp256;
    }
}

impl OpCounts {
    /// Estimated wall time in milliseconds under a per-op cost table.
    pub fn estimate_ms(&self, costs: &OpCostTable) -> f64 {
        self.e2 as f64 * costs.e2_ms
            + self.e3 as f64 * costs.e3_ms
            + self.m2 as f64 * costs.m2_ms
            + self.m3 as f64 * costs.m3_ms
            + self.h as f64 * costs.h_ms
            + self.modp as f64 * costs.modp_ms
            + self.aes_enc as f64 * costs.aes_enc_ms
            + self.aes_dec as f64 * costs.aes_dec_ms
            + self.mul256 as f64 * costs.mul256_ms
            + self.cmp256 as f64 * costs.cmp256_ms
    }
}

/// Per-operation costs in milliseconds. Fill from measurements (the
/// Table IV/V benches) or from the paper's published numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCostTable {
    /// 1024-bit exponentiation.
    pub e2_ms: f64,
    /// 2048-bit exponentiation.
    pub e3_ms: f64,
    /// 1024-bit multiplication.
    pub m2_ms: f64,
    /// 2048-bit multiplication.
    pub m3_ms: f64,
    /// SHA-256.
    pub h_ms: f64,
    /// Hash mod p.
    pub modp_ms: f64,
    /// AES-256 encryption.
    pub aes_enc_ms: f64,
    /// AES-256 decryption.
    pub aes_dec_ms: f64,
    /// 256-bit multiply.
    pub mul256_ms: f64,
    /// 256-bit compare.
    pub cmp256_ms: f64,
}

impl OpCostTable {
    /// The paper's laptop numbers (Tables IV–V).
    pub fn paper_laptop() -> Self {
        OpCostTable {
            e2_ms: 17.0,
            e3_ms: 120.0,
            m2_ms: 2.3e-2,
            m3_ms: 1e-1,
            h_ms: 1.2e-3,
            modp_ms: 3.1e-4,
            aes_enc_ms: 8.7e-4,
            aes_dec_ms: 9.6e-4,
            mul256_ms: 1.4e-4,
            cmp256_ms: 1.0e-5,
        }
    }

    /// The paper's phone (HTC G17) numbers.
    pub fn paper_phone() -> Self {
        OpCostTable {
            e2_ms: 34.0,
            e3_ms: 197.0,
            m2_ms: 1.5e-1,
            m3_ms: 2.4e-1,
            h_ms: 4.8e-2,
            modp_ms: 5.7e-2,
            aes_enc_ms: 2.1e-2,
            aes_dec_ms: 2.5e-2,
            mul256_ms: 3.2e-2,
            cmp256_ms: 1.0e-3,
        }
    }
}

/// Symbolic Table III cost formulas, evaluated for concrete parameters.
/// `mt`/`mk` are request/user attribute counts, `n` the network size,
/// `theta` the similarity threshold, `p` the remainder modulus,
/// `t` the FindU secret-sharing parameter.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Request attribute count m_t.
    pub mt: u64,
    /// Participant attribute count m_k.
    pub mk: u64,
    /// Number of participants n.
    pub n: u64,
    /// Similarity threshold θ.
    pub theta: f64,
    /// Remainder modulus p.
    pub p: u64,
    /// FindU parameter t.
    pub t: u64,
}

impl ScenarioParams {
    /// The paper's Table VII scenario: mt = mk = 6, γ = β = 3, p = 11,
    /// n = 100, t = 4.
    pub fn table7() -> Self {
        ScenarioParams { mt: 6, mk: 6, n: 100, theta: 0.5, p: 11, t: 4 }
    }
}

/// Table III row: FNP'04.
pub fn fnp_formula(s: &ScenarioParams) -> (OpCounts, OpCounts, u64) {
    let initiator = OpCounts { e3: (2 * s.mt + s.mk * s.n), ..OpCounts::default() };
    // The paper evaluates "m_k log m_t" with a base-10 logarithm
    // (Table VII prints 5 E3 for m_t = m_k = 6).
    let participant = OpCounts {
        e3: (s.mk as f64 * (s.mt as f64).log10()).round() as u64,
        ..OpCounts::default()
    };
    let q = 256u64;
    let comm_bits = 8 * q * (s.mt + s.mk * s.n);
    (initiator, participant, comm_bits)
}

/// Table III row: FC'10.
pub fn fc10_formula(s: &ScenarioParams) -> (OpCounts, OpCounts, u64) {
    let initiator = OpCounts { m2: 5 * s.mt * s.n / 2, ..OpCounts::default() };
    let participant = OpCounts { e2: s.mt + s.mk, ..OpCounts::default() };
    let q = 256u64;
    let comm_bits = 4 * q * s.n * (3 * s.mt + s.mk);
    (initiator, participant, comm_bits)
}

/// Table III row: FindU-style "Advanced".
pub fn findu_formula(s: &ScenarioParams) -> (OpCounts, OpCounts, u64) {
    let initiator = OpCounts { e3: 3 * s.mt * s.n, ..OpCounts::default() };
    let participant = OpCounts { e3: 2 * s.mt, ..OpCounts::default() };
    let comm_bits = 24 * (s.mt * s.mk * s.n + s.t * s.n * (8 * s.mt + 2 * s.mk + 12 * s.mt * s.t))
        + 16 * 256 * s.mt * s.n;
    (initiator, participant, comm_bits)
}

/// Table III row: Sealed Bottle Protocol 1. `kappa` is the expected
/// candidate-key count for a candidate user.
pub fn protocol1_formula(s: &ScenarioParams, kappa: u64) -> (OpCounts, OpCounts, u64) {
    let gamma = ((1.0 - s.theta) * s.mt as f64).round() as u64;
    let beta = s.mt - gamma; // alpha folded into beta for the formula
    let initiator = OpCounts { h: s.mt + 1, modp: s.mt, aes_enc: 1, ..OpCounts::default() };
    // Non-candidate: mk hashes (amortized) + mk mod p.
    // Candidate adds kappa solves + hashes + decryptions.
    let participant = OpCounts {
        h: s.mk + kappa,
        modp: s.mk,
        mul256: kappa * gamma * gamma * (gamma + beta),
        aes_dec: kappa,
        ..OpCounts::default()
    };
    let q = 256u64;
    let comm_bits = ((1.0 - s.theta) * 32.0 * (s.mt * s.mt) as f64
        + (288.0 - s.theta * q as f64) * s.mt as f64
        + q as f64) as u64;
    (initiator, participant, comm_bits)
}

/// Expected candidate fraction under the remainder vector:
/// `(1/p)^(mt·θ)` scaled to the population (paper §IV-B2).
pub fn expected_candidate_fraction(s: &ScenarioParams) -> f64 {
    (1.0 / s.p as f64).powf(s.mt as f64 * s.theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_scenario_formulas() {
        let s = ScenarioParams::table7();
        let (fnp_i, fnp_p, fnp_bits) = fnp_formula(&s);
        assert_eq!(fnp_i.e3, 612); // paper Table VII: 612 E3
        assert_eq!(fnp_p.e3, 5); // paper Table VII: 5 E3
        assert_eq!(fnp_bits / 8 / 1024, 151); // paper: 151 KB

        let (_, fc10_p, fc10_bits) = fc10_formula(&s);
        assert_eq!(fc10_p.e2, 12); // paper: 12 E2
        assert_eq!(fc10_bits / 8 / 1024, 300); // paper: 300 KB

        let (findu_i, findu_p, _) = findu_formula(&s);
        assert_eq!(findu_i.e3, 1800); // paper: 1800 E3
        assert_eq!(findu_p.e3, 12); // paper: 12 E3
    }

    #[test]
    fn sealed_bottle_orders_of_magnitude_cheaper() {
        let s = ScenarioParams::table7();
        let costs = OpCostTable::paper_laptop();
        let (fnp_i, _, _) = fnp_formula(&s);
        let (p1_i, p1_p, _) = protocol1_formula(&s, 1);
        let fnp_ms = fnp_i.estimate_ms(&costs);
        let p1_ms = p1_i.estimate_ms(&costs) + p1_p.estimate_ms(&costs);
        assert!(fnp_ms / p1_ms > 1000.0, "paper claims >10^3× advantage, got {}×", fnp_ms / p1_ms);
    }

    #[test]
    fn communication_under_a_kilobyte() {
        let s = ScenarioParams::table7();
        let (_, _, bits) = protocol1_formula(&s, 1);
        assert!(bits / 8 < 1024, "paper: ~0.22 KB, got {} B", bits / 8);
    }

    #[test]
    fn candidate_fraction_tiny() {
        let s = ScenarioParams::table7();
        let f = expected_candidate_fraction(&s);
        assert!(f < 0.002, "about 1/1331 for p=11, mtθ=3: {f}");
    }

    #[test]
    fn op_counts_add() {
        let mut a = OpCounts { e2: 1, h: 2, ..OpCounts::default() };
        a += OpCounts { e2: 3, aes_dec: 1, ..OpCounts::default() };
        assert_eq!(a.e2, 4);
        assert_eq!(a.h, 2);
        assert_eq!(a.aes_dec, 1);
    }

    #[test]
    fn estimate_uses_all_fields() {
        let costs = OpCostTable::paper_laptop();
        let one_of_each = OpCounts {
            e2: 1,
            e3: 1,
            m2: 1,
            m3: 1,
            h: 1,
            modp: 1,
            aes_enc: 1,
            aes_dec: 1,
            mul256: 1,
            cmp256: 1,
        };
        let total = one_of_each.estimate_ms(&costs);
        let expected = costs.e2_ms
            + costs.e3_ms
            + costs.m2_ms
            + costs.m3_ms
            + costs.h_ms
            + costs.modp_ms
            + costs.aes_enc_ms
            + costs.aes_dec_ms
            + costs.mul256_ms
            + costs.cmp256_ms;
        assert!((total - expected).abs() < 1e-12);
    }
}
