//! Private vector dot product (the Dong et al. INFOCOM'11 social
//! proximity metric, and the Ioannidis et al. primitive behind it).
//!
//! Profiles are vectors over a public attribute ordering; social
//! proximity is the dot product. Alice encrypts her coordinates with
//! Paillier; Bob computes `Enc(Σ aᵢ·bᵢ)` homomorphically (scalar
//! multiplications + additions) and returns it blinded by a random mask
//! he remembers, so *neither* party alone sees the raw product until Bob
//! chooses to reveal the mask.

use crate::cost::OpCounts;
use crate::paillier::PaillierKeyPair;
use msb_bignum::prime::random_below;
use msb_bignum::BigUint;
use rand::Rng;

/// Result of one private dot-product run.
#[derive(Debug)]
pub struct DotProductRun {
    /// The dot product (after Bob reveals the mask).
    pub dot_product: u64,
    /// Alice-side operation counts.
    pub alice_ops: OpCounts,
    /// Bob-side operation counts.
    pub bob_ops: OpCounts,
    /// Bytes transferred.
    pub bytes_transferred: usize,
}

/// The private dot-product protocol.
#[derive(Debug)]
pub struct DotProduct;

impl DotProduct {
    /// Runs the protocol on equal-length `u64` vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or are empty.
    pub fn run_u64<R: Rng + ?Sized>(
        keys: &PaillierKeyPair,
        alice: &[u64],
        bob: &[u64],
        rng: &mut R,
    ) -> DotProductRun {
        assert_eq!(alice.len(), bob.len(), "vectors must be equal length");
        assert!(!alice.is_empty(), "vectors must be nonempty");

        keys.reset_counts();
        let enc_alice: Vec<_> =
            alice.iter().map(|&a| keys.encrypt(&BigUint::from(a), rng)).collect();
        let alice_ops_send = keys.counts();

        keys.reset_counts();
        // Bob: Enc(Σ aᵢ bᵢ + mask).
        let mut acc = keys.encrypt(&BigUint::zero(), rng);
        for (ca, &b) in enc_alice.iter().zip(bob) {
            let term = keys.scalar_mul(ca, &BigUint::from(b));
            acc = keys.add(&acc, &term);
        }
        let mask = random_below(rng, &BigUint::from(1u64 << 32));
        let enc_mask = keys.encrypt(&mask, rng);
        let blinded = keys.add(&acc, &enc_mask);
        let bob_ops = keys.counts();

        keys.reset_counts();
        let masked_value = keys.decrypt(&blinded);
        // Bob reveals the mask; Alice subtracts.
        let result = masked_value.sub_mod(&mask.rem(&keys.n), &keys.n);
        let mut alice_ops = alice_ops_send;
        alice_ops += keys.counts();

        let ct_bytes = keys.n_squared().bit_len().div_ceil(8);
        DotProductRun {
            dot_product: u64::try_from(&result).expect("small test values fit"),
            alice_ops,
            bob_ops,
            bytes_transferred: ct_bytes * (enc_alice.len() + 1) + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(41);
        PaillierKeyPair::generate(256, &mut rng)
    }

    #[test]
    fn dot_product_correct() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(42);
        let run = DotProduct::run_u64(&k, &[1, 2, 3], &[4, 5, 6], &mut rng);
        assert_eq!(run.dot_product, 32);
    }

    #[test]
    fn orthogonal_vectors() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(43);
        let run = DotProduct::run_u64(&k, &[1, 0, 1], &[0, 7, 0], &mut rng);
        assert_eq!(run.dot_product, 0);
    }

    #[test]
    fn binary_interest_vectors() {
        // The paper's framing: binary interest vectors; the dot product
        // is the number of shared interests.
        let k = keys();
        let mut rng = StdRng::seed_from_u64(44);
        let a = [1u64, 1, 0, 1, 0, 1];
        let b = [1u64, 0, 0, 1, 1, 1];
        let run = DotProduct::run_u64(&k, &a, &b, &mut rng);
        assert_eq!(run.dot_product, 3);
    }

    #[test]
    fn ops_linear_in_dimension() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(45);
        let small = DotProduct::run_u64(&k, &[1, 1], &[1, 1], &mut rng);
        let large = DotProduct::run_u64(&k, &[1; 10], &[1; 10], &mut rng);
        assert!(large.alice_ops.e3 > small.alice_ops.e3);
        assert!(large.bob_ops.e3 > small.bob_ops.e3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_rejected() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(46);
        let _ = DotProduct::run_u64(&k, &[1], &[1, 2], &mut rng);
    }
}
