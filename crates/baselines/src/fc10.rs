//! De Cristofaro–Tsudik linear-complexity PSI (Financial Crypto 2010),
//! built from blind RSA signatures (an RSA-based OPRF).
//!
//! Server holds RSA `(n, e, d)`. For every element `y` it publishes
//! `t_y = H'(H(y)^d mod n)`. The client blinds each of its elements —
//! `a = H(x) · rᵉ mod n` — gets back `a^d = H(x)^d · r`, unblinds by
//! dividing `r`, and compares `H'(H(x)^d)` against the published tags.
//! One exponentiation per element on each side: linear complexity.

use crate::cost::OpCounts;
use msb_bignum::modexp::Montgomery;
use msb_bignum::prime::{gen_prime, random_below};
use msb_bignum::BigUint;
use msb_crypto::sha256::Sha256;
use rand::Rng;
use std::collections::BTreeSet;

/// Result of one FC'10 run.
#[derive(Debug)]
pub struct Fc10Run {
    /// Client elements present in the server set.
    pub intersection: Vec<u64>,
    /// Client-side operation counts.
    pub client_ops: OpCounts,
    /// Server-side operation counts.
    pub server_ops: OpCounts,
    /// Bytes transferred.
    pub bytes_transferred: usize,
}

/// An RSA key for the blind-signature OPRF.
#[derive(Debug)]
pub struct RsaKey {
    /// Modulus.
    pub n: BigUint,
    e: BigUint,
    d: BigUint,
    mont: Montgomery,
}

impl RsaKey {
    /// Generates an RSA key with an `n` of roughly `bits` bits.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        let e = BigUint::from(65_537u64);
        loop {
            let p = gen_prime(rng, bits / 2);
            let q = gen_prime(rng, bits / 2);
            if p == q {
                continue;
            }
            let n = &p * &q;
            let one = BigUint::one();
            let phi = &p.checked_sub(&one).expect("p>1") * &q.checked_sub(&one).expect("q>1");
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            let mont = Montgomery::new(&n);
            return RsaKey { n, e, d, mont };
        }
    }

    fn sign(&self, m: &BigUint) -> BigUint {
        self.mont.pow_mod(m, &self.d)
    }

    fn blind_exp(&self, m: &BigUint) -> BigUint {
        self.mont.pow_mod(m, &self.e)
    }
}

/// Hashes an element into Z_n*.
fn hash_to_group(v: u64, n: &BigUint) -> BigUint {
    let digest = Sha256::digest(&v.to_be_bytes());
    let h = BigUint::from_be_bytes(&digest).rem(n);
    if h.is_zero() {
        BigUint::one()
    } else {
        h
    }
}

/// The outer hash H′ applied to the OPRF output.
fn tag_of(sig: &BigUint) -> [u8; 32] {
    Sha256::digest(&sig.to_be_bytes())
}

/// The FC'10 protocol.
#[derive(Debug)]
pub struct Fc10;

impl Fc10 {
    /// Runs the protocol on `u64` sets.
    pub fn run_u64<R: Rng + ?Sized>(
        key: &RsaKey,
        client_set: &[u64],
        server_set: &[u64],
        rng: &mut R,
    ) -> Fc10Run {
        let mut client_ops = OpCounts::default();
        let mut server_ops = OpCounts::default();
        let element_bytes = key.n.bit_len().div_ceil(8);
        let mut bytes = 0usize;

        // Server publishes tags of its elements.
        let server_tags: BTreeSet<[u8; 32]> = server_set
            .iter()
            .map(|&y| {
                let hy = hash_to_group(y, &key.n);
                server_ops.h += 2;
                server_ops.e2 += 1; // H(y)^d
                tag_of(&key.sign(&hy))
            })
            .collect();
        bytes += 32 * server_set.len();

        // Client blinds its elements.
        let mut blind_factors = Vec::with_capacity(client_set.len());
        let mut blinded = Vec::with_capacity(client_set.len());
        for &x in client_set {
            let hx = hash_to_group(x, &key.n);
            client_ops.h += 1;
            let r = loop {
                let r = random_below(rng, &key.n);
                if !r.is_zero() && r.gcd(&key.n).is_one() {
                    break r;
                }
            };
            let re = key.blind_exp(&r);
            client_ops.e2 += 1;
            let a = hx.mul_mod(&re, &key.n);
            client_ops.m2 += 1;
            blind_factors.push(r);
            blinded.push(a);
        }
        bytes += element_bytes * blinded.len();

        // Server signs the blinded values.
        let signed: Vec<BigUint> = blinded
            .iter()
            .map(|a| {
                server_ops.e2 += 1;
                key.sign(a)
            })
            .collect();
        bytes += element_bytes * signed.len();

        // Client unblinds and matches tags.
        let mut intersection = Vec::new();
        for ((&x, s), r) in client_set.iter().zip(&signed).zip(&blind_factors) {
            let r_inv = r.mod_inverse(&key.n).expect("r invertible by construction");
            client_ops.m2 += 1;
            let unblinded = s.mul_mod(&r_inv, &key.n);
            client_ops.h += 1;
            if server_tags.contains(&tag_of(&unblinded)) {
                intersection.push(x);
            }
        }
        intersection.sort_unstable();

        Fc10Run { intersection, client_ops, server_ops, bytes_transferred: bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> RsaKey {
        let mut rng = StdRng::seed_from_u64(21);
        RsaKey::generate(256, &mut rng)
    }

    #[test]
    fn rsa_sign_verify_roundtrip() {
        let k = key();
        let m = BigUint::from(123456u64);
        let s = k.sign(&m);
        assert_eq!(k.blind_exp(&s), m, "m^(d·e) = m");
    }

    #[test]
    fn intersection_correct() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(22);
        let run = Fc10::run_u64(&k, &[100, 200, 300], &[200, 300, 400, 500], &mut rng);
        assert_eq!(run.intersection, vec![200, 300]);
    }

    #[test]
    fn disjoint_sets() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(23);
        let run = Fc10::run_u64(&k, &[1, 2], &[3, 4], &mut rng);
        assert!(run.intersection.is_empty());
    }

    #[test]
    fn blinding_hides_elements() {
        // Two runs with the same client set produce different blinded
        // values (the server cannot link them).
        let k = key();
        let mut r1 = StdRng::seed_from_u64(24);
        let mut r2 = StdRng::seed_from_u64(25);
        // Indirect check via determinism: different rng seeds, same sets,
        // still correct.
        let a = Fc10::run_u64(&k, &[9, 8], &[8], &mut r1);
        let b = Fc10::run_u64(&k, &[9, 8], &[8], &mut r2);
        assert_eq!(a.intersection, b.intersection);
    }

    #[test]
    fn linear_op_scaling() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(26);
        let small = Fc10::run_u64(&k, &[1, 2], &[1, 2], &mut rng);
        let large = Fc10::run_u64(&k, &[1, 2, 3, 4, 5, 6], &[1, 2, 3, 4, 5, 6], &mut rng);
        // One E2 per element per side: exactly linear.
        assert_eq!(small.client_ops.e2, 2);
        assert_eq!(large.client_ops.e2, 6);
        assert_eq!(large.server_ops.e2, 12); // tags + blind signatures
    }
}
