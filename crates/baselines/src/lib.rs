//! Asymmetric-cryptosystem baselines the paper compares against
//! (Table III / Table VII), implemented for real on [`msb_bignum`]:
//!
//! * [`paillier`] — the additively homomorphic Paillier cryptosystem
//!   (substrate for FNP'04 and the PSI-CA/dot-product protocols).
//! * [`fnp04`] — Freedman–Nissim–Pinkas private set intersection via
//!   oblivious polynomial evaluation.
//! * [`fc10`] — De Cristofaro–Tsudik linear-complexity PSI from blind
//!   RSA signatures.
//! * [`findu`] — a FindU-style private set-intersection cardinality
//!   protocol (the paper's "Advanced" comparator, its reference 14).
//! * [`dotproduct`] — the Dong et al. private dot-product proximity
//!   metric.
//! * [`cost`] — operation counters and the symbolic cost formulas of
//!   Table III.
//!
//! Every protocol instruments its own [`cost::OpCounts`], so Table VII's
//! comparison columns come from *executed* protocols, not transcribed
//! formulas.
//!
//! # Example
//!
//! ```
//! use msb_baselines::fnp04::Fnp04;
//! use msb_baselines::paillier::PaillierKeyPair;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // Small key for the doctest; the benches use 1024-bit keys.
//! let keys = PaillierKeyPair::generate(256, &mut rng);
//! let client: Vec<u64> = vec![1, 2, 3, 4];
//! let server: Vec<u64> = vec![3, 4, 5];
//! let run = Fnp04::run_u64(&keys, &client, &server, &mut rng);
//! assert_eq!(run.intersection, vec![3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dotproduct;
pub mod fc10;
pub mod findu;
pub mod fnp04;
pub mod paillier;
