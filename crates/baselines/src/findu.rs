//! A FindU-style private set-intersection *cardinality* protocol
//! (the paper's "Advanced" comparator, reference 14 — Li et al., INFOCOM'11).
//!
//! FindU lets two users learn only `|A ∩ B|` (PSI-CA), not the elements.
//! We realise PSI-CA on Paillier: the client sends encrypted polynomial
//! coefficients as in FNP, the server returns shuffled `Enc(r·P(y))`
//! values — zero exactly when `y` matches — and the client counts zero
//! decryptions. Neither side learns *which* elements matched.

use crate::cost::OpCounts;
use crate::paillier::{Ciphertext, PaillierKeyPair};
use msb_bignum::prime::random_below;
use msb_bignum::BigUint;
use rand::Rng;

/// Result of one PSI-CA run.
#[derive(Debug)]
pub struct FinduRun {
    /// The private cardinality `|X ∩ Y|`.
    pub cardinality: usize,
    /// Client-side operation counts.
    pub client_ops: OpCounts,
    /// Server-side operation counts.
    pub server_ops: OpCounts,
    /// Bytes transferred.
    pub bytes_transferred: usize,
}

/// The FindU-style PSI-CA protocol.
#[derive(Debug)]
pub struct Findu;

impl Findu {
    /// Runs PSI-CA on `u64` sets.
    pub fn run_u64<R: Rng + ?Sized>(
        keys: &PaillierKeyPair,
        client_set: &[u64],
        server_set: &[u64],
        rng: &mut R,
    ) -> FinduRun {
        let client: Vec<BigUint> = client_set.iter().map(|&v| BigUint::from(v)).collect();

        keys.reset_counts();
        let coeffs = polynomial_from_roots(&client, &keys.n);
        let enc_coeffs: Vec<Ciphertext> = coeffs.iter().map(|c| keys.encrypt(c, rng)).collect();
        let client_ops_down = keys.counts();

        keys.reset_counts();
        let mut evaluations = Vec::with_capacity(server_set.len());
        for &y in server_set {
            let y_big = BigUint::from(y);
            let mut acc = enc_coeffs.last().expect("nonempty polynomial").clone();
            for c in enc_coeffs.iter().rev().skip(1) {
                acc = keys.scalar_mul(&acc, &y_big);
                acc = keys.add(&acc, c);
            }
            let r = loop {
                let r = random_below(rng, &keys.n);
                if !r.is_zero() {
                    break r;
                }
            };
            // Enc(r·P(y)): zero iff y ∈ X; nonzero values are uniform.
            evaluations.push(keys.scalar_mul(&acc, &r));
        }
        for i in (1..evaluations.len()).rev() {
            let j = rng.gen_range(0..=i);
            evaluations.swap(i, j);
        }
        let server_ops = keys.counts();

        keys.reset_counts();
        let cardinality = evaluations.iter().filter(|ev| keys.decrypt(ev).is_zero()).count();
        let mut client_ops = client_ops_down;
        client_ops += keys.counts();

        let ct_bytes = keys.n_squared().bit_len().div_ceil(8);
        FinduRun {
            cardinality,
            client_ops,
            server_ops,
            bytes_transferred: ct_bytes * (enc_coeffs.len() + evaluations.len()),
        }
    }
}

fn polynomial_from_roots(roots: &[BigUint], n: &BigUint) -> Vec<BigUint> {
    let mut coeffs = vec![BigUint::one()];
    for root in roots {
        let neg_root = BigUint::zero().sub_mod(&root.rem(n), n);
        let mut next = vec![BigUint::zero(); coeffs.len() + 1];
        for (i, c) in coeffs.iter().enumerate() {
            next[i + 1] = next[i + 1].add_mod(c, n);
            next[i] = next[i].add_mod(&c.mul_mod(&neg_root, n), n);
        }
        coeffs = next;
    }
    coeffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(31);
        PaillierKeyPair::generate(256, &mut rng)
    }

    #[test]
    fn cardinality_correct() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(32);
        let run = Findu::run_u64(&k, &[1, 2, 3, 4], &[3, 4, 5, 6], &mut rng);
        assert_eq!(run.cardinality, 2);
    }

    #[test]
    fn disjoint_zero() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(33);
        let run = Findu::run_u64(&k, &[1, 2], &[3, 4], &mut rng);
        assert_eq!(run.cardinality, 0);
    }

    #[test]
    fn subset_full() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(34);
        let run = Findu::run_u64(&k, &[10, 20, 30], &[10, 20, 30], &mut rng);
        assert_eq!(run.cardinality, 3);
    }

    #[test]
    fn asymmetric_sizes() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(35);
        let run = Findu::run_u64(&k, &[5], &[1, 2, 3, 4, 5, 6, 7, 8], &mut rng);
        assert_eq!(run.cardinality, 1);
    }

    #[test]
    fn ops_recorded_both_sides() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(36);
        let run = Findu::run_u64(&k, &[1, 2, 3], &[2, 3, 4], &mut rng);
        assert!(run.client_ops.e3 > 0);
        assert!(run.server_ops.e3 > 0);
        assert!(run.bytes_transferred > 0);
    }
}
