//! Criterion version of Table IV: basic symmetric operations.
//!
//! The `/table` rows time the T-table AES backend next to the default
//! S-box oracle, `/midstate` times profile-key completion from a cached
//! SHA-256 midstate, and `sha256_many` times the 4-way interleaved bulk
//! hasher (see `docs/CRYPTO.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use msb_bignum::{BigUint, PrimeField};
use msb_crypto::aes::{Aes256, BlockCipher, CipherBackend};
use msb_crypto::sha256::Sha256;
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    let attr = b"interest:basketball";
    group.bench_function("sha256_attribute", |b| {
        b.iter(|| black_box(Sha256::digest(black_box(attr))))
    });

    // Profile-key completion: the candidate enumeration re-hashes
    // `prefix ‖ suffix` per assignment; with the necessary-block midstate
    // cached (one 64-byte block pre-absorbed) each key costs one clone
    // plus a single finalize compression instead of hashing the prefix
    // again.
    let mut pre = Sha256::new();
    pre.update(&[0xab; 64]);
    let suffix = [0xcd; 32];
    group.bench_function("sha256_attribute/midstate", |b| {
        b.iter(|| {
            let mut h = pre.clone();
            h.update(black_box(&suffix));
            black_box(h.finalize())
        })
    });
    // One-shot oracle for the same 96-byte message (what the midstate
    // path saves: re-absorbing the prefix block each time).
    let full: Vec<u8> = [&[0xab; 64][..], &suffix].concat();
    group.bench_function("sha256_attribute/oneshot_96", |b| {
        b.iter(|| black_box(Sha256::digest(black_box(&full))))
    });

    // Bulk attribute hashing: 8 equal-length canonical forms through the
    // 4-way interleaved compressor (reported per call, i.e. 8 digests).
    let many: Vec<&[u8]> = vec![attr; 8];
    group.bench_function("sha256_many", |b| {
        b.iter(|| black_box(Sha256::digest_many(black_box(&many))))
    });

    let h = BigUint::from_be_bytes(&Sha256::digest(attr));
    group.bench_function("mod_p_11", |b| b.iter(|| black_box(h.rem_u64(black_box(11)))));

    let cipher = Aes256::new(&Sha256::digest(attr));
    group.bench_function("aes256_encrypt_block", |b| {
        b.iter(|| {
            let mut block = [7u8; 16];
            cipher.encrypt_block(&mut block);
            black_box(block)
        })
    });
    group.bench_function("aes256_decrypt_block", |b| {
        b.iter(|| {
            let mut block = [7u8; 16];
            cipher.decrypt_block(&mut block);
            black_box(block)
        })
    });

    // T-table backend: the decrypt row runs the FIPS-197 equivalent
    // inverse cipher, so it should land within ~1.15x of encrypt rather
    // than the ~2x gap of the byte-wise S-box oracle.
    let table = Aes256::with_backend(&Sha256::digest(attr), CipherBackend::Table);
    group.bench_function("aes256_encrypt_block/table", |b| {
        b.iter(|| {
            let mut block = [7u8; 16];
            table.encrypt_block(&mut block);
            black_box(block)
        })
    });
    group.bench_function("aes256_decrypt_block/table", |b| {
        b.iter(|| {
            let mut block = [7u8; 16];
            table.decrypt_block(&mut block);
            black_box(block)
        })
    });

    let field = PrimeField::goldilocks448();
    let a = field.element(BigUint::from_be_bytes(&[0x5a; 32]));
    let bb = field.element(BigUint::from_be_bytes(&[0xc3; 32]));
    group.bench_function("multiply_256_field", |b| {
        b.iter(|| black_box(field.mul(black_box(&a), black_box(&bb))))
    });
    group
        .bench_function("compare_256", |b| b.iter(|| black_box(black_box(&a).cmp(black_box(&bb)))));
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
