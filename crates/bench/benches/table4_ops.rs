//! Criterion version of Table IV: basic symmetric operations.

use criterion::{criterion_group, criterion_main, Criterion};
use msb_bignum::{BigUint, PrimeField};
use msb_crypto::aes::{Aes256, BlockCipher};
use msb_crypto::sha256::Sha256;
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    let attr = b"interest:basketball";
    group.bench_function("sha256_attribute", |b| {
        b.iter(|| black_box(Sha256::digest(black_box(attr))))
    });

    let h = BigUint::from_be_bytes(&Sha256::digest(attr));
    group.bench_function("mod_p_11", |b| b.iter(|| black_box(h.rem_u64(black_box(11)))));

    let cipher = Aes256::new(&Sha256::digest(attr));
    group.bench_function("aes256_encrypt_block", |b| {
        b.iter(|| {
            let mut block = [7u8; 16];
            cipher.encrypt_block(&mut block);
            black_box(block)
        })
    });
    group.bench_function("aes256_decrypt_block", |b| {
        b.iter(|| {
            let mut block = [7u8; 16];
            cipher.decrypt_block(&mut block);
            black_box(block)
        })
    });

    let field = PrimeField::goldilocks448();
    let a = field.element(BigUint::from_be_bytes(&[0x5a; 32]));
    let bb = field.element(BigUint::from_be_bytes(&[0xc3; 32]));
    group.bench_function("multiply_256_field", |b| {
        b.iter(|| black_box(field.mul(black_box(&a), black_box(&bb))))
    });
    group
        .bench_function("compare_256", |b| b.iter(|| black_box(black_box(&a).cmp(black_box(&bb)))));
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
