//! Criterion version of Table VI: MatrixGen / KeyGen / RemainderGen /
//! HintGen / HintSolve on a typical 6-attribute profile.

use criterion::{criterion_group, criterion_main, Criterion};
use msb_profile::hint::{HintConstruction, HintMatrix};
use msb_profile::profile::{ProfileKey, ProfileVector};
use msb_profile::Attribute;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_table6(c: &mut Criterion) {
    let attrs: Vec<Attribute> = (0..6).map(|i| Attribute::new("tag", format!("t{i}"))).collect();
    let vector = ProfileVector::from_hashes(attrs.iter().map(|a| a.hash()));
    let optional = vector.hashes().to_vec();
    let mut rng = StdRng::seed_from_u64(6);
    let hint = HintMatrix::generate(&optional, 3, HintConstruction::Cauchy, &mut rng);
    let assignment: Vec<Option<_>> =
        optional.iter().enumerate().map(|(i, h)| if i < 3 { Some(*h) } else { None }).collect();

    let mut group = c.benchmark_group("table6");
    group.bench_function("matrix_gen", |b| {
        b.iter(|| black_box(ProfileVector::from_hashes(attrs.iter().map(|a| a.hash()))))
    });
    group.bench_function("key_gen", |b| {
        b.iter(|| black_box(ProfileKey::from_hashes(vector.hashes())))
    });
    group.bench_function("remainder_gen", |b| {
        b.iter(|| black_box(vector.remainders(black_box(11))))
    });
    group.bench_function("hint_gen", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(6);
            black_box(HintMatrix::generate(&optional, 3, HintConstruction::Cauchy, &mut r))
        })
    });
    group.bench_function("hint_solve_3_unknowns", |b| {
        b.iter(|| black_box(hint.solve(black_box(&assignment))))
    });
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
