//! Criterion version of Table V: 1024/2048-bit modular exponentiation
//! and multiplication.

use criterion::{criterion_group, criterion_main, Criterion};
use msb_bignum::modexp::Montgomery;
use msb_bignum::prime::random_bits;
use msb_bignum::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_width(c: &mut Criterion, bits: usize, label: &str) {
    let mut rng = StdRng::seed_from_u64(bits as u64);
    let mut modulus = random_bits(&mut rng, bits);
    if modulus.is_even() {
        modulus = &modulus + &BigUint::one();
    }
    let base = random_bits(&mut rng, bits - 1);
    let exp = random_bits(&mut rng, bits - 1);
    let mont = Montgomery::new(&modulus);

    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function(format!("{label}_exp"), |b| {
        b.iter(|| black_box(mont.pow_mod(black_box(&base), black_box(&exp))))
    });
    group.bench_function(format!("{label}_mul"), |b| {
        b.iter(|| black_box(base.mul_mod(black_box(&exp), &modulus)))
    });
    group.finish();
}

fn bench_table5(c: &mut Criterion) {
    bench_width(c, 1024, "1024");
    bench_width(c, 2048, "2048");
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
