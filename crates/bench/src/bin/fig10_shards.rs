//! Figure 10 (extension) — sharded-engine scalability under churn:
//! re-flooding friending swarms at 10k / 50k / 200k nodes, each size
//! executed on the spatially-sharded engine at 1 / 2 / 4 / 8 worker
//! cores plus the single-threaded oracle. Every shard count is
//! bit-identical to the oracle (matches, event totals, final clock,
//! merged metrics modulo per-queue depth), asserted per size before
//! anything is printed — so the comparison is pure engine cost.
//!
//! Each run executes the standard churn scenario
//! ([`msb_bench::swarm::ChurnSpec`]): nodes start on 3 islands whose
//! gaps exceed the radio range, roam under random-waypoint mobility,
//! and re-broadcast carried requests every 5 s (fan-out capped to the
//! 8 nearest) until the request expires at the 40 s horizon. Reported
//! per run: wall-clock, total and per-shard event counts, per-shard
//! node counts, messages, match count.
//!
//! Regenerate with
//! `cargo run -p msb-bench --release --bin fig10_shards`; `--json`
//! emits `BENCH_BASELINE.json` rows instead of the table. `--sizes
//! 1000,5000` and `--shards 1,4` override the sweeps (the 200k default
//! is slow on laptops). Wall-clock speedups need real cores: on a
//! single-core container the sharded rows measure synchronization
//! overhead, not parallelism — the determinism assertions are the
//! point there.

use msb_bench::swarm::{build_churn_swarm, build_churn_swarm_sharded, drive_churn, ChurnSpec};
use msb_bench::{fmt_ms, print_table, time_once};
use msb_core::app::SwarmSummary;
use msb_net::sim::{Metrics, SchedulerMode};

const SIZES: [usize; 3] = [10_000, 50_000, 200_000];
const SHARDS: [usize; 4] = [1, 2, 4, 8];

struct RunResult {
    nodes: usize,
    /// `None` is the single-threaded oracle; `Some(s)` the sharded
    /// engine at `s` worker cores.
    shards: Option<usize>,
    wall_ms: f64,
    clock_us: u64,
    metrics: Metrics,
    shard_events: Vec<u64>,
    shard_nodes: Vec<usize>,
    summary: SwarmSummary,
}

fn run_oracle(n: usize) -> RunResult {
    let spec = ChurnSpec::standard(n, SchedulerMode::Calendar);
    let (mut sim, mut mobility) = build_churn_swarm(&spec);
    let (_, wall_ms) = time_once(|| drive_churn(&mut sim, &mut mobility, &spec));
    RunResult {
        nodes: n,
        shards: None,
        wall_ms,
        clock_us: sim.now_us(),
        metrics: *sim.metrics(),
        shard_events: vec![sim.metrics().events_scheduled],
        shard_nodes: vec![n],
        summary: SwarmSummary::collect(&sim),
    }
}

fn run_sharded(n: usize, shards: usize) -> RunResult {
    let spec = ChurnSpec::standard(n, SchedulerMode::Calendar).with_shards(shards);
    let (mut sim, mut mobility) = build_churn_swarm_sharded(&spec);
    let (_, wall_ms) = time_once(|| drive_churn(&mut sim, &mut mobility, &spec));
    RunResult {
        nodes: n,
        shards: Some(shards),
        wall_ms,
        clock_us: sim.now_us(),
        metrics: sim.metrics(),
        shard_events: sim.shard_metrics().iter().map(|m| m.events_scheduled).collect(),
        shard_nodes: sim.shard_node_counts(),
        summary: SwarmSummary::collect_sharded(&sim),
    }
}

fn parse_list(args: &[String], flag: &str) -> Option<Vec<usize>> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} takes comma-separated counts"))
            .split(',')
            .map(|s| s.parse().unwrap_or_else(|_| panic!("{flag} takes comma-separated counts")))
            .collect()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let sizes = parse_list(&args, "--sizes").unwrap_or_else(|| SIZES.to_vec());
    let shard_counts = parse_list(&args, "--shards").unwrap_or_else(|| SHARDS.to_vec());

    let mut results: Vec<RunResult> = Vec::new();
    for &n in &sizes {
        let oracle = run_oracle(n);
        for &s in &shard_counts {
            let sharded = run_sharded(n, s);
            // The shard contract (docs/SIM.md §6): every shard count is
            // bit-identical to the single-threaded oracle. peak_queue_len
            // is per-queue depth — the one legitimately shard-count-
            // dependent observable — and is masked.
            assert_eq!(
                sharded.metrics.without_queue_pressure(),
                oracle.metrics.without_queue_pressure(),
                "n={n} shards={s}: metrics diverged — shard contract broken"
            );
            assert_eq!(
                sharded.summary, oracle.summary,
                "n={n} shards={s}: app outcomes diverged — shard contract broken"
            );
            assert_eq!(
                sharded.clock_us, oracle.clock_us,
                "n={n} shards={s}: final clocks diverged — shard contract broken"
            );
            assert!(sharded.summary.matches > 0, "n={n}: churn scenario produced no matches");
            results.push(sharded);
        }
        results.push(oracle);
    }

    let engine_name = |r: &RunResult| match r.shards {
        None => "oracle".to_string(),
        Some(s) => format!("sharded x{s}"),
    };
    if json {
        for r in &results {
            let per_shard: Vec<String> = r.shard_events.iter().map(u64::to_string).collect();
            println!(
                "{{\"bench\": \"fig10_shards\", \"engine\": \"{}\", \"shards\": {}, \
                 \"nodes\": {}, \"wall_ms\": {:.1}, \"events_scheduled\": {}, \
                 \"shard_events\": [{}], \"delivered\": {}, \"matches\": {}}}",
                engine_name(r),
                r.shards.unwrap_or(1),
                r.nodes,
                r.wall_ms,
                r.metrics.events_scheduled,
                per_shard.join(", "),
                r.metrics.delivered,
                r.summary.matches,
            );
        }
    } else {
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    format!("{} ({})", r.nodes, engine_name(r)),
                    fmt_ms(r.wall_ms),
                    format!("{}", r.metrics.events_scheduled),
                    format!("{:?}", r.shard_events.iter().map(|&e| e / 1000).collect::<Vec<_>>()),
                    format!("{:?}", r.shard_nodes),
                    format!("{}", r.summary.matches),
                ]
            })
            .collect();
        print_table(
            "Fig. 10 (ext) — sharded churn swarms (3 islands, 5 s re-flood, 40 s horizon)",
            &["Swarm", "Wall (ms)", "Events", "Per-shard events (k)", "Per-shard nodes", "Matches"],
            &rows,
        );
        println!(
            "every sharded row is asserted bit-identical to its oracle \
             (metrics modulo peak_queue_len, matches, final clock)"
        );
    }
}
