//! Figure 10 (extension) — sharded-engine scalability under churn:
//! re-flooding friending swarms at 10k / 50k / 200k nodes, each size
//! executed on the spatially-sharded engine at 1 / 2 / 4 / 8 worker
//! cores plus the single-threaded oracle. Every shard count is
//! bit-identical to the oracle (matches, event totals, final clock,
//! merged metrics modulo per-queue depth), asserted per size before
//! anything is printed — so the comparison is pure engine cost.
//!
//! Each run executes the standard churn scenario
//! ([`msb_bench::swarm::ChurnSpec`]): nodes start on 3 islands whose
//! gaps exceed the radio range, roam under random-waypoint mobility,
//! and re-broadcast carried requests every 5 s (fan-out capped to the
//! 8 nearest) until the request expires at the 40 s horizon. Reported
//! per run: wall-clock, total and per-shard event counts, per-shard
//! node counts, messages, match count — and for sharded rows the
//! memory story of the halo refactor: `bytes_per_node` (the largest
//! shard's resident engine bytes — halo fragment + node-state arena —
//! over the swarm size, which *drops* as shards are added because each
//! core holds only its owned tiles plus a fringe), the shared global
//! topology's bytes (held once, whatever the shard count), and the
//! cross-shard envelope-batching counters (`batch.envelopes` over
//! `batch.sends` = envelopes moved per coalesced transfer).
//!
//! Regenerate with
//! `cargo run -p msb-bench --release --bin fig10_shards`; `--json`
//! emits `BENCH_BASELINE.json` rows instead of the table. `--sizes
//! 1000,5000` and `--shards 1,4` override the sweeps (the 200k default
//! is slow on laptops), `--duration 5` shortens the scenario horizon,
//! and `--no-oracle` skips the single-threaded reference run — the
//! million-node row is
//! `--sizes 1000000 --shards 8 --duration 5 --no-oracle`, which would
//! otherwise pay for the oracle twice. Sharded rows run with telemetry
//! enabled (that's where the batching counters live); telemetry is
//! differentially proven not to change any simulated outcome.
//! Wall-clock speedups need real cores: on a single-core container the
//! sharded rows measure synchronization overhead, not parallelism —
//! the determinism assertions are the point there.

use msb_bench::swarm::{build_churn_swarm, build_churn_swarm_sharded, drive_churn, ChurnSpec};
use msb_bench::{fmt_ms, print_table, time_once};
use msb_core::app::SwarmSummary;
use msb_net::sim::{Metrics, SchedulerMode};

const SIZES: [usize; 3] = [10_000, 50_000, 200_000];
const SHARDS: [usize; 4] = [1, 2, 4, 8];

struct RunResult {
    nodes: usize,
    /// `None` is the single-threaded oracle; `Some(s)` the sharded
    /// engine at `s` worker cores.
    shards: Option<usize>,
    wall_ms: f64,
    clock_us: u64,
    metrics: Metrics,
    shard_events: Vec<u64>,
    shard_nodes: Vec<usize>,
    /// Largest per-shard resident engine bytes (halo + arena); 0 for
    /// the oracle, whose footprint is the one global topology.
    resident_shard_max: u64,
    /// Resident bytes of the shared global topology snapshot.
    shared_topo_bytes: u64,
    /// Total cross-shard envelopes moved / coalesced transfers made.
    batch_envelopes: u64,
    batch_sends: u64,
    summary: SwarmSummary,
}

fn spec_for(n: usize, duration_s: Option<u64>) -> ChurnSpec {
    let spec = ChurnSpec::standard(n, SchedulerMode::Calendar);
    match duration_s {
        Some(d) => spec.with_duration(d),
        None => spec,
    }
}

fn run_oracle(n: usize, duration_s: Option<u64>) -> RunResult {
    let spec = spec_for(n, duration_s);
    let (mut sim, mut mobility) = build_churn_swarm(&spec);
    let (_, wall_ms) = time_once(|| drive_churn(&mut sim, &mut mobility, &spec));
    RunResult {
        nodes: n,
        shards: None,
        wall_ms,
        clock_us: sim.now_us(),
        metrics: *sim.metrics(),
        shard_events: vec![sim.metrics().events_scheduled],
        shard_nodes: vec![n],
        resident_shard_max: 0,
        shared_topo_bytes: 0,
        batch_envelopes: 0,
        batch_sends: 0,
        summary: SwarmSummary::collect(&sim),
    }
}

fn run_sharded(n: usize, shards: usize, duration_s: Option<u64>) -> RunResult {
    let spec = spec_for(n, duration_s).with_shards(shards);
    let (mut sim, mut mobility) = build_churn_swarm_sharded(&spec);
    sim.enable_telemetry(128);
    let (_, wall_ms) = time_once(|| drive_churn(&mut sim, &mut mobility, &spec));
    let recorder = sim.telemetry();
    RunResult {
        nodes: n,
        shards: Some(shards),
        wall_ms,
        clock_us: sim.now_us(),
        metrics: sim.metrics(),
        shard_events: sim.shard_metrics().iter().map(|m| m.events_scheduled).collect(),
        shard_nodes: sim.shard_node_counts(),
        resident_shard_max: sim.shard_resident_bytes().into_iter().max().unwrap_or(0),
        shared_topo_bytes: sim.shared_topology_bytes(),
        batch_envelopes: recorder.metrics().counter_total("batch.envelopes"),
        batch_sends: recorder.metrics().counter_total("batch.sends"),
        summary: SwarmSummary::collect_sharded(&sim),
    }
}

fn parse_list(args: &[String], flag: &str) -> Option<Vec<usize>> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} takes comma-separated counts"))
            .split(',')
            .map(|s| s.parse().unwrap_or_else(|_| panic!("{flag} takes comma-separated counts")))
            .collect()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let no_oracle = args.iter().any(|a| a == "--no-oracle");
    let sizes = parse_list(&args, "--sizes").unwrap_or_else(|| SIZES.to_vec());
    let shard_counts = parse_list(&args, "--shards").unwrap_or_else(|| SHARDS.to_vec());
    let duration_s = parse_list(&args, "--duration").map(|v| v[0] as u64);

    let mut results: Vec<RunResult> = Vec::new();
    for &n in &sizes {
        let oracle = (!no_oracle).then(|| run_oracle(n, duration_s));
        for &s in &shard_counts {
            let sharded = run_sharded(n, s, duration_s);
            if let Some(oracle) = &oracle {
                // The shard contract (docs/SIM.md §6): every shard count
                // is bit-identical to the single-threaded oracle.
                // peak_queue_len is per-queue depth — the one
                // legitimately shard-count-dependent observable — and is
                // masked.
                assert_eq!(
                    sharded.metrics.without_queue_pressure(),
                    oracle.metrics.without_queue_pressure(),
                    "n={n} shards={s}: metrics diverged — shard contract broken"
                );
                assert_eq!(
                    sharded.summary, oracle.summary,
                    "n={n} shards={s}: app outcomes diverged — shard contract broken"
                );
                assert_eq!(
                    sharded.clock_us, oracle.clock_us,
                    "n={n} shards={s}: final clocks diverged — shard contract broken"
                );
            }
            // A `--duration`-shortened horizon may legitimately end
            // before any match confirms; only the standard 40 s
            // scenario promises them.
            if duration_s.is_none() {
                assert!(sharded.summary.matches > 0, "n={n}: churn scenario produced no matches");
            }
            results.push(sharded);
        }
        if let Some(oracle) = oracle {
            results.push(oracle);
        }
    }

    let engine_name = |r: &RunResult| match r.shards {
        None => "oracle".to_string(),
        Some(s) => format!("sharded x{s}"),
    };
    let bytes_per_node = |r: &RunResult| r.resident_shard_max as f64 / r.nodes as f64;
    if json {
        for r in &results {
            let per_shard: Vec<String> = r.shard_events.iter().map(u64::to_string).collect();
            println!(
                "{{\"bench\": \"fig10_shards\", \"engine\": \"{}\", \"shards\": {}, \
                 \"nodes\": {}, \"wall_ms\": {:.1}, \"events_scheduled\": {}, \
                 \"shard_events\": [{}], \"delivered\": {}, \"matches\": {}, \
                 \"bytes_per_node\": {:.1}, \"resident_shard_max\": {}, \
                 \"shared_topo_bytes\": {}, \"batch_envelopes\": {}, \"batch_sends\": {}}}",
                engine_name(r),
                r.shards.unwrap_or(1),
                r.nodes,
                r.wall_ms,
                r.metrics.events_scheduled,
                per_shard.join(", "),
                r.metrics.delivered,
                r.summary.matches,
                bytes_per_node(r),
                r.resident_shard_max,
                r.shared_topo_bytes,
                r.batch_envelopes,
                r.batch_sends,
            );
        }
    } else {
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let batching = if r.batch_sends > 0 {
                    format!(
                        "{} env / {} sends ({:.0}x)",
                        r.batch_envelopes,
                        r.batch_sends,
                        r.batch_envelopes as f64 / r.batch_sends as f64
                    )
                } else {
                    "-".to_string()
                };
                vec![
                    format!("{} ({})", r.nodes, engine_name(r)),
                    fmt_ms(r.wall_ms),
                    format!("{}", r.metrics.events_scheduled),
                    format!("{:?}", r.shard_nodes),
                    if r.shards.is_some() {
                        format!("{:.0}", bytes_per_node(r))
                    } else {
                        "-".to_string()
                    },
                    batching,
                    format!("{}", r.summary.matches),
                ]
            })
            .collect();
        print_table(
            "Fig. 10 (ext) — sharded churn swarms (3 islands, 5 s re-flood, 40 s horizon)",
            &[
                "Swarm",
                "Wall (ms)",
                "Events",
                "Per-shard nodes",
                "B/node (max shard)",
                "Envelope batching",
                "Matches",
            ],
            &rows,
        );
        if no_oracle {
            println!("oracle comparison skipped (--no-oracle)");
        } else {
            println!(
                "every sharded row is asserted bit-identical to its oracle \
                 (metrics modulo peak_queue_len, matches, final clock)"
            );
        }
    }
}
