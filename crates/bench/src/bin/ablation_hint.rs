//! Ablation: Cauchy vs. the paper's uniformly-random hint-matrix
//! construction — wire size, generation time, solve time, and the
//! solvability guarantee.
//!
//! Run with `cargo run -p msb-bench --bin ablation_hint --release`.

use msb_bench::{fmt_ms, print_table, time_stats};
use msb_profile::attribute::Attribute;
use msb_profile::hint::{HintConstruction, HintMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rows = Vec::new();
    for (beta, gamma) in [(3usize, 3usize), (6, 2), (4, 4), (10, 10)] {
        let n = beta + gamma;
        let mut hashes: Vec<_> =
            (0..n).map(|i| Attribute::new("tag", format!("t{i}")).hash()).collect();
        hashes.sort_unstable();

        for construction in [HintConstruction::Cauchy, HintConstruction::Random] {
            let mut rng = StdRng::seed_from_u64(9);
            let gen = time_stats(3, 30, || {
                std::hint::black_box(HintMatrix::generate(&hashes, beta, construction, &mut rng));
            });
            let hint = HintMatrix::generate(&hashes, beta, construction, &mut rng);
            // Worst-case solve: γ unknowns.
            let assignment: Vec<Option<_>> = hashes
                .iter()
                .enumerate()
                .map(|(i, h)| if i < beta { Some(*h) } else { None })
                .collect();
            let solve = time_stats(3, 30, || {
                std::hint::black_box(hint.solve(&assignment));
            });
            assert_eq!(hint.solve(&assignment).as_deref(), Some(&hashes[..]));
            rows.push(vec![
                format!("β={beta}, γ={gamma}"),
                format!("{construction:?}"),
                format!("{} B", hint.wire_size_bits() / 8),
                fmt_ms(gen.mean_ms),
                fmt_ms(solve.mean_ms),
                match construction {
                    HintConstruction::Cauchy => "unconditional".to_string(),
                    HintConstruction::Random => "w.h.p. only".to_string(),
                },
            ]);
        }
    }
    print_table(
        "Ablation — hint-matrix construction",
        &["Shape", "Construction", "Wire size", "Gen (ms)", "Solve (ms)", "Unique solvability"],
        &rows,
    );
    println!(
        "\nReading: the Cauchy block is a public deterministic function of\n\
         (γ, β), so it never crosses the wire — γ·β fewer field elements per\n\
         package — and makes the paper's unique-solvability claim\n\
         unconditional instead of probabilistic. Generation is slower (γ·β\n\
         field inversions); for the paper's γ = β = 3 both are far below a\n\
         millisecond."
    );
}
