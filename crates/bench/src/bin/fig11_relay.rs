//! Figure 11 (extension) — relay-server throughput over loopback TCP:
//! a sender deposits sealed bottles of increasing payload size through
//! [`msb_server::RelayServer`], a receiver drains them with batched
//! fetches, and both directions are timed end-to-end (socket writes,
//! MSBW reframing, services routing, inbox storage — the full stack).
//! A final row floods past the rate guard to price the shedding path:
//! rejected deposits should cost less than admitted ones — and a
//! poll-tax row prices an empty fetch (the cost every idle client pays
//! per poll), measured from the server's own service-time histograms
//! (`MetricsDump`), so the p50/p99 exclude the client and socket side.
//!
//! Regenerate with
//! `cargo run -p msb-bench --release --bin fig11_relay`; `--json`
//! emits `BENCH_BASELINE.json` rows instead of the table. `--frames
//! 500` shrinks the per-size run (the default suits CI; wall-clock on
//! loopback is dominated by syscalls, so absolute numbers vary by
//! host while the admitted-vs-shed ratio is the stable observable).

use msb_bench::{fmt_ms, print_table, time_once};
use msb_server::{AckCode, RelayClient, RelayServer, ServerConfig, BROADCAST};
use msb_wire::{FrameKind, FRAME_HEADER_LEN, MAGIC, VERSION};

const PAYLOAD_SIZES: [usize; 4] = [64, 1024, 8192, 16384];
const FRAMES: usize = 2000;

/// A sealed bottle for the relay: a valid Request envelope over
/// `payload` filler bytes (the relay never opens it).
fn bottle(payload: usize) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAME_HEADER_LEN + payload);
    f.extend_from_slice(&MAGIC);
    f.push(VERSION);
    f.push(FrameKind::Request as u8);
    f.extend_from_slice(&(payload as u32).to_be_bytes());
    f.extend(std::iter::repeat_n(0xB0, payload));
    f
}

struct RunResult {
    payload: usize,
    frames: usize,
    deposit_ms: f64,
    fetch_ms: f64,
    batches: usize,
    bytes: u64,
    /// Server-side deposit service time (µs): (p50, p99).
    dep_svc_us: (u64, u64),
    /// Server-side fetch service time (µs): (p50, p99).
    fetch_svc_us: (u64, u64),
}

/// p50/p99 of a service-time histogram (0s when nothing was recorded).
fn svc_pcts(h: &msb_telemetry::LogHistogram) -> (u64, u64) {
    (h.percentile(0.50).unwrap_or(0), h.percentile(0.99).unwrap_or(0))
}

fn run_throughput(payload: usize, frames: usize) -> RunResult {
    let config = ServerConfig {
        guard_max_in_window: frames + 1,
        max_per_recipient: frames,
        ..ServerConfig::default()
    };
    let mut server = RelayServer::spawn(config).expect("spawn relay");
    let mut sender = RelayClient::connect(server.addr()).expect("connect sender");
    let mut receiver = RelayClient::connect(server.addr()).expect("connect receiver");
    assert_eq!(sender.hello(0).expect("hello").code, AckCode::Ok);
    assert_eq!(receiver.hello(1).expect("hello").code, AckCode::Ok);

    let frame = bottle(payload);
    let bytes = (frame.len() * frames) as u64;

    let (_, deposit_ms) = time_once(|| {
        for _ in 0..frames {
            let ack = sender.deposit(1, frame.clone()).expect("deposit");
            assert_eq!(ack.code, AckCode::Ok, "deposit shed unexpectedly");
        }
    });

    let mut got = 0usize;
    let mut batches = 0usize;
    let (_, fetch_ms) = time_once(|| {
        while got < frames {
            let batch = receiver.fetch(0).expect("fetch");
            assert!(!batch.is_empty(), "inbox drained early: {got}/{frames}");
            got += batch.len();
            batches += 1;
        }
    });
    assert_eq!(got, frames, "delivered count mismatch");

    let dump = server.metrics();
    assert_eq!(dump.stats.deposits_accepted, frames as u64);
    assert_eq!(dump.stats.messages_delivered, frames as u64);
    assert_eq!(dump.stats.inbox_depth, 0);
    assert_eq!(dump.deposit_service_us.count(), frames as u64);
    server.shutdown();

    RunResult {
        payload,
        frames,
        deposit_ms,
        fetch_ms,
        batches,
        bytes,
        dep_svc_us: svc_pcts(&dump.deposit_service_us),
        fetch_svc_us: svc_pcts(&dump.fetch_service_us),
    }
}

/// The poll tax: an idle client polling an empty inbox. Returns the
/// server-side (p50, p99) fetch service time in µs over `polls` polls,
/// plus the end-to-end wall time.
fn run_poll_tax(polls: usize) -> ((u64, u64), f64) {
    let mut server = RelayServer::spawn(ServerConfig::default()).expect("spawn relay");
    let mut client = RelayClient::connect(server.addr()).expect("connect");
    assert_eq!(client.hello(0).expect("hello").code, AckCode::Ok);

    let (_, wall_ms) = time_once(|| {
        for _ in 0..polls {
            assert!(client.fetch(0).expect("poll").is_empty(), "inbox not empty");
        }
    });
    let dump = server.metrics();
    assert_eq!(dump.fetch_service_us.count(), polls as u64);
    server.shutdown();
    (svc_pcts(&dump.fetch_service_us), wall_ms)
}

/// Floods one sender far past the guard budget and times the whole
/// burst; returns (admitted, shed, wall_ms).
fn run_flood(frames: usize) -> (u64, u64, f64) {
    let config = ServerConfig { guard_max_in_window: frames / 10, ..ServerConfig::default() };
    let admitted_budget = config.guard_max_in_window as u64;
    let mut server = RelayServer::spawn(config).expect("spawn relay");
    let mut sender = RelayClient::connect(server.addr()).expect("connect sender");
    let mut receiver = RelayClient::connect(server.addr()).expect("connect receiver");
    assert_eq!(sender.hello(0).expect("hello").code, AckCode::Ok);
    assert_eq!(receiver.hello(1).expect("hello").code, AckCode::Ok);

    let frame = bottle(64);
    let (_, wall_ms) = time_once(|| {
        for _ in 0..frames {
            let ack = sender.deposit(BROADCAST, frame.clone()).expect("deposit");
            assert!(matches!(ack.code, AckCode::Ok | AckCode::RateLimited));
        }
    });
    let stats = server.stats();
    assert_eq!(stats.deposits_accepted, admitted_budget);
    assert_eq!(stats.rejected_rate, frames as u64 - admitted_budget);
    server.shutdown();
    (stats.deposits_accepted, stats.rejected_rate, wall_ms)
}

fn parse_frames(args: &[String]) -> Option<usize> {
    args.iter()
        .position(|a| a == "--frames")
        .map(|i| args.get(i + 1).and_then(|s| s.parse().ok()).expect("--frames takes a count"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let frames = parse_frames(&args).unwrap_or(FRAMES);

    let results: Vec<RunResult> =
        PAYLOAD_SIZES.iter().map(|&p| run_throughput(p, frames)).collect();
    let (admitted, shed, flood_ms) = run_flood(frames);
    let ((poll_p50, poll_p99), poll_ms) = run_poll_tax(frames);

    let rate = |n: usize, ms: f64| if ms > 0.0 { n as f64 / ms * 1000.0 } else { f64::NAN };
    let mbps = |bytes: u64, ms: f64| {
        if ms > 0.0 {
            bytes as f64 / (1024.0 * 1024.0) / ms * 1000.0
        } else {
            f64::NAN
        }
    };

    if json {
        for r in &results {
            println!(
                "{{\"bench\": \"fig11_relay\", \"payload\": {}, \"frames\": {}, \
                 \"deposit_ms\": {:.1}, \"fetch_ms\": {:.1}, \"fetch_batches\": {}, \
                 \"deposits_per_s\": {:.0}, \"fetch_mib_per_s\": {:.1}, \
                 \"deposit_svc_p50_us\": {}, \"deposit_svc_p99_us\": {}, \
                 \"fetch_svc_p50_us\": {}, \"fetch_svc_p99_us\": {}}}",
                r.payload,
                r.frames,
                r.deposit_ms,
                r.fetch_ms,
                r.batches,
                rate(r.frames, r.deposit_ms),
                mbps(r.bytes, r.fetch_ms),
                r.dep_svc_us.0,
                r.dep_svc_us.1,
                r.fetch_svc_us.0,
                r.fetch_svc_us.1,
            );
        }
        println!(
            "{{\"bench\": \"fig11_relay\", \"mode\": \"flood\", \"frames\": {frames}, \
             \"admitted\": {admitted}, \"shed\": {shed}, \"wall_ms\": {flood_ms:.1}}}"
        );
        println!(
            "{{\"bench\": \"fig11_relay\", \"mode\": \"poll_tax\", \"polls\": {frames}, \
             \"wall_ms\": {poll_ms:.1}, \"fetch_svc_p50_us\": {poll_p50}, \
             \"fetch_svc_p99_us\": {poll_p99}}}"
        );
    } else {
        let mut rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    format!("{} B", r.payload),
                    format!("{}", r.frames),
                    fmt_ms(r.deposit_ms),
                    format!("{:.0}/s", rate(r.frames, r.deposit_ms)),
                    fmt_ms(r.fetch_ms),
                    format!("{} batches, {:.1} MiB/s", r.batches, mbps(r.bytes, r.fetch_ms)),
                    format!("{}/{}", r.dep_svc_us.0, r.dep_svc_us.1),
                    format!("{}/{}", r.fetch_svc_us.0, r.fetch_svc_us.1),
                ]
            })
            .collect();
        rows.push(vec![
            "flood".into(),
            format!("{frames}"),
            fmt_ms(flood_ms),
            format!("{:.0}/s", rate(frames, flood_ms)),
            "-".into(),
            format!("{admitted} admitted, {shed} shed"),
            "-".into(),
            "-".into(),
        ]);
        rows.push(vec![
            "poll tax".into(),
            format!("{frames}"),
            "-".into(),
            format!("{:.0}/s", rate(frames, poll_ms)),
            fmt_ms(poll_ms),
            "empty fetches".into(),
            "-".into(),
            format!("{poll_p50}/{poll_p99}"),
        ]);
        print_table(
            "Fig. 11 (ext) — relay server over loopback TCP (deposit + batched fetch)",
            &[
                "Bottle",
                "Frames",
                "Deposit",
                "Rate",
                "Fetch",
                "Drain",
                "dep µs p50/p99",
                "fetch µs p50/p99",
            ],
            &rows,
        );
        println!(
            "flood row: one sender past the rate guard — shed deposits are acked \
             RateLimited without touching the inbox"
        );
        println!(
            "poll-tax row: an idle client polling an empty inbox; the µs columns are \
             the server's own service-time histograms (MetricsDump), excluding the \
             socket round-trip"
        );
    }
}
