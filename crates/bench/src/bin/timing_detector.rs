//! Protocol 2 step 3 calibration: distinguishing honest candidates from
//! dictionary attackers by response time and reply-set cardinality.
//!
//! "An ordinary user with about dozens of attributes can make a quick
//! reaction and reply a small size acknowledge set, while it takes much
//! longer for a malicious user due to a large number of candidate
//! attribute combinations" (§III-E-2). This binary measures both
//! populations on real enumeration workloads and reports the separation,
//! justifying the default `reply_window_us` / `max_reply_set` choices.
//!
//! Run with `cargo run -p msb-bench --bin timing_detector --release`.

use msb_bench::{fmt_ms, print_table, time_once};
use msb_profile::attribute::Attribute;
use msb_profile::hint::HintConstruction;
use msb_profile::matching::{enumerate_candidate_keys_with_stats, EnumerationMode, MatchConfig};
use msb_profile::profile::Profile;
use msb_profile::request::RequestProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(10);
    let vocabulary: Vec<Attribute> =
        (0..300).map(|i| Attribute::new("interest", format!("w{i}"))).collect();
    let request = RequestProfile::new(
        vec![vocabulary[0].clone()],
        vec![vocabulary[1].clone(), vocabulary[2].clone(), vocabulary[3].clone()],
        2,
    )
    .unwrap();
    let sealed = request.try_seal(11, HintConstruction::Cauchy, &mut rng).unwrap();
    let config = MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 500_000 };

    let mut rows = Vec::new();
    // Honest users: 6, 12, 20 attributes from the vocabulary.
    for n in [6usize, 12, 20] {
        let profile = Profile::from_attributes(vocabulary.iter().take(n).cloned());
        let ((_, stats), ms) = time_once(|| {
            enumerate_candidate_keys_with_stats(
                profile.vector(),
                &sealed.remainder,
                sealed.hint.as_ref(),
                &config,
            )
        });
        rows.push(vec![
            format!("honest, {n} attrs"),
            stats.assignments.to_string(),
            stats.distinct_keys.to_string(),
            fmt_ms(ms),
        ]);
    }
    // Dictionary attackers: growing vocabularies as "profiles".
    for n in [100usize, 200, 300] {
        let profile = Profile::from_attributes(vocabulary.iter().take(n).cloned());
        let ((_, stats), ms) = time_once(|| {
            enumerate_candidate_keys_with_stats(
                profile.vector(),
                &sealed.remainder,
                sealed.hint.as_ref(),
                &config,
            )
        });
        rows.push(vec![
            format!("attacker, {n}-word dictionary"),
            stats.assignments.to_string(),
            stats.distinct_keys.to_string(),
            fmt_ms(ms),
        ]);
    }
    print_table(
        "Protocol 2 detector calibration — enumeration load per responder",
        &["Responder", "Assignments", "Candidate keys", "Enumeration (ms)"],
        &rows,
    );
    println!(
        "\nReading: honest reply sets stay in the single digits and compute in\n\
         well under a millisecond; a dictionary responder's combinations (and\n\
         acknowledgement set, if they gamble them all) grow combinatorially.\n\
         Defaults of max_reply_set = 8 and a 10 s reply window sit several\n\
         orders of magnitude above honest behaviour and below attackers'."
    );
}
