//! Table VII — the typical mobile-social-network scenario:
//! `mt = mk = 6, γ = β = 3, p = 11, n = 100, t = 4`.
//!
//! Our protocol is *executed end to end* over the MANET simulator and
//! timed; the asymmetric baselines are executed for real on one pair
//! (1024-bit keys) and scaled by their exact per-pair op counts to
//! n = 100 — running 100 real Paillier PSI pairs would only multiply the
//! same measured numbers.
//!
//! Regenerate with `cargo run -p msb-bench --bin table7_scenario --release`.

use msb_baselines::cost::{fc10_formula, findu_formula, fnp_formula, ScenarioParams};
use msb_baselines::fc10::{Fc10, RsaKey};
use msb_baselines::findu::Findu;
use msb_baselines::fnp04::Fnp04;
use msb_baselines::paillier::PaillierKeyPair;
use msb_bench::{fmt_ms, print_table, swarm, time_once, time_stats};
use msb_core::app::SwarmSummary;
use msb_core::protocol::{Initiator, ProtocolConfig, ProtocolKind, Responder, ResponderOutcome};
use msb_net::sim::SpatialMode;
use msb_profile::{Attribute, Profile, RequestProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn attr(i: u64) -> Attribute {
    Attribute::new("tag", format!("t{i}"))
}

/// Swarm extension: the same typical scenario (6 optional tags, β = 3,
/// one matching user per [`swarm::MATCHING_EVERY`]) executed end to end
/// over the spatially-indexed MANET simulator at swarm scale — the sizes
/// FindU and Social PaL report scalability curves at.
fn swarm_row(n: usize) -> Vec<String> {
    let request = RequestProfile::threshold((0..6).map(attr).collect(), 3).expect("valid request");
    let matching = Profile::from_attributes(vec![attr(0), attr(1), attr(2), attr(5)]);
    // Noise users own 6 disjoint tags each, like the pairwise scenario
    // above.
    let noise = |i: usize| {
        Profile::from_attributes((0..6).map(|j| attr(1000 + 6 * i as u64 + j)).collect::<Vec<_>>())
    };
    let mut sim = swarm::build_swarm(
        swarm::uniform_center_positions(n, n as u64),
        &swarm::SwarmParams::new(0x7AB7, 255).with_spatial(SpatialMode::HexIndex),
        request,
        matching,
        noise,
    );
    let (_, wall_ms) = time_once(|| {
        sim.start();
        sim.run();
    });
    let summary = SwarmSummary::collect(&sim);
    let m = sim.metrics();
    vec![
        format!("{n}"),
        fmt_ms(wall_ms),
        format!("{} bcast / {} deliv / {} hops", m.broadcasts, m.delivered, m.unicast_hops),
        format!("{}", summary.matches),
        format!(
            "{} / {}",
            summary.latency_percentile_us(0.5).unwrap_or(0),
            summary.latency_percentile_us(0.9).unwrap_or(0)
        ),
        format!("{:.1}", m.cells_scanned as f64 / m.neighbor_queries.max(1) as f64),
    ]
}

fn main() {
    let s = ScenarioParams::table7();
    let mut rng = StdRng::seed_from_u64(777);
    let n = s.n as usize;

    // ---- Sealed Bottle Protocol 1, executed end to end. ----
    // Request: 6 optional tags, β = 3 (γ = 3, θ = 0.5, α = 0).
    let request = RequestProfile::threshold((0..6).map(attr).collect(), 3).expect("valid request");
    let config = ProtocolConfig::new(ProtocolKind::P1, s.p);

    let create = time_stats(3, 20, || {
        let mut r = StdRng::seed_from_u64(1);
        std::hint::black_box(Initiator::create(&request, 0, &config, 0, &mut r));
    });

    // Population: 1 matching user, the rest own disjoint tags.
    let matching = Profile::from_attributes(vec![attr(0), attr(1), attr(2), attr(5)]);
    let others: Vec<Profile> = (0..n - 1)
        .map(|i| {
            Profile::from_attributes(
                (0..6).map(|j| attr(1000 + 6 * i as u64 + j)).collect::<Vec<_>>(),
            )
        })
        .collect();

    let (_, package) = Initiator::create(&request, 0, &config, 0, &mut rng);

    // Non-candidate processing time (mean over the population).
    let mut noncand_total = 0.0;
    let mut candidates = 0usize;
    for (i, profile) in others.iter().enumerate() {
        let responder = Responder::new(i as u32 + 2, profile.clone(), &config);
        let (outcome, ms) = time_once(|| responder.handle(&package, 100, &mut rng));
        noncand_total += ms;
        if matches!(outcome, ResponderOutcome::Reply { .. }) {
            candidates += 1;
        }
    }
    let noncand_mean = noncand_total / others.len() as f64;

    // Candidate processing time.
    let responder = Responder::new(1, matching, &config);
    let cand = time_stats(2, 20, || {
        let mut r = StdRng::seed_from_u64(2);
        std::hint::black_box(responder.handle(&package, 100, &mut r));
    });

    // Package broadcast plus one honest single-ack reply, both sized by
    // the canonical codec (measured frames, not an estimate).
    let honest_reply = msb_core::package::Reply {
        request_id: package.request_id(),
        responder: 1,
        acks: vec![vec![0u8; 56]],
    };
    let our_comm_bytes = package.wire_size() + honest_reply.wire_size();

    // ---- Baselines, executed for real on one pair and scaled. ----
    let client: Vec<u64> = (0..6).collect();
    let server: Vec<u64> = (3..9).collect();

    let keys = PaillierKeyPair::generate(1024, &mut rng);
    let (fnp_run, fnp_pair_ms) = time_once(|| Fnp04::run_u64(&keys, &client, &server, &mut rng));
    // Client coefficients are reusable across pairs; per extra pair the
    // client only decrypts mk evaluations and the server re-evaluates.
    let fnp_coeff_frac = (2 * s.mt) as f64 / (2 * s.mt + s.mk) as f64;
    let fnp_total_ms = fnp_pair_ms * (1.0 + (n as f64 - 1.0) * (1.0 - fnp_coeff_frac * 0.5));
    let (fnp_i_sym, fnp_p_sym, fnp_bits) = fnp_formula(&s);

    let rsa = RsaKey::generate(1024, &mut rng);
    let (fc_run, fc_pair_ms) = time_once(|| Fc10::run_u64(&rsa, &client, &server, &mut rng));
    let fc_total_ms = fc_pair_ms * n as f64;
    let (_, fc_p_sym, fc_bits) = fc10_formula(&s);

    let (fu_run, fu_pair_ms) = time_once(|| Findu::run_u64(&keys, &client, &server, &mut rng));
    let fu_total_ms = fu_pair_ms * n as f64;
    let (fu_i_sym, fu_p_sym, fu_bits) = findu_formula(&s);

    let rows = vec![
        vec![
            "FNP [10]".into(),
            format!("{} (scaled from {:.0} ms/pair)", fmt_ms(fnp_total_ms), fnp_pair_ms),
            format!("{} E3 symbolic (paper 73 440 ms)", fnp_i_sym.e3 + fnp_p_sym.e3),
            format!("{} KB", fnp_bits / 8 / 1024),
            "1 broadcast + 100 unicasts".into(),
        ],
        vec![
            "FC10 [7]".into(),
            format!("{} (scaled from {:.0} ms/pair)", fmt_ms(fc_total_ms), fc_pair_ms),
            format!("{} E2 symbolic (paper 34.5 + 204 ms)", fc_p_sym.e2),
            format!("{} KB", fc_bits / 8 / 1024),
            "200 unicasts".into(),
        ],
        vec![
            "Advanced [14]".into(),
            format!("{} (scaled from {:.0} ms/pair)", fmt_ms(fu_total_ms), fu_pair_ms),
            format!("{} E3 symbolic (paper 216 000 + 1 440 ms)", fu_i_sym.e3 + fu_p_sym.e3),
            format!("{} KB", fu_bits / 8 / 1024),
            "500 unicasts".into(),
        ],
        vec![
            "Protocol 1 (ours)".into(),
            format!(
                "create {} / non-cand {} / cand {}",
                fmt_ms(create.mean_ms),
                fmt_ms(noncand_mean),
                fmt_ms(cand.mean_ms)
            ),
            "symmetric ops only (paper 1.1e-2 / 3.1e-3 ms)".into(),
            format!("{:.2} KB", our_comm_bytes as f64 / 1024.0),
            format!("1 broadcast + {} candidate unicasts", candidates + 1),
        ],
    ];
    print_table(
        "Table VII — typical scenario (mt=mk=6, γ=β=3, p=11, n=100, t=4)",
        &[
            "Scheme",
            "Computation (measured, ms)",
            "Computation (symbolic)",
            "Comm.",
            "Transmissions",
        ],
        &rows,
    );

    // Sanity: correctness of the executed baselines in this scenario.
    assert_eq!(fnp_run.intersection, vec![3, 4, 5]);
    assert_eq!(fc_run.intersection, vec![3, 4, 5]);
    assert_eq!(fu_run.cardinality, 3);

    // ---- Swarm extension: the scenario at evaluation scale. ----
    // The asymmetric baselines above are already *scaled* to n = 100
    // from one measured pair; Protocol 1 instead runs for real over the
    // indexed MANET at 1k/5k/10k nodes (1 matching user per 100).
    let swarm_rows: Vec<Vec<String>> =
        [1_000usize, 5_000, 10_000].iter().map(|&n| swarm_row(n)).collect();
    print_table(
        "Table VII (ext) — Protocol 1 executed end to end at swarm scale",
        &["Nodes", "Wall (ms)", "Messages", "Matches", "Latency p50/p90 (us)", "Cells/query"],
        &swarm_rows,
    );

    let speedup = fnp_total_ms / (create.mean_ms + cand.mean_ms + noncand_mean * 99.0);
    println!(
        "\nShape check: Sealed Bottle beats FNP by ≈ {speedup:.0}× in computation\n\
         (paper: ≈ 10^6×) and by ≈ {:.0}× in communication ({} B vs {} KB).",
        (fnp_bits / 8) as f64 / our_comm_bytes as f64,
        our_comm_bytes,
        fnp_bits / 8 / 1024,
    );
}
