//! Ablation: what does the remainder-vector fast check actually save?
//! The paper's claim (§III-C-1): a non-matching relay pays a handful of
//! modulo comparisons instead of hint solves and trial decryptions.
//!
//! We time the full responder path for non-candidate users with the fast
//! check in place, against a "naive mechanism" (paper §III-C) variant
//! that enumerates candidate assignments for everyone.
//!
//! Run with `cargo run -p msb-bench --bin ablation_fastcheck --release`.

use msb_bench::{fmt_ms, print_table, time_stats};
use msb_core::protocol::{Initiator, ProtocolConfig, ProtocolKind, Responder};
use msb_dataset::{WeiboConfig, WeiboDataset};
use msb_profile::matching::{enumerate_candidate_keys, MatchConfig};
use msb_profile::RequestProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = WeiboDataset::generate(&WeiboConfig { users: 2_000, ..WeiboConfig::default() }, 13);
    let mut rng = StdRng::seed_from_u64(1);

    // A request nobody in the sampled crowd satisfies (fresh tags).
    let request = RequestProfile::threshold(
        (0..6).map(|i| msb_profile::Attribute::new("fresh", format!("f{i}"))).collect(),
        3,
    )
    .unwrap();
    let config = ProtocolConfig::new(ProtocolKind::P1, 11);
    let (_, package) = Initiator::create(&request, 0, &config, 0, &mut rng);

    let users: Vec<_> = data.sample_users(200, 2);

    // Path A: the real responder (fast check first).
    let responders: Vec<Responder> = users
        .iter()
        .enumerate()
        .map(|(i, u)| Responder::new(i as u32 + 1, u.profile(), &config))
        .collect();
    let with_check = time_stats(1, 5, || {
        let mut r = StdRng::seed_from_u64(3);
        for responder in &responders {
            std::hint::black_box(responder.handle(&package, 100, &mut r));
        }
    });

    // Path B: skip the fast check — run candidate enumeration (and hint
    // solving) for every user unconditionally.
    let vectors: Vec<_> = users.iter().map(|u| u.profile().vector().clone()).collect();
    let match_config = MatchConfig::default();
    let without_check = time_stats(1, 5, || {
        for vector in &vectors {
            std::hint::black_box(enumerate_candidate_keys(
                vector,
                &package.remainder,
                package.hint.as_ref(),
                &match_config,
            ));
        }
    });

    let per_user_with = with_check.mean_ms / users.len() as f64;
    let per_user_without = without_check.mean_ms / users.len() as f64;
    print_table(
        "Ablation — remainder-vector fast check (200 non-matching users)",
        &["Variant", "Total (ms)", "Per user (ms)"],
        &[
            vec!["fast check enabled".into(), fmt_ms(with_check.mean_ms), fmt_ms(per_user_with)],
            vec![
                "fast check disabled (naive)".into(),
                fmt_ms(without_check.mean_ms),
                fmt_ms(per_user_without),
            ],
        ],
    );
    println!(
        "\nReading: for non-matching users the two paths converge when no\n\
         structural assignment exists (enumeration exits immediately), so\n\
         the fast check's value shows in the *package-processing contract*:\n\
         it bounds the worst case to O(mk) modulo operations even for\n\
         adversarial packages, and in the naive mechanism of §III-C every\n\
         user would additionally pay {} trial decryption(s).",
        1
    );
}
