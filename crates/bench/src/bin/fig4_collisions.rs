//! Figure 4 — profile uniqueness and collisions: the fraction of users
//! whose exact profile is shared by at most `x` users, with and without
//! keywords.
//!
//! Regenerate with `cargo run -p msb-bench --bin fig4_collisions --release`.

use msb_bench::print_table;
use msb_dataset::stats::{collision_cdf, unique_fraction};
use msb_dataset::{WeiboConfig, WeiboDataset};

fn main() {
    let data = WeiboDataset::generate(&WeiboConfig::evaluation(), 4);
    let with_kw = collision_cdf(&data, true, 10);
    let without_kw = collision_cdf(&data, false, 10);

    let rows: Vec<Vec<String>> = (0..10)
        .map(|i| {
            vec![
                format!("{}", i + 1),
                format!("{:.4}", with_kw[i].1),
                format!("{:.4}", without_kw[i].1),
            ]
        })
        .collect();
    print_table(
        "Figure 4 — cumulative user fraction vs profile-collision class size",
        &["Collisions ≤ x", "Profile with keywords", "Profile without keywords"],
        &rows,
    );

    let u_with = unique_fraction(&data, true);
    let u_without = unique_fraction(&data, false);
    println!(
        "\nUnique profiles: {:.1}% with keywords, {:.1}% without.\n\
         Paper headline: 'more than 90% users have unique profiles' — \
         {}",
        u_with * 100.0,
        u_without * 100.0,
        if u_with > 0.9 { "reproduced" } else { "NOT reproduced" }
    );
}
