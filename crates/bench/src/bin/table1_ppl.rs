//! Table I — privacy protection levels in the HBC model, verified by
//! instrumented protocol probes.
//!
//! Regenerate with `cargo run -p msb-bench --bin table1_ppl --release`.

use msb_bench::print_table;
use msb_core::ppl;

fn main() {
    let table = ppl::table1();
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.scheme.clone()];
            row.extend(r.cells.iter().cloned());
            row
        })
        .collect();
    let mut headers = vec!["PPL"];
    headers.extend(table.headers.iter());
    print_table(table.caption, &headers, &rows);
    println!(
        "\nPaper Table I reference: P1 = (1,3,2,3); P2 = (3,3,2,3); P3 = (3,3,2,3).\n\
         Every protocol cell above was produced by running the protocol with\n\
         instrumented parties and asserting what was (not) learned."
    );
}
