//! Table III — symbolic computation/communication comparison with
//! FNP'04, FC'10 and the FindU-style "Advanced" scheme, evaluated for the
//! paper's typical parameters and cross-checked against the *executed*
//! baselines.
//!
//! Regenerate with `cargo run -p msb-bench --bin table3_costs --release`.

use msb_baselines::cost::{
    expected_candidate_fraction, fc10_formula, findu_formula, fnp_formula, protocol1_formula,
    ScenarioParams,
};
use msb_baselines::fc10::{Fc10, RsaKey};
use msb_baselines::fnp04::Fnp04;
use msb_baselines::paillier::PaillierKeyPair;
use msb_bench::print_table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let s = ScenarioParams::table7();
    let (fnp_i, fnp_p, fnp_bits) = fnp_formula(&s);
    let (fc_i, fc_p, fc_bits) = fc10_formula(&s);
    let (fu_i, fu_p, fu_bits) = findu_formula(&s);
    let (p1_i, p1_p, p1_bits) = protocol1_formula(&s, 1);

    let rows = vec![
        vec![
            "FNP [10]".into(),
            format!("(2mt + mk·n) E3 = {} E3", fnp_i.e3),
            format!("mk·log(mt) E3 = {} E3", fnp_p.e3),
            format!("8q(mt + mk·n) = {} KB", fnp_bits / 8 / 1024),
            "1 broadcast + n unicasts".into(),
        ],
        vec![
            "FC10 [7]".into(),
            format!("2.5·mt·n M2 = {} M2", fc_i.m2),
            format!("(mt + mk) E2 = {} E2", fc_p.e2),
            format!("4qn(3mt + mk) = {} KB", fc_bits / 8 / 1024),
            "2n unicasts".into(),
        ],
        vec![
            "Advanced [14]".into(),
            format!("3mt·n E3 = {} E3", fu_i.e3),
            format!("2mt E3 = {} E3", fu_p.e3),
            format!("{} KB", fu_bits / 8 / 1024),
            "5n unicasts".into(),
        ],
        vec![
            "Protocol 1".into(),
            format!("(mt+1)H + mt·M + E = {}H+{}M+{}E", p1_i.h, p1_i.modp, p1_i.aes_enc),
            format!(
                "{}H + {}M (+{} mul256, {}D if candidate)",
                p1_p.h, p1_p.modp, p1_p.mul256, p1_p.aes_dec
            ),
            format!("{} B", p1_bits / 8),
            format!(
                "1 broadcast + n·(1/p)^(mt·θ) ≈ {:.2} unicasts",
                s.n as f64 * expected_candidate_fraction(&s)
            ),
        ],
    ];
    print_table(
        "Table III — cost comparison (mt=mk=6, n=100, q=256, p=11, θ=0.5, t=4)",
        &["Scheme", "Computation P1", "Computation Pk", "Communication", "Transmissions"],
        &rows,
    );

    // Cross-check the symbolic rows against the executed baselines on a
    // single pair (op counts are parameter-exact, keys scaled down for
    // speed; op *counts* are key-size independent).
    println!("\nCross-check against executed protocols (one pair, mt = mk = 6):");
    let mut rng = StdRng::seed_from_u64(7);
    let keys = PaillierKeyPair::generate(256, &mut rng);
    let x: Vec<u64> = (0..6).collect();
    let y: Vec<u64> = (3..9).collect();
    let fnp = Fnp04::run_u64(&keys, &x, &y, &mut rng);
    println!(
        "  FNP'04   executed: client {} E3, server {} E3 (formula/pair: {} + {})",
        fnp.client_ops.e3,
        fnp.server_ops.e3,
        2 * s.mt,
        s.mk * s.mt
    );
    let rsa = RsaKey::generate(256, &mut rng);
    let fc = Fc10::run_u64(&rsa, &x, &y, &mut rng);
    println!(
        "  FC'10    executed: client {} E2, server {} E2 (formula/pair: {} + {})",
        fc.client_ops.e2,
        fc.server_ops.e2,
        s.mt,
        s.mt + s.mk
    );
    println!(
        "  Sealed Bottle needs no asymmetric operations at all — see table4_ops\n\
         and table7_scenario for the measured symmetric costs."
    );
}
