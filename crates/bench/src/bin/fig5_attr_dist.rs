//! Figure 5 — users' attribute-number distribution (log-scale user count
//! per tag count).
//!
//! Regenerate with `cargo run -p msb-bench --bin fig5_attr_dist --release`.

use msb_bench::print_table;
use msb_dataset::stats::tag_count_histogram;
use msb_dataset::{WeiboConfig, WeiboDataset};

fn main() {
    let data = WeiboDataset::generate(&WeiboConfig::evaluation(), 5);
    let hist = tag_count_histogram(&data);

    let max_count = hist.iter().map(|&(_, n)| n).max().unwrap_or(1);
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|&(tags, users)| {
            let bar_len = ((users as f64).log10() / (max_count as f64).log10() * 40.0)
                .round()
                .max(1.0) as usize;
            vec![
                tags.to_string(),
                users.to_string(),
                format!("{:.2}", (users as f64).log10()),
                "#".repeat(bar_len),
            ]
        })
        .collect();
    print_table(
        "Figure 5 — users per tag count",
        &["Tags", "Users", "log10(users)", "log-scale bar"],
        &rows,
    );
    println!(
        "\nShape check: monotone-decreasing tail over 2..20 tags with a\n\
         mean of {:.2} tags (paper: 6), matching Fig. 5's log-linear decay.",
        data.mean_tag_count()
    );
}
