//! Thread-sweep ablation of the parallel responder path on the Table IV
//! responder workload (candidate-key computation, the term that
//! dominates Tables IV–VI on the responder side).
//!
//! Two stages are swept over 1/2/4/8 worker threads:
//!
//! * **Enumeration** — `enumerate_candidate_keys_with_stats_par` on a
//!   dictionary-size responder (the worst case the paper's Protocol 2
//!   detector is calibrated against), verified bit-identical to the
//!   sequential oracle at every thread count before timing.
//! * **Batched responder** — `Responder::handle_batch` over a chunk of
//!   distinct Protocol-1 requests against the same heavy profile.
//!
//! Speedups are relative to the 1-thread row. On a single-core host the
//! sweep degenerates to ≈1× (the run prints the detected core count);
//! the differential test suite, not this binary, is what guarantees the
//! parallel path is safe to enable.
//!
//! Run with `cargo run -p msb-bench --bin table4_parallel --release`.
//! `--json` emits one JSON object per row for `BENCH_BASELINE.json`.

use msb_bench::{fmt_ms, print_table, time_stats};
use msb_core::protocol::{Initiator, Parallelism, ProtocolConfig, ProtocolKind, Responder};
use msb_profile::attribute::Attribute;
use msb_profile::hint::HintConstruction;
use msb_profile::matching::parallel::enumerate_candidate_keys_with_stats_par;
use msb_profile::matching::{enumerate_candidate_keys_with_stats, EnumerationMode, MatchConfig};
use msb_profile::profile::Profile;
use msb_profile::request::RequestProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if !json {
        println!("detected {cores} hardware thread(s)");
    }

    let mut rng = StdRng::seed_from_u64(10);
    let vocabulary: Vec<Attribute> =
        (0..300).map(|i| Attribute::new("interest", format!("w{i}"))).collect();
    // The paper's running request shape: 1 necessary + 3 optional, β=2.
    let request = RequestProfile::new(
        vec![vocabulary[0].clone()],
        vec![vocabulary[1].clone(), vocabulary[2].clone(), vocabulary[3].clone()],
        2,
    )
    .unwrap();
    let sealed = request.try_seal(11, HintConstruction::Cauchy, &mut rng).unwrap();
    let config = MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 500_000 };
    // Dictionary-size responder: the enumeration-bound worst case.
    let heavy = Profile::from_attributes(vocabulary.iter().take(200).cloned());

    // Correctness first: every thread count must reproduce the oracle.
    let (oracle_keys, oracle_stats) = enumerate_candidate_keys_with_stats(
        heavy.vector(),
        &sealed.remainder,
        sealed.hint.as_ref(),
        &config,
    );
    for &threads in &THREAD_SWEEP {
        let (keys, stats) = enumerate_candidate_keys_with_stats_par(
            heavy.vector(),
            &sealed.remainder,
            sealed.hint.as_ref(),
            &config,
            Parallelism::new(threads),
        );
        assert_eq!(keys, oracle_keys, "{threads}-thread enumeration diverged from oracle");
        assert_eq!(stats, oracle_stats, "{threads}-thread stats diverged from oracle");
    }

    let mut rows = Vec::new();
    let mut base_ms = 0.0f64;
    for &threads in &THREAD_SWEEP {
        let par = Parallelism::new(threads);
        let stats = time_stats(1, 5, || {
            std::hint::black_box(enumerate_candidate_keys_with_stats_par(
                heavy.vector(),
                &sealed.remainder,
                sealed.hint.as_ref(),
                &config,
                par,
            ));
        });
        if threads == 1 {
            base_ms = stats.mean_ms;
        }
        if json {
            println!(
                "{{\"bench\":\"table4_parallel/enumeration\",\"threads\":{threads},\
                 \"mean_ms\":{:.4},\"min_ms\":{:.4},\"max_ms\":{:.4},\
                 \"assignments\":{},\"keys\":{}}}",
                stats.mean_ms,
                stats.min_ms,
                stats.max_ms,
                oracle_stats.assignments,
                oracle_stats.distinct_keys
            );
        }
        rows.push(vec![
            threads.to_string(),
            fmt_ms(stats.mean_ms),
            fmt_ms(stats.min_ms),
            format!("{:.2}x", base_ms / stats.mean_ms),
        ]);
    }
    if !json {
        print_table(
            &format!(
                "Parallel candidate enumeration — dictionary responder \
                 ({} assignments, {} keys)",
                oracle_stats.assignments, oracle_stats.distinct_keys
            ),
            &["Threads", "Mean (ms)", "Min (ms)", "Speedup vs 1 thread"],
            &rows,
        );
    }

    // Batched responder path: a chunk of distinct P1 requests.
    let mut pkg_rng = StdRng::seed_from_u64(11);
    let mut protocol_config = ProtocolConfig::new(ProtocolKind::P1, 11);
    protocol_config.match_config = config;
    let packages: Vec<_> = (0..8u32)
        .map(|i| {
            let req = RequestProfile::new(
                vec![vocabulary[i as usize].clone()],
                vec![
                    vocabulary[i as usize + 1].clone(),
                    vocabulary[i as usize + 2].clone(),
                    vocabulary[i as usize + 3].clone(),
                ],
                2,
            )
            .unwrap();
            Initiator::create(&req, i, &protocol_config, 0, &mut pkg_rng).1
        })
        .collect();

    let mut rows = Vec::new();
    let mut base_ms = 0.0f64;
    for &threads in &THREAD_SWEEP {
        protocol_config.parallelism = Parallelism::new(threads);
        let responder = Responder::new(1, heavy.clone(), &protocol_config);
        let mut bench_rng = StdRng::seed_from_u64(12);
        let stats = time_stats(1, 5, || {
            std::hint::black_box(responder.handle_batch(&packages, 100, &mut bench_rng));
        });
        if threads == 1 {
            base_ms = stats.mean_ms;
        }
        if json {
            println!(
                "{{\"bench\":\"table4_parallel/handle_batch\",\"threads\":{threads},\
                 \"mean_ms\":{:.4},\"min_ms\":{:.4},\"max_ms\":{:.4},\"requests\":{}}}",
                stats.mean_ms,
                stats.min_ms,
                stats.max_ms,
                packages.len()
            );
        }
        rows.push(vec![
            threads.to_string(),
            fmt_ms(stats.mean_ms),
            fmt_ms(stats.min_ms),
            format!("{:.2}x", base_ms / stats.mean_ms),
        ]);
    }
    if !json {
        print_table(
            &format!("Batched responder — {} requests per batch, Protocol 1", packages.len()),
            &["Threads", "Mean (ms)", "Min (ms)", "Speedup vs 1 thread"],
            &rows,
        );
        println!(
            "\nReading: the enumeration core parallelises across static prefix\n\
             shards with a deterministic merge, so every row above is verified\n\
             bit-identical to the sequential oracle before timing. Speedups\n\
             track the hardware thread count ({cores} here)."
        );
    }
}
