//! Table II — privacy protection levels in the malicious model with a
//! small attribute dictionary, verified by running the dictionary
//! attacker against live protocol transcripts.
//!
//! Regenerate with
//! `cargo run -p msb-bench --bin table2_ppl_malicious --release`.

use msb_bench::print_table;
use msb_core::ppl;

fn main() {
    let table = ppl::table2();
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.scheme.clone()];
            row.extend(r.cells.iter().cloned());
            row
        })
        .collect();
    let mut headers = vec!["PPL"];
    headers.extend(table.headers.iter());
    print_table(table.caption, &headers, &rows);

    println!(
        "\nPaper Table II reference: P1 = (0, 2, 2, 3, 3); P2 = (3, 2, 3, 3/A_c, 3);\n\
         P3 = (3, ϕ, 3, 3/ϕ, 3)."
    );
    let deviations = ppl::measured_deviations();
    if deviations.is_empty() {
        println!("No deviations from the paper's claims were measured.");
    } else {
        println!("\nMeasured deviations from the paper's claims:");
        for d in deviations {
            println!("  * {d}");
        }
    }
}
