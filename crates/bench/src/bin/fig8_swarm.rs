//! Figure 8 (extension) — simulator scalability: friending swarms at
//! 1k / 5k / 10k nodes, each size executed under both the hex-grid
//! spatial index and the naive O(n²) scan (the speedup baseline). Both
//! modes are bit-identical, so the comparison is pure engine cost —
//! asserted per size before anything is printed.
//!
//! Each run executes the full protocol end to end
//! ([`msb_bench::swarm`]): the initiator floods its request from the
//! center of a constant-density area (~11 neighbors per node), 1% of
//! nodes match, candidates gamble keys and reply by reverse-path
//! unicast, the initiator confirms. Reported per run: wall-clock,
//! messages (broadcasts / deliveries / unicast hops), match count with
//! latency percentiles, and the index-efficiency observable
//! `cells/query`.
//!
//! Regenerate with `cargo run -p msb-bench --release --bin fig8_swarm`;
//! `--json` emits `BENCH_BASELINE.json` rows instead of the table.

use msb_bench::swarm::build_uniform_swarm;
use msb_bench::{fmt_ms, print_table, time_once};
use msb_core::app::SwarmSummary;
use msb_net::sim::{Metrics, SpatialMode};

const SIZES: [usize; 3] = [1_000, 5_000, 10_000];
const SEED: u64 = 0xF168;

struct RunResult {
    mode: SpatialMode,
    nodes: usize,
    wall_ms: f64,
    metrics: Metrics,
    summary: SwarmSummary,
}

fn run(n: usize, mode: SpatialMode) -> RunResult {
    let mut sim = build_uniform_swarm(n, mode, SEED, 255);
    let (_, wall_ms) = time_once(|| {
        sim.start();
        sim.run();
    });
    RunResult {
        mode,
        nodes: n,
        wall_ms,
        metrics: *sim.metrics(),
        summary: SwarmSummary::collect(&sim),
    }
}

fn mode_name(mode: SpatialMode) -> &'static str {
    match mode {
        SpatialMode::HexIndex => "indexed",
        SpatialMode::NaiveScan => "naive",
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let indexed: Vec<RunResult> = SIZES.iter().map(|&n| run(n, SpatialMode::HexIndex)).collect();
    let naive: Vec<RunResult> = SIZES.iter().map(|&n| run(n, SpatialMode::NaiveScan)).collect();

    // Both modes are bit-identical (the differential suites prove it);
    // assert the transport metrics agree so a future divergence cannot
    // silently invalidate the speedup comparison.
    for (i, nv) in indexed.iter().zip(&naive) {
        assert_eq!(
            Metrics { cells_scanned: 0, ..i.metrics },
            nv.metrics,
            "n={}: modes diverged — differential contract broken",
            i.nodes
        );
        assert_eq!(i.summary, nv.summary, "n={}: app outcomes diverged", i.nodes);
    }

    let results = indexed.iter().chain(&naive);
    if json {
        for r in results {
            let s = &r.summary;
            println!(
                "{{\"bench\": \"fig8_swarm\", \"mode\": \"{}\", \"nodes\": {}, \
                 \"wall_ms\": {:.1}, \"broadcasts\": {}, \"delivered\": {}, \
                 \"unicast_hops\": {}, \"neighbor_queries\": {}, \"cells_scanned\": {}, \
                 \"matches\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
                mode_name(r.mode),
                r.nodes,
                r.wall_ms,
                r.metrics.broadcasts,
                r.metrics.delivered,
                r.metrics.unicast_hops,
                r.metrics.neighbor_queries,
                r.metrics.cells_scanned,
                s.matches,
                s.latency_percentile_us(0.5).unwrap_or(0),
                s.latency_percentile_us(0.9).unwrap_or(0),
                s.latency_percentile_us(0.99).unwrap_or(0),
            );
        }
    } else {
        let rows: Vec<Vec<String>> = results
            .map(|r| {
                let s = &r.summary;
                let cells_per_query = if r.metrics.neighbor_queries > 0 {
                    r.metrics.cells_scanned as f64 / r.metrics.neighbor_queries as f64
                } else {
                    0.0
                };
                vec![
                    format!("{} ({})", r.nodes, mode_name(r.mode)),
                    fmt_ms(r.wall_ms),
                    format!("{}", r.metrics.broadcasts),
                    format!("{}", r.metrics.delivered),
                    format!("{}", r.metrics.unicast_hops),
                    format!("{}", s.matches),
                    format!(
                        "{} / {} / {}",
                        s.latency_percentile_us(0.5).unwrap_or(0),
                        s.latency_percentile_us(0.9).unwrap_or(0),
                        s.latency_percentile_us(0.99).unwrap_or(0),
                    ),
                    if r.mode == SpatialMode::HexIndex {
                        format!("{cells_per_query:.1}")
                    } else {
                        "n/a".into()
                    },
                ]
            })
            .collect();
        print_table(
            "Fig. 8 (ext) — friending swarm scalability (1% matching, ~11 neighbors/node)",
            &[
                "Swarm",
                "Wall (ms)",
                "Broadcasts",
                "Delivered",
                "Unicast hops",
                "Matches",
                "Latency p50/p90/p99 (us)",
                "Cells/query",
            ],
            &rows,
        );
        for (i, nv) in indexed.iter().zip(&naive) {
            println!(
                "speedup @ {}: {:.1}x (naive {} → indexed {})",
                i.nodes,
                nv.wall_ms / i.wall_ms,
                fmt_ms(nv.wall_ms),
                fmt_ms(i.wall_ms),
            );
        }
    }
}
