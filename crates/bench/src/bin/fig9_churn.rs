//! Figure 9 (extension) — event-engine scalability under churn:
//! re-flooding friending swarms at 10k / 25k / 50k nodes, each size
//! executed under both the calendar-queue scheduler and the binary
//! heap (the speedup baseline). Both engines are bit-identical, so the
//! comparison is pure engine cost — asserted per size before anything
//! is printed.
//!
//! Each run executes the standard churn scenario
//! ([`msb_bench::swarm::ChurnSpec`]): nodes start on 3 islands whose
//! gaps exceed the radio range, roam under random-waypoint mobility,
//! and re-broadcast carried requests every 5 s (fan-out capped to the
//! 8 nearest) until the request expires at the 40 s horizon — so the
//! initiator's island hears the flood at t = 0 and every cross-island
//! match is mobility + re-flooding's doing. Reported per run:
//! wall-clock, events scheduled, peak queue depth, messages, match
//! count with latency percentiles.
//!
//! Regenerate with `cargo run -p msb-bench --release --bin fig9_churn`;
//! `--json` emits `BENCH_BASELINE.json` rows instead of the table.
//! `--sizes 1000,5000` overrides the size sweep (the default is slow
//! on laptops).

use msb_bench::swarm::{build_churn_swarm, drive_churn, ChurnSpec};
use msb_bench::{fmt_ms, print_table, time_once};
use msb_core::app::SwarmSummary;
use msb_net::sched::{AnyScheduler, EventKey, Recurrence, Scheduler};
use msb_net::sim::{Metrics, SchedulerMode};

const SIZES: [usize; 3] = [10_000, 25_000, 50_000];

/// Transient events pushed through each engine by the pure-engine
/// replay.
const ENGINE_EVENTS: u64 = 2_000_000;

struct RunResult {
    mode: SchedulerMode,
    nodes: usize,
    wall_ms: f64,
    metrics: Metrics,
    summary: SwarmSummary,
}

fn run(n: usize, mode: SchedulerMode) -> RunResult {
    let spec = ChurnSpec::standard(n, mode);
    let (mut sim, mut mobility) = build_churn_swarm(&spec);
    let (_, wall_ms) = time_once(|| drive_churn(&mut sim, &mut mobility, &spec));
    RunResult {
        mode,
        nodes: n,
        wall_ms,
        metrics: *sim.metrics(),
        summary: SwarmSummary::collect(&sim),
    }
}

fn mode_name(mode: SchedulerMode) -> &'static str {
    match mode {
        SchedulerMode::Calendar => "calendar",
        SchedulerMode::BinaryHeap => "heap",
    }
}

/// Pure-engine replay of the churn event shape, isolating scheduler
/// cost from the application work (crypto, dup classification, spatial
/// queries) that dominates the end-to-end rows above: `resident`
/// recurring entries — the re-flood timers, seconds out — stay in the
/// queue for the whole run while short-horizon transient deliveries
/// stream through at constant depth. The heap pays
/// O(log(resident + depth)) per transient operation for entries it
/// will not touch for seconds; the calendar parks them in its overflow
/// level and handles the hot traffic in O(1). Returns wall-clock ms
/// for [`ENGINE_EVENTS`] pop+push cycles.
fn engine_replay_ms(mode: SchedulerMode, resident: usize) -> f64 {
    let mut s: AnyScheduler<u64> = AnyScheduler::for_mode(mode);
    // Re-flood timers: one per node, period 5 s, staggered like the
    // flood's arrival ripple, re-arming throughout the replay.
    for i in 0..resident {
        s.schedule_recurring(
            5_000_000 + (i as u64 % 100_000),
            EventKey::new(i as u32, 0),
            Recurrence::new(5_000_000, u64::MAX / 2),
            i as u64,
        );
    }
    // Transient in-flight deliveries: radio horizon (≤ 700 us).
    let mut x = 0x9E37_79B9u64;
    let mut xorshift = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut emit = 1u64;
    for i in 0..2_000u64 {
        s.schedule(xorshift() % 700, EventKey::new(0, emit), i);
        emit += 1;
    }
    let (_, wall_ms) = time_once(|| {
        for _ in 0..ENGINE_EVENTS {
            let (now, _) = s.pop().expect("replay queue never drains");
            s.schedule(now + xorshift() % 700, EventKey::new(0, emit), 0);
            emit += 1;
        }
    });
    wall_ms
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let sizes: Vec<usize> = match args.iter().position(|a| a == "--sizes") {
        Some(i) => args
            .get(i + 1)
            .expect("--sizes takes comma-separated node counts")
            .split(',')
            .map(|s| s.parse().expect("--sizes takes comma-separated node counts"))
            .collect(),
        None => SIZES.to_vec(),
    };

    let calendar: Vec<RunResult> = sizes.iter().map(|&n| run(n, SchedulerMode::Calendar)).collect();
    let heap: Vec<RunResult> = sizes.iter().map(|&n| run(n, SchedulerMode::BinaryHeap)).collect();

    // Both engines are bit-identical (the differential suites prove
    // it); assert every metric and outcome agrees so a future
    // divergence cannot silently invalidate the speedup comparison.
    for (c, h) in calendar.iter().zip(&heap) {
        assert_eq!(c.metrics, h.metrics, "n={}: engines diverged — contract broken", c.nodes);
        assert_eq!(c.summary, h.summary, "n={}: app outcomes diverged", c.nodes);
        assert!(c.summary.matches > 0, "n={}: churn scenario produced no matches", c.nodes);
        assert!(c.summary.refloods > 0, "n={}: re-flooding never fired", c.nodes);
    }

    // Engine-only replay at each size's resident-timer population.
    let engine: Vec<(usize, f64, f64)> = sizes
        .iter()
        .map(|&n| {
            (
                n,
                engine_replay_ms(SchedulerMode::Calendar, n),
                engine_replay_ms(SchedulerMode::BinaryHeap, n),
            )
        })
        .collect();

    let results = calendar.iter().chain(&heap);
    if json {
        for r in results {
            let s = &r.summary;
            println!(
                "{{\"bench\": \"fig9_churn\", \"scheduler\": \"{}\", \"nodes\": {}, \
                 \"wall_ms\": {:.1}, \"events_scheduled\": {}, \"peak_queue_len\": {}, \
                 \"broadcasts\": {}, \"delivered\": {}, \"refloods\": {}, \"matches\": {}, \
                 \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
                mode_name(r.mode),
                r.nodes,
                r.wall_ms,
                r.metrics.events_scheduled,
                r.metrics.peak_queue_len,
                r.metrics.broadcasts,
                r.metrics.delivered,
                s.refloods,
                s.matches,
                s.latency_percentile_us(0.5).unwrap_or(0),
                s.latency_percentile_us(0.9).unwrap_or(0),
                s.latency_percentile_us(0.99).unwrap_or(0),
            );
        }
        for (c, h) in calendar.iter().zip(&heap) {
            println!(
                "{{\"bench\": \"fig9_churn/speedup\", \"nodes\": {}, \
                 \"heap_over_calendar\": {:.2}}}",
                c.nodes,
                h.wall_ms / c.wall_ms,
            );
        }
        for &(n, cal_ms, heap_ms) in &engine {
            println!(
                "{{\"bench\": \"fig9_churn/engine\", \"resident_timers\": {}, \
                 \"events\": {}, \"calendar_ms\": {:.1}, \"heap_ms\": {:.1}, \
                 \"heap_over_calendar\": {:.2}}}",
                n,
                ENGINE_EVENTS,
                cal_ms,
                heap_ms,
                heap_ms / cal_ms,
            );
        }
    } else {
        let rows: Vec<Vec<String>> = results
            .map(|r| {
                let s = &r.summary;
                vec![
                    format!("{} ({})", r.nodes, mode_name(r.mode)),
                    fmt_ms(r.wall_ms),
                    format!("{}", r.metrics.events_scheduled),
                    format!("{}", r.metrics.peak_queue_len),
                    format!("{}", s.refloods),
                    format!("{}", s.matches),
                    format!(
                        "{} / {} / {}",
                        s.latency_percentile_us(0.5).unwrap_or(0) / 1000,
                        s.latency_percentile_us(0.9).unwrap_or(0) / 1000,
                        s.latency_percentile_us(0.99).unwrap_or(0) / 1000,
                    ),
                ]
            })
            .collect();
        print_table(
            "Fig. 9 (ext) — re-flooding churn swarms (3 islands, 5 s re-flood, 40 s horizon)",
            &[
                "Swarm",
                "Wall (ms)",
                "Events",
                "Peak queue",
                "Refloods",
                "Matches",
                "Latency p50/p90/p99 (ms)",
            ],
            &rows,
        );
        for (c, h) in calendar.iter().zip(&heap) {
            println!(
                "end-to-end speedup @ {}: {:.2}x (heap {} → calendar {})",
                c.nodes,
                h.wall_ms / c.wall_ms,
                fmt_ms(h.wall_ms),
                fmt_ms(c.wall_ms),
            );
        }
        for &(n, cal_ms, heap_ms) in &engine {
            println!(
                "engine-only speedup @ {} resident timers: {:.2}x \
                 (heap {} → calendar {} for {}M events)",
                n,
                heap_ms / cal_ms,
                fmt_ms(heap_ms),
                fmt_ms(cal_ms),
                ENGINE_EVENTS / 1_000_000,
            );
        }
    }
}
