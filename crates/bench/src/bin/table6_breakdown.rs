//! Table VI — decomposed computation time of the Sealed Bottle
//! operations over Weibo-calibrated profiles: MatrixGen (attribute
//! hashing into the profile vector), KeyGen (profile key), RemainderGen,
//! HintGen and HintSolve, reported as mean/min/max like the paper.
//!
//! Regenerate with
//! `cargo run -p msb-bench --bin table6_breakdown --release`
//! (or `cargo bench -p msb-bench --bench table6_breakdown`).

use msb_bench::{fmt_ms, print_table, time_once};
use msb_dataset::{WeiboConfig, WeiboDataset};
use msb_profile::hint::{HintConstruction, HintMatrix};
use msb_profile::profile::{ProfileKey, ProfileVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Default)]
struct Agg {
    samples: Vec<f64>,
}

impl Agg {
    fn push(&mut self, ms: f64) {
        self.samples.push(ms);
    }
    fn row(&self, name: &str) -> Vec<String> {
        let mean = self.samples.iter().sum::<f64>() / self.samples.len().max(1) as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0, f64::max);
        vec![name.to_string(), fmt_ms(mean), fmt_ms(min), fmt_ms(max)]
    }
}

fn main() {
    let data = WeiboDataset::generate(&WeiboConfig { users: 3_000, ..WeiboConfig::default() }, 6);
    let mut rng = StdRng::seed_from_u64(66);
    let p = 11u64;

    let mut matrix_gen = Agg::default();
    let mut key_gen = Agg::default();
    let mut remainder_gen = Agg::default();
    let mut hint_gen = Agg::default();
    let mut hint_solve = Agg::default();

    for user in data.sample_users(500, 1) {
        let attrs = user.tag_attributes();

        // MatrixGen: hash every attribute into the sorted profile vector.
        let (vector, ms) = time_once(|| ProfileVector::from_hashes(attrs.iter().map(|a| a.hash())));
        matrix_gen.push(ms);

        // KeyGen: K = H(H_k).
        let (_key, ms) = time_once(|| ProfileKey::from_hashes(vector.hashes()));
        key_gen.push(ms);

        // RemainderGen: every hash mod p.
        let (_rems, ms) = time_once(|| vector.remainders(p));
        remainder_gen.push(ms);

        // HintGen / HintSolve need a fuzzy request: use the user's tags
        // as the optional block with β = ⌈len/2⌉ (θ ≈ 0.5, like Table VII).
        let optional = vector.hashes().to_vec();
        if optional.len() < 2 {
            continue;
        }
        let beta = optional.len().div_ceil(2);
        let gamma = optional.len() - beta;
        if gamma == 0 {
            continue;
        }
        let (hint, ms) =
            time_once(|| HintMatrix::generate(&optional, beta, HintConstruction::Cauchy, &mut rng));
        hint_gen.push(ms);

        // Solve with the worst case: γ unknowns at the tail.
        let assignment: Vec<Option<_>> = optional
            .iter()
            .enumerate()
            .map(|(i, h)| if i < beta { Some(*h) } else { None })
            .collect();
        let (solved, ms) = time_once(|| hint.solve(&assignment));
        hint_solve.push(ms);
        assert_eq!(solved.as_deref(), Some(&optional[..]), "solver must recover the truth");
    }

    let rows = vec![
        matrix_gen.row("MatrixGen"),
        key_gen.row("KeyGen"),
        remainder_gen.row("RemainderGen"),
        hint_gen.row("HintGen"),
        hint_solve.row("HintSolve"),
    ];
    print_table(
        "Table VI — decomposed computation time over Weibo-calibrated profiles (ms)",
        &["Operation", "Mean", "Min", "Max"],
        &rows,
    );
    println!(
        "\nPaper laptop reference (ms): MatrixGen 7.2e-3, KeyGen 8.1e-3,\n\
         RemainderGen 1.9e-3, HintGen 4.7e-3, HintSolve 3e-2.\n\
         Shape check: HintSolve dominates; everything stays well under 1 ms\n\
         for ordinary profiles."
    );
}
