//! `msb-wire` codec throughput and per-protocol frame sizes.
//!
//! Measures encode and strict decode of every message kind at the
//! shapes the evaluation actually produces (Table III's scenario
//! parameters for the request packages), and reports the exact frame
//! sizes the simulator's byte metrics are built from. `--json` emits
//! the rows appended to `BENCH_BASELINE.json`.
//!
//! Regenerate with `cargo run -p msb-bench --bin table2_wire --release
//! [-- --json]`.

use msb_bench::{print_table, time_stats};
use msb_core::package::{Reply, RequestPackage};
use msb_core::protocol::{Initiator, ProtocolConfig, ProtocolKind};
use msb_dataset::weibo::{WeiboConfig, WeiboDataset};
use msb_profile::hint::HintConstruction;
use msb_profile::{Attribute, RequestProfile};
use msb_wire::Message;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Row {
    name: &'static str,
    frame_bytes: usize,
    encode_ns: f64,
    decode_ns: f64,
}

fn bench_message<M: Message>(name: &'static str, msg: &M, iters: usize) -> Row {
    let encoded = msg.encode();
    assert_eq!(encoded.len(), msg.frame_len(), "{name}: encoded_len out of sync");
    let encode_ns = time_stats(iters / 10 + 1, iters, || {
        std::hint::black_box(msg.encode());
    })
    .mean_ms
        * 1e6;
    let decode_ns = time_stats(iters / 10 + 1, iters, || {
        std::hint::black_box(M::decode(&encoded).expect("canonical frame decodes"));
    })
    .mean_ms
        * 1e6;
    Row { name, frame_bytes: encoded.len(), encode_ns, decode_ns }
}

fn mib_per_s(bytes: usize, ns: f64) -> f64 {
    (bytes as f64 / (1u64 << 20) as f64) / (ns * 1e-9)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rng = StdRng::seed_from_u64(0x317E);

    // Table III shapes: m_t = 6 attributes, p = 11.
    let six_tags = |prefix: &str| -> Vec<Attribute> {
        (0..6).map(|i| Attribute::new("tag", format!("{prefix}{i}"))).collect()
    };
    let exact = RequestProfile::exact(six_tags("e")).unwrap();
    let fuzzy = {
        let mut attrs = six_tags("f").into_iter();
        let necessary = vec![attrs.next().unwrap()];
        RequestProfile::new(necessary, attrs.collect(), 3).unwrap() // β=3, γ=2
    };

    let mk_pkg = |kind: ProtocolKind,
                  req: &RequestProfile,
                  hint: HintConstruction,
                  rng: &mut StdRng|
     -> RequestPackage {
        let mut config = ProtocolConfig::new(kind, 11);
        config.hint_construction = hint;
        Initiator::create(req, 7, &config, 0, rng).1
    };

    let p1 = mk_pkg(ProtocolKind::P1, &exact, HintConstruction::Cauchy, &mut rng);
    let p2_cauchy = mk_pkg(ProtocolKind::P2, &fuzzy, HintConstruction::Cauchy, &mut rng);
    let p2_random = mk_pkg(ProtocolKind::P2, &fuzzy, HintConstruction::Random, &mut rng);
    let p3 = mk_pkg(ProtocolKind::P3, &fuzzy, HintConstruction::Cauchy, &mut rng);

    let reply_1 = Reply { request_id: [7; 32], responder: 3, acks: vec![vec![0xAB; 56]] };
    let reply_8 = Reply { request_id: [7; 32], responder: 3, acks: vec![vec![0xAB; 56]; 8] };

    let population = WeiboDataset::generate(&WeiboConfig { users: 2_000, ..Default::default() }, 1);
    let user = population.users()[0].clone();

    let rows = [
        bench_message("request/P1 exact (mt=6)", &p1, 20_000),
        bench_message("request/P2 fuzzy Cauchy (β=3,γ=2)", &p2_cauchy, 20_000),
        bench_message("request/P2 fuzzy Random (β=3,γ=2)", &p2_random, 20_000),
        bench_message("request/P3 fuzzy Cauchy (β=3,γ=2)", &p3, 20_000),
        bench_message("reply/1 ack", &reply_1, 50_000),
        bench_message("reply/8 acks", &reply_8, 50_000),
        bench_message("dataset/user", &user, 50_000),
        bench_message("dataset/population 2k users", &population, 50),
    ];

    if json {
        println!("[");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            println!(
                "  {{\"message\": \"{}\", \"frame_bytes\": {}, \"encode_ns\": {:.0}, \
                 \"decode_ns\": {:.0}, \"encode_mib_s\": {:.1}, \"decode_mib_s\": {:.1}}}{}",
                r.name,
                r.frame_bytes,
                r.encode_ns,
                r.decode_ns,
                mib_per_s(r.frame_bytes, r.encode_ns),
                mib_per_s(r.frame_bytes, r.decode_ns),
                comma
            );
        }
        println!("]");
        return;
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{} B", r.frame_bytes),
                format!("{:.0} ns", r.encode_ns),
                format!("{:.1}", mib_per_s(r.frame_bytes, r.encode_ns)),
                format!("{:.0} ns", r.decode_ns),
                format!("{:.1}", mib_per_s(r.frame_bytes, r.decode_ns)),
            ]
        })
        .collect();
    print_table(
        "msb-wire codec — frame sizes and throughput (p=11, mt=6)",
        &["Message", "Frame", "Encode", "MiB/s", "Decode", "MiB/s"],
        &table,
    );
    println!(
        "\nFrame sizes are exact (`frame_len()` computes them without encoding);\n\
         the simulator's in-memory delivery accounts bytes from the same numbers\n\
         the encoded mode measures — see tests/wire_differential.rs."
    );
}
