//! Ablation: the remainder modulus `p` as a privacy/efficiency dial
//! (paper §IV-B1 argues even small p slashes candidate counts while
//! keeping dictionary profiling expensive — `(m/p)^mt` guesses).
//!
//! Run with `cargo run -p msb-bench --bin ablation_p_sweep --release`.

use msb_bench::print_table;
use msb_dataset::{WeiboConfig, WeiboDataset};
use msb_profile::profile::ProfileVector;
use msb_profile::request::RequestVector;

fn main() {
    let data = WeiboDataset::generate(&WeiboConfig { users: 10_000, ..WeiboConfig::default() }, 12);
    let six = data.users_with_tag_count(6);
    let initiators: Vec<_> = six.iter().take(15).collect();
    let vectors: Vec<ProfileVector> = six.iter().map(|u| u.profile().vector().clone()).collect();
    let beta = 3usize; // θ = 0.5 as in Table VII

    let mut rows = Vec::new();
    for p in [7u64, 11, 23, 47, 97] {
        let mut candidates = 0usize;
        let mut total = 0usize;
        let mut wire_bits = 0usize;
        for initiator in &initiators {
            let hashes = initiator.profile().vector().hashes().to_vec();
            let request = RequestVector::from_hashes(Vec::new(), hashes, beta);
            let rv = request.remainder_vector(p);
            wire_bits = rv.wire_size_bits();
            for (user, vector) in six.iter().zip(&vectors) {
                if user.id == initiator.id {
                    continue;
                }
                total += 1;
                if rv.fast_check(vector) {
                    candidates += 1;
                }
            }
        }
        let fraction = candidates as f64 / total.max(1) as f64;
        // Dictionary-profiling hardness for a vocabulary of 560 419 tags:
        // (m/p)^mt guesses (paper §IV-A1).
        let guesses_log2 = 6.0 * (560_419f64 / p as f64).log2();
        rows.push(vec![
            p.to_string(),
            format!("{fraction:.4}"),
            format!("{wire_bits} bits"),
            format!("2^{guesses_log2:.0}"),
        ]);
    }
    print_table(
        "Ablation — remainder modulus sweep (6-attr requests, β = 3)",
        &["p", "Candidate fraction", "Remainder vector size", "Dictionary guesses"],
        &rows,
    );
    println!(
        "\nReading: larger p shrinks the candidate set superlinearly (less\n\
         wasted work for non-matching users) but also shrinks the attacker's\n\
         search space. The paper picks p = 11: candidates are already a\n\
         ~5x minority while brute force stays ≈ 2^94; p = 23 (the paper's\n\
         other operating point) drops candidates another 4x."
    );
}
