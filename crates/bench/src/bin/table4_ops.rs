//! Table IV — mean computation time of the basic symmetric operations,
//! measured on this machine and printed next to the paper's laptop and
//! phone numbers.
//!
//! Regenerate with `cargo run -p msb-bench --bin table4_ops --release`
//! (or `cargo bench -p msb-bench --bench table4_ops` for the Criterion
//! version with confidence intervals).

use msb_baselines::cost::OpCostTable;
use msb_bench::{fmt_ms, measured_cost_table, print_table};

fn main() {
    let measured = measured_cost_table();
    let laptop = OpCostTable::paper_laptop();
    let phone = OpCostTable::paper_phone();

    let rows = vec![
        row("SHA-256", measured.h_ms, laptop.h_ms, phone.h_ms),
        row("Mod p", measured.modp_ms, laptop.modp_ms, phone.modp_ms),
        row("AES Enc", measured.aes_enc_ms, laptop.aes_enc_ms, phone.aes_enc_ms),
        row("AES Dec", measured.aes_dec_ms, laptop.aes_dec_ms, phone.aes_dec_ms),
        row("Multiply-256", measured.mul256_ms, laptop.mul256_ms, phone.mul256_ms),
        row("Compare-256", measured.cmp256_ms, laptop.cmp256_ms, phone.cmp256_ms),
    ];
    print_table(
        "Table IV — mean time of basic operations (ms)",
        &["Operation", "Measured (this machine)", "Paper laptop", "Paper phone"],
        &rows,
    );
    println!(
        "\nShape check: every symmetric operation is microseconds or less —\n\
         3–6 orders of magnitude below the asymmetric operations of Table V."
    );
}

fn row(name: &str, measured: f64, laptop: f64, phone: f64) -> Vec<String> {
    vec![name.to_string(), fmt_ms(measured), fmt_ms(laptop), fmt_ms(phone)]
}
