//! Table IV — mean computation time of the basic symmetric operations,
//! measured on this machine and printed next to the paper's laptop and
//! phone numbers, plus the fast-path variants (T-table AES, SHA-256
//! midstate completion, 4-way bulk hashing) added for the raw-speed
//! crypto hot paths (see `docs/CRYPTO.md`).
//!
//! Regenerate with `cargo run -p msb-bench --bin table4_ops --release`
//! (or `cargo bench -p msb-bench --bench table4_ops` for the Criterion
//! version with confidence intervals).

use msb_baselines::cost::OpCostTable;
use msb_bench::{fmt_ms, measured_cost_table, print_table, time_stats};
use msb_crypto::aes::{Aes256, BlockCipher, CipherBackend};
use msb_crypto::sha256::Sha256;

fn main() {
    let measured = measured_cost_table();
    let laptop = OpCostTable::paper_laptop();
    let phone = OpCostTable::paper_phone();

    let rows = vec![
        row("SHA-256", measured.h_ms, laptop.h_ms, phone.h_ms),
        row("Mod p", measured.modp_ms, laptop.modp_ms, phone.modp_ms),
        row("AES Enc", measured.aes_enc_ms, laptop.aes_enc_ms, phone.aes_enc_ms),
        row("AES Dec", measured.aes_dec_ms, laptop.aes_dec_ms, phone.aes_dec_ms),
        row("Multiply-256", measured.mul256_ms, laptop.mul256_ms, phone.mul256_ms),
        row("Compare-256", measured.cmp256_ms, laptop.cmp256_ms, phone.cmp256_ms),
    ];
    print_table(
        "Table IV — mean time of basic operations (ms)",
        &["Operation", "Measured (this machine)", "Paper laptop", "Paper phone"],
        &rows,
    );

    // Fast-path variants next to their oracle baselines.
    let attr = b"interest:basketball";
    let key = Sha256::digest(attr);
    let table = Aes256::with_backend(&key, CipherBackend::Table);
    let mut block = [7u8; 16];
    let enc_table_ms = time_stats(100, 2_000, || {
        table.encrypt_block(&mut block);
        std::hint::black_box(&block);
    })
    .mean_ms;
    let dec_table_ms = time_stats(100, 2_000, || {
        table.decrypt_block(&mut block);
        std::hint::black_box(&block);
    })
    .mean_ms;
    let mut pre = Sha256::new();
    pre.update(&[0xab; 64]);
    let suffix = [0xcd; 32];
    let midstate_ms = time_stats(100, 2_000, || {
        let mut h = pre.clone();
        h.update(&suffix);
        std::hint::black_box(h.finalize());
    })
    .mean_ms;
    let many: Vec<&[u8]> = vec![attr; 8];
    let many_ms = time_stats(100, 2_000, || {
        std::hint::black_box(Sha256::digest_many(&many));
    })
    .mean_ms;

    let fast_rows = vec![
        vec![
            "AES Enc (T-table)".to_string(),
            fmt_ms(enc_table_ms),
            format!("{:.2}x vs S-box enc", measured.aes_enc_ms / enc_table_ms),
        ],
        vec![
            "AES Dec (T-table, eq-inv)".to_string(),
            fmt_ms(dec_table_ms),
            format!("{:.2}x vs S-box dec", measured.aes_dec_ms / dec_table_ms),
        ],
        vec![
            "SHA-256 key via midstate".to_string(),
            fmt_ms(midstate_ms),
            format!("{:.2}x vs one-shot attr", measured.h_ms / midstate_ms),
        ],
        vec![
            "SHA-256 bulk x8 (per call)".to_string(),
            fmt_ms(many_ms),
            format!("{:.2}x vs 8 one-shots", 8.0 * measured.h_ms / many_ms),
        ],
    ];
    print_table(
        "Table IV addendum — crypto fast paths (ms)",
        &["Operation", "Measured (this machine)", "Speedup"],
        &fast_rows,
    );

    println!(
        "\nShape check: every symmetric operation is microseconds or less —\n\
         3–6 orders of magnitude below the asymmetric operations of Table V.\n\
         The T-table decrypt closes the S-box oracle's enc/dec gap via the\n\
         FIPS-197 equivalent inverse cipher (docs/CRYPTO.md)."
    );
}

fn row(name: &str, measured: f64, laptop: f64, phone: f64) -> Vec<String> {
    vec![name.to_string(), fmt_ms(measured), fmt_ms(laptop), fmt_ms(phone)]
}
