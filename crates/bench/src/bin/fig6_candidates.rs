//! Figure 6 — candidate-user proportion vs similarity threshold and
//! prime `p`: how closely the remainder fast check approximates the true
//! similar-user set, for p = 11 and p = 23.
//!
//! Case (a): all users with exactly 6 attributes.
//! Case (b): a diverse 1000-user sample.
//!
//! Regenerate with `cargo run -p msb-bench --bin fig6_candidates --release`.

use msb_bench::print_table;
use msb_dataset::stats::shared_tags;
use msb_dataset::{WeiboConfig, WeiboDataset, WeiboUser};
use msb_profile::profile::ProfileVector;
use msb_profile::request::RequestVector;

fn run_case(
    title: &str,
    initiators: &[&WeiboUser],
    population: &[&WeiboUser],
    max_s: usize,
    primes: &[u64],
) {
    // Pre-hash the population once.
    let vectors: Vec<ProfileVector> =
        population.iter().map(|u| u.profile().vector().clone()).collect();

    let mut rows = Vec::new();
    for s in 1..=max_s {
        let mut truth_acc = 0.0;
        let mut cand_acc = vec![0.0; primes.len()];
        let mut denom = 0usize;
        for initiator in initiators {
            if initiator.tags.len() < s {
                continue;
            }
            denom += 1;
            let hashes: Vec<_> = initiator.profile().vector().hashes().to_vec();
            let request = RequestVector::from_hashes(Vec::new(), hashes, s);
            let mut truth = 0usize;
            let mut cand = vec![0usize; primes.len()];
            for (other, vector) in population.iter().zip(&vectors) {
                if other.id == initiator.id {
                    continue;
                }
                if shared_tags(initiator, other) >= s {
                    truth += 1;
                }
                for (pi, &p) in primes.iter().enumerate() {
                    let rv = request.remainder_vector(p);
                    if rv.fast_check(vector) {
                        cand[pi] += 1;
                    }
                }
            }
            let pop = (population.len() - 1) as f64;
            truth_acc += truth as f64 / pop;
            for (pi, c) in cand.iter().enumerate() {
                cand_acc[pi] += *c as f64 / pop;
            }
        }
        let denom = denom.max(1) as f64;
        let mut row = vec![s.to_string(), format!("{:.4}", truth_acc / denom)];
        for c in &cand_acc {
            row.push(format!("{:.4}", c / denom));
        }
        rows.push(row);
    }
    let headers: Vec<String> = ["Shared attrs (similarity)", "Truth proportion"]
        .iter()
        .map(|s| s.to_string())
        .chain(primes.iter().map(|p| format!("Candidates (p={p})")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(title, &header_refs, &rows);
}

fn main() {
    let data = WeiboDataset::generate(&WeiboConfig { users: 20_000, ..WeiboConfig::default() }, 6);
    let primes = [11u64, 23];

    // Case (a): users with exactly 6 attributes.
    let six: Vec<&WeiboUser> = data.users_with_tag_count(6);
    let initiators_a: Vec<&WeiboUser> = six.iter().copied().take(25).collect();
    run_case(
        "Figure 6a — candidate proportion, users with 6 attributes",
        &initiators_a,
        &six,
        6,
        &primes,
    );

    // Case (b): a diverse 1000-user sample.
    let diverse = data.sample_users(1_000, 9);
    let initiators_b: Vec<&WeiboUser> =
        diverse.iter().copied().filter(|u| u.tags.len() >= 4).take(25).collect();
    run_case(
        "Figure 6b — candidate proportion, diverse attribute counts",
        &initiators_b,
        &diverse,
        9,
        &primes,
    );

    println!(
        "\nShape checks (paper Fig. 6): the candidate proportion upper-bounds\n\
         the truth at every similarity level (Theorem 1: no false negatives),\n\
         and p = 23 hugs the truth tighter than p = 11."
    );
}
