//! Figure 7 — candidate profile-key-set size (mean and max) vs
//! similarity threshold, for p = 11 and p = 23: the cost a *candidate*
//! pays before the decisive decryption.
//!
//! Regenerate with `cargo run -p msb-bench --bin fig7_keyset --release`.

use msb_bench::print_table;
use msb_dataset::{WeiboConfig, WeiboDataset, WeiboUser};
use msb_profile::hint::HintConstruction;
use msb_profile::matching::{enumerate_candidate_keys_with_stats, EnumerationMode, MatchConfig};
use msb_profile::profile::ProfileVector;
use msb_profile::request::RequestVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_case(
    title: &str,
    initiators: &[&WeiboUser],
    population: &[&WeiboUser],
    max_s: usize,
    primes: &[u64],
) {
    let vectors: Vec<ProfileVector> =
        population.iter().map(|u| u.profile().vector().clone()).collect();
    // The paper's literal enumeration rule, to reproduce its counts.
    let config = MatchConfig { mode: EnumerationMode::Strict, max_assignments: 10_000 };
    let mut rng = StdRng::seed_from_u64(70);

    let mut rows = Vec::new();
    for s in 1..=max_s {
        let mut row = vec![s.to_string()];
        for &p in primes {
            let mut total_keys = 0usize;
            let mut max_keys = 0usize;
            let mut candidates = 0usize;
            for initiator in initiators {
                if initiator.tags.len() < s {
                    continue;
                }
                let hashes = initiator.profile().vector().hashes().to_vec();
                let request = RequestVector::from_hashes(Vec::new(), hashes, s);
                let rv = request.remainder_vector(p);
                let hint = request.hint_matrix(HintConstruction::Cauchy, &mut rng);
                for vector in &vectors {
                    if !rv.fast_check(vector) {
                        continue;
                    }
                    let (_, stats) =
                        enumerate_candidate_keys_with_stats(vector, &rv, hint.as_ref(), &config);
                    if stats.assignments == 0 {
                        continue;
                    }
                    // The paper counts the raw candidate keys a user must
                    // try-decrypt (one per structurally valid assignment),
                    // before any deduplication.
                    candidates += 1;
                    total_keys += stats.assignments;
                    max_keys = max_keys.max(stats.assignments);
                }
            }
            let mean = total_keys as f64 / candidates.max(1) as f64;
            row.push(format!("{mean:.2}"));
            row.push(max_keys.to_string());
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Similarity".to_string())
        .chain(
            primes.iter().flat_map(|p| [format!("Mean keys (p={p})"), format!("Max keys (p={p})")]),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(title, &header_refs, &rows);
}

fn main() {
    let data = WeiboDataset::generate(&WeiboConfig { users: 8_000, ..WeiboConfig::default() }, 7);
    let primes = [11u64, 23];

    let six = data.users_with_tag_count(6);
    let initiators_a: Vec<&WeiboUser> = six.iter().copied().take(10).collect();
    run_case(
        "Figure 7a — candidate key-set size, users with 6 attributes",
        &initiators_a,
        &six,
        6,
        &primes,
    );

    let diverse = data.sample_users(1_000, 11);
    let initiators_b: Vec<&WeiboUser> =
        diverse.iter().copied().filter(|u| u.tags.len() >= 4).take(10).collect();
    run_case(
        "Figure 7b — candidate key-set size, diverse attribute counts",
        &initiators_b,
        &diverse,
        9,
        &primes,
    );

    println!(
        "\nShape checks (paper Fig. 7): mean key-set sizes stay in the low\n\
         single digits at every similarity level, maxima stay bounded\n\
         (paper: ≤ 7 for 6-attribute users, ≤ 12 for diverse users), and\n\
         p = 23 produces smaller sets than p = 11."
    );
}
