//! Table V — mean computation time of the asymmetric-cryptosystem basic
//! operations (1024/2048-bit modular exponentiation and multiplication)
//! on our bignum substrate, printed next to the paper's numbers.
//!
//! Regenerate with `cargo run -p msb-bench --bin table5_asym --release`
//! (or `cargo bench -p msb-bench --bench table5_asym`).

use msb_baselines::cost::OpCostTable;
use msb_bench::{fmt_ms, measured_cost_table, print_table};

fn main() {
    let measured = measured_cost_table();
    let laptop = OpCostTable::paper_laptop();
    let phone = OpCostTable::paper_phone();

    let rows = vec![
        vec![
            "1024-exp (E2)".to_string(),
            fmt_ms(measured.e2_ms),
            fmt_ms(laptop.e2_ms),
            fmt_ms(phone.e2_ms),
        ],
        vec![
            "2048-exp (E3)".to_string(),
            fmt_ms(measured.e3_ms),
            fmt_ms(laptop.e3_ms),
            fmt_ms(phone.e3_ms),
        ],
        vec![
            "1024-mul (M2)".to_string(),
            fmt_ms(measured.m2_ms),
            fmt_ms(laptop.m2_ms),
            fmt_ms(phone.m2_ms),
        ],
        vec![
            "2048-mul (M3)".to_string(),
            fmt_ms(measured.m3_ms),
            fmt_ms(laptop.m3_ms),
            fmt_ms(phone.m3_ms),
        ],
    ];
    print_table(
        "Table V — asymmetric basic operations (ms)",
        &["Operation", "Measured (this machine)", "Paper laptop", "Paper phone"],
        &rows,
    );
    let ratio = measured.e3_ms / measured.h_ms.max(1e-9);
    println!(
        "\nShape check: one 2048-bit exponentiation costs as much as ≈ {ratio:.0}\n\
         SHA-256 hashes on this machine (the paper's core efficiency argument)."
    );
}
