//! Shared swarm-scenario construction.
//!
//! The scalability bench (`fig8_swarm`), the Table VII swarm extension,
//! the `swarm` example, and the root swarm tests all execute "the same
//! scenario at different scales": node 0 initiates from a known
//! position, one node in [`MATCHING_EVERY`] owns a matching profile, the
//! rest are noise. Defining the construction once keeps those
//! same-scenario claims true by construction — and keeps the
//! differential naive-vs-indexed comparisons meaningful, since both
//! sides build byte-identical swarms.

use msb_core::app::FriendingApp;
use msb_core::protocol::{ProtocolConfig, ProtocolKind};
use msb_dataset::placement;
use msb_net::sim::{SimConfig, Simulator, SpatialMode};
use msb_profile::{Attribute, Profile, RequestProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Square meters of area per node in the uniform layout: π·50²/700 ≈ 11
/// expected neighbors at the default 50 m radio range — dense enough for
/// a giant connected component, sparse enough that floods need many
/// hops.
pub const AREA_PER_NODE: f64 = 700.0;

/// One matching user per this many nodes (~1%, mirroring Table VII's one
/// matching user per 100).
pub const MATCHING_EVERY: usize = 100;

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

/// The scenario's request: one required tag, three optional, β = 2.
pub fn lighthouse_request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("team", "lighthouse")],
        vec![attr("i", "jazz"), attr("i", "go"), attr("i", "tea")],
        2,
    )
    .expect("valid request")
}

/// A profile satisfying [`lighthouse_request`].
pub fn lighthouse_matching() -> Profile {
    Profile::from_attributes(vec![attr("team", "lighthouse"), attr("i", "jazz"), attr("i", "go")])
}

/// Per-node filler profiles that never match any request in this module.
pub fn noise_profile(i: usize) -> Profile {
    Profile::from_attributes(vec![attr("hobby", &format!("n{i}")), attr("city", &format!("c{i}"))])
}

/// Uniform positions over a constant-density square ([`AREA_PER_NODE`])
/// with slot 0 — the initiator — pinned to the center so its flood can
/// reach the whole area.
pub fn uniform_center_positions(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let side = (n as f64 * AREA_PER_NODE).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = placement::uniform(n, side, side, &mut rng);
    positions[0] = (side / 2.0, side / 2.0);
    positions
}

/// Builds a friending swarm over `positions`: node 0 (at `positions[0]`)
/// initiates `request` under Protocol 1 (p = 11, the given flood TTL);
/// every [`MATCHING_EVERY`]-th other node owns `matching`, the rest
/// `noise(i)`.
///
/// # Panics
///
/// Panics if `positions` is empty.
pub fn build_swarm(
    positions: Vec<(f64, f64)>,
    mode: SpatialMode,
    sim_seed: u64,
    ttl: u8,
    request: RequestProfile,
    matching: Profile,
    noise: impl Fn(usize) -> Profile,
) -> Simulator<FriendingApp> {
    let mut config = ProtocolConfig::new(ProtocolKind::P1, 11);
    config.ttl = ttl;
    let mut sim = Simulator::new(SimConfig { spatial: mode, ..SimConfig::default() }, sim_seed);
    let mut slots = positions.into_iter();
    let origin = slots.next().expect("a swarm needs at least the initiator");
    sim.add_node(origin, FriendingApp::initiator(noise(0), request, config.clone()));
    sim.add_nodes(slots.enumerate().map(|(i, pos)| {
        let idx = i + 1;
        let profile = if idx % MATCHING_EVERY == 0 { matching.clone() } else { noise(idx) };
        (pos, FriendingApp::participant(profile, config.clone()))
    }));
    sim
}

/// The standard scalability swarm: [`lighthouse_request`] over
/// [`uniform_center_positions`], placement seeded with
/// `sim_seed ^ n` so each size draws an independent layout.
pub fn build_uniform_swarm(
    n: usize,
    mode: SpatialMode,
    sim_seed: u64,
    ttl: u8,
) -> Simulator<FriendingApp> {
    build_swarm(
        uniform_center_positions(n, sim_seed ^ n as u64),
        mode,
        sim_seed,
        ttl,
        lighthouse_request(),
        lighthouse_matching(),
        noise_profile,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_center_pins_initiator() {
        let pos = uniform_center_positions(400, 3);
        let side = (400.0 * AREA_PER_NODE).sqrt();
        assert_eq!(pos[0], (side / 2.0, side / 2.0));
        assert_eq!(pos.len(), 400);
    }

    #[test]
    fn swarm_finds_matches_end_to_end() {
        let mut sim = build_uniform_swarm(300, SpatialMode::HexIndex, 3, 200);
        sim.start();
        sim.run();
        let matches = sim.app(msb_net::sim::NodeId::new(0)).matches();
        assert!(!matches.is_empty(), "the scenario must produce matches");
        // Matching slots are exactly the MATCHING_EVERY multiples.
        assert!(matches.iter().all(|m| (m.responder as usize).is_multiple_of(MATCHING_EVERY)));
    }
}
