//! Shared swarm-scenario construction.
//!
//! The scalability benches (`fig8_swarm`, `fig9_churn`), the Table VII
//! swarm extension, the `swarm` example, and the root swarm/churn tests
//! all execute "the same scenario at different scales": node 0
//! initiates from a known position, one node in [`MATCHING_EVERY`] owns
//! a matching profile, the rest are noise. Defining the construction
//! once keeps those same-scenario claims true by construction — and
//! keeps the differential comparisons (naive vs indexed spatial mode,
//! heap vs calendar scheduler) meaningful, since all sides build
//! byte-identical swarms.
//!
//! Two scenario families live here:
//!
//! * the **static swarm** ([`build_swarm`] / [`build_uniform_swarm`]) —
//!   one flood over a connected constant-density area;
//! * the **churn swarm** ([`ChurnSpec`], [`build_churn_swarm`],
//!   [`drive_churn`]) — initially-partitioned islands
//!   ([`msb_dataset::placement::islands`]) under [`RandomWaypoint`]
//!   mobility, with periodic re-flooding carrying the request across
//!   the gaps (knobs documented in `docs/SIM.md`).

use msb_core::app::{FriendingApp, RefloodPolicy};
use msb_core::protocol::{ProtocolConfig, ProtocolKind};
use msb_dataset::placement;
use msb_net::mobility::{Bounds, RandomWaypoint};
use msb_net::shard::ShardedSimulator;
use msb_net::sim::{DeliveryMode, SchedulerMode, SimConfig, SimDriver, Simulator, SpatialMode};
use msb_profile::{Attribute, Profile, RequestProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Square meters of area per node in the uniform layout: π·50²/700 ≈ 11
/// expected neighbors at the default 50 m radio range — dense enough for
/// a giant connected component, sparse enough that floods need many
/// hops.
pub const AREA_PER_NODE: f64 = 700.0;

/// One matching user per this many nodes (~1%, mirroring Table VII's one
/// matching user per 100).
pub const MATCHING_EVERY: usize = 100;

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

/// The scenario's request: one required tag, three optional, β = 2.
pub fn lighthouse_request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("team", "lighthouse")],
        vec![attr("i", "jazz"), attr("i", "go"), attr("i", "tea")],
        2,
    )
    .expect("valid request")
}

/// A profile satisfying [`lighthouse_request`].
pub fn lighthouse_matching() -> Profile {
    Profile::from_attributes(vec![attr("team", "lighthouse"), attr("i", "jazz"), attr("i", "go")])
}

/// Per-node filler profiles that never match any request in this module.
pub fn noise_profile(i: usize) -> Profile {
    Profile::from_attributes(vec![attr("hobby", &format!("n{i}")), attr("city", &format!("c{i}"))])
}

/// Uniform positions over a constant-density square ([`AREA_PER_NODE`])
/// with slot 0 — the initiator — pinned to the center so its flood can
/// reach the whole area.
pub fn uniform_center_positions(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let side = (n as f64 * AREA_PER_NODE).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = placement::uniform(n, side, side, &mut rng);
    positions[0] = (side / 2.0, side / 2.0);
    positions
}

/// Everything that parameterizes a swarm beyond its positions and
/// profiles: the simulator config (spatial mode, scheduler, delivery,
/// batching), seeds, flood TTL, request validity, and the optional
/// re-flood policy. One struct so every scenario family threads the
/// same knobs through the one builder.
#[derive(Debug, Clone)]
pub struct SwarmParams {
    /// Simulator configuration (engine switches included).
    pub sim: SimConfig,
    /// Seed of the simulator's shared RNG.
    pub sim_seed: u64,
    /// Flood TTL carried by the request.
    pub ttl: u8,
    /// Request validity override in microseconds (`None` keeps the
    /// [`ProtocolConfig`] default of 60 s). Re-flooding stops at this
    /// deadline, so churn scenarios set it to their duration.
    pub validity_us: Option<u64>,
    /// Attach periodic re-flooding to every node.
    pub reflood: Option<RefloodPolicy>,
}

impl SwarmParams {
    /// Defaults: default [`SimConfig`], no validity override, no
    /// re-flooding.
    pub fn new(sim_seed: u64, ttl: u8) -> Self {
        SwarmParams { sim: SimConfig::default(), sim_seed, ttl, validity_us: None, reflood: None }
    }

    /// Selects the spatial engine (the fig8 naive-vs-indexed axis).
    pub fn with_spatial(mut self, mode: SpatialMode) -> Self {
        self.sim.spatial = mode;
        self
    }
}

/// The per-node placement + application list of the standard swarm
/// over `positions`: slot 0 is the initiator of `request` under
/// Protocol 1 (p = 11); every [`MATCHING_EVERY`]-th other node owns
/// `matching`, the rest `noise(i)`. Both engine builders feed from
/// this one list, so a sharded swarm is byte-identical to its oracle
/// by construction.
///
/// # Panics
///
/// Panics if `positions` is empty.
fn swarm_apps(
    positions: Vec<(f64, f64)>,
    params: &SwarmParams,
    request: RequestProfile,
    matching: Profile,
    noise: impl Fn(usize) -> Profile,
) -> Vec<((f64, f64), FriendingApp)> {
    assert!(!positions.is_empty(), "a swarm needs at least the initiator");
    let mut config = ProtocolConfig::new(ProtocolKind::P1, 11);
    config.ttl = params.ttl;
    if let Some(validity_us) = params.validity_us {
        config.validity_us = validity_us;
    }
    let with_reflood = |app: FriendingApp| match params.reflood {
        Some(policy) => app.with_reflood(policy),
        None => app,
    };
    positions
        .into_iter()
        .enumerate()
        .map(|(idx, pos)| {
            let app = if idx == 0 {
                FriendingApp::initiator(noise(0), request.clone(), config.clone())
            } else if idx % MATCHING_EVERY == 0 {
                FriendingApp::participant(matching.clone(), config.clone())
            } else {
                FriendingApp::participant(noise(idx), config.clone())
            };
            (pos, with_reflood(app))
        })
        .collect()
}

/// Builds a friending swarm over `positions` on the single-threaded
/// engine; see [`swarm_apps`] for the scenario shape.
///
/// # Panics
///
/// Panics if `positions` is empty.
pub fn build_swarm(
    positions: Vec<(f64, f64)>,
    params: &SwarmParams,
    request: RequestProfile,
    matching: Profile,
    noise: impl Fn(usize) -> Profile,
) -> Simulator<FriendingApp> {
    let mut sim = Simulator::new(params.sim, params.sim_seed);
    sim.add_nodes(swarm_apps(positions, params, request, matching, noise));
    sim
}

/// Builds the same friending swarm on the sharded engine
/// ([`params.sim.shards`](SimConfig::shards) worker cores) — the exact
/// node list [`build_swarm`] would build, so the two engines' outcomes
/// are directly comparable.
///
/// # Panics
///
/// Panics if `positions` is empty.
pub fn build_swarm_sharded(
    positions: Vec<(f64, f64)>,
    params: &SwarmParams,
    request: RequestProfile,
    matching: Profile,
    noise: impl Fn(usize) -> Profile,
) -> ShardedSimulator<FriendingApp> {
    let mut sim = ShardedSimulator::new(params.sim, params.sim_seed);
    sim.add_nodes(swarm_apps(positions, params, request, matching, noise));
    sim
}

/// The standard scalability swarm: [`lighthouse_request`] over
/// [`uniform_center_positions`], placement seeded with
/// `sim_seed ^ n` so each size draws an independent layout.
pub fn build_uniform_swarm(
    n: usize,
    mode: SpatialMode,
    sim_seed: u64,
    ttl: u8,
) -> Simulator<FriendingApp> {
    build_swarm(
        uniform_center_positions(n, sim_seed ^ n as u64),
        &SwarmParams::new(sim_seed, ttl).with_spatial(mode),
        lighthouse_request(),
        lighthouse_matching(),
        noise_profile,
    )
}

/// Parameters of the churn scenario family: `nodes` spread over
/// initially-partitioned islands, roaming under random-waypoint
/// mobility while every node re-floods the requests it carries. The
/// [`ChurnSpec::standard`] values are the `fig9_churn` /
/// `churn_smoke` scenario; `docs/SIM.md` documents each knob.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Swarm size.
    pub nodes: usize,
    /// Island count. Deliberately coprime with [`MATCHING_EVERY`] in
    /// the standard spec so matching users land on *every* island
    /// (round-robin assignment) and cross-island matches exist.
    pub islands: usize,
    /// Rim-to-rim island separation in meters — wider than the radio
    /// range, so the initial connectivity graph is partitioned.
    pub gap_m: f64,
    /// Scenario length in simulated seconds; also the request
    /// validity, so re-flooding stops exactly at the horizon.
    pub duration_s: u64,
    /// Mobility tick: the event queue runs to the tick boundary, then
    /// every position updates ([`RandomWaypoint::advance`] +
    /// [`Simulator::set_positions`]).
    pub tick_s: f64,
    /// The re-flood policy every node runs.
    pub reflood: RefloodPolicy,
    /// Waypoint speed range in m/s.
    pub speed_m_s: (f64, f64),
    /// Waypoint pause in seconds.
    pub pause_s: f64,
    /// Master seed (placement, mobility, and simulator RNGs derive
    /// from it).
    pub seed: u64,
    /// Event engine under test — the fig9 heap-vs-calendar axis.
    pub scheduler: SchedulerMode,
    /// Message representation ([`SimConfig::delivery`]).
    pub delivery: DeliveryMode,
    /// Worker cores for the sharded engine ([`SimConfig::shards`]) —
    /// the fig10 scaling axis. Ignored by [`build_churn_swarm`]; used
    /// by [`build_churn_swarm_sharded`].
    pub shards: usize,
    /// Hex tiles per shard-partition region side
    /// ([`SimConfig::region_tiles`]): larger regions give each shard a
    /// contiguous neighborhood, shrinking its halo fringe relative to
    /// its interior. Speed/memory only — outcomes are bit-identical at
    /// any value.
    pub region_tiles: usize,
}

impl ChurnSpec {
    /// The standard churn scenario at `nodes` size: 3 islands 120 m
    /// apart, 40 simulated seconds, vehicular speeds (8–25 m/s),
    /// re-flood every 5 s capped to the 8 nearest neighbors.
    pub fn standard(nodes: usize, scheduler: SchedulerMode) -> Self {
        ChurnSpec {
            nodes,
            islands: 3,
            gap_m: 120.0,
            duration_s: 40,
            tick_s: 1.0,
            reflood: RefloodPolicy::every(5_000_000).with_fanout_cap(8),
            speed_m_s: (8.0, 25.0),
            pause_s: 1.0,
            seed: 0xF169,
            scheduler,
            delivery: DeliveryMode::InMemory,
            shards: 1,
            region_tiles: 4,
        }
    }

    /// Selects the sharded engine's worker-core count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the scenario duration (and with it the request
    /// validity) — short smokes at large sizes set this down from the
    /// standard 40 s.
    pub fn with_duration(mut self, duration_s: u64) -> Self {
        self.duration_s = duration_s;
        self
    }
}

/// The shared churn construction both engine builders feed from: the
/// island placement, the mobility model seeded off it, and the swarm
/// parameters (including [`ChurnSpec::shards`], which only the
/// sharded engine reads).
fn churn_setup(spec: &ChurnSpec) -> (Vec<(f64, f64)>, RandomWaypoint, SwarmParams) {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ spec.nodes as u64);
    let (positions, layout) =
        placement::islands(spec.nodes, spec.islands, AREA_PER_NODE, spec.gap_m, &mut rng);
    let mobility = RandomWaypoint::from_positions(
        positions.clone(),
        Bounds { width: layout.side, height: layout.side },
        spec.speed_m_s.0,
        spec.speed_m_s.1,
        spec.pause_s,
        spec.seed ^ 0x5eed,
    );
    let params = SwarmParams {
        sim: SimConfig {
            scheduler: spec.scheduler,
            delivery: spec.delivery,
            shards: spec.shards,
            region_tiles: spec.region_tiles,
            ..SimConfig::default()
        },
        sim_seed: spec.seed,
        ttl: 255,
        validity_us: Some(spec.duration_s * 1_000_000),
        reflood: Some(spec.reflood),
    };
    (positions, mobility, params)
}

/// Builds the churn swarm and its mobility model, both starting from
/// the same island placement.
pub fn build_churn_swarm(spec: &ChurnSpec) -> (Simulator<FriendingApp>, RandomWaypoint) {
    let (positions, mobility, params) = churn_setup(spec);
    let sim =
        build_swarm(positions, &params, lighthouse_request(), lighthouse_matching(), noise_profile);
    (sim, mobility)
}

/// Builds the identical churn swarm on the sharded engine with
/// [`ChurnSpec::shards`] worker cores. Same placement, same mobility,
/// same apps — drive it with the same [`drive_churn`] and the outcome
/// is bit-identical to [`build_churn_swarm`]'s (the shard differential
/// suites and `fig10_shards` assert it).
pub fn build_churn_swarm_sharded(
    spec: &ChurnSpec,
) -> (ShardedSimulator<FriendingApp>, RandomWaypoint) {
    let (positions, mobility, params) = churn_setup(spec);
    let sim = build_swarm_sharded(
        positions,
        &params,
        lighthouse_request(),
        lighthouse_matching(),
        noise_profile,
    );
    (sim, mobility)
}

/// Drives a churn run to completion on either engine: alternates event
/// processing with mobility ticks for the scenario duration, then
/// drains the remaining events (replies in flight; re-flood timers
/// stop at the validity horizon). One reused position buffer serves
/// every tick — no per-tick allocation even at 50k nodes.
pub fn drive_churn(sim: &mut impl SimDriver, mobility: &mut RandomWaypoint, spec: &ChurnSpec) {
    sim.start();
    let ticks = (spec.duration_s as f64 / spec.tick_s).ceil() as u64;
    let mut buf = Vec::new();
    for tick in 1..=ticks {
        sim.run_until((tick as f64 * spec.tick_s * 1e6) as u64);
        mobility.advance_positions_into(spec.tick_s, &mut buf);
        sim.set_positions(&buf);
    }
    sim.run();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_center_pins_initiator() {
        let pos = uniform_center_positions(400, 3);
        let side = (400.0 * AREA_PER_NODE).sqrt();
        assert_eq!(pos[0], (side / 2.0, side / 2.0));
        assert_eq!(pos.len(), 400);
    }

    #[test]
    fn swarm_finds_matches_end_to_end() {
        let mut sim = build_uniform_swarm(300, SpatialMode::HexIndex, 3, 200);
        sim.start();
        sim.run();
        let matches = sim.app(msb_net::sim::NodeId::new(0)).matches();
        assert!(!matches.is_empty(), "the scenario must produce matches");
        // Matching slots are exactly the MATCHING_EVERY multiples.
        assert!(matches.iter().all(|m| (m.responder as usize).is_multiple_of(MATCHING_EVERY)));
    }

    #[test]
    fn churn_scenario_bridges_islands_through_mobility() {
        use msb_core::app::SwarmSummary;
        // Small but real: 600 nodes on 3 islands. The initial flood can
        // only reach island 0 (the gap exceeds the radio range);
        // every cross-island match is re-flooding's doing.
        let spec = ChurnSpec::standard(600, SchedulerMode::Calendar);
        let (mut sim, mut mobility) = build_churn_swarm(&spec);
        drive_churn(&mut sim, &mut mobility, &spec);
        let summary = SwarmSummary::collect(&sim);
        assert!(summary.refloods > 0, "re-flooding must fire: {summary:?}");
        let matches = sim.app(msb_net::sim::NodeId::new(0)).matches();
        assert!(!matches.is_empty(), "churn swarm must confirm matches: {summary:?}");
        let cross_island =
            matches.iter().filter(|m| !(m.responder as usize).is_multiple_of(spec.islands)).count();
        assert!(cross_island > 0, "mobility + re-flooding must reach other islands: {matches:?}");
        assert!(sim.metrics().peak_queue_len > 0);
    }

    #[test]
    fn sharded_churn_swarm_is_bit_identical_to_the_oracle() {
        use msb_core::app::SwarmSummary;
        let spec = ChurnSpec::standard(600, SchedulerMode::Calendar).with_shards(4);
        let (mut oracle, mut mobility) = build_churn_swarm(&spec);
        drive_churn(&mut oracle, &mut mobility, &spec);
        let (mut sharded, mut mobility) = build_churn_swarm_sharded(&spec);
        drive_churn(&mut sharded, &mut mobility, &spec);
        assert_eq!(sharded.now_us(), oracle.now_us(), "final clocks diverged");
        // peak_queue_len is per-queue depth, legitimately shard-count
        // dependent — everything else must agree exactly.
        assert_eq!(
            sharded.metrics().without_queue_pressure(),
            oracle.metrics().without_queue_pressure(),
            "metrics diverged"
        );
        let summary = SwarmSummary::collect_sharded(&sharded);
        assert_eq!(summary, SwarmSummary::collect(&oracle), "app outcomes diverged");
        assert!(summary.matches > 0, "scenario must still produce matches");
        assert!(
            sharded.shard_node_counts().iter().filter(|&&c| c > 0).count() > 1,
            "the island layout must actually span multiple shards: {:?}",
            sharded.shard_node_counts()
        );
    }
}
