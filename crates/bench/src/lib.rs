//! Shared harness utilities for the table/figure binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md §4 for the index); the
//! microbenchmark tables additionally have Criterion benches under
//! `benches/`. This library holds the common pieces: wall-clock
//! measurement, table rendering, and a measured per-operation cost table
//! that mirrors the paper's Tables IV–V.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod swarm;

use msb_baselines::cost::OpCostTable;
use std::time::Instant;

/// Mean/min/max and nearest-rank percentiles of a timed operation, in
/// milliseconds. The percentile ranks are the workspace's shared
/// definition ([`msb_telemetry::nearest_rank`]), so a bench row's p99
/// and a relay histogram's p99 mean the same thing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeStats {
    /// Mean per-iteration time.
    pub mean_ms: f64,
    /// Fastest iteration.
    pub min_ms: f64,
    /// Slowest iteration.
    pub max_ms: f64,
    /// Median iteration.
    pub p50_ms: f64,
    /// 95th-percentile iteration.
    pub p95_ms: f64,
    /// 99th-percentile iteration.
    pub p99_ms: f64,
}

/// Times `f` over `iters` iterations after `warmup` unmeasured ones.
pub fn time_stats<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> TimeStats {
    assert!(iters > 0, "need at least one iteration");
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    let mut total = 0.0;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        total += ms;
        samples.push(ms);
    }
    samples.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let rank = msb_telemetry::nearest_rank(samples.len(), p).expect("iters > 0");
        samples[rank - 1]
    };
    TimeStats {
        mean_ms: total / iters as f64,
        min_ms: samples[0],
        max_ms: samples[iters - 1],
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
    }
}

/// Times one execution of `f` and returns (result, elapsed ms).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Formats a millisecond value the way the paper prints it
/// (scientific for small values).
pub fn fmt_ms(ms: f64) -> String {
    if ms == 0.0 {
        "0".to_string()
    } else if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 0.1 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.1e}")
    }
}

/// Renders an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            let pad = widths.get(i).copied().unwrap_or(c.len());
            s.push_str(&format!("{:<w$} | ", c, w = pad));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row.clone());
    }
}

/// Measures this machine's per-operation costs (the "measured" columns of
/// Tables IV/V). Asymmetric measurements use a few iterations only — they
/// are milliseconds each.
pub fn measured_cost_table() -> OpCostTable {
    use msb_bignum::modexp::Montgomery;
    use msb_bignum::prime::random_bits;
    use msb_bignum::{BigUint, PrimeField};
    use msb_crypto::aes::{Aes256, BlockCipher};
    use msb_crypto::sha256::Sha256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let attr = b"interest:basketball";
    let h = Sha256::digest(attr);
    let h_big = BigUint::from_be_bytes(&h);
    let field = PrimeField::goldilocks448();
    let a = field.element(BigUint::from_be_bytes(&[0x5au8; 32]));
    let b = field.element(BigUint::from_be_bytes(&[0xc3u8; 32]));

    let h_ms = time_stats(100, 2_000, || {
        std::hint::black_box(Sha256::digest(attr));
    })
    .mean_ms;
    let modp_ms = time_stats(100, 2_000, || {
        std::hint::black_box(h_big.rem_u64(11));
    })
    .mean_ms;
    let cipher = Aes256::new(&h);
    let mut block = [0u8; 16];
    let aes_enc_ms = time_stats(100, 2_000, || {
        cipher.encrypt_block(&mut block);
        std::hint::black_box(&block);
    })
    .mean_ms;
    let aes_dec_ms = time_stats(100, 2_000, || {
        cipher.decrypt_block(&mut block);
        std::hint::black_box(&block);
    })
    .mean_ms;
    let mul256_ms = time_stats(100, 2_000, || {
        std::hint::black_box(field.mul(&a, &b));
    })
    .mean_ms;
    let cmp256_ms = time_stats(100, 2_000, || {
        std::hint::black_box(a.cmp(&b));
    })
    .mean_ms;

    // Asymmetric ops on random odd moduli of the right widths.
    let mut asym = |bits: usize| -> (f64, f64) {
        let modulus = {
            let mut m = random_bits(&mut rng, bits);
            if m.is_even() {
                m = &m + &BigUint::one();
            }
            m
        };
        let base = random_bits(&mut rng, bits - 1);
        let exp = random_bits(&mut rng, bits - 1);
        let mont = Montgomery::new(&modulus);
        let exp_ms = time_stats(1, 5, || {
            std::hint::black_box(mont.pow_mod(&base, &exp));
        })
        .mean_ms;
        let mul_ms = time_stats(5, 50, || {
            std::hint::black_box(base.mul_mod(&exp, &modulus));
        })
        .mean_ms;
        (exp_ms, mul_ms)
    };
    let (e2_ms, m2_ms) = asym(1024);
    let (e3_ms, m3_ms) = asym(2048);

    OpCostTable {
        e2_ms,
        e3_ms,
        m2_ms,
        m3_ms,
        h_ms,
        modp_ms,
        aes_enc_ms,
        aes_dec_ms,
        mul256_ms,
        cmp256_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_stats_ordering() {
        let s = time_stats(0, 10, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(s.min_ms <= s.mean_ms && s.mean_ms <= s.max_ms);
        assert!(s.min_ms <= s.p50_ms && s.p50_ms <= s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
        assert!(s.min_ms >= 0.0);
    }

    #[test]
    fn fmt_ms_ranges() {
        assert_eq!(fmt_ms(0.0), "0");
        assert_eq!(fmt_ms(150.0), "150");
        assert_eq!(fmt_ms(0.5), "0.50");
        assert!(fmt_ms(0.00039).contains('e'));
    }

    #[test]
    fn time_once_returns_value() {
        let (v, ms) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
