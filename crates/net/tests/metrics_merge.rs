//! Algebra of [`Metrics::merge`] — the operation the sharded engine's
//! shard-count independence rests on.
//!
//! `ShardedSimulator::metrics()` folds per-shard metrics with `merge`
//! in ascending shard order. For the fold to be shard-count
//! independent the operation must be a commutative monoid: associative,
//! commutative, with `Metrics::default()` as identity. Every counter
//! merges by sum; `peak_queue_len` merges by max (per-queue depth —
//! masked out of cross-shard-count comparisons via
//! [`Metrics::without_queue_pressure`]). These properties are pinned
//! here so a future field added with, say, an average or a last-wins
//! merge breaks loudly.

use msb_net::sim::Metrics;
use proptest::prelude::*;

/// Expands one `u64` seed into a fully-populated arbitrary `Metrics`
/// (the vendored proptest shim has no struct strategies; splitmix64
/// expansion stands in).
fn arb_metrics(seed: u64) -> Metrics {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        // Bounded so repeated sums cannot overflow u64.
        (z ^ (z >> 31)) % (1 << 40)
    };
    Metrics {
        broadcasts: next(),
        unicasts: next(),
        unicast_hops: next(),
        delivered: next(),
        lost: next(),
        unroutable: next(),
        payload_bytes: next(),
        neighbor_queries: next(),
        cells_scanned: next(),
        events_scheduled: next(),
        peak_queue_len: next(),
    }
}

proptest! {
    /// `merge` is associative: any shard-tree shape folds to the same
    /// total.
    #[test]
    fn merge_is_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (arb_metrics(a), arb_metrics(b), arb_metrics(c));
        prop_assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
    }

    /// `merge` is commutative: shard enumeration order is irrelevant.
    #[test]
    fn merge_is_commutative(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (arb_metrics(a), arb_metrics(b));
        prop_assert_eq!(a.merge(b), b.merge(a));
    }

    /// `Metrics::default()` is the identity — an idle shard contributes
    /// nothing.
    #[test]
    fn default_is_identity(a in any::<u64>()) {
        let a = arb_metrics(a);
        prop_assert_eq!(a.merge(Metrics::default()), a);
        prop_assert_eq!(Metrics::default().merge(a), a);
    }

    /// Every counter sums; `peak_queue_len` maxes. A sum-merged peak
    /// would silently overstate queue pressure at higher shard counts.
    #[test]
    fn counters_sum_and_peak_maxes(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (arb_metrics(a), arb_metrics(b));
        let m = a.merge(b);
        prop_assert_eq!(m.broadcasts, a.broadcasts + b.broadcasts);
        prop_assert_eq!(m.unicasts, a.unicasts + b.unicasts);
        prop_assert_eq!(m.unicast_hops, a.unicast_hops + b.unicast_hops);
        prop_assert_eq!(m.delivered, a.delivered + b.delivered);
        prop_assert_eq!(m.lost, a.lost + b.lost);
        prop_assert_eq!(m.unroutable, a.unroutable + b.unroutable);
        prop_assert_eq!(m.payload_bytes, a.payload_bytes + b.payload_bytes);
        prop_assert_eq!(m.neighbor_queries, a.neighbor_queries + b.neighbor_queries);
        prop_assert_eq!(m.cells_scanned, a.cells_scanned + b.cells_scanned);
        prop_assert_eq!(m.events_scheduled, a.events_scheduled + b.events_scheduled);
        prop_assert_eq!(m.peak_queue_len, a.peak_queue_len.max(b.peak_queue_len));
    }

    /// The mask zeroes exactly the non-mergeable observable and is
    /// itself merge-compatible: masking then merging equals merging
    /// then masking on every summed field.
    #[test]
    fn queue_pressure_mask_commutes_with_merge(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (arb_metrics(a), arb_metrics(b));
        let masked_then_merged = a.without_queue_pressure().merge(b.without_queue_pressure());
        let merged_then_masked = a.merge(b).without_queue_pressure();
        prop_assert_eq!(masked_then_merged, merged_then_masked);
        prop_assert_eq!(merged_then_masked.peak_queue_len, 0);
        // Nothing else is touched by the mask.
        let unmasked = a.merge(b);
        prop_assert_eq!(
            Metrics { peak_queue_len: unmasked.peak_queue_len, ..merged_then_masked },
            unmasked
        );
    }
}
