//! Differential oracle: the calendar-queue scheduler against the
//! binary heap.
//!
//! The event engine's contract is *bit identity* (see `docs/SIM.md`):
//! with the same inputs, [`SchedulerMode::Calendar`] and
//! [`SchedulerMode::BinaryHeap`] must pop the same events at the same
//! timestamps in the same content-key `(src, emit)` tie order, re-arm
//! recurring entries identically, and report the same
//! `events_scheduled` / `peak_queue_len` counters. These tests pin the contract at two
//! levels, mirroring `spatial_differential.rs`:
//!
//! 1. the raw [`Scheduler`] API, property-tested over random event
//!    streams — same-instant ties, far-future deadlines (beyond the
//!    calendar's ring window), recurring entries, and mid-drain
//!    injection;
//! 2. full-simulation traces under mobility, loss, recurring timers,
//!    fan-out-capped broadcasts, and mid-run injection.
//!
//! The application level (`FriendingApp` with re-flooding, across
//! protocols × batching × delivery modes) is pinned by the root
//! `tests/churn_smoke.rs`.

use msb_net::mobility::{Bounds, RandomWaypoint};
use msb_net::sched::{AnyScheduler, EventKey, Recurrence, Scheduler, SchedulerMode};
use msb_net::sim::{Metrics, NodeApp, NodeCtx, NodeId, SimConfig, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted action against a scheduler.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a one-shot at `now + delay`.
    Schedule { delay: u64 },
    /// Schedule a recurring entry at `now + delay`, firing every
    /// `period` until `now + delay + horizon`.
    Recurring { delay: u64, period: u64, horizon: u64 },
    /// Pop one event (mid-drain: later schedules are relative to the
    /// popped timestamp, i.e. injection while the queue is hot).
    Pop,
}

/// Decodes one raw `u64` draw into an [`Op`] (the vendored proptest
/// shim has no combinators, so the mixing happens here via splitmix64
/// expansion). Five of twelve draws are pops; schedules mix
/// adversarial fixed delays — exact ties, bucket boundaries, the
/// radio/computation horizon, far-future deadlines beyond the calendar
/// ring (~33 ms) — with uniform ones, plus bounded recurring entries.
fn decode_op(raw: u64) -> Op {
    let mut state = raw;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let (sel, a, b, c) = (next(), next(), next(), next());
    match sel % 12 {
        0 => Op::Schedule { delay: 0 },
        1 => Op::Schedule { delay: 1 },
        2 => Op::Schedule { delay: 511 + a % 2 }, // bucket-boundary straddle
        3 => Op::Schedule { delay: 7_000 },
        4 => Op::Schedule { delay: 3_000_000 + a % 100_000 },
        5 => Op::Schedule { delay: a % 50_000 },
        6 => {
            Op::Recurring { delay: 1 + a % 20_000, period: 1 + b % 600_000, horizon: c % 2_000_000 }
        }
        _ => Op::Pop,
    }
}

/// Runs a script and returns every observable: the popped `(at, item)`
/// log and the final counters.
fn drive(mode: SchedulerMode, ops: &[Op]) -> (Vec<(u64, u32)>, usize, u64, usize) {
    let mut s: AnyScheduler<u32> = AnyScheduler::for_mode(mode);
    let mut log = Vec::new();
    let mut now = 0u64;
    for (i, op) in ops.iter().enumerate() {
        // Content keys the way the simulator mints them: a handful of
        // source streams, each with strictly increasing emission
        // counters (`i` is unique across the script).
        let key = EventKey::new((i % 3) as u32, i as u64);
        match *op {
            Op::Schedule { delay } => s.schedule(now + delay, key, i as u32),
            Op::Recurring { delay, period, horizon } => {
                let first = now + delay;
                s.schedule_recurring(
                    first,
                    key,
                    Recurrence::new(period, first + horizon),
                    i as u32,
                );
            }
            Op::Pop => {
                if let Some((at, item)) = s.pop() {
                    assert!(at >= now, "time went backwards");
                    now = at;
                    log.push((at, item));
                }
            }
        }
    }
    while let Some(ev) = s.pop() {
        log.push(ev);
    }
    (log, s.len(), s.events_scheduled(), s.peak_len())
}

proptest! {
    /// Heap and calendar pop identical streams — ties, far futures,
    /// recurrence and mid-drain injection included — and agree on every
    /// counter.
    #[test]
    fn schedulers_bit_identical_on_random_streams(
        raw in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let ops: Vec<Op> = raw.into_iter().map(decode_op).collect();
        let heap = drive(SchedulerMode::BinaryHeap, &ops);
        let calendar = drive(SchedulerMode::Calendar, &ops);
        prop_assert_eq!(&heap.0, &calendar.0, "pop streams diverged");
        prop_assert_eq!(heap.1, calendar.1, "residual lengths diverged");
        prop_assert_eq!(heap.2, calendar.2, "events_scheduled diverged");
        prop_assert_eq!(heap.3, calendar.3, "peak_len diverged");
        prop_assert_eq!(heap.1, 0, "recurrences are bounded, the queue must drain");
        // The popped log is globally ordered.
        prop_assert!(heap.0.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    /// Same-instant events pop in ascending content-key `(src, emit)`
    /// order in both engines — independent of insertion order, whatever
    /// bucket boundaries the instant straddles.
    #[test]
    fn same_instant_events_pop_in_key_order(
        at in 0u64..5_000_000,
        n in 2usize..40,
        shuffle_seed in any::<u64>(),
    ) {
        // Build n distinct keys across a few source streams, then
        // insert them in a seed-driven shuffled order.
        let mut keys: Vec<EventKey> =
            (0..n).map(|i| EventKey::new((i % 4) as u32, (i / 4) as u64)).collect();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..keys.len()).rev() {
            keys.swap(i, rng.gen_range(0..=i));
        }
        let mut expect = keys.clone();
        expect.sort();
        for mode in [SchedulerMode::BinaryHeap, SchedulerMode::Calendar] {
            let mut s: AnyScheduler<EventKey> = AnyScheduler::for_mode(mode);
            for &key in &keys {
                s.schedule(at, key, key);
            }
            let order: Vec<EventKey> =
                std::iter::from_fn(|| s.pop().map(|(_, k)| k)).collect();
            prop_assert_eq!(&order, &expect, "mode {:?} at {}", mode, at);
        }
    }
}

/// One delivery record: (now_us, from, payload).
type TraceEntry = (u64, NodeId, Vec<u8>);

/// A gossiping app exercising every scheduler-visible feature: plain
/// broadcasts, fan-out-capped broadcasts, unicasts, one-shot timers,
/// and recurring timers (periodic re-broadcast — the re-flood shape).
struct ChurnTraceApp {
    trace: Vec<TraceEntry>,
    timer_log: Vec<(u64, u64)>,
}

impl NodeApp for ChurnTraceApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let idx = ctx.node_id().index();
        if idx.is_multiple_of(5) {
            ctx.broadcast(vec![idx as u8]);
            // Periodic re-broadcast of the seed, bounded like a
            // request expiry bounds a re-flood.
            ctx.set_recurring_timer(30_000, 30_000, 110_000, idx as u64);
        }
        if idx.is_multiple_of(7) {
            ctx.set_timer(45_000, 1_000 + idx as u64);
        }
    }
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, payload: &msb_net::Payload) {
        let payload = payload.as_bytes().expect("test payloads are bytes");
        self.trace.push((ctx.now_us(), from, payload.to_vec()));
        if payload.len() < 3 {
            let mut p = payload.to_vec();
            p.push(ctx.node_id().index() as u8);
            // Gossip onward to a bounded neighbor set.
            ctx.broadcast_k_nearest(4, p);
        } else if payload.len() == 3 {
            let origin = NodeId::new(payload[0] as u32);
            if origin != ctx.node_id() {
                ctx.unicast(origin, payload.to_vec());
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        self.timer_log.push((ctx.now_us(), token));
        if token < 1_000 {
            // Recurring firing: re-broadcast the seed (dup-suppression
            // is the receivers' problem; here everything re-gossips).
            ctx.broadcast_k_nearest(3, vec![token as u8]);
        }
    }
}

/// Per-node delivery traces, per-node timer logs, metrics, final clock.
type TraceOutcome = (Vec<Vec<TraceEntry>>, Vec<Vec<(u64, u64)>>, Metrics, u64);

/// Runs the churn gossip swarm with mobility ticks between phases and
/// mid-run injection, returning everything observable.
fn run_trace(mode: SchedulerMode, seed: u64, n: usize) -> TraceOutcome {
    let config = SimConfig {
        loss_rate: 0.05,
        scheduler: mode,
        batch_delivery: seed.is_multiple_of(2), // sweep batching too
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(config, seed);
    let mut mobility = RandomWaypoint::new(
        n,
        Bounds { width: 220.0, height: 220.0 },
        1.0,
        8.0,
        0.2,
        seed ^ 0x5eed,
    );
    let placed: Vec<((f64, f64), ChurnTraceApp)> = mobility
        .positions()
        .into_iter()
        .map(|p| (p, ChurnTraceApp { trace: Vec::new(), timer_log: Vec::new() }))
        .collect();
    sim.add_nodes(placed);
    sim.start();
    let mut buf = Vec::new();
    for phase in 0..3u64 {
        sim.run_until((phase + 1) * 40_000);
        mobility.advance(5.0);
        mobility.positions_into(&mut buf);
        sim.set_positions(&buf);
        let poke = NodeId::new((phase as u32 * 7) % n as u32);
        sim.inject(poke, poke, vec![poke.index() as u8]);
    }
    sim.run();
    let traces: Vec<Vec<TraceEntry>> =
        (0..n).map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace)).collect();
    let timers: Vec<Vec<(u64, u64)>> =
        (0..n).map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).timer_log)).collect();
    (traces, timers, *sim.metrics(), sim.now_us())
}

/// Full-simulation differential: identical traces, timer logs, metrics
/// (no masking — every field, including the new queue counters, must
/// agree), and final clock across scheduler modes, under loss, jitter,
/// mobility, recurring timers, capped broadcasts, and injection.
#[test]
fn simulation_trace_bit_identical_across_scheduler_modes() {
    for seed in [1u64, 0xBEEF, 42424242, 0xD00D] {
        let (t_cal, tm_cal, m_cal, clock_cal) = run_trace(SchedulerMode::Calendar, seed, 24);
        let (t_heap, tm_heap, m_heap, clock_heap) = run_trace(SchedulerMode::BinaryHeap, seed, 24);
        assert_eq!(t_cal, t_heap, "seed {seed}: delivery traces diverged");
        assert_eq!(tm_cal, tm_heap, "seed {seed}: timer logs diverged");
        assert_eq!(clock_cal, clock_heap, "seed {seed}: final clock diverged");
        assert_eq!(m_cal, m_heap, "seed {seed}: metrics diverged");
        assert!(m_cal.events_scheduled > 0, "queue pressure must be observable");
        assert!(
            m_cal.peak_queue_len > 0 && m_cal.peak_queue_len <= m_cal.events_scheduled,
            "peak depth is bounded by total events: {m_cal:?}"
        );
        assert!(
            tm_cal.iter().flatten().any(|&(_, token)| token < 1_000),
            "seed {seed}: recurring timers must actually fire"
        );
    }
}

/// The calendar engine survives a degenerate topology where every
/// event collapses onto few instants (mass ties) while nodes also
/// schedule far-future recurrences — the bucket ring's worst cases.
#[test]
fn tie_heavy_and_sparse_horizons_agree() {
    struct Spiky;
    impl NodeApp for Spiky {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            // Everyone fires at the exact same instants forever-ish.
            ctx.set_recurring_timer(10_000, 10_000, 90_000, 1);
            // Plus one lonely far-future one-shot per node.
            ctx.set_timer(5_000_000 + ctx.node_id().index() as u64, 2);
        }
        fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &msb_net::Payload) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            if token == 1 && ctx.node_id().index() == 0 {
                ctx.broadcast(b"tick".to_vec());
            }
        }
    }
    let run = |mode: SchedulerMode| {
        let config = SimConfig { jitter_us: 0, scheduler: mode, ..SimConfig::default() };
        let mut sim = Simulator::new(config, 7);
        let mut rng = StdRng::seed_from_u64(0xF00);
        for _ in 0..40 {
            let p = (rng.gen_range(0.0..120.0), rng.gen_range(0.0..120.0));
            sim.add_node(p, Spiky);
        }
        sim.start();
        sim.run();
        (sim.now_us(), *sim.metrics())
    };
    assert_eq!(run(SchedulerMode::Calendar), run(SchedulerMode::BinaryHeap));
}
