//! Differential oracle: the hex-grid spatial index against the naive
//! linear scan.
//!
//! The refactor's contract is *bit identity*: with the same seed and
//! config, [`SpatialMode::HexIndex`] and [`SpatialMode::NaiveScan`] must
//! produce the same delivery recipients in the same event order at the
//! same timestamps, the same routes, the same components, and the same
//! [`Metrics`] — except [`Metrics::cells_scanned`], which measures index
//! work and is definitionally 0 for the naive scan. These tests pin that
//! contract with property tests over random positions, ranges, and
//! lattice scales (including nodes exactly on cell boundaries and
//! exactly at radio range) and with full-simulation trace comparisons
//! under mobility.

use msb_net::mobility::{Bounds, RandomWaypoint};
use msb_net::sim::{Metrics, NodeApp, NodeCtx, NodeId, SimConfig, Simulator, SpatialMode};
use msb_net::spatial::{SpatialIndex, SpatialScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// The naive oracle: every node id within `range` of `center`, ascending.
fn naive_in_range(positions: &[(f64, f64)], center: (f64, f64), range: f64) -> Vec<u32> {
    positions
        .iter()
        .enumerate()
        .filter(|(_, &p)| distance(p, center) <= range)
        .map(|(i, _)| i as u32)
        .collect()
}

/// The indexed answer: candidates from the cell cover, exact-filtered.
fn indexed_in_range(
    index: &SpatialIndex,
    positions: &[(f64, f64)],
    center: (f64, f64),
    range: f64,
) -> Vec<u32> {
    let mut cand = Vec::new();
    index.candidates_into(&mut SpatialScratch::default(), center, range, &mut cand);
    cand.retain(|&i| distance(positions[i as usize], center) <= range);
    cand
}

/// Positions stressing every boundary: uniform scatter, nodes pinned to
/// exact lattice points and cell edge midpoints of the *index* lattice,
/// and nodes at exactly `range` from the query center.
fn boundary_positions(
    seed: u64,
    n: usize,
    cell_d: f64,
    center: (f64, f64),
    range: f64,
) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let sqrt3 = 3f64.sqrt();
    for i in 0..n {
        let p = match i % 4 {
            // Scatter.
            0 => (rng.gen_range(-300.0..300.0), rng.gen_range(-300.0..300.0)),
            // Exact lattice points (cell centers).
            1 => {
                let u1 = rng.gen_range(-10i64..10) as f64;
                let u2 = rng.gen_range(-10i64..10) as f64;
                (u1 * cell_d + u2 * cell_d / 2.0, u2 * sqrt3 / 2.0 * cell_d)
            }
            // Midpoints between two lattice points: exactly on the
            // Voronoi edge, where snapping ties break by search order.
            2 => {
                let u1 = rng.gen_range(-10i64..10) as f64;
                let u2 = rng.gen_range(-10i64..10) as f64;
                (u1 * cell_d + u2 * cell_d / 2.0 + cell_d / 2.0, u2 * sqrt3 / 2.0 * cell_d)
            }
            // Exactly at radio range from the query center.
            _ => {
                let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                (center.0 + range * theta.cos(), center.1 + range * theta.sin())
            }
        };
        out.push(p);
    }
    out
}

proptest! {
    /// Indexed and naive range queries agree — same node set, same
    /// ascending order — for random populations, query centers, radio
    /// ranges, and lattice scales, with adversarial boundary placements.
    #[test]
    fn indexed_query_equals_naive_scan(
        seed in any::<u64>(),
        n in 1usize..120,
        scale_idx in 0usize..5,
        range_idx in 0usize..6,
        cx in -100i32..100,
        cy in -100i32..100,
    ) {
        let cell_scale = [3.0f64, 10.0, 25.0, 50.0, 120.0][scale_idx];
        let range = [0.0f64, 1.0, 10.0, 50.0, 75.0, 200.0][range_idx];
        let center = (cx as f64 * 1.37, cy as f64 * 0.91);
        let positions = boundary_positions(seed, n, cell_scale, center, range);
        let mut index = SpatialIndex::new(cell_scale);
        for &p in &positions {
            index.push(p);
        }
        let indexed = indexed_in_range(&index, &positions, center, range);
        let naive = naive_in_range(&positions, center, range);
        prop_assert_eq!(indexed, naive, "cell_d={} range={} center={:?}", cell_scale, range, center);
    }

    /// `SpatialIndex::k_nearest_into` agrees with the naive oracle
    /// (ascending `(distance, id)` over everything in range, truncated
    /// to k) for random populations, centers, caps, and range bounds —
    /// boundary placements included.
    #[test]
    fn indexed_k_nearest_equals_naive_ranking(
        seed in any::<u64>(),
        n in 1usize..120,
        k in 0usize..140,
        scale_idx in 0usize..5,
        range_idx in 0usize..6,
        cx in -100i32..100,
        cy in -100i32..100,
    ) {
        let cell_scale = [3.0f64, 10.0, 25.0, 50.0, 120.0][scale_idx];
        let range = [0.0f64, 1.0, 10.0, 50.0, 75.0, 200.0][range_idx];
        let center = (cx as f64 * 1.37, cy as f64 * 0.91);
        let positions = boundary_positions(seed, n, cell_scale, center, range);
        let mut index = SpatialIndex::new(cell_scale);
        for &p in &positions {
            index.push(p);
        }
        let mut indexed = Vec::new();
        index.k_nearest_into(
            &mut SpatialScratch::default(),
            center,
            k,
            range,
            |i| positions[i as usize],
            &mut indexed,
        );
        let mut ranked: Vec<(f64, u32)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (distance(p, center), i as u32))
            .filter(|&(d, _)| d <= range)
            .collect();
        ranked.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        ranked.truncate(k);
        let naive: Vec<u32> = ranked.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(indexed, naive, "cell_d={} range={} k={}", cell_scale, range, k);
    }

    /// The agreement survives mobility: after random incremental updates
    /// (including moves across cell boundaries and back), queries from
    /// every node's own position still match the oracle.
    #[test]
    fn indexed_query_equals_naive_after_updates(
        seed in any::<u64>(),
        n in 2usize..60,
        moves in 1usize..80,
        scale_idx in 0usize..3,
        range_idx in 0usize..3,
    ) {
        let cell_scale = [5.0f64, 20.0, 60.0][scale_idx];
        let range = [15.0f64, 50.0, 90.0][range_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positions = boundary_positions(seed ^ 0xA5, n, cell_scale, (0.0, 0.0), range);
        let mut index = SpatialIndex::new(cell_scale);
        for &p in &positions {
            index.push(p);
        }
        for _ in 0..moves {
            let id = rng.gen_range(0..n);
            let p = (rng.gen_range(-250.0..250.0), rng.gen_range(-250.0..250.0));
            positions[id] = p;
            index.update(id as u32, p);
        }
        for (i, &p) in positions.iter().enumerate() {
            let indexed = indexed_in_range(&index, &positions, p, range);
            let naive = naive_in_range(&positions, p, range);
            prop_assert_eq!(indexed, naive, "query from node {} at {:?}", i, p);
        }
    }
}

/// Records every delivery with full ordering information.
/// One delivery record: (now_us, from, payload).
type TraceEntry = (u64, NodeId, Vec<u8>);

struct TraceApp {
    /// One [`TraceEntry`] per delivery, in processing order.
    trace: Vec<TraceEntry>,
    /// Gossip depth: how many times a heard message is re-broadcast.
    chattiness: usize,
}

impl NodeApp for TraceApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Several seeds talk at t=0 so floods collide and interleave.
        if ctx.node_id().index().is_multiple_of(5) {
            ctx.broadcast(vec![ctx.node_id().index() as u8]);
        }
    }
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, payload: &msb_net::Payload) {
        let payload = payload.as_bytes().expect("test payloads are bytes");
        self.trace.push((ctx.now_us(), from, payload.to_vec()));
        if payload.len() < self.chattiness {
            let mut p = payload.to_vec();
            p.push(ctx.node_id().index() as u8);
            ctx.broadcast(p);
        } else if payload.len() == self.chattiness {
            // Tail: unicast back to the flood origin, exercising
            // shortest-path routing through the index. The origin itself
            // only records the echo (a self-unicast would ping-pong
            // forever at the same instant).
            let origin = NodeId::new(payload[0] as u32);
            if origin != ctx.node_id() {
                ctx.unicast(origin, payload.to_vec());
            }
        }
    }
}

/// Runs a gossiping swarm with mobility ticks between phases and returns
/// everything observable: per-node traces, metrics, and the final clock.
fn run_trace(mode: SpatialMode, seed: u64, n: usize) -> (Vec<Vec<TraceEntry>>, Metrics, u64) {
    let config = SimConfig {
        loss_rate: 0.05,
        spatial: mode,
        cell_d: Some(35.0), // deliberately != radio_range: identity must not depend on the heuristic
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(config, seed);
    let mut mobility = RandomWaypoint::new(
        n,
        Bounds { width: 220.0, height: 220.0 },
        1.0,
        8.0,
        0.2,
        seed ^ 0x5eed,
    );
    let placed: Vec<((f64, f64), TraceApp)> = mobility
        .positions()
        .into_iter()
        .map(|p| (p, TraceApp { trace: Vec::new(), chattiness: 3 }))
        .collect();
    sim.add_nodes(placed);
    sim.start();
    // Interleave event processing with mobility: run a phase, move
    // everyone (incremental index updates), poke the swarm again.
    let mut buf = Vec::new();
    for phase in 0..3u64 {
        sim.run_until((phase + 1) * 40_000);
        mobility.advance(5.0);
        mobility.positions_into(&mut buf);
        sim.set_positions(&buf);
        let poke = NodeId::new((phase as u32 * 7) % n as u32);
        sim.inject(poke, poke, vec![poke.index() as u8]);
    }
    sim.run();
    let traces =
        (0..n).map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace)).collect();
    (traces, *sim.metrics(), sim.now_us())
}

/// Full-simulation differential: identical traces (recipients, order,
/// timestamps, payloads), identical metrics modulo `cells_scanned`, and
/// an identical final clock across spatial modes, under loss, jitter,
/// mobility, and mid-run injection.
#[test]
fn simulation_trace_bit_identical_across_modes() {
    for seed in [1u64, 0xBEEF, 42424242] {
        let (t_idx, m_idx, clock_idx) = run_trace(SpatialMode::HexIndex, seed, 24);
        let (t_naive, m_naive, clock_naive) = run_trace(SpatialMode::NaiveScan, seed, 24);
        assert_eq!(t_idx, t_naive, "seed {seed}: delivery traces diverged");
        assert_eq!(clock_idx, clock_naive, "seed {seed}: final clock diverged");
        assert_eq!(
            Metrics { cells_scanned: 0, ..m_idx },
            m_naive,
            "seed {seed}: transport metrics diverged"
        );
        assert_eq!(m_naive.cells_scanned, 0, "naive scan must not report cell work");
        assert!(m_idx.cells_scanned > 0, "indexed run must report cell work");
        assert_eq!(
            m_idx.neighbor_queries, m_naive.neighbor_queries,
            "seed {seed}: query counts must agree across modes"
        );
    }
}

/// Satellite regression: `shortest_path` and `connected_components` reuse
/// the index and must pin identical outputs on a seeded random topology.
#[test]
fn paths_and_components_identical_on_seeded_topology() {
    struct Inert;
    impl NodeApp for Inert {
        fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &msb_net::Payload) {}
    }
    let build = |mode: SpatialMode| {
        let config = SimConfig { spatial: mode, ..SimConfig::default() };
        let mut sim = Simulator::new(config, 7);
        let mut rng = StdRng::seed_from_u64(0x70_70);
        // Clustered topology with several disconnected islands.
        for cluster in 0..6 {
            let (cx, cy) = (cluster as f64 * 180.0, (cluster % 2) as f64 * 160.0);
            for _ in 0..12 {
                let p = (cx + rng.gen_range(-45.0..45.0), cy + rng.gen_range(-45.0..45.0));
                sim.add_node(p, Inert);
            }
        }
        sim
    };
    let mut indexed = build(SpatialMode::HexIndex);
    let mut naive = build(SpatialMode::NaiveScan);
    assert_eq!(indexed.connected_components(), naive.connected_components());
    for (from, to) in [(0u32, 71u32), (3, 3), (12, 60), (5, 11), (70, 1)] {
        assert_eq!(
            indexed.shortest_path(NodeId::new(from), NodeId::new(to)),
            naive.shortest_path(NodeId::new(from), NodeId::new(to)),
            "path {from}->{to} diverged"
        );
    }
    // The BFS work is observable and identical in query count.
    assert_eq!(indexed.metrics().neighbor_queries, naive.metrics().neighbor_queries);
}
