//! Differential oracle: the spatially-sharded engine against the
//! single-threaded simulator.
//!
//! The shard contract is *bit identity* (see `docs/SIM.md` §6): for
//! any shard count, [`ShardedSimulator`] must deliver the same
//! messages at the same instants in the same order, fire the same
//! timers, merge to the same [`Metrics`] (modulo `peak_queue_len`,
//! which is per-queue depth and therefore legitimately shard-count
//! dependent), and stop at the same final clock as [`Simulator`]. The
//! suite attacks the seams where the conservative-lookahead design
//! could leak nondeterminism:
//!
//! * broadcast radii straddling tiles owned by different shards (every
//!   hop is a cross-shard envelope);
//! * mid-run [`ShardedSimulator::inject`] into a node homed on a
//!   remote shard;
//! * mobility handoffs — a node with live recurring timers re-homed
//!   across shards at a quiesce point, its queued events in tow;
//! * same-instant ties between events processed by different shards;
//! * random traces over node count × seed × shard count, property
//!   tested.

use msb_net::mobility::{Bounds, RandomWaypoint};
use msb_net::shard::ShardedSimulator;
use msb_net::sim::{Metrics, NodeApp, NodeCtx, NodeId, SimConfig, SimDriver, Simulator};
use proptest::prelude::*;

/// One delivery record: (now_us, from, payload).
type TraceEntry = (u64, NodeId, Vec<u8>);

/// A gossiping app exercising every engine-visible feature: plain
/// broadcasts, fan-out-capped broadcasts, unicasts back to the origin,
/// one-shot timers, and recurring timers (the re-flood shape). Every
/// observable lands in per-node logs the differential compares.
struct TraceApp {
    trace: Vec<TraceEntry>,
    timer_log: Vec<(u64, u64)>,
}

impl TraceApp {
    fn new() -> Self {
        TraceApp { trace: Vec::new(), timer_log: Vec::new() }
    }
}

impl NodeApp for TraceApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let idx = ctx.node_id().index();
        if idx.is_multiple_of(4) {
            ctx.broadcast(vec![idx as u8]);
            ctx.set_recurring_timer(25_000, 25_000, 120_000, idx as u64);
        }
        if idx.is_multiple_of(5) {
            ctx.set_timer(40_000, 1_000 + idx as u64);
        }
    }
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, payload: &msb_net::Payload) {
        let payload = payload.as_bytes().expect("test payloads are bytes");
        self.trace.push((ctx.now_us(), from, payload.to_vec()));
        if payload.len() < 3 {
            let mut p = payload.to_vec();
            p.push(ctx.node_id().index() as u8);
            ctx.broadcast_k_nearest(4, p);
        } else if payload.len() == 3 {
            let origin = NodeId::new(payload[0] as u32);
            if origin != ctx.node_id() {
                ctx.unicast(origin, payload.to_vec());
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        self.timer_log.push((ctx.now_us(), token));
        if token < 1_000 {
            ctx.broadcast_k_nearest(3, vec![token as u8]);
        }
    }
}

/// Per-node delivery traces, per-node timer logs, masked metrics
/// (`peak_queue_len` zeroed — per-queue depth is the one legitimately
/// shard-dependent observable), final clock.
type Outcome = (Vec<Vec<TraceEntry>>, Vec<Vec<(u64, u64)>>, Metrics, u64);

fn config(shards: usize, seed: u64) -> SimConfig {
    SimConfig {
        loss_rate: 0.05,
        batch_delivery: seed.is_multiple_of(2), // sweep batching too
        shards,
        ..SimConfig::default()
    }
}

/// Runs the trace scenario on one engine; `shards == 0` selects the
/// single-threaded oracle, otherwise the sharded engine at that count.
/// The phase loop is duplicated per engine because `inject` is
/// inherent, not on [`SimDriver`] — everything else is shared code.
fn run_trace(shards: usize, seed: u64, n: usize) -> Outcome {
    run_trace_opts(shards, seed, n, true, 1)
}

/// [`run_trace`] with the sharded engine's speed knobs exposed:
/// envelope batching on/off and the shard-partition region size —
/// both must be invisible in every observable.
fn run_trace_opts(
    shards: usize,
    seed: u64,
    n: usize,
    batching: bool,
    region_tiles: usize,
) -> Outcome {
    let mut mobility = RandomWaypoint::new(
        n,
        Bounds { width: 260.0, height: 260.0 },
        1.0,
        9.0,
        0.2,
        seed ^ 0x5eed,
    );
    let placed: Vec<((f64, f64), TraceApp)> =
        mobility.positions().into_iter().map(|p| (p, TraceApp::new())).collect();

    if shards == 0 {
        let mut sim = Simulator::new(config(1, seed), seed);
        sim.add_nodes(placed);
        sim.start();
        let mut buf = Vec::new();
        for phase in 0..3u64 {
            sim.run_until((phase + 1) * 40_000);
            mobility.advance(5.0);
            mobility.positions_into(&mut buf);
            sim.set_positions(&buf);
            let poke = NodeId::new((phase as u32 * 7) % n as u32);
            sim.inject(poke, poke, vec![poke.index() as u8]);
        }
        sim.run();
        let traces =
            (0..n).map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace)).collect();
        let timers = (0..n)
            .map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).timer_log))
            .collect();
        (traces, timers, sim.metrics().without_queue_pressure(), sim.now_us())
    } else {
        let mut cfg = config(shards, seed);
        cfg.region_tiles = region_tiles;
        let mut sim = ShardedSimulator::new(cfg, seed);
        sim.set_envelope_batching(batching);
        sim.add_nodes(placed);
        sim.start();
        let mut buf = Vec::new();
        for phase in 0..3u64 {
            sim.run_until((phase + 1) * 40_000);
            mobility.advance(5.0);
            mobility.positions_into(&mut buf);
            sim.set_positions(&buf);
            let poke = NodeId::new((phase as u32 * 7) % n as u32);
            sim.inject(poke, poke, vec![poke.index() as u8]);
        }
        sim.run();
        let traces =
            (0..n).map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace)).collect();
        let timers = (0..n)
            .map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).timer_log))
            .collect();
        (traces, timers, sim.metrics().without_queue_pressure(), sim.now_us())
    }
}

/// The headline differential: full mobility traces with mid-run remote
/// injection, across shard counts and seeds (sweeping batching via the
/// seed's parity). Every observable must match the oracle exactly.
#[test]
fn sharded_traces_bit_identical_to_oracle() {
    for seed in [1u64, 0xBEEF, 42424242] {
        let oracle = run_trace(0, seed, 28);
        for shards in [2usize, 4, 8] {
            let sharded = run_trace(shards, seed, 28);
            assert_eq!(sharded.0, oracle.0, "seed {seed} shards {shards}: traces diverged");
            assert_eq!(sharded.1, oracle.1, "seed {seed} shards {shards}: timer logs diverged");
            assert_eq!(sharded.2, oracle.2, "seed {seed} shards {shards}: metrics diverged");
            assert_eq!(sharded.3, oracle.3, "seed {seed} shards {shards}: final clock diverged");
        }
        assert!(
            oracle.0.iter().any(|t| !t.is_empty()),
            "seed {seed}: the scenario must actually deliver messages"
        );
    }
}

/// A chain of nodes spaced under the radio range marches across many
/// hex tiles, so consecutive hops keep landing on different shards:
/// every broadcast is a cross-shard envelope and the flood order is
/// fully exposed to the lookahead windows.
#[test]
fn tile_straddling_chain_floods_identically() {
    let n = 24usize;
    // 30 m spacing at 50 m range: each node hears its immediate
    // neighbors only; the chain spans ~700 m — many tiles.
    let positions: Vec<(f64, f64)> = (0..n).map(|i| (30.0 * i as f64, 25.0)).collect();
    let run = |shards: usize| {
        let cfg = SimConfig { loss_rate: 0.0, shards, ..SimConfig::default() };
        if shards == 1 {
            let mut sim = Simulator::new(cfg, 9);
            sim.add_nodes(positions.iter().map(|&p| (p, TraceApp::new())));
            sim.start();
            sim.run();
            let traces: Vec<Vec<TraceEntry>> = (0..n)
                .map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace))
                .collect();
            (traces, sim.metrics().without_queue_pressure(), sim.now_us())
        } else {
            let mut sim = ShardedSimulator::new(cfg, 9);
            sim.add_nodes(positions.iter().map(|&p| (p, TraceApp::new())));
            assert!(
                sim.shard_node_counts().iter().filter(|&&c| c > 0).count() > 1,
                "the chain must span multiple shards: {:?}",
                sim.shard_node_counts()
            );
            sim.start();
            sim.run();
            let traces: Vec<Vec<TraceEntry>> = (0..n)
                .map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace))
                .collect();
            (traces, sim.metrics().without_queue_pressure(), sim.now_us())
        }
    };
    let oracle = run(1);
    for shards in [2usize, 4, 8] {
        assert_eq!(run(shards), oracle, "shards {shards} diverged on the tile-straddling chain");
    }
    assert!(oracle.0.iter().all(|t| !t.is_empty()), "the flood must reach the whole chain");
}

/// A node carrying a live recurring timer is re-homed across shards at
/// a quiesce point: its queued events must move with it and keep
/// firing exactly as the oracle's do.
#[test]
fn handoff_carries_queued_timers_across_shards() {
    struct Ticker {
        log: Vec<(u64, u64)>,
    }
    impl NodeApp for Ticker {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if ctx.node_id().index() == 0 {
                // Fires every 10 ms across every handoff below.
                ctx.set_recurring_timer(10_000, 10_000, 400_000, 7);
                // Plus a far-future one-shot that must survive re-homing.
                ctx.set_timer(350_000, 99);
            }
        }
        fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &msb_net::Payload) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            self.log.push((ctx.now_us(), token));
            ctx.broadcast(vec![token as u8]);
        }
    }
    // Node 0 walks 600 m in 60 m steps — through many tiles — while
    // three bystanders listen from fixed posts along the way.
    let walk: Vec<(f64, f64)> = (0..6).map(|i| (i as f64 * 120.0, 40.0)).collect();
    let posts = [(100.0, 60.0), (300.0, 60.0), (500.0, 60.0)];
    let run = |shards: usize| {
        let cfg = SimConfig { loss_rate: 0.0, shards, ..SimConfig::default() };
        let drive = |sim: &mut dyn SimDriver| {
            sim.start();
            for (step, &pos) in walk.iter().enumerate() {
                sim.run_until(60_000 * (step as u64 + 1));
                let mut positions = vec![pos];
                positions.extend(posts);
                sim.set_positions(&positions);
            }
            sim.run();
        };
        if shards == 1 {
            let mut sim = Simulator::new(cfg, 11);
            sim.add_node(walk[0], Ticker { log: Vec::new() });
            for &p in &posts {
                sim.add_node(p, Ticker { log: Vec::new() });
            }
            drive(&mut sim);
            (
                std::mem::take(&mut sim.app_mut(NodeId::new(0)).log),
                sim.metrics().without_queue_pressure(),
                sim.now_us(),
            )
        } else {
            let mut sim = ShardedSimulator::new(cfg, 11);
            sim.add_node(walk[0], Ticker { log: Vec::new() });
            for &p in &posts {
                sim.add_node(p, Ticker { log: Vec::new() });
            }
            drive(&mut sim);
            (
                std::mem::take(&mut sim.app_mut(NodeId::new(0)).log),
                sim.metrics().without_queue_pressure(),
                sim.now_us(),
            )
        }
    };
    let oracle = run(1);
    // 40 recurring firings + the far-future one-shot, all preserved
    // across every re-homing.
    assert_eq!(oracle.0.len(), 41, "oracle timer count: {:?}", oracle.0.len());
    for shards in [2usize, 4, 8] {
        assert_eq!(run(shards), oracle, "shards {shards}: handoff broke the timer stream");
    }
}

/// `inject` into a node homed on a remote shard, while the run is hot:
/// the external event must land at the same instant and order as the
/// oracle's (external keys sort after node events at the same instant).
#[test]
fn remote_injection_lands_identically() {
    let n = 12usize;
    let positions: Vec<(f64, f64)> = (0..n).map(|i| (40.0 * i as f64, 10.0)).collect();
    let run = |shards: usize| {
        let cfg = SimConfig { loss_rate: 0.0, shards, ..SimConfig::default() };
        if shards == 1 {
            let mut sim = Simulator::new(cfg, 13);
            sim.add_nodes(positions.iter().map(|&p| (p, TraceApp::new())));
            sim.start();
            sim.run_until(20_000);
            for i in 0..n {
                sim.inject(NodeId::new(i as u32), NodeId::new(0), vec![i as u8]);
            }
            sim.run();
            let traces: Vec<Vec<TraceEntry>> = (0..n)
                .map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace))
                .collect();
            (traces, sim.metrics().without_queue_pressure(), sim.now_us())
        } else {
            let mut sim = ShardedSimulator::new(cfg, 13);
            sim.add_nodes(positions.iter().map(|&p| (p, TraceApp::new())));
            sim.start();
            sim.run_until(20_000);
            for i in 0..n {
                sim.inject(NodeId::new(i as u32), NodeId::new(0), vec![i as u8]);
            }
            sim.run();
            let traces: Vec<Vec<TraceEntry>> = (0..n)
                .map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace))
                .collect();
            (traces, sim.metrics().without_queue_pressure(), sim.now_us())
        }
    };
    let oracle = run(1);
    assert!(oracle.0.iter().any(|t| !t.is_empty()));
    for shards in [2usize, 3, 4, 8] {
        assert_eq!(run(shards), oracle, "shards {shards}: remote injection diverged");
    }
}

/// More worker cores than nodes: shards beyond the population stay idle
/// without perturbing anything.
#[test]
fn more_shards_than_nodes_is_harmless() {
    let positions = [(0.0, 0.0), (30.0, 0.0), (60.0, 0.0)];
    let oracle = {
        let mut sim = Simulator::new(SimConfig::default(), 5);
        sim.add_nodes(positions.iter().map(|&p| (p, TraceApp::new())));
        sim.start();
        sim.run();
        (sim.metrics().without_queue_pressure(), sim.now_us())
    };
    let mut sim = ShardedSimulator::new(SimConfig { shards: 8, ..SimConfig::default() }, 5);
    sim.add_nodes(positions.iter().map(|&p| (p, TraceApp::new())));
    sim.start();
    sim.run();
    assert_eq!((sim.metrics().without_queue_pressure(), sim.now_us()), oracle);
}

/// Cross-shard envelope batching (one coalesced, bulk-sorted transfer
/// per (window, destination) pair) against the unbatched reference
/// path (per-envelope scheduling in arrival order): both must match
/// each other — and the oracle — in every observable. Content-derived
/// event keys make transfer grouping invisible; this pins it.
#[test]
fn envelope_batching_is_trace_invisible() {
    for seed in [2u64, 0xABCD] {
        for shards in [2usize, 4] {
            let oracle = run_trace(0, seed, 24);
            let batched = run_trace_opts(shards, seed, 24, true, 1);
            let unbatched = run_trace_opts(shards, seed, 24, false, 1);
            assert_eq!(
                batched, unbatched,
                "seed {seed} shards {shards}: batching changed an observable"
            );
            assert_eq!(batched, oracle, "seed {seed} shards {shards}: diverged from the oracle");
        }
    }
}

/// The seam scenario behind the halo-refresh proptest: a chain of
/// nodes sitting just off a lattice seam, mirror-flipped across it
/// (and crept along it) at every quiesce point, so each mobility tick
/// re-snaps every node into a different tile — and, at small region
/// sizes, onto a different shard, queued recurring timers in tow.
/// Every flip forces a full halo rebuild *and* a mass handoff; the
/// outcome must still be the oracle's, bit for bit.
fn run_seam(shards: usize, seed: u64, n: usize, region_tiles: usize) -> Outcome {
    let base: Vec<(f64, f64)> = (0..n).map(|i| (30.0 * i as f64, 24.0)).collect();
    let phases: Vec<Vec<(f64, f64)>> = (1..=4u64)
        .map(|phase| {
            base.iter()
                .map(|&(x, y)| (x + phase as f64 * 13.0, if phase % 2 == 1 { -y } else { y }))
                .collect()
        })
        .collect();
    let drive = |sim: &mut dyn SimDriver| {
        sim.start();
        for (i, positions) in phases.iter().enumerate() {
            sim.run_until((i as u64 + 1) * 40_000);
            sim.set_positions(positions);
        }
        sim.run();
    };
    if shards == 0 {
        let mut sim = Simulator::new(config(1, seed), seed);
        sim.add_nodes(base.iter().map(|&p| (p, TraceApp::new())));
        drive(&mut sim);
        let traces =
            (0..n).map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace)).collect();
        let timers = (0..n)
            .map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).timer_log))
            .collect();
        (traces, timers, sim.metrics().without_queue_pressure(), sim.now_us())
    } else {
        let mut cfg = config(shards, seed);
        cfg.region_tiles = region_tiles;
        let mut sim = ShardedSimulator::new(cfg, seed);
        sim.add_nodes(base.iter().map(|&p| (p, TraceApp::new())));
        drive(&mut sim);
        let traces =
            (0..n).map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).trace)).collect();
        let timers = (0..n)
            .map(|i| std::mem::take(&mut sim.app_mut(NodeId::new(i as u32)).timer_log))
            .collect();
        (traces, timers, sim.metrics().without_queue_pressure(), sim.now_us())
    }
}

proptest! {
    /// Random scenarios over population × seed × shard count ×
    /// partition-region size: the sharded engine is the oracle's
    /// bit-identical twin everywhere, not just on the hand-picked
    /// seams above.
    #[test]
    fn random_scenarios_match_the_oracle(
        seed in any::<u64>(),
        n in 6usize..30,
        shard_sel in 0usize..3,
        region in 1usize..5,
    ) {
        let shards = [2usize, 4, 8][shard_sel];
        let oracle = run_trace(0, seed, n);
        let sharded = run_trace_opts(shards, seed, n, true, region);
        prop_assert_eq!(&sharded.0, &oracle.0, "traces diverged: seed {} n {} shards {}", seed, n, shards);
        prop_assert_eq!(&sharded.1, &oracle.1, "timer logs diverged: seed {} n {} shards {}", seed, n, shards);
        prop_assert_eq!(sharded.2, oracle.2, "metrics diverged: seed {} n {} shards {}", seed, n, shards);
        prop_assert_eq!(sharded.3, oracle.3, "clock diverged: seed {} n {} shards {}", seed, n, shards);
    }

    /// Halo refresh at tile seams: mirror-flip oscillation across a
    /// lattice seam at every quiesce point (see [`run_seam`]), swept
    /// over shard counts and region sizes.
    #[test]
    fn seam_oscillation_matches_the_oracle(
        seed in any::<u64>(),
        n in 6usize..24,
        shard_sel in 0usize..3,
        region in 1usize..6,
    ) {
        let shards = [2usize, 4, 8][shard_sel];
        let oracle = run_seam(0, seed, n, 1);
        let sharded = run_seam(shards, seed, n, region);
        prop_assert_eq!(&sharded.0, &oracle.0, "traces diverged: seed {} n {} shards {} region {}", seed, n, shards, region);
        prop_assert_eq!(&sharded.1, &oracle.1, "timer logs diverged: seed {} n {} shards {} region {}", seed, n, shards, region);
        prop_assert_eq!(sharded.2, oracle.2, "metrics diverged: seed {} n {} shards {} region {}", seed, n, shards, region);
        prop_assert_eq!(sharded.3, oracle.3, "clock diverged: seed {} n {} shards {} region {}", seed, n, shards, region);
    }
}
