//! Arena-style node-state storage for shard cores.
//!
//! A shard owns a churning subset of the swarm: nodes hand off in and
//! out every mobility tick. Storing their [`NodeState`]s directly in a
//! `HashMap<u32, NodeState<A>>` scatters the states across the heap
//! and rebuilds allocation on every handoff. [`NodeArena`] instead
//! keeps the states in one slot vector with a free list — an insert
//! reuses the slot the last departure vacated — so a core's resident
//! footprint is bounded by its *peak concurrent population*, stays
//! compact in memory, and is measurable: [`NodeArena::resident_bytes`]
//! is a deterministic length/capacity computation, safe to publish
//! through telemetry gauges.
//!
//! Determinism: slot assignment depends only on the sequence of
//! inserts and removes (the free list is a stack), and nothing ever
//! iterates the id → slot map, so the arena introduces no
//! iteration-order hazard.

use std::collections::HashMap;

/// Slot-vector storage keyed by node id. `V` is the per-node state
/// record (the engines use [`NodeState`](crate::sim::NodeState)).
pub(crate) struct NodeArena<V> {
    /// The slots; `None` marks a vacancy on the free list.
    slots: Vec<Option<V>>,
    /// Vacated slot indices, reused LIFO.
    free: Vec<u32>,
    /// Node id → occupied slot.
    index: HashMap<u32, u32>,
}

impl<V> Default for NodeArena<V> {
    fn default() -> Self {
        NodeArena { slots: Vec::new(), free: Vec::new(), index: HashMap::new() }
    }
}

impl<V> NodeArena<V> {
    /// Number of resident nodes.
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// Inserts node `id`'s state, reusing a vacated slot when one
    /// exists.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already resident.
    pub(crate) fn insert(&mut self, id: u32, state: V) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(state);
                slot
            }
            None => {
                self.slots.push(Some(state));
                (self.slots.len() - 1) as u32
            }
        };
        let prev = self.index.insert(id, slot);
        assert!(prev.is_none(), "node {id} already resident");
    }

    /// Removes and returns node `id`'s state (the handoff departure).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not resident.
    pub(crate) fn remove(&mut self, id: u32) -> V {
        let slot = self.index.remove(&id).expect("node must be resident to leave");
        self.free.push(slot);
        self.slots[slot as usize].take().expect("occupied slot")
    }

    /// Borrows node `id`'s state, if resident.
    pub(crate) fn get(&self, id: u32) -> Option<&V> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_ref()
    }

    /// Mutably borrows node `id`'s state, if resident.
    pub(crate) fn get_mut(&mut self, id: u32) -> Option<&mut V> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_mut()
    }

    /// Estimated resident heap bytes: slot storage at capacity, the
    /// free list, and the id map's entry overhead. Deterministic
    /// (length/capacity based) — this is the per-node footprint term
    /// `fig10_shards` reports as `bytes_per_node`.
    pub(crate) fn resident_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<Option<V>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.index.len() * std::mem::size_of::<(u32, u32)>()) as u64
    }
}

impl<V> std::fmt::Debug for NodeArena<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeArena")
            .field("resident", &self.index.len())
            .field("slots", &self.slots.len())
            .field("free", &self.free.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = NodeArena::default();
        arena.insert(7, "seven");
        arena.insert(3, "three");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(7), Some(&"seven"));
        assert_eq!(arena.get(4), None);
        *arena.get_mut(3).unwrap() = "THREE";
        assert_eq!(arena.remove(3), "THREE");
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(3), None);
    }

    #[test]
    fn slots_are_reused_so_footprint_tracks_peak_population() {
        let mut arena = NodeArena::default();
        for id in 0..100u32 {
            arena.insert(id, id as u64);
        }
        let peak = arena.resident_bytes();
        // Churn 1000 handoffs through the same arena: no growth.
        for round in 0..10u32 {
            for id in 0..100u32 {
                arena.remove(id);
                arena.insert(id + (round + 1) * 1000, u64::from(id));
            }
            for id in 0..100u32 {
                let new = id + (round + 1) * 1000;
                arena.remove(new);
                arena.insert(id, u64::from(id));
            }
        }
        assert_eq!(arena.len(), 100);
        assert!(arena.slots.len() <= 101, "slots grew past peak population");
        assert!(arena.resident_bytes() <= peak.max(4096));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut arena = NodeArena::default();
        arena.insert(1, ());
        arena.insert(1, ());
    }
}
