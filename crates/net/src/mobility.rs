//! Random-waypoint mobility.
//!
//! Nodes pick a random destination inside a rectangle, move toward it at a
//! random speed, pause, and repeat — the standard MANET mobility model.
//! The model is advanced explicitly (`advance`) between simulation phases
//! so event processing stays deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rectangle the nodes roam in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Width in meters.
    pub width: f64,
    /// Height in meters.
    pub height: f64,
}

/// Random-waypoint state for a set of nodes.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    bounds: Bounds,
    min_speed: f64,
    max_speed: f64,
    pause_s: f64,
    rng: StdRng,
    nodes: Vec<WaypointNode>,
}

#[derive(Debug, Clone, Copy)]
struct WaypointNode {
    position: (f64, f64),
    target: (f64, f64),
    speed: f64,
    pause_left: f64,
}

impl RandomWaypoint {
    /// Creates a model for `n` nodes with uniformly random initial
    /// positions.
    ///
    /// # Panics
    ///
    /// Panics if speeds are not `0 < min <= max` or bounds are not
    /// positive.
    pub fn new(
        n: usize,
        bounds: Bounds,
        min_speed: f64,
        max_speed: f64,
        pause_s: f64,
        seed: u64,
    ) -> Self {
        assert!(bounds.width > 0.0 && bounds.height > 0.0, "bounds must be positive");
        assert!(min_speed > 0.0 && min_speed <= max_speed, "need 0 < min_speed <= max_speed");
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = (0..n)
            .map(|_| {
                let position =
                    (rng.gen_range(0.0..bounds.width), rng.gen_range(0.0..bounds.height));
                let target = (rng.gen_range(0.0..bounds.width), rng.gen_range(0.0..bounds.height));
                let speed = rng.gen_range(min_speed..=max_speed);
                WaypointNode { position, target, speed, pause_left: 0.0 }
            })
            .collect();
        RandomWaypoint { bounds, min_speed, max_speed, pause_s, rng, nodes }
    }

    /// Creates a model whose nodes start at the given positions (e.g. a
    /// `msb_dataset::placement` layout — the churn scenarios start on
    /// partitioned islands) and then roam the whole rectangle.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RandomWaypoint::new`], or
    /// if any start position lies outside the bounds.
    pub fn from_positions(
        positions: Vec<(f64, f64)>,
        bounds: Bounds,
        min_speed: f64,
        max_speed: f64,
        pause_s: f64,
        seed: u64,
    ) -> Self {
        assert!(bounds.width > 0.0 && bounds.height > 0.0, "bounds must be positive");
        assert!(min_speed > 0.0 && min_speed <= max_speed, "need 0 < min_speed <= max_speed");
        assert!(
            positions.iter().all(
                |p| (0.0..=bounds.width).contains(&p.0) && (0.0..=bounds.height).contains(&p.1)
            ),
            "start positions must lie inside the bounds"
        );
        let rng = StdRng::seed_from_u64(seed);
        Self::with_rng(positions, bounds, min_speed, max_speed, pause_s, rng)
    }

    /// Tail of [`RandomWaypoint::from_positions`]: draws each node's
    /// first leg.
    fn with_rng(
        positions: Vec<(f64, f64)>,
        bounds: Bounds,
        min_speed: f64,
        max_speed: f64,
        pause_s: f64,
        mut rng: StdRng,
    ) -> Self {
        let nodes = positions
            .into_iter()
            .map(|position| {
                let target = (rng.gen_range(0.0..bounds.width), rng.gen_range(0.0..bounds.height));
                let speed = rng.gen_range(min_speed..=max_speed);
                WaypointNode { position, target, speed, pause_left: 0.0 }
            })
            .collect();
        RandomWaypoint { bounds, min_speed, max_speed, pause_s, rng, nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the model tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current position of node `i`.
    pub fn position(&self, i: usize) -> (f64, f64) {
        self.nodes[i].position
    }

    /// All positions (index-aligned with node ids).
    pub fn positions(&self) -> Vec<(f64, f64)> {
        self.nodes.iter().map(|n| n.position).collect()
    }

    /// Allocation-free variant of [`RandomWaypoint::positions`] for the
    /// per-tick `advance → set_positions` loop at swarm scale: clears
    /// `out` and refills it, so one buffer serves every tick.
    pub fn positions_into(&self, out: &mut Vec<(f64, f64)>) {
        out.clear();
        out.extend(self.nodes.iter().map(|n| n.position));
    }

    /// Advances every node by `dt_s` seconds and refills `out` with the
    /// resulting positions — the per-tick call of the
    /// `advance → set_positions` loop, exactly
    /// [`RandomWaypoint::advance`] followed by
    /// [`RandomWaypoint::positions_into`] against one reused buffer.
    pub fn advance_positions_into(&mut self, dt_s: f64, out: &mut Vec<(f64, f64)>) {
        self.advance(dt_s);
        out.clear();
        out.extend(self.nodes.iter().map(|n| n.position));
    }

    /// Advances every node by `dt_s` seconds.
    pub fn advance(&mut self, dt_s: f64) {
        for i in 0..self.nodes.len() {
            let mut remaining = dt_s;
            while remaining > 0.0 {
                let node = &mut self.nodes[i];
                if node.pause_left > 0.0 {
                    let pause = node.pause_left.min(remaining);
                    node.pause_left -= pause;
                    remaining -= pause;
                    continue;
                }
                let dx = node.target.0 - node.position.0;
                let dy = node.target.1 - node.position.1;
                let dist = (dx * dx + dy * dy).sqrt();
                let reach_time = dist / node.speed;
                if reach_time <= remaining {
                    node.position = node.target;
                    remaining -= reach_time;
                    node.pause_left = self.pause_s;
                    // New leg.
                    let target = (
                        self.rng.gen_range(0.0..self.bounds.width),
                        self.rng.gen_range(0.0..self.bounds.height),
                    );
                    let speed = self.rng.gen_range(self.min_speed..=self.max_speed);
                    let node = &mut self.nodes[i];
                    node.target = target;
                    node.speed = speed;
                } else {
                    let frac = remaining * node.speed / dist;
                    node.position.0 += dx * frac;
                    node.position.1 += dy * frac;
                    remaining = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> RandomWaypoint {
        RandomWaypoint::new(n, Bounds { width: 100.0, height: 100.0 }, 1.0, 3.0, 0.5, 42)
    }

    #[test]
    fn positions_stay_in_bounds() {
        let mut m = model(20);
        for _ in 0..100 {
            m.advance(1.0);
            for i in 0..m.len() {
                let (x, y) = m.position(i);
                assert!((0.0..=100.0).contains(&x), "x = {x}");
                assert!((0.0..=100.0).contains(&y), "y = {y}");
            }
        }
    }

    #[test]
    fn nodes_actually_move() {
        let mut m = model(5);
        let before = m.positions();
        m.advance(10.0);
        let after = m.positions();
        let moved = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| (b.0 - a.0).abs() + (b.1 - a.1).abs() > 1e-9)
            .count();
        assert!(moved >= 4, "most nodes should have moved, got {moved}");
    }

    #[test]
    fn speed_bounds_respected() {
        let mut m = model(10);
        let before = m.positions();
        m.advance(1.0);
        let after = m.positions();
        for (b, a) in before.iter().zip(&after) {
            let d = ((b.0 - a.0).powi(2) + (b.1 - a.1).powi(2)).sqrt();
            // Max distance in 1s is max_speed (pauses only shorten it).
            assert!(d <= 3.0 + 1e-9, "moved {d} m in 1 s");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut m1 = model(8);
        let mut m2 = model(8);
        m1.advance(7.3);
        m2.advance(7.3);
        assert_eq!(m1.positions(), m2.positions());
    }

    #[test]
    fn fused_advance_matches_the_two_calls() {
        let mut fused = model(12);
        let mut split = model(12);
        let mut got = Vec::new();
        let mut want = Vec::new();
        for _ in 0..5 {
            fused.advance_positions_into(2.7, &mut got);
            split.advance(2.7);
            split.positions_into(&mut want);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut m = model(3);
        let before = m.positions();
        m.advance(0.0);
        assert_eq!(before, m.positions());
    }

    #[test]
    #[should_panic(expected = "min_speed")]
    fn bad_speeds_rejected() {
        let _ = RandomWaypoint::new(1, Bounds { width: 10.0, height: 10.0 }, 0.0, 1.0, 0.0, 1);
    }

    #[test]
    fn from_positions_starts_where_told_then_roams() {
        let starts = vec![(1.0, 2.0), (50.0, 50.0), (99.0, 0.5)];
        let mut m = RandomWaypoint::from_positions(
            starts.clone(),
            Bounds { width: 100.0, height: 100.0 },
            1.0,
            3.0,
            0.0,
            9,
        );
        assert_eq!(m.positions(), starts);
        m.advance(5.0);
        let after = m.positions();
        assert_ne!(after, starts, "nodes must leave their start positions");
        assert!(after.iter().all(|p| (0.0..=100.0).contains(&p.0) && (0.0..=100.0).contains(&p.1)));
    }

    #[test]
    #[should_panic(expected = "inside the bounds")]
    fn out_of_bounds_start_rejected() {
        let _ = RandomWaypoint::from_positions(
            vec![(200.0, 0.0)],
            Bounds { width: 100.0, height: 100.0 },
            1.0,
            2.0,
            0.0,
            1,
        );
    }
}
