//! Driving a [`NodeApp`] outside the simulator.
//!
//! The simulator owns every [`NodeApp`] it runs: callbacks receive a
//! [`NodeCtx`] whose queued actions the engine consumes internally.
//! A *service* has the opposite shape — something else (a socket
//! client, a relay loop, a test driver) decides when a message
//! arrives and must see what the app wants transmitted. [`AppHarness`]
//! is that adapter: it hosts one app with the **same per-node RNG
//! derivation the simulator uses** ([`NodeState`]'s
//! `node_rng_seed(seed, node)` stream), absorbs timer actions into an
//! internal queue the caller fires explicitly, and returns transmit
//! actions ([`AppAction`]) for the caller to route however it likes.
//!
//! Because the RNG stream, timer semantics, and action order are
//! identical to the simulator's, an app driven through a harness over
//! real sockets is differentially comparable to the same app inside a
//! [`Simulator`](crate::sim::Simulator) run — the oracle-parity
//! contract `msb-server` is tested against (`docs/SERVER.md`).
//!
//! Time is virtual and caller-supplied: every entry point takes the
//! current instant in microseconds, and timers fire only when the
//! caller asks ([`AppHarness::fire_timers_until`]). The harness never
//! reads a wall clock.

use std::collections::BinaryHeap;

use crate::payload::Payload;
use crate::sched::Recurrence;
use crate::sim::{Action, DeliveryMode, NodeApp, NodeCtx, NodeId, NodeState};

/// A transmission an app requested — the public mirror of the
/// simulator's internal action set, minus timers (the harness absorbs
/// those into its own queue).
#[derive(Debug, Clone)]
pub enum AppAction {
    /// Broadcast to everyone in radio range.
    Broadcast(Payload),
    /// Broadcast capped to the `k` nearest neighbors.
    BroadcastK {
        /// The fan-out cap.
        k: usize,
        /// The payload to transmit.
        payload: Payload,
    },
    /// Point-to-point send.
    Unicast {
        /// The destination node.
        to: NodeId,
        /// The payload to transmit.
        payload: Payload,
    },
}

impl AppAction {
    /// The payload this action transmits.
    pub fn payload(&self) -> &Payload {
        match self {
            AppAction::Broadcast(p) => p,
            AppAction::BroadcastK { payload, .. } => payload,
            AppAction::Unicast { payload, .. } => payload,
        }
    }
}

/// A pending timer, ordered for a min-heap by `(at_us, seq)`: earliest
/// first, insertion order breaking ties — the same order the
/// simulator's queue yields same-instant timers set by one node
/// (its emission counter is monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingTimer {
    at_us: u64,
    seq: u64,
    token: u64,
    recur: Option<Recurrence>,
}

impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest on top.
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Hosts one [`NodeApp`] outside the simulator. See the
/// [module docs](self) for the determinism contract.
pub struct AppHarness<A: NodeApp> {
    id: NodeId,
    position: (f64, f64),
    delivery: DeliveryMode,
    state: NodeState<A>,
    timers: BinaryHeap<PendingTimer>,
    timer_seq: u64,
}

impl<A: NodeApp> AppHarness<A> {
    /// Creates a harness for `app` as node `id`, drawing from the same
    /// RNG stream the simulator would derive for `(seed, id)`.
    pub fn new(id: NodeId, app: A, seed: u64, delivery: DeliveryMode) -> Self {
        let raw = id.index() as u32;
        AppHarness {
            id,
            position: (0.0, 0.0),
            delivery,
            state: NodeState::new(app, seed, raw),
            timers: BinaryHeap::new(),
            timer_seq: 0,
        }
    }

    /// Sets the position reported to the app (for apps that read
    /// [`NodeCtx::position`]). Defaults to the origin.
    pub fn set_position(&mut self, position: (f64, f64)) {
        self.position = position;
    }

    /// This harness's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The hosted app.
    pub fn app(&self) -> &A {
        &self.state.app
    }

    /// The hosted app, mutably.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.state.app
    }

    /// Runs [`NodeApp::on_start`] at `at_us`.
    pub fn start(&mut self, at_us: u64) -> Vec<AppAction> {
        self.run_callback(at_us, |app, ctx| app.on_start(ctx))
    }

    /// Delivers one message from `from` at `at_us`.
    pub fn deliver(&mut self, from: NodeId, payload: &Payload, at_us: u64) -> Vec<AppAction> {
        self.run_callback(at_us, |app, ctx| app.on_message(ctx, from, payload))
    }

    /// The instant the earliest pending timer fires, if any.
    pub fn next_timer_at(&self) -> Option<u64> {
        self.timers.peek().map(|t| t.at_us)
    }

    /// Fires every timer scheduled at or before `now_us`, in the
    /// simulator's order (time, then insertion), re-arming recurring
    /// entries exactly as the simulator would. Returns the transmit
    /// actions from all firings, in firing order.
    pub fn fire_timers_until(&mut self, now_us: u64) -> Vec<AppAction> {
        let mut out = Vec::new();
        while let Some(&next) = self.timers.peek() {
            if next.at_us > now_us {
                break;
            }
            self.timers.pop();
            let token = next.token;
            out.extend(self.run_callback(next.at_us, |app, ctx| app.on_timer(ctx, token)));
            if let Some(rec) = next.recur {
                let again = next.at_us + rec.period_us;
                if again <= rec.until_us {
                    // Re-arms keep their original seq: a recurring
                    // entry's position among same-instant peers is set
                    // when it is first scheduled, as in the simulator.
                    self.timers.push(PendingTimer { at_us: again, ..next });
                }
            }
        }
        out
    }

    /// Runs one app callback and converts its queued actions: transmit
    /// actions are returned, timer actions are absorbed into the
    /// harness queue.
    fn run_callback(
        &mut self,
        now_us: u64,
        f: impl FnOnce(&mut A, &mut NodeCtx<'_>),
    ) -> Vec<AppAction> {
        let mut ctx = NodeCtx {
            id: self.id,
            now_us,
            position: self.position,
            delivery: self.delivery,
            rng: &mut self.state.rng,
            actions: Vec::new(),
        };
        f(&mut self.state.app, &mut ctx);
        let actions = ctx.actions;
        let mut out = Vec::with_capacity(actions.len());
        for action in actions {
            match action {
                Action::Broadcast(p) => out.push(AppAction::Broadcast(p)),
                Action::BroadcastK(k, p) => out.push(AppAction::BroadcastK { k, payload: p }),
                Action::Unicast(to, p) => out.push(AppAction::Unicast { to, payload: p }),
                Action::Timer(delay, token) => self.arm(now_us + delay, token, None),
                Action::RecurringTimer(delay, rec, token) => {
                    self.arm(now_us + delay, token, Some(rec));
                }
            }
        }
        out
    }

    fn arm(&mut self, at_us: u64, token: u64, recur: Option<Recurrence>) {
        self.timers.push(PendingTimer { at_us, seq: self.timer_seq, token, recur });
        self.timer_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Echoes every message back as a unicast, and counts timer fires.
    struct Echo {
        fires: Vec<u64>,
        draws: Vec<u64>,
    }

    impl NodeApp for Echo {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(100, 1);
            ctx.set_recurring_timer(50, 50, 220, 2);
            self.draws.push(ctx.rng().gen());
        }
        fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, payload: &Payload) {
            let bytes = payload.as_bytes().unwrap().to_vec();
            ctx.unicast(from, bytes);
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, token: u64) {
            self.fires.push(token);
        }
    }

    #[test]
    fn actions_and_timers_flow_through() {
        let mut h = AppHarness::new(
            NodeId::new(3),
            Echo { fires: Vec::new(), draws: Vec::new() },
            42,
            DeliveryMode::InMemory,
        );
        assert!(h.start(0).is_empty());
        assert_eq!(h.next_timer_at(), Some(50));

        let acts = h.deliver(NodeId::new(9), &Payload::from(b"hi".to_vec()), 10);
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            AppAction::Unicast { to, payload } => {
                assert_eq!(*to, NodeId::new(9));
                assert_eq!(payload.as_bytes(), Some(&b"hi"[..]));
            }
            other => panic!("expected unicast, got {other:?}"),
        }

        // Recurring timer at 50/100/150/200 (next re-arm 250 > 220
        // stops it), one-shot at 100. At the t=100 tie the one-shot
        // wins: it was scheduled first, and re-arms keep their
        // original insertion order — the scheduler contract.
        assert!(h.fire_timers_until(400).is_empty());
        assert_eq!(h.app().fires, vec![2, 1, 2, 2, 2]);
        assert_eq!(h.next_timer_at(), None);
    }

    #[test]
    fn rng_stream_matches_simulator_derivation() {
        // Two harnesses with the same (seed, id) draw identically; a
        // different id diverges — the per-node stream property.
        let mk = |id: u32, seed: u64| {
            let mut h = AppHarness::new(
                NodeId::new(id),
                Echo { fires: Vec::new(), draws: Vec::new() },
                seed,
                DeliveryMode::InMemory,
            );
            h.start(0);
            h.app().draws[0]
        };
        assert_eq!(mk(5, 7), mk(5, 7));
        assert_ne!(mk(5, 7), mk(6, 7));
        assert_ne!(mk(5, 7), mk(5, 8));
    }
}
