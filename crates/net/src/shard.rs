//! Spatially-sharded parallel execution of the simulator.
//!
//! [`ShardedSimulator`] partitions the hex-grid tiles of the plane
//! across [`SimConfig::shards`] engine cores — each with its **own**
//! scheduler, per-node RNG streams, and [`Metrics`] — and runs them on
//! scoped worker threads under **conservative-lookahead
//! synchronization**: the radio propagation delay
//! ([`SimConfig::base_latency_us`]) lower-bounds the latency of every
//! cross-shard event, so all shards can safely process the window
//! `[t₀, t₀ + L)` in parallel (t₀ = the global earliest pending event,
//! L = the lookahead) — any event one shard sends another lands at
//! `≥ t₀ + L`, strictly beyond the window.
//!
//! # Memory model: one shared world, per-shard halos
//!
//! The coordinator owns **one** global [`Topology`] (positions + hex
//! index). Positions change only at quiesce points, so worker cores
//! borrow it read-only during windows for the queries that legitimately
//! span the plane — unicast BFS routing and connected components. The
//! hot neighborhood queries (broadcast targets, fan-out-capped
//! k-nearest) are instead answered from each core's private
//! [`HaloIndex`]: exact positions for the cells covering the tiles the
//! core owns plus a one-radio-range fringe, rebuilt by the coordinator
//! at every quiesce point. Per-shard resident topology is therefore
//! O(owned tiles + fringe), not O(n) — the old full per-core replica is
//! gone — and node state lives in a compact [`NodeArena`] whose
//! footprint tracks the shard's peak population. Cross-shard envelopes
//! are **batched**: a core accumulates one outbox per destination
//! shard, the window barrier moves each batch as a single transfer, and
//! the receiver bulk-sorts it by the existing `(at_us, key)` content
//! order ([`crate::sched::Scheduler::schedule_all`]).
//!
//! The engine remains **bit-identical to the single-threaded
//! [`Simulator`]** at every shard count: same matches, same event
//! totals, same final clock, same merged [`Metrics`] (modulo
//! [`Metrics::peak_queue_len`], a per-queue high-water mark — see
//! [`Metrics::without_queue_pressure`]). This follows from the
//! determinism contract (`docs/SIM.md` §1 and §6):
//!
//! * every event is keyed by *content* (`(source, emission counter)`),
//!   so each node processes its own events in an order independent of
//!   global queue interleaving — and of how envelopes are batched;
//! * randomness is *per-node*, drawn on the emitting node in its
//!   processing order, so draws never depend on other nodes' schedules;
//! * positions change only at quiesce points
//!   ([`ShardedSimulator::set_positions`]), so the shared topology and
//!   every halo are exact all window long, and a halo-served query
//!   gathers the identical candidate set (same ids, same order, same
//!   `cells_scanned`) as the oracle's global index — the cover a query
//!   scans depends only on the querying node's cell, and the halo holds
//!   every cell any owned cell's cover can reach (see [`crate::halo`]).
//!
//! Mobility may carry a node onto a tile owned by a different shard;
//! the quiesce-point rebalance then *hands off* the node — its
//! application, RNG stream, emission counter, and every pending queue
//! entry targeting it (via [`crate::sched::Scheduler::extract`] /
//! [`crate::sched::Scheduler::transfer`], which preserve keys and do
//! not recount [`Metrics::events_scheduled`]) — to the new owner.
//!
//! The single-threaded engine remains *the* differential oracle,
//! exactly as [`crate::sim::SpatialMode::NaiveScan`] and
//! [`crate::sim::SchedulerMode::BinaryHeap`] serve the spatial and
//! scheduler layers; `crates/net/tests/shard_differential.rs` and the
//! root `tests/shard_churn.rs` prove the bit-identity from tile-seam
//! micro-scenarios up to full friending swarms.

use crate::arena::NodeArena;
use crate::halo::HaloIndex;
use crate::payload::Payload;
use crate::sched::{AnyScheduler, EventKey, ScheduledEvent, Scheduler};
use crate::sim::{
    draw_latency, roll_loss, splitmix64, Action, EventKind, Metrics, NodeApp, NodeCtx, NodeId,
    NodeState, SimConfig, SimDriver, SpatialMode,
};
use crate::topo::{distance, TopoScratch, Topology};
use msb_lattice::{LatticeConfig, LatticePoint};
use msb_telemetry::{Recorder, TraceTag};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// The coordinator-owned world state a core borrows read-only for the
/// duration of a window: the global topology (exact — positions change
/// only at quiesce points) and the node → owning shard table (frozen
/// during a window; handoffs happen only at quiesce points too).
#[derive(Clone, Copy)]
struct WorldRef<'a> {
    topo: &'a Topology,
    owner: &'a [u32],
}

/// One engine core owning a subset of the nodes: its own event queue,
/// its own metrics, its halo topology fragment, and the per-node state
/// (app + RNG + emission counter) of every node it currently owns.
struct ShardCore<A> {
    shard: u32,
    config: SimConfig,
    /// Owned-tiles + fringe neighborhood index, `Some` under
    /// [`SpatialMode::HexIndex`] with more than one shard. Refreshed by
    /// the coordinator at quiesce points; serves broadcast/k-nearest.
    /// `None` (naive scan, or a lone shard) routes those queries to
    /// the shared global topology instead.
    halo: Option<HaloIndex>,
    /// State of the nodes this core owns, in arena slots.
    states: NodeArena<NodeState<A>>,
    queue: AnyScheduler<EventKind>,
    now_us: u64,
    metrics: Metrics,
    /// Events emitted this window whose target another shard owns, one
    /// outbox per destination shard — each drained as a single
    /// coalesced transfer at the window barrier.
    outboxes: Vec<Vec<ScheduledEvent<EventKind>>>,
    /// Bulk-sort inbound envelope batches on arrival (the default).
    /// Off = schedule envelopes one by one in arrival order — the
    /// reference behaviour the batched path is proven identical to.
    batching: bool,
    targets_buf: Vec<(u32, f64)>,
    knear_buf: Vec<u32>,
    /// Reusable buffers for queries against the shared global topology
    /// (BFS routing, naive-scan broadcasts).
    scratch: TopoScratch,
    /// Per-core observability sink (off by default). Owned by the core
    /// so parallel windows record without any cross-thread contention;
    /// the coordinator merges deterministically on demand
    /// ([`ShardedSimulator::telemetry`]). Everything recorded is
    /// derived from sim state — never wall clock — so traces are a
    /// pure function of `(seed, config, apps)`.
    telemetry: Recorder,
    /// Calendar resizes already reported as trace events.
    seen_resizes: u64,
}

impl<A: NodeApp> ShardCore<A> {
    fn new(shard: u32, config: SimConfig, shards: usize) -> Self {
        let halo = (shards > 1 && config.spatial == SpatialMode::HexIndex)
            .then(|| HaloIndex::new(&config));
        ShardCore {
            shard,
            config,
            halo,
            states: NodeArena::default(),
            queue: AnyScheduler::for_mode(config.scheduler),
            now_us: 0,
            metrics: Metrics::default(),
            outboxes: (0..shards).map(|_| Vec::new()).collect(),
            batching: true,
            targets_buf: Vec::new(),
            knear_buf: Vec::new(),
            scratch: TopoScratch::default(),
            telemetry: Recorder::off(),
            seen_resizes: 0,
        }
    }

    /// Earliest pending local event, if any.
    fn next_time(&mut self) -> Option<u64> {
        self.queue.peek().map(|(at, _)| at)
    }

    /// Inserts one coalesced cross-shard envelope batch, counting the
    /// events toward `events_scheduled` — each event is counted exactly
    /// once simulation-wide, at the core that enqueues it for
    /// processing. The `batch.envelopes` / `batch.sends` counters make
    /// the coalescing ratio observable.
    fn ingest(&mut self, inbound: Vec<ScheduledEvent<EventKind>>) {
        self.telemetry.incr("shard.ingested", self.shard, inbound.len() as u64);
        if self.batching {
            if !inbound.is_empty() {
                self.telemetry.incr("batch.envelopes", self.shard, inbound.len() as u64);
                self.telemetry.incr("batch.sends", self.shard, 1);
            }
            // One bulk insert, sorted by content key on arrival.
            self.queue.schedule_all(inbound);
        } else {
            for ev in inbound {
                debug_assert!(ev.recur.is_none(), "cross-shard events are never recurring");
                self.queue.schedule(ev.at_us, ev.key, ev.item);
            }
        }
        self.note_queue();
    }

    /// Re-homes an extracted entry during a node handoff (no recount).
    fn transfer_in(&mut self, ev: ScheduledEvent<EventKind>) {
        self.queue.transfer(ev);
        self.note_queue();
    }

    /// Processes every local event with `at ≤ horizon`; returns how
    /// many events were popped (the window-span payload).
    fn process_until(&mut self, world: WorldRef<'_>, horizon: u64) -> u64 {
        let mut popped = 0u64;
        while let Some((at, _)) = self.queue.peek() {
            if at > horizon {
                break;
            }
            self.step(world);
            popped += 1;
        }
        popped
    }

    fn step(&mut self, world: WorldRef<'_>) -> bool {
        let Some((at_us, kind)) = self.queue.pop() else {
            return false;
        };
        self.note_queue();
        self.now_us = at_us;
        if self.telemetry.is_on() {
            self.telemetry.incr("shard.pops", self.shard, 1);
            self.telemetry.gauge_max("shard.queue_depth", self.shard, self.queue.len() as u64);
            let resizes = self.queue.resizes();
            if resizes > self.seen_resizes {
                self.seen_resizes = resizes;
                let width = self.queue.bucket_width_us().unwrap_or(0);
                self.telemetry.event(TraceTag::SchedResize, self.shard, at_us, resizes, width);
            }
        }
        match kind {
            EventKind::Deliver { to, from, payload } => {
                if self.config.batch_delivery {
                    let batch = self.drain_batch(to, from, payload);
                    self.metrics.delivered += batch.len() as u64;
                    self.with_ctx(world, to, |app, ctx| app.on_batch(ctx, &batch));
                } else {
                    self.metrics.delivered += 1;
                    self.with_ctx(world, to, |app, ctx| app.on_message(ctx, from, &payload));
                }
            }
            EventKind::Timer { node, token } => {
                self.with_ctx(world, node, |app, ctx| app.on_timer(ctx, token));
            }
        }
        true
    }

    /// Same-instant same-destination coalescing over the *local* queue.
    /// A shard queue holds only its own nodes' events, so runs that the
    /// global queue interleaves with other shards' events may coalesce
    /// into fewer, larger batches here — per-message order, RNG draws,
    /// and all [`Metrics`] are unaffected (per-node randomness makes
    /// grouping invisible); only the `on_batch` call granularity can
    /// differ from the oracle's.
    fn drain_batch(
        &mut self,
        to: NodeId,
        from: NodeId,
        payload: Payload,
    ) -> Vec<(NodeId, Payload)> {
        let mut batch = vec![(from, payload)];
        loop {
            let same = match self.queue.peek() {
                Some((at_us, kind)) => {
                    at_us == self.now_us
                        && matches!(kind, EventKind::Deliver { to: t, .. } if *t == to)
                }
                None => false,
            };
            if !same {
                break;
            }
            let Some((_, EventKind::Deliver { from, payload, .. })) = self.queue.pop() else {
                unreachable!("peeked a same-instant delivery");
            };
            batch.push((from, payload));
        }
        batch
    }

    fn with_ctx(
        &mut self,
        world: WorldRef<'_>,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut NodeCtx<'_>),
    ) {
        let position = world.topo.position(id.index());
        let state = self.states.get_mut(id.0).expect("event delivered to a non-owned node");
        let mut ctx = NodeCtx {
            id,
            now_us: self.now_us,
            position,
            delivery: self.config.delivery,
            rng: &mut state.rng,
            actions: Vec::new(),
        };
        f(&mut state.app, &mut ctx);
        let actions = ctx.actions;
        for action in actions {
            match action {
                Action::Broadcast(payload) => self.do_broadcast(world, id, payload),
                Action::BroadcastK(k, payload) => self.do_broadcast_k(world, id, k, payload),
                Action::Unicast(to, payload) => self.do_unicast(world, id, to, payload),
                Action::Timer(delay, token) => {
                    let at = self.now_us + delay;
                    let key = self.next_key(id);
                    // A node's timers always target itself — local.
                    self.push_local(at, key, EventKind::Timer { node: id, token });
                }
                Action::RecurringTimer(delay, recur, token) => {
                    let at = self.now_us + delay;
                    let key = self.next_key(id);
                    self.queue.schedule_recurring(
                        at,
                        key,
                        recur,
                        EventKind::Timer { node: id, token },
                    );
                    self.note_queue();
                }
            }
        }
    }

    fn next_key(&mut self, id: NodeId) -> EventKey {
        self.states.get_mut(id.0).expect("emitting node is owned").next_key(id.0)
    }

    /// Routes an emitted event: local target → own queue (counted),
    /// remote target → that shard's outbox (counted by the receiving
    /// core at ingest).
    fn route(&mut self, world: WorldRef<'_>, at_us: u64, key: EventKey, kind: EventKind) {
        let dst = world.owner[kind.target().index()];
        if dst == self.shard {
            self.push_local(at_us, key, kind);
        } else {
            self.telemetry.incr("shard.outbound", self.shard, 1);
            self.outboxes[dst as usize].push(ScheduledEvent {
                at_us,
                key,
                recur: None,
                item: kind,
            });
        }
    }

    fn push_local(&mut self, at_us: u64, key: EventKey, kind: EventKind) {
        self.queue.schedule(at_us, key, kind);
        self.note_queue();
    }

    fn note_queue(&mut self) {
        self.metrics.events_scheduled = self.queue.events_scheduled();
        self.metrics.peak_queue_len = self.queue.peak_len() as u64;
    }

    fn do_broadcast(&mut self, world: WorldRef<'_>, from: NodeId, payload: Payload) {
        self.metrics.broadcasts += 1;
        self.metrics.payload_bytes += payload.wire_len() as u64;
        let mut targets = std::mem::take(&mut self.targets_buf);
        match &mut self.halo {
            Some(halo) => {
                let src = world.topo.position(from.index());
                halo.broadcast_targets(&mut self.metrics, from.0, src, &mut targets);
            }
            None => world.topo.broadcast_targets(
                &mut self.scratch,
                &mut self.metrics,
                from.index(),
                &mut targets,
            ),
        }
        for &(i, dist) in &targets {
            let sender = self.states.get_mut(from.0).expect("broadcasting node is owned");
            if roll_loss(&self.config, &mut sender.rng) {
                self.metrics.lost += 1;
                continue;
            }
            let at = self.now_us + draw_latency(&self.config, dist, &mut sender.rng);
            let key = sender.next_key(from.0);
            self.route(
                world,
                at,
                key,
                EventKind::Deliver { to: NodeId(i), from, payload: payload.clone() },
            );
        }
        self.targets_buf = targets;
    }

    fn do_broadcast_k(&mut self, world: WorldRef<'_>, from: NodeId, k: usize, payload: Payload) {
        self.metrics.broadcasts += 1;
        self.metrics.payload_bytes += payload.wire_len() as u64;
        let mut cand = std::mem::take(&mut self.knear_buf);
        let src = world.topo.position(from.index());
        match &mut self.halo {
            Some(halo) => halo.k_nearest(&mut self.metrics, from.0, src, k, &mut cand),
            None => world.topo.k_nearest(
                &mut self.scratch,
                &mut self.metrics,
                from.index(),
                k,
                &mut cand,
            ),
        }
        for &i in &cand {
            let dist = distance(src, world.topo.position(i as usize));
            let sender = self.states.get_mut(from.0).expect("broadcasting node is owned");
            if roll_loss(&self.config, &mut sender.rng) {
                self.metrics.lost += 1;
                continue;
            }
            let at = self.now_us + draw_latency(&self.config, dist, &mut sender.rng);
            let key = sender.next_key(from.0);
            self.route(
                world,
                at,
                key,
                EventKind::Deliver { to: NodeId(i), from, payload: payload.clone() },
            );
        }
        self.knear_buf = cand;
    }

    fn do_unicast(&mut self, world: WorldRef<'_>, from: NodeId, to: NodeId, payload: Payload) {
        self.metrics.unicasts += 1;
        if from == to {
            let at = self.now_us;
            let key = self.next_key(from);
            self.push_local(at, key, EventKind::Deliver { to, from, payload });
            return;
        }
        // A route legitimately spans the whole plane, so BFS reads the
        // shared global topology (read-only; this core's scratch).
        let Some(path) = world.topo.shortest_path(
            &mut self.scratch,
            &mut self.metrics,
            from.index(),
            to.index(),
        ) else {
            self.metrics.unroutable += 1;
            return;
        };
        let mut at = self.now_us;
        for hop in path.windows(2) {
            let d = distance(
                world.topo.position(hop[0] as usize),
                world.topo.position(hop[1] as usize),
            );
            self.metrics.unicast_hops += 1;
            self.metrics.payload_bytes += payload.wire_len() as u64;
            let sender = self.states.get_mut(from.0).expect("unicasting node is owned");
            if roll_loss(&self.config, &mut sender.rng) {
                self.metrics.lost += 1;
                return;
            }
            at += draw_latency(&self.config, d, &mut sender.rng);
        }
        let key = self.next_key(from);
        self.route(world, at, key, EventKind::Deliver { to, from, payload });
    }

    /// Drains every per-destination outbox for the window barrier.
    fn take_outboxes(&mut self) -> Vec<Vec<ScheduledEvent<EventKind>>> {
        self.outboxes.iter_mut().map(std::mem::take).collect()
    }
}

/// The owning shard of a hex tile: tiles aggregate into
/// `region_tiles × region_tiles` square regions (in lattice
/// coordinates), and the region hashes to a shard. With
/// `region_tiles == 1` this is exactly the historical per-tile hash.
fn region_owner(region_tiles: i64, shards: u64, tile: LatticePoint) -> u32 {
    let u1 = tile.u1.div_euclid(region_tiles);
    let u2 = tile.u2.div_euclid(region_tiles);
    let h = splitmix64(splitmix64(u1 as u64) ^ (u2 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (h % shards) as u32
}

/// Window command sent to a worker; `Exit` ends the worker loop.
enum Cmd {
    /// Ingest `inbound`, process every local event `≤ horizon`, reply.
    /// `start` is t₀, the global window floor (telemetry span origin).
    Window {
        start: u64,
        horizon: u64,
        inbound: Vec<ScheduledEvent<EventKind>>,
    },
    /// Ingest only (the post-deadline flush); no reply.
    Ingest {
        inbound: Vec<ScheduledEvent<EventKind>>,
    },
    Exit,
}

/// Worker → coordinator barrier message after a window.
struct Reply {
    shard: usize,
    next: Option<u64>,
    now: u64,
    /// Emitted cross-shard envelopes, already bucketed per destination
    /// shard — the coordinator forwards each bucket as one batch.
    outboxes: Vec<Vec<ScheduledEvent<EventKind>>>,
}

/// The sharded parallel engine: coordinator over per-shard cores. See
/// the module docs for the synchronization, memory, and determinism
/// contract; the public surface mirrors [`Simulator`] so harnesses
/// drive either through [`SimDriver`].
pub struct ShardedSimulator<A: NodeApp> {
    config: SimConfig,
    seed: u64,
    tiles: LatticeConfig,
    /// The one shared world topology (positions + hex index); workers
    /// borrow it read-only during windows.
    topo: Topology,
    cores: Vec<ShardCore<A>>,
    /// Node → owning shard (the coordinator's authoritative table,
    /// shared read-only with workers during windows).
    owner: Vec<u32>,
    /// Cell → halo shard set, memoized: which shards need this cell in
    /// their halo is pure geometry (cover of the cell's center at radio
    /// range, mapped through the region hash), so it never invalidates.
    halo_cache: HashMap<LatticePoint, Vec<u32>>,
    /// Set whenever positions or membership changed; the next run/start
    /// rebuilds every halo.
    halo_dirty: bool,
    now_us: u64,
    ext_seq: u64,
    /// Coordinator-side sink: quiesce/handoff events (recorded between
    /// windows, on the coordinator thread). Worker-side series live in
    /// each [`ShardCore::telemetry`]; [`ShardedSimulator::telemetry`]
    /// merges the lot deterministically.
    telemetry: Recorder,
}

impl<A: NodeApp> ShardedSimulator<A> {
    /// Creates a sharded simulator with `config.shards` cores (clamped
    /// to at least 1) and the given RNG seed. The tile partition uses
    /// the same hex lattice scale as the spatial index
    /// ([`SimConfig::cell_d`], defaulting to the radio range),
    /// aggregated into [`SimConfig::region_tiles`]-sized regions.
    ///
    /// # Panics
    ///
    /// Panics when `config.shards > 1` and `config.base_latency_us` is
    /// zero — the base latency is the conservative lookahead; without
    /// it no window has positive width and shards could not advance in
    /// parallel.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let shards = config.shards.max(1);
        if shards > 1 {
            assert!(
                config.base_latency_us > 0,
                "sharded execution needs base_latency_us > 0: it is the conservative lookahead \
                 bounding cross-shard event latency"
            );
            assert!(
                config.per_meter_latency_us >= 0.0,
                "negative per-meter latency would break the lookahead bound"
            );
        }
        let mut core_config = config;
        core_config.shards = shards;
        ShardedSimulator {
            config: core_config,
            seed,
            tiles: LatticeConfig::new((0.0, 0.0), config.cell_d.unwrap_or(config.radio_range)),
            topo: Topology::new(&core_config),
            cores: (0..shards).map(|i| ShardCore::new(i as u32, core_config, shards)).collect(),
            owner: Vec::new(),
            halo_cache: HashMap::new(),
            halo_dirty: false,
            now_us: 0,
            ext_seq: 0,
            telemetry: Recorder::off(),
        }
    }

    /// Turns telemetry on for the coordinator and every core, keeping
    /// the most recent `trace_cap` trace events per core. Enabling
    /// telemetry changes no simulated outcome — the differential suite
    /// pins on-vs-off bit-identity at every shard count.
    pub fn enable_telemetry(&mut self, trace_cap: usize) {
        self.telemetry = Recorder::on(trace_cap);
        for core in &mut self.cores {
            core.telemetry = Recorder::on(trace_cap);
        }
    }

    /// Switches cross-shard envelope batching (default **on**): off,
    /// inbound envelopes are scheduled one by one in arrival order —
    /// the reference transfer path the batched bulk-sorted ingest is
    /// differentially proven trace-identical to. Speed-only, like every
    /// other engine switch.
    pub fn set_envelope_batching(&mut self, on: bool) {
        for core in &mut self.cores {
            core.batching = on;
        }
    }

    /// The merged telemetry view: per-core metric sets fold
    /// commutatively (ascending shard order, grouping immaterial) and
    /// traces merge sorted by `(at_us, actor)`, so the result is
    /// deterministic for a given `(seed, config, apps, shards)` —
    /// independent of worker-thread timing. Coordinator events
    /// (quiesce, handoff) carry `actor == shard_count`.
    pub fn telemetry(&self) -> Recorder {
        let mut parts: Vec<Recorder> = Vec::with_capacity(self.cores.len() + 1);
        parts.push(self.telemetry.clone());
        parts.extend(self.cores.iter().map(|c| c.telemetry.clone()));
        Recorder::merge_all(&parts)
    }

    /// Number of shards (cores).
    pub fn shard_count(&self) -> usize {
        self.cores.len()
    }

    /// The shard that owns the tile containing `position`.
    fn tile_owner(&self, position: (f64, f64)) -> u32 {
        let region = self.config.region_tiles.max(1) as i64;
        region_owner(region, self.cores.len() as u64, self.tiles.snap(position))
    }

    /// Adds a node at `position`, returning its id: the shared topology
    /// learns the position, the owning core (by region hash) takes the
    /// node's state.
    pub fn add_node(&mut self, position: (f64, f64), app: A) -> NodeId {
        let id = NodeId(self.owner.len() as u32);
        let shard = self.tile_owner(position);
        self.owner.push(shard);
        self.topo.push(position);
        self.cores[shard as usize].states.insert(id.0, NodeState::new(app, self.seed, id.0));
        self.halo_dirty = true;
        id
    }

    /// Adds many nodes at once, returning their ids in insertion order.
    pub fn add_nodes(&mut self, nodes: impl IntoIterator<Item = ((f64, f64), A)>) -> Vec<NodeId> {
        let iter = nodes.into_iter();
        let mut ids = Vec::with_capacity(iter.size_hint().0);
        for (position, app) in iter {
            ids.push(self.add_node(position, app));
        }
        ids
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.owner.len()
    }

    /// Current simulation time in microseconds — the max over shard
    /// clocks, i.e. the instant of the last event processed anywhere.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Merged metrics over all shards, in ascending shard order
    /// (associative, so the grouping is immaterial — see
    /// [`Metrics::merge`]). All fields except
    /// [`Metrics::peak_queue_len`] are bit-identical to the
    /// single-threaded oracle's.
    pub fn metrics(&self) -> Metrics {
        self.cores.iter().fold(Metrics::default(), |acc, c| acc.merge(c.metrics))
    }

    /// Per-shard metrics, by shard index.
    pub fn shard_metrics(&self) -> Vec<Metrics> {
        self.cores.iter().map(|c| c.metrics).collect()
    }

    /// Per-shard owned-node counts, by shard index.
    pub fn shard_node_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cores.len()];
        for &shard in &self.owner {
            counts[shard as usize] += 1;
        }
        counts
    }

    /// Per-shard resident engine bytes, by shard index: the halo
    /// topology fragment plus the node-state arena's slot storage —
    /// the O(owned tiles + fringe) footprint the halo refactor bounds
    /// (application-internal heap, e.g. message stores, is not
    /// visible from here). Deterministic, length/capacity based.
    pub fn shard_resident_bytes(&self) -> Vec<u64> {
        self.cores
            .iter()
            .map(|c| c.halo.as_ref().map_or(0, |h| h.resident_bytes()) + c.states.resident_bytes())
            .collect()
    }

    /// Resident bytes of the *shared* world topology (positions + hex
    /// index) — held exactly once, whatever the shard count.
    pub fn shared_topology_bytes(&self) -> u64 {
        self.topo.resident_bytes()
    }

    /// Borrow a node's application state (e.g. to inspect results).
    pub fn app(&self, id: NodeId) -> &A {
        let core = &self.cores[self.owner[id.index()] as usize];
        &core.states.get(id.index() as u32).expect("owner table is authoritative").app
    }

    /// Mutably borrow a node's application state.
    pub fn app_mut(&mut self, id: NodeId) -> &mut A {
        let core = &mut self.cores[self.owner[id.index()] as usize];
        &mut core.states.get_mut(id.index() as u32).expect("owner table is authoritative").app
    }

    /// A node's position.
    pub fn position(&self, id: NodeId) -> (f64, f64) {
        self.topo.position(id.index())
    }

    /// Calls `on_start` on every node (in id order), then routes the
    /// resulting cross-shard emissions.
    pub fn start(&mut self) {
        self.refresh_halos();
        let topo = &self.topo;
        let owner: &[u32] = &self.owner;
        for (i, &shard) in owner.iter().enumerate() {
            let id = NodeId(i as u32);
            let core = &mut self.cores[shard as usize];
            core.with_ctx(WorldRef { topo, owner }, id, |app, ctx| app.on_start(ctx));
        }
        self.route_outboxes();
    }

    /// Injects a message from "outside" the network, carrying the
    /// [`EventKey::EXTERNAL_SRC`] sentinel — lands directly on the
    /// queue of the core owning `to`, like the oracle's `inject`.
    pub fn inject(&mut self, to: NodeId, from: NodeId, payload: impl Into<Payload>) {
        let at = self.now_us;
        let key = EventKey::external(self.ext_seq);
        self.ext_seq += 1;
        let core = &mut self.cores[self.owner[to.index()] as usize];
        core.push_local(at, key, EventKind::Deliver { to, from, payload: payload.into() });
    }

    /// Moves one node in the shared topology and hands it off if its
    /// tile now belongs to a different shard. Must only be called at
    /// quiesce points (never mid-`run_until`).
    pub fn set_position(&mut self, id: NodeId, position: (f64, f64)) {
        self.topo.set_position(id.index(), position);
        self.halo_dirty = true;
        self.rehome(id.index());
    }

    /// Bulk position update at a quiesce point — the mobility tick.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one position per node is supplied.
    pub fn set_positions(&mut self, positions: &[(f64, f64)]) {
        assert_eq!(positions.len(), self.owner.len(), "one position per node");
        for (i, &position) in positions.iter().enumerate() {
            self.topo.set_position(i, position);
        }
        // A quiesce point: release index capacity churn left behind
        // (same hygiene, same spot, as the oracle engine).
        self.topo.compact();
        self.halo_dirty = true;
        self.rehome_all();
    }

    /// Rebuilds every core's halo from the shared topology — called at
    /// quiesce points, where positions and ownership are frozen. Each
    /// node is pushed (in ascending id order, keeping halo buckets
    /// sorted) into the halo of every shard whose owned cells' query
    /// covers can reach the node's cell; that shard set is pure
    /// geometry per cell and memoized in [`ShardedSimulator::halo_cache`].
    /// Also records the per-shard residency gauges
    /// (`shard.topo.resident_bytes`, `shard.halo.tiles`) — coordinator
    /// side, cores idle, so the series are deterministic.
    fn refresh_halos(&mut self) {
        if !self.halo_dirty {
            return;
        }
        self.halo_dirty = false;
        if self.cores.iter().all(|c| c.halo.is_none()) {
            return;
        }
        let topo = &self.topo;
        let cores = &mut self.cores;
        let halo_cache = &mut self.halo_cache;
        let index = topo.index().expect("halos exist only under HexIndex");
        let region = self.config.region_tiles.max(1) as i64;
        let shards = cores.len() as u64;
        let lattice = *index.lattice();
        let radio = self.config.radio_range;
        for core in cores.iter_mut() {
            if let Some(halo) = &mut core.halo {
                halo.begin_refresh();
            }
        }
        let mut cover: Vec<LatticePoint> = Vec::new();
        for id in 0..topo.len() as u32 {
            let cell = index.cell_of(id);
            let pos = topo.position(id as usize);
            let targets = halo_cache.entry(cell).or_insert_with(|| {
                // Which shards can query into `cell`: the owners of
                // every cell whose full-range cover reaches it. The
                // cover relation is symmetric (it depends only on the
                // cell-center distance), so this equals the cover *of*
                // `cell`, mapped through the region hash.
                lattice.cells_covering_into(lattice.point_xy(cell), radio, &mut cover);
                let mut set: Vec<u32> =
                    cover.iter().map(|&c| region_owner(region, shards, c)).collect();
                set.sort_unstable();
                set.dedup();
                set
            });
            for &s in targets.iter() {
                let halo = cores[s as usize].halo.as_mut().expect("all-or-none halos");
                halo.push(cell, id, pos);
            }
        }
        for core in cores.iter_mut() {
            if let Some(halo) = &mut core.halo {
                halo.end_refresh();
                core.telemetry.gauge_max(
                    "shard.topo.resident_bytes",
                    core.shard,
                    halo.resident_bytes(),
                );
                core.telemetry.gauge_max("shard.halo.tiles", core.shard, halo.tiles() as u64);
            }
        }
    }

    /// The batched re-homing pass behind [`Self::set_positions`]:
    /// computes every node's new owner first, then performs all
    /// handoffs with **one** queue scan per affected source core.
    /// (The per-node [`Self::rehome`] scan is O(moved × queue depth)
    /// per mobility tick — at swarm scale, with thousands of tile
    /// crossings per tick, that serial scan dominates the entire run.)
    /// Content-derived keys make the transfer order immaterial, so the
    /// batch is bit-identical to re-homing node by node.
    fn rehome_all(&mut self) {
        if self.cores.len() == 1 {
            return;
        }
        // (node, new owner) for exactly the nodes changing shards, in
        // ascending node order.
        let mut moves: Vec<(usize, u32)> = Vec::new();
        for i in 0..self.owner.len() {
            let new_owner = self.tile_owner(self.topo.position(i));
            if new_owner != self.owner[i] {
                moves.push((i, new_owner));
            }
        }
        if moves.is_empty() {
            return;
        }
        let moving: HashSet<u32> = moves.iter().map(|&(i, _)| i as u32).collect();
        let mut affected = vec![false; self.cores.len()];
        for &(i, _) in &moves {
            affected[self.owner[i] as usize] = true;
        }
        // One extract per source core that loses at least one node,
        // pulling every departing node's pending entries key-intact.
        let mut in_flight: Vec<ScheduledEvent<EventKind>> = Vec::new();
        for (src, hit) in affected.into_iter().enumerate() {
            if !hit {
                continue;
            }
            let core = &mut self.cores[src];
            in_flight.extend(
                core.queue.extract(&mut |kind: &EventKind| moving.contains(&kind.target().0)),
            );
            core.note_queue();
        }
        if self.telemetry.is_on() {
            let coord = self.cores.len() as u32;
            self.telemetry.event(
                TraceTag::Quiesce,
                coord,
                self.now_us,
                moves.len() as u64,
                in_flight.len() as u64,
            );
            for &(i, dst) in &moves {
                let from_to = (u64::from(self.owner[i]) << 32) | u64::from(dst);
                self.telemetry.event(TraceTag::Handoff, coord, self.now_us, i as u64, from_to);
            }
        }
        for &(i, dst) in &moves {
            let node = i as u32;
            let state = self.cores[self.owner[i] as usize].states.remove(node);
            self.cores[dst as usize].states.insert(node, state);
            self.owner[i] = dst;
        }
        for ev in in_flight {
            let dst = self.owner[ev.item.target().index()];
            self.cores[dst as usize].transfer_in(ev);
        }
        debug_assert_eq!(
            self.cores.iter().map(|c| c.states.len()).sum::<usize>(),
            self.owner.len(),
            "every node owned exactly once"
        );
    }

    /// Re-evaluates node `i`'s owning shard from its current tile and
    /// performs the handoff when it changed: the node's state (app, RNG
    /// stream, emission counter) moves wholesale, and every pending
    /// queue entry targeting it is extracted key-intact and transferred
    /// (uncounted) to the new owner.
    fn rehome(&mut self, i: usize) {
        let position = self.topo.position(i);
        let new_owner = self.tile_owner(position);
        let old_owner = self.owner[i];
        if new_owner == old_owner {
            return;
        }
        if self.telemetry.is_on() {
            let coord = self.cores.len() as u32;
            let from_to = (u64::from(old_owner) << 32) | u64::from(new_owner);
            self.telemetry.event(TraceTag::Handoff, coord, self.now_us, i as u64, from_to);
        }
        let node = i as u32;
        let state = self.cores[old_owner as usize].states.remove(node);
        let moved = self.cores[old_owner as usize]
            .queue
            .extract(&mut |kind: &EventKind| kind.target().0 == node);
        // `extract` changed the old core's depth; remirror its counters.
        self.cores[old_owner as usize].note_queue();
        let dst = &mut self.cores[new_owner as usize];
        dst.states.insert(node, state);
        for ev in moved {
            dst.transfer_in(ev);
        }
        self.owner[i] = new_owner;
    }

    /// Routes every core's per-destination outboxes, delivering each
    /// destination **one** coalesced batch (gathered across source
    /// cores in ascending shard order — order is immaterial for the
    /// run, keys are content-derived, but deterministic for the
    /// avoidance of doubt).
    fn route_outboxes(&mut self) {
        let n = self.cores.len();
        for dst in 0..n {
            let mut batch: Vec<ScheduledEvent<EventKind>> = Vec::new();
            for src in 0..n {
                batch.append(&mut self.cores[src].outboxes[dst]);
            }
            if !batch.is_empty() {
                self.cores[dst].ingest(batch);
            }
        }
    }

    /// BFS shortest path over the current connectivity graph, answered
    /// from the shared topology (accounted to shard 0's metrics, like
    /// every coordinator-issued query).
    pub fn shortest_path(&mut self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let core = &mut self.cores[0];
        self.topo
            .shortest_path(&mut core.scratch, &mut core.metrics, from.index(), to.index())
            .map(|path| path.into_iter().map(NodeId).collect())
    }

    /// Connected components of the current connectivity graph, answered
    /// from the shared topology.
    pub fn connected_components(&mut self) -> Vec<Vec<NodeId>> {
        let core = &mut self.cores[0];
        self.topo
            .connected_components(&mut core.scratch, &mut core.metrics)
            .into_iter()
            .map(|comp| comp.into_iter().map(NodeId).collect())
            .collect()
    }
}

impl<A: NodeApp + Send> ShardedSimulator<A> {
    /// Runs until every queue drains.
    pub fn run(&mut self) {
        self.run_windows(None);
    }

    /// Runs until the queues drain or the clock passes `deadline_us`.
    pub fn run_until(&mut self, deadline_us: u64) {
        self.run_windows(Some(deadline_us));
        self.now_us = self.now_us.max(deadline_us);
    }

    /// The conservative-lookahead window loop. Each iteration:
    ///
    /// 1. t₀ = the globally earliest pending event (local queues and
    ///    in-flight cross-shard envelopes);
    /// 2. horizon = `min(deadline, t₀ + L − 1)` with
    ///    L = `base_latency_us` — every cross-shard event emitted while
    ///    processing `≤ horizon` lands at `≥ t₀ + L > horizon`, so no
    ///    shard can receive an event inside a window it already passed;
    /// 3. all shards ingest their inbound envelope batch and process
    ///    their window **in parallel**, reading the shared topology and
    ///    their private halos (both frozen until the next quiesce);
    /// 4. barrier: per-destination outbox batches move to their
    ///    destination shards for the next window — one transfer per
    ///    (window, destination) pair.
    ///
    /// With one shard the core runs inline — no threads, no channels.
    fn run_windows(&mut self, deadline: Option<u64>) {
        self.refresh_halos();
        let n = self.cores.len();
        if n == 1 {
            let topo = &self.topo;
            let owner: &[u32] = &self.owner;
            let world = WorldRef { topo, owner };
            let core = &mut self.cores[0];
            while let Some((at, _)) = core.queue.peek() {
                if deadline.is_some_and(|d| at > d) {
                    break;
                }
                core.step(world);
            }
            debug_assert!(core.outboxes.iter().all(Vec::is_empty), "a lone shard owns every node");
            self.now_us = self.now_us.max(core.now_us);
            return;
        }
        let lookahead = self.config.base_latency_us;
        let mut nexts: Vec<Option<u64>> =
            self.cores.iter_mut().map(|core| core.next_time()).collect();
        let mut nows: Vec<u64> = self.cores.iter().map(|core| core.now_us).collect();
        // In-flight cross-shard envelopes, per destination shard.
        let mut pending: Vec<Vec<ScheduledEvent<EventKind>>> = (0..n).map(|_| Vec::new()).collect();
        let topo = &self.topo;
        let owner: &[u32] = &self.owner;
        std::thread::scope(|s| {
            let (reply_tx, reply_rx): (SyncSender<Reply>, Receiver<Reply>) = sync_channel(n);
            let mut cmd_txs: Vec<SyncSender<Cmd>> = Vec::with_capacity(n);
            for (shard, core) in self.cores.iter_mut().enumerate() {
                let (tx, rx) = sync_channel::<Cmd>(2);
                cmd_txs.push(tx);
                let reply_tx = reply_tx.clone();
                s.spawn(move || {
                    let world = WorldRef { topo, owner };
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            Cmd::Window { start, horizon, inbound } => {
                                let ingested = inbound.len() as u64;
                                core.ingest(inbound);
                                let popped = core.process_until(world, horizon);
                                if core.telemetry.is_on() {
                                    // Span stamped from sim time (the
                                    // window bounds), not wall clock:
                                    // deterministic by construction.
                                    let tag = if popped == 0 {
                                        TraceTag::Stall
                                    } else {
                                        TraceTag::Window
                                    };
                                    core.telemetry.span(
                                        tag,
                                        core.shard,
                                        start,
                                        horizon - start + 1,
                                        popped,
                                        ingested,
                                    );
                                }
                                let reply = Reply {
                                    shard,
                                    next: core.next_time(),
                                    now: core.now_us,
                                    outboxes: core.take_outboxes(),
                                };
                                if reply_tx.send(reply).is_err() {
                                    break;
                                }
                            }
                            Cmd::Ingest { inbound } => core.ingest(inbound),
                            Cmd::Exit => break,
                        }
                    }
                });
            }
            loop {
                // 1. The global floor over local queues and envelopes.
                let mut t0: Option<u64> = None;
                for i in 0..n {
                    for t in nexts[i].into_iter().chain(pending[i].iter().map(|e| e.at_us)) {
                        t0 = Some(t0.map_or(t, |cur: u64| cur.min(t)));
                    }
                }
                let Some(t0) = t0 else { break };
                if deadline.is_some_and(|d| t0 > d) {
                    break;
                }
                // 2. The conservative window.
                let mut horizon = t0 + lookahead - 1;
                if let Some(d) = deadline {
                    horizon = horizon.min(d);
                }
                // 3. Parallel window execution.
                for (i, tx) in cmd_txs.iter().enumerate() {
                    let inbound = std::mem::take(&mut pending[i]);
                    tx.send(Cmd::Window { start: t0, horizon, inbound }).expect("worker alive");
                }
                // 4. Barrier: collect every reply, then append each
                // pre-bucketed outbox batch in ascending shard order
                // (ownership is frozen during a window, so the
                // bucketing workers computed stays correct here).
                let mut replies: Vec<Option<Reply>> = (0..n).map(|_| None).collect();
                for _ in 0..n {
                    let reply = reply_rx.recv().expect("worker alive");
                    let shard = reply.shard;
                    replies[shard] = Some(reply);
                }
                for slot in &mut replies {
                    let reply = slot.take().expect("one reply per shard");
                    nexts[reply.shard] = reply.next;
                    nows[reply.shard] = reply.now;
                    for (dst, mut batch) in reply.outboxes.into_iter().enumerate() {
                        pending[dst].append(&mut batch);
                    }
                }
            }
            // Post-deadline flush: surviving envelopes all land beyond
            // the deadline (the lookahead guarantees it); park them on
            // their destination queues for the next run call.
            for (i, tx) in cmd_txs.iter().enumerate() {
                let inbound = std::mem::take(&mut pending[i]);
                if !inbound.is_empty() {
                    debug_assert!(deadline.is_some(), "a full run drains every envelope");
                    tx.send(Cmd::Ingest { inbound }).expect("worker alive");
                }
                tx.send(Cmd::Exit).expect("worker alive");
            }
        });
        self.now_us = self.now_us.max(nows.iter().copied().max().unwrap_or(0));
    }
}

impl<A: NodeApp + Send> SimDriver for ShardedSimulator<A> {
    fn start(&mut self) {
        ShardedSimulator::start(self);
    }

    fn run(&mut self) {
        ShardedSimulator::run(self);
    }

    fn run_until(&mut self, deadline_us: u64) {
        ShardedSimulator::run_until(self, deadline_us);
    }

    fn set_positions(&mut self, positions: &[(f64, f64)]) {
        ShardedSimulator::set_positions(self, positions);
    }

    fn now_us(&self) -> u64 {
        ShardedSimulator::now_us(self)
    }
}

impl<A: NodeApp> std::fmt::Debug for ShardedSimulator<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulator")
            .field("shards", &self.cores.len())
            .field("nodes", &self.owner.len())
            .field("now_us", &self.now_us)
            .field("metrics", &self.metrics())
            .finish()
    }
}
