//! Per-shard halo topology: exact positions for the tiles a shard owns
//! plus the fringe of neighbor tiles its queries can reach.
//!
//! A shard core answers two hot queries while processing a window —
//! broadcast targets and fan-out-capped k-nearest — and both only ever
//! look within one radio range of a node the core *owns*. The halo is
//! the minimal cell set that makes those answers exact: for each owned
//! cell `c`, every cell of `cells_covering_into(center(c), R)`. That
//! is precisely the cover [`SpatialIndex`](crate::spatial::SpatialIndex)
//! scans for a query from *anywhere inside* `c` (the cover formula
//! depends only on the query's snapped cell, and points inside `c`
//! snap to `c`), so a query served from halo buckets gathers the
//! identical candidate set — and, because the cover's size is pure
//! geometry, reports the identical `cells_scanned` — as the oracle's
//! global index. Positions change only at conservative-lookahead
//! quiesce points (`docs/SIM.md` §6), which is when the coordinator
//! refreshes halos, so halo contents are never stale mid-window.
//!
//! Unicast BFS routing and connected components still read the shared
//! global topology: a route legitimately traverses the whole plane.
//! What the halo removes is the per-core *replica* of that topology —
//! per-shard resident bytes become O(owned tiles + fringe), not O(n).

use crate::sim::{Metrics, SimConfig};
use crate::topo::distance;
use msb_lattice::{LatticeConfig, LatticePoint};
use std::collections::HashMap;

/// One node resident in a halo cell: its id and exact position.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HaloEntry {
    pub(crate) id: u32,
    pub(crate) x: f64,
    pub(crate) y: f64,
}

/// A shard core's private topology fragment (owned tiles + fringe),
/// rebuilt by the coordinator at every quiesce point.
#[derive(Debug)]
pub(crate) struct HaloIndex {
    lattice: LatticeConfig,
    radio_range: f64,
    /// Cell → resident nodes, each bucket in ascending id order (the
    /// refresh pushes nodes in id order).
    cells: HashMap<LatticePoint, Vec<HaloEntry>>,
    /// Scratch: the cell cover of the in-flight query.
    cover: Vec<LatticePoint>,
    /// Scratch: candidates gathered from covered buckets.
    gather: Vec<HaloEntry>,
    /// Scratch: `(distance, id)` ranking for k-nearest selection.
    ranked: Vec<(f64, u32)>,
}

impl HaloIndex {
    /// An empty halo over the same lattice the global
    /// [`SpatialIndex`](crate::spatial::SpatialIndex) uses — same cell
    /// scale, same origin, so covers and snaps agree bit-for-bit.
    pub(crate) fn new(config: &SimConfig) -> Self {
        HaloIndex {
            lattice: LatticeConfig::new((0.0, 0.0), config.cell_d.unwrap_or(config.radio_range)),
            radio_range: config.radio_range,
            cells: HashMap::new(),
            cover: Vec::new(),
            gather: Vec::new(),
            ranked: Vec::new(),
        }
    }

    /// Starts a refresh: empties every bucket in place (capacity kept —
    /// the common case repopulates the same cells).
    pub(crate) fn begin_refresh(&mut self) {
        for bucket in self.cells.values_mut() {
            bucket.clear();
        }
    }

    /// Adds one resident during a refresh. The coordinator pushes nodes
    /// in ascending id order, which keeps every bucket id-sorted.
    pub(crate) fn push(&mut self, cell: LatticePoint, id: u32, pos: (f64, f64)) {
        self.cells.entry(cell).or_default().push(HaloEntry { id, x: pos.0, y: pos.1 });
    }

    /// Finishes a refresh: drops cells the halo no longer covers and
    /// releases excess bucket capacity (the same hygiene as
    /// [`SpatialIndex::compact`](crate::spatial::SpatialIndex::compact)),
    /// so a core that migrated across the plane doesn't pin its old
    /// neighborhood's allocation.
    pub(crate) fn end_refresh(&mut self) {
        self.cells.retain(|_, bucket| !bucket.is_empty());
        for bucket in self.cells.values_mut() {
            if bucket.capacity() >= 2 * bucket.len().max(4) {
                bucket.shrink_to_fit();
            }
        }
        if self.cells.capacity() >= 2 * self.cells.len().max(16) {
            self.cells.shrink_to_fit();
        }
    }

    /// Number of resident (non-empty) halo cells — the
    /// `shard.halo.tiles` gauge.
    pub(crate) fn tiles(&self) -> usize {
        self.cells.len()
    }

    /// Estimated resident heap bytes (buckets at capacity plus map
    /// entry overhead; scratch excluded). Deterministic — capacities
    /// are a pure function of the refresh history — so safe for the
    /// `shard.topo.resident_bytes` telemetry gauge.
    pub(crate) fn resident_bytes(&self) -> u64 {
        let bucket_bytes: usize =
            self.cells.values().map(|b| b.capacity() * std::mem::size_of::<HaloEntry>()).sum();
        let entry = std::mem::size_of::<(LatticePoint, Vec<HaloEntry>)>();
        (bucket_bytes + self.cells.len() * entry) as u64
    }

    /// Every other node within radio range of `src` (node `from`'s
    /// position), with its distance, in ascending id order — byte-,
    /// order-, and metrics-identical to
    /// [`Topology::broadcast_targets`](crate::topo::Topology::broadcast_targets)
    /// under the hex index, provided `src` lies in a cell this halo
    /// covers (the refresh guarantees that for owned nodes).
    pub(crate) fn broadcast_targets(
        &mut self,
        metrics: &mut Metrics,
        from: u32,
        src: (f64, f64),
        out: &mut Vec<(u32, f64)>,
    ) {
        metrics.neighbor_queries += 1;
        out.clear();
        self.lattice.cells_covering_into(src, self.radio_range, &mut self.cover);
        metrics.cells_scanned += self.cover.len() as u64;
        self.gather.clear();
        for cell in &self.cover {
            if let Some(bucket) = self.cells.get(cell) {
                self.gather.extend_from_slice(bucket);
            }
        }
        // Buckets are id-sorted but arrive in cell order; restore the
        // global ascending id order the oracle delivers in.
        self.gather.sort_unstable_by_key(|e| e.id);
        for e in &self.gather {
            if e.id != from {
                let d = distance(src, (e.x, e.y));
                if d <= self.radio_range {
                    out.push((e.id, d));
                }
            }
        }
    }

    /// The `k` nearest other nodes within radio range of `src`, ties
    /// breaking toward the smaller id, returned in ascending id order —
    /// replicating [`Topology::k_nearest`](crate::topo::Topology::k_nearest)'s
    /// indexed branch exactly: same geometric radius growth, same
    /// per-iteration `cells_scanned`, same `(distance, id)` selection.
    pub(crate) fn k_nearest(
        &mut self,
        metrics: &mut Metrics,
        from: u32,
        src: (f64, f64),
        k: usize,
        out: &mut Vec<u32>,
    ) {
        metrics.neighbor_queries += 1;
        out.clear();
        let max_range = self.radio_range;
        // One extra slot so the querying node (distance 0) never crowds
        // out a real neighbor — mirrors the oracle's `k + 1`.
        let want = k + 1;
        let mut scanned = 0u64;
        let mut r = self.lattice.d().min(max_range);
        loop {
            self.lattice.cells_covering_into(src, r, &mut self.cover);
            scanned += self.cover.len() as u64;
            self.gather.clear();
            for cell in &self.cover {
                if let Some(bucket) = self.cells.get(cell) {
                    self.gather.extend_from_slice(bucket);
                }
            }
            self.ranked.clear();
            for e in &self.gather {
                let d = distance(src, (e.x, e.y));
                if d <= r {
                    self.ranked.push((d, e.id));
                }
            }
            // At least `want` nodes within radius r: the nearest overall
            // are all among `ranked` ((d, id) is a total order, so the
            // gather order cannot matter).
            if self.ranked.len() >= want || r >= max_range {
                self.ranked.sort_unstable_by(|a, b| {
                    a.partial_cmp(b).expect("distances are finite, never NaN")
                });
                self.ranked.truncate(want);
                out.extend(self.ranked.iter().map(|&(_, i)| i));
                break;
            }
            r = (r * 2.0).min(max_range);
        }
        metrics.cells_scanned += scanned;
        out.retain(|&i| i != from);
        out.truncate(k);
        // Deliver in ascending id order, like a full broadcast.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;
    use crate::spatial::{SpatialIndex, SpatialScratch};

    /// Build a halo holding *all* nodes (a full-plane halo) next to the
    /// global index over the same population, and check both answer
    /// every query identically — the unit-level kernel of the sharded
    /// differential suites.
    fn world(positions: &[(f64, f64)]) -> (HaloIndex, SpatialIndex, SimConfig) {
        let config = SimConfig::default();
        let mut halo = HaloIndex::new(&config);
        let mut index = SpatialIndex::new(config.radio_range);
        halo.begin_refresh();
        for (i, &p) in positions.iter().enumerate() {
            index.push(p);
            halo.push(halo.lattice.snap(p), i as u32, p);
        }
        halo.end_refresh();
        (halo, index, config)
    }

    fn scatter(n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|i| ((i as f64 * 37.3) % 400.0, (i as f64 * 23.9) % 350.0)).collect()
    }

    #[test]
    fn broadcast_targets_match_the_global_index() {
        let positions = scatter(300);
        let (mut halo, index, config) = world(&positions);
        let mut scratch = SpatialScratch::default();
        let mut cand = Vec::new();
        for from in [0u32, 17, 150, 299] {
            let src = positions[from as usize];
            let mut m_halo = Metrics::default();
            let mut out_halo = Vec::new();
            halo.broadcast_targets(&mut m_halo, from, src, &mut out_halo);
            // The oracle path: covered candidates, exact filter.
            let mut m_idx = Metrics::default();
            m_idx.neighbor_queries += 1;
            m_idx.cells_scanned +=
                index.candidates_into(&mut scratch, src, config.radio_range, &mut cand);
            let oracle: Vec<(u32, f64)> = cand
                .iter()
                .filter(|&&i| i != from)
                .map(|&i| (i, distance(src, positions[i as usize])))
                .filter(|&(_, d)| d <= config.radio_range)
                .collect();
            assert_eq!(out_halo, oracle, "from {from}");
            assert_eq!(m_halo, m_idx, "from {from}: metrics diverged");
            assert!(!out_halo.is_empty(), "scenario must exercise non-empty neighborhoods");
        }
    }

    #[test]
    fn k_nearest_matches_the_global_index() {
        let positions = scatter(300);
        let (mut halo, index, config) = world(&positions);
        let mut scratch = SpatialScratch::default();
        for from in [3u32, 77, 299] {
            for k in [0usize, 1, 4, 50] {
                let src = positions[from as usize];
                let mut m_halo = Metrics::default();
                let mut out_halo = Vec::new();
                halo.k_nearest(&mut m_halo, from, src, k, &mut out_halo);
                let mut m_idx = Metrics::default();
                m_idx.neighbor_queries += 1;
                let mut oracle = Vec::new();
                m_idx.cells_scanned += index.k_nearest_into(
                    &mut scratch,
                    src,
                    k + 1,
                    config.radio_range,
                    |i| positions[i as usize],
                    &mut oracle,
                );
                oracle.retain(|&i| i != from);
                oracle.truncate(k);
                oracle.sort_unstable();
                assert_eq!(out_halo, oracle, "from {from} k {k}");
                assert_eq!(m_halo, m_idx, "from {from} k {k}: metrics diverged");
            }
        }
    }

    #[test]
    fn refresh_drops_stale_cells_and_releases_capacity() {
        let config = SimConfig::default();
        let mut halo = HaloIndex::new(&config);
        halo.begin_refresh();
        for i in 0..200u32 {
            halo.push(halo.lattice.snap((0.0, 0.0)), i, (0.0, 0.0));
        }
        halo.end_refresh();
        assert_eq!(halo.tiles(), 1);
        let crowded = halo.resident_bytes();
        // The whole neighborhood moves away: next refresh covers a
        // distant cell with two residents.
        halo.begin_refresh();
        halo.push(halo.lattice.snap((5000.0, 5000.0)), 7, (5000.0, 5000.0));
        halo.push(halo.lattice.snap((5000.0, 5000.0)), 9, (5000.0, 5000.0));
        halo.end_refresh();
        assert_eq!(halo.tiles(), 1);
        assert!(
            halo.resident_bytes() < crowded,
            "stale crowd capacity must be released: {} >= {crowded}",
            halo.resident_bytes()
        );
        let mut out = Vec::new();
        halo.broadcast_targets(&mut Metrics::default(), 7, (5000.0, 5000.0), &mut out);
        assert_eq!(out.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![9]);
    }
}
