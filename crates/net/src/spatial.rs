//! Hex-grid spatial index over node positions.
//!
//! The simulator's hot queries — "which nodes are within radio range of
//! this position?" for every broadcast and every BFS visit — were linear
//! scans over all nodes, capping experiments at a few hundred nodes.
//! [`SpatialIndex`] buckets nodes by the [`msb_lattice`] hexagonal cell
//! their position snaps to (the paper's own vicinity construct, §III-D)
//! and answers a range query by scanning only the cells that could hold
//! an in-range node, making query cost proportional to local density
//! instead of swarm size.
//!
//! # Cell-size heuristic
//!
//! With cell scale `d` and radio range `R`, a query must scan every cell
//! within `R + 2·d/√3` of the query position (see
//! [`LatticeConfig::cells_covering_into`]), i.e. about
//! `(2π/√3)·((R + 2d/√3)/d)²` cells, and then distance-filter the
//! candidates those cells hold — everything within roughly `R + 2d/√3`
//! of the query.
//!
//! * `d ≪ R`: many near-empty cells per query; hash-map traffic
//!   dominates.
//! * `d ≫ R`: few cells, but each holds far-away nodes that all fail the
//!   distance filter — the scan degenerates back toward O(n).
//! * `d ≈ R` balances the two: ≈ 17 cells per query analytically — 19
//!   measured, boundary cells included — and a candidate set only
//!   ≈ (1 + 2/√3)² ≈ 4.6× the true in-range population, independent
//!   of swarm size. This is the default
//!   ([`SimConfig::cell_d`](crate::sim::SimConfig::cell_d) = `None` uses
//!   the radio range).
//!
//! Queries return candidate ids in ascending order and leave the exact
//! distance filter to the caller, which is what makes the indexed
//! simulator *bit-identical* to the naive scan: same candidates surviving
//! the same `distance(a, b) <= range` comparison, visited in the same
//! order, drawing the same RNG stream.
//!
//! # Shared read-only queries
//!
//! Queries take `&self` plus an external [`SpatialScratch`], so one
//! index can be borrowed immutably by many readers (the sharded
//! engine's worker cores all answer BFS routing from the coordinator's
//! single global index) while each reader reuses its own scratch
//! buffers allocation-free.

use msb_lattice::{LatticeConfig, LatticePoint};
use std::collections::HashMap;

/// Reusable query-side buffers for [`SpatialIndex`] range and k-NN
/// queries. Owning the scratch *outside* the index is what lets queries
/// take `&self`: the index itself never mutates during a query, so any
/// number of readers can share one index, each with its own scratch.
#[derive(Debug, Clone, Default)]
pub struct SpatialScratch {
    /// Cell cover of the current query.
    cover: Vec<LatticePoint>,
    /// Candidate ids for [`SpatialIndex::k_nearest_into`].
    knn_ids: Vec<u32>,
    /// Ranked `(distance, id)` pairs for k-NN selection.
    knn_ranked: Vec<(f64, u32)>,
}

/// A bucket index mapping hexagonal cells to the nodes inside them.
///
/// Node ids are dense `u32` indices assigned append-only (matching
/// [`Simulator::add_node`](crate::sim::Simulator::add_node) order);
/// positions move with [`SpatialIndex::update`].
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    lattice: LatticeConfig,
    /// Cell → node ids inside it, each vec kept sorted ascending.
    cells: HashMap<LatticePoint, Vec<u32>>,
    /// Per node, the cell it currently occupies.
    node_cell: Vec<LatticePoint>,
}

impl SpatialIndex {
    /// Creates an empty index with hexagonal cell scale `cell_d` (see the
    /// module docs for how to choose it; the simulator defaults to the
    /// radio range).
    ///
    /// # Panics
    ///
    /// Panics if `cell_d` is not strictly positive and finite.
    pub fn new(cell_d: f64) -> Self {
        SpatialIndex {
            lattice: LatticeConfig::new((0.0, 0.0), cell_d),
            cells: HashMap::new(),
            node_cell: Vec::new(),
        }
    }

    /// The underlying lattice.
    pub fn lattice(&self) -> &LatticeConfig {
        &self.lattice
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.node_cell.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.node_cell.is_empty()
    }

    /// Number of non-empty cells (diagnostic).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// The cell node `id` currently occupies — the tile key the sharded
    /// engine partitions and halos by, read straight from the index so
    /// halo refresh never re-snaps positions.
    pub fn cell_of(&self, id: u32) -> LatticePoint {
        self.node_cell[id as usize]
    }

    /// Estimated resident heap bytes of the index: bucket storage
    /// (capacity, not just length), the per-node cell table, and the
    /// cell map's entry overhead. Computed from lengths and `Vec`
    /// capacities only — both are deterministic functions of the
    /// operation history, so the estimate is safe to expose through
    /// deterministic telemetry.
    pub fn resident_bytes(&self) -> u64 {
        let bucket_bytes: usize =
            self.cells.values().map(|b| b.capacity() * std::mem::size_of::<u32>()).sum::<usize>();
        let entry = std::mem::size_of::<(LatticePoint, Vec<u32>)>();
        (bucket_bytes
            + self.cells.len() * entry
            + self.node_cell.capacity() * std::mem::size_of::<LatticePoint>()) as u64
    }

    /// Appends the next node (id `self.len()`) at `pos`.
    pub fn push(&mut self, pos: (f64, f64)) -> u32 {
        let id = self.node_cell.len() as u32;
        let cell = self.lattice.snap(pos);
        self.node_cell.push(cell);
        // Ids are appended in increasing order, so pushing keeps the
        // bucket sorted.
        self.cells.entry(cell).or_default().push(id);
        id
    }

    /// Moves node `id` to `pos`, rebucketing it if it crossed a cell
    /// boundary. O(bucket size) worst case, O(1) amortized for the
    /// common within-cell mobility tick. Emptied cells leave the map
    /// (their bucket's capacity is released with it); buckets that only
    /// *shrank* keep capacity until [`SpatialIndex::compact`].
    pub fn update(&mut self, id: u32, pos: (f64, f64)) {
        let new_cell = self.lattice.snap(pos);
        let old_cell = self.node_cell[id as usize];
        if new_cell == old_cell {
            return;
        }
        let bucket = self.cells.get_mut(&old_cell).expect("node's cell must exist");
        let at = bucket.binary_search(&id).expect("node must be in its cell's bucket");
        bucket.remove(at);
        if bucket.is_empty() {
            self.cells.remove(&old_cell);
        }
        self.node_cell[id as usize] = new_cell;
        let bucket = self.cells.entry(new_cell).or_default();
        let at = bucket.binary_search(&id).unwrap_err();
        bucket.insert(at, id);
    }

    /// Releases excess bucket capacity left behind by bulk removals and
    /// churn handoffs: any bucket whose capacity has drifted to at
    /// least twice its population is shrunk to fit, and the cell map's
    /// own table is shrunk when mostly empty. Long churn runs call this
    /// at quiesce points so a transient crowd through one cell doesn't
    /// pin its peak allocation for the rest of the run. Purely an
    /// allocation matter: contents, query answers, and metrics are
    /// untouched.
    pub fn compact(&mut self) {
        for bucket in self.cells.values_mut() {
            if bucket.capacity() >= 2 * bucket.len().max(4) {
                bucket.shrink_to_fit();
            }
        }
        if self.cells.capacity() >= 2 * self.cells.len().max(16) {
            self.cells.shrink_to_fit();
        }
    }

    /// Fills `out` with every node id whose position *may* be within
    /// `range` of `center` — a superset of the true answer, sorted
    /// ascending, never containing duplicates (each node lives in exactly
    /// one cell). Returns the number of cells scanned.
    ///
    /// The caller applies the exact distance filter; see the module docs
    /// for why the filter stays out of the index.
    pub fn candidates_into(
        &self,
        scratch: &mut SpatialScratch,
        center: (f64, f64),
        range: f64,
        out: &mut Vec<u32>,
    ) -> u64 {
        out.clear();
        self.lattice.cells_covering_into(center, range, &mut scratch.cover);
        for cell in &scratch.cover {
            if let Some(bucket) = self.cells.get(cell) {
                out.extend_from_slice(bucket);
            }
        }
        // Buckets are internally sorted but arrive in cell order; restore
        // the global ascending id order the naive scan iterates in.
        out.sort_unstable();
        scratch.cover.len() as u64
    }

    /// Fills `out` with the `k` nodes nearest to `center` among those
    /// within `max_range` of it (fewer if fewer exist), ordered by
    /// ascending `(distance, id)` — ties at equal distance break toward
    /// the smaller id, which is what keeps the answer identical to a
    /// sorted naive scan. `pos_of` supplies each candidate's exact
    /// position (the index stores cells, not coordinates). Returns the
    /// number of cells scanned.
    ///
    /// The search grows its cell-cover radius geometrically from one
    /// cell scale until `k` in-radius nodes are found or `max_range` is
    /// reached, so a query in a dense crowd touches only nearby cells —
    /// this is the fan-out-capped re-flood query
    /// ([`NodeCtx::broadcast_k_nearest`](crate::sim::NodeCtx::broadcast_k_nearest))
    /// and the building block for directional-radio neighborhoods.
    ///
    /// # Panics
    ///
    /// Panics unless `max_range` is finite and non-negative.
    pub fn k_nearest_into(
        &self,
        scratch: &mut SpatialScratch,
        center: (f64, f64),
        k: usize,
        max_range: f64,
        pos_of: impl Fn(u32) -> (f64, f64),
        out: &mut Vec<u32>,
    ) -> u64 {
        assert!(max_range >= 0.0 && max_range.is_finite(), "max_range must be finite");
        out.clear();
        if k == 0 {
            return 0;
        }
        let mut ids = std::mem::take(&mut scratch.knn_ids);
        let mut ranked = std::mem::take(&mut scratch.knn_ranked);
        let mut scanned = 0u64;
        let mut r = self.lattice.d().min(max_range);
        loop {
            scanned += self.candidates_into(scratch, center, r, &mut ids);
            ranked.clear();
            for &i in &ids {
                let p = pos_of(i);
                let d = ((p.0 - center.0).powi(2) + (p.1 - center.1).powi(2)).sqrt();
                if d <= r {
                    ranked.push((d, i));
                }
            }
            // At least k nodes lie within radius r, so the k nearest
            // overall (within max_range) are all among `ranked`.
            if ranked.len() >= k || r >= max_range {
                ranked.sort_unstable_by(|a, b| {
                    a.partial_cmp(b).expect("distances are finite, never NaN")
                });
                ranked.truncate(k);
                out.extend(ranked.iter().map(|&(_, i)| i));
                scratch.knn_ids = ids;
                scratch.knn_ranked = ranked;
                return scanned;
            }
            r = (r * 2.0).min(max_range);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(positions: &[(f64, f64)], center: (f64, f64), range: f64) -> Vec<u32> {
        positions
            .iter()
            .enumerate()
            .filter(|(_, p)| ((p.0 - center.0).powi(2) + (p.1 - center.1).powi(2)).sqrt() <= range)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn filtered(
        idx: &SpatialIndex,
        positions: &[(f64, f64)],
        center: (f64, f64),
        range: f64,
    ) -> Vec<u32> {
        let mut scratch = SpatialScratch::default();
        let mut cand = Vec::new();
        idx.candidates_into(&mut scratch, center, range, &mut cand);
        cand.retain(|&i| {
            let p = positions[i as usize];
            ((p.0 - center.0).powi(2) + (p.1 - center.1).powi(2)).sqrt() <= range
        });
        cand
    }

    #[test]
    fn candidates_sorted_and_deduplicated() {
        let mut idx = SpatialIndex::new(10.0);
        let positions: Vec<(f64, f64)> =
            (0..50).map(|i| ((i % 7) as f64 * 9.0, (i / 7) as f64 * 9.0)).collect();
        for &p in &positions {
            idx.push(p);
        }
        let mut cand = Vec::new();
        idx.candidates_into(&mut SpatialScratch::default(), (30.0, 30.0), 25.0, &mut cand);
        assert!(cand.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates: {cand:?}");
    }

    #[test]
    fn matches_naive_scan_after_filter() {
        let mut idx = SpatialIndex::new(15.0);
        let positions: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let x = (i as f64 * 13.37) % 190.0;
                let y = (i as f64 * 7.77) % 170.0;
                (x, y)
            })
            .collect();
        for &p in &positions {
            idx.push(p);
        }
        for &(center, range) in
            &[((50.0, 50.0), 40.0), ((0.0, 0.0), 15.0), ((190.0, 170.0), 60.0), ((95.0, 85.0), 0.0)]
        {
            assert_eq!(
                filtered(&idx, &positions, center, range),
                naive(&positions, center, range),
                "center {center:?} range {range}"
            );
        }
    }

    #[test]
    fn update_rebuckets_across_cells() {
        let mut idx = SpatialIndex::new(10.0);
        let mut positions = vec![(0.0, 0.0), (1.0, 1.0), (100.0, 0.0)];
        for &p in &positions {
            idx.push(p);
        }
        // Move node 0 far away and node 2 next to node 1.
        positions[0] = (200.0, 200.0);
        idx.update(0, positions[0]);
        positions[2] = (2.0, 0.5);
        idx.update(2, positions[2]);
        assert_eq!(filtered(&idx, &positions, (0.0, 0.0), 5.0), vec![1, 2]);
        assert_eq!(filtered(&idx, &positions, (200.0, 200.0), 5.0), vec![0]);
    }

    #[test]
    fn within_cell_move_is_a_noop_rebucket() {
        let mut idx = SpatialIndex::new(50.0);
        idx.push((0.0, 0.0));
        idx.update(0, (1.0, 1.0)); // same cell
        assert_eq!(idx.occupied_cells(), 1);
        let mut cand = Vec::new();
        idx.candidates_into(&mut SpatialScratch::default(), (0.0, 0.0), 10.0, &mut cand);
        assert_eq!(cand, vec![0]);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = SpatialIndex::new(10.0);
        let mut cand = vec![7];
        let scanned =
            idx.candidates_into(&mut SpatialScratch::default(), (0.0, 0.0), 100.0, &mut cand);
        assert!(cand.is_empty());
        assert!(scanned > 0, "cells are scanned even when unoccupied");
    }

    #[test]
    fn cell_of_tracks_updates() {
        let mut idx = SpatialIndex::new(10.0);
        idx.push((0.0, 0.0));
        let home = idx.cell_of(0);
        assert_eq!(home, idx.lattice().snap((0.0, 0.0)));
        idx.update(0, (100.0, 100.0));
        assert_eq!(idx.cell_of(0), idx.lattice().snap((100.0, 100.0)));
        assert_ne!(idx.cell_of(0), home);
    }

    #[test]
    fn compact_releases_bulk_churn_capacity() {
        // Crowd 200 transients plus one stayer into a cell, then march
        // the crowd out: the stayer's bucket keeps one resident but
        // pins the crowd's capacity until compact() shrinks it.
        let mut idx = SpatialIndex::new(10.0);
        idx.push((0.0, 0.0)); // the stayer, id 0
        for _ in 0..200 {
            idx.push((0.0, 0.0));
        }
        for id in 1..=200u32 {
            idx.update(id, (500.0, 500.0));
        }
        let drained = idx.resident_bytes();
        idx.compact();
        let after = idx.resident_bytes();
        assert!(
            after < drained,
            "compact must release the drained bucket's capacity: {after} >= {drained}"
        );
        // Queries still answer exactly.
        let mut cand = Vec::new();
        idx.candidates_into(&mut SpatialScratch::default(), (0.0, 0.0), 5.0, &mut cand);
        assert_eq!(cand, vec![0]);
    }

    #[test]
    fn resident_bytes_grows_with_population() {
        let mut idx = SpatialIndex::new(10.0);
        let empty = idx.resident_bytes();
        for i in 0..100 {
            idx.push((i as f64 * 7.0, 0.0));
        }
        assert!(idx.resident_bytes() > empty);
    }

    /// The k-NN oracle: ascending `(distance, id)` over all nodes in
    /// range, truncated to k.
    fn naive_k_nearest(
        positions: &[(f64, f64)],
        center: (f64, f64),
        k: usize,
        max_range: f64,
    ) -> Vec<u32> {
        let mut ranked: Vec<(f64, u32)> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| (((p.0 - center.0).powi(2) + (p.1 - center.1).powi(2)).sqrt(), i as u32))
            .filter(|&(d, _)| d <= max_range)
            .collect();
        ranked.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        ranked.truncate(k);
        ranked.into_iter().map(|(_, i)| i).collect()
    }

    #[test]
    fn k_nearest_matches_naive_oracle() {
        let mut idx = SpatialIndex::new(12.0);
        let positions: Vec<(f64, f64)> =
            (0..150).map(|i| ((i as f64 * 17.3) % 160.0, (i as f64 * 11.9) % 140.0)).collect();
        for &p in &positions {
            idx.push(p);
        }
        let mut scratch = SpatialScratch::default();
        let mut out = Vec::new();
        for &(center, k, max_range) in &[
            ((80.0, 70.0), 5, 200.0),
            ((0.0, 0.0), 1, 50.0),
            ((80.0, 70.0), 12, 30.0), // range-bounded: fewer than k may exist
            ((160.0, 140.0), 150, 300.0), // k >= population
            ((40.0, 40.0), 7, 0.0),   // zero range
        ] {
            idx.k_nearest_into(
                &mut scratch,
                center,
                k,
                max_range,
                |i| positions[i as usize],
                &mut out,
            );
            assert_eq!(
                out,
                naive_k_nearest(&positions, center, k, max_range),
                "center {center:?} k {k} range {max_range}"
            );
        }
    }

    #[test]
    fn k_nearest_breaks_distance_ties_by_id() {
        // Four nodes at the exact same distance: the cap must keep the
        // smallest ids, deterministically.
        let mut idx = SpatialIndex::new(10.0);
        let positions = vec![(10.0, 0.0), (0.0, 10.0), (-10.0, 0.0), (0.0, -10.0), (50.0, 50.0)];
        for &p in &positions {
            idx.push(p);
        }
        let mut out = Vec::new();
        let mut scratch = SpatialScratch::default();
        idx.k_nearest_into(&mut scratch, (0.0, 0.0), 2, 100.0, |i| positions[i as usize], &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn k_nearest_zero_k_is_empty_and_free() {
        let mut idx = SpatialIndex::new(10.0);
        idx.push((0.0, 0.0));
        let mut out = vec![9];
        let scanned = idx.k_nearest_into(
            &mut SpatialScratch::default(),
            (0.0, 0.0),
            0,
            50.0,
            |_| (0.0, 0.0),
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(scanned, 0);
    }

    #[test]
    fn exact_range_boundary_is_a_candidate() {
        // A node exactly at `range` must survive: the cover's margin
        // absorbs float slack.
        let mut idx = SpatialIndex::new(50.0);
        let positions = vec![(0.0, 0.0), (50.0, 0.0), (150.0, 0.0)];
        for &p in &positions {
            idx.push(p);
        }
        assert_eq!(filtered(&idx, &positions, (0.0, 0.0), 50.0), vec![0, 1]);
    }
}
