//! Shared radio-topology geometry: node positions, the optional
//! spatial index, and the neighbor-query primitives both engines —
//! the single-threaded [`crate::sim::Simulator`] and the per-shard
//! cores of [`crate::shard::ShardedSimulator`] — answer broadcasts
//! and routing from.
//!
//! Factoring the geometry out is what makes the sharded engine's
//! bit-identity cheap to maintain: the coordinator owns **one** global
//! `Topology` (positions change only at quiesce points, so sharing it
//! read-only with the worker cores is exact), and every neighbor query
//! runs the very same code against the very same data as the oracle
//! engine. Queries therefore take `&self` plus an external
//! [`TopoScratch`], so each reader — oracle, shard core, BFS on the
//! coordinator — brings its own reusable buffers.

use crate::sim::{Metrics, SimConfig, SpatialMode};
use crate::spatial::{SpatialIndex, SpatialScratch};

/// Euclidean distance between two positions.
pub(crate) fn distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Per-reader reusable buffers for [`Topology`] queries. Each engine
/// (and each shard core) owns one, so a shared read-only `Topology`
/// serves many readers allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct TopoScratch {
    /// Candidate ids of the in-flight range query.
    cand: Vec<u32>,
    /// Index-side buffers (cell cover, k-NN ranking).
    spatial: SpatialScratch,
}

/// The geometry every engine queries: one position per node (indexed
/// by raw node id) and the hex index when [`SpatialMode::HexIndex`] is
/// selected.
#[derive(Debug, Clone)]
pub(crate) struct Topology {
    radio_range: f64,
    positions: Vec<(f64, f64)>,
    /// `Some` under [`SpatialMode::HexIndex`], kept in lockstep with
    /// `positions` by [`Topology::push`] / [`Topology::set_position`].
    index: Option<SpatialIndex>,
}

impl Topology {
    pub(crate) fn new(config: &SimConfig) -> Self {
        let index = match config.spatial {
            SpatialMode::HexIndex => {
                Some(SpatialIndex::new(config.cell_d.unwrap_or(config.radio_range)))
            }
            SpatialMode::NaiveScan => None,
        };
        Topology { radio_range: config.radio_range, positions: Vec::new(), index }
    }

    pub(crate) fn push(&mut self, position: (f64, f64)) {
        self.positions.push(position);
        if let Some(index) = &mut self.index {
            index.push(position);
        }
    }

    pub(crate) fn position(&self, i: usize) -> (f64, f64) {
        self.positions[i]
    }

    pub(crate) fn len(&self) -> usize {
        self.positions.len()
    }

    /// The spatial index, when [`SpatialMode::HexIndex`] is active —
    /// the sharded engine reads tile assignments (`cell_of`) and the
    /// lattice geometry for halo construction from here.
    pub(crate) fn index(&self) -> Option<&SpatialIndex> {
        self.index.as_ref()
    }

    pub(crate) fn set_position(&mut self, i: usize, position: (f64, f64)) {
        self.positions[i] = position;
        if let Some(index) = &mut self.index {
            index.update(i as u32, position);
        }
    }

    /// Releases excess index capacity left by churn (see
    /// [`SpatialIndex::compact`]). No observable effect on queries.
    pub(crate) fn compact(&mut self) {
        if let Some(index) = &mut self.index {
            index.compact();
        }
    }

    /// Estimated resident heap bytes: the position table plus the
    /// spatial index. Deterministic (length/capacity based), so safe
    /// for telemetry gauges.
    pub(crate) fn resident_bytes(&self) -> u64 {
        let positions = self.positions.capacity() * std::mem::size_of::<(f64, f64)>();
        positions as u64 + self.index.as_ref().map_or(0, |i| i.resident_bytes())
    }

    /// One neighbor range query around node `cur`: invokes `f(i, pos_i)`
    /// for every node that *may* be within radio range, in ascending id
    /// order. Under [`SpatialMode::HexIndex`] only nodes in nearby cells
    /// are offered; under [`SpatialMode::NaiveScan`] every node is. The
    /// caller applies the exact `distance <= range` filter — candidates
    /// surviving it are therefore identical (same ids, same order) in
    /// both modes, which is the bit-identity the differential oracle
    /// proves.
    pub(crate) fn for_each_candidate(
        &self,
        scratch: &mut TopoScratch,
        metrics: &mut Metrics,
        cur: usize,
        mut f: impl FnMut(usize, (f64, f64)),
    ) {
        metrics.neighbor_queries += 1;
        match &self.index {
            Some(index) => {
                let center = self.positions[cur];
                let range = self.radio_range;
                let mut cand = std::mem::take(&mut scratch.cand);
                metrics.cells_scanned +=
                    index.candidates_into(&mut scratch.spatial, center, range, &mut cand);
                for &i in &cand {
                    f(i as usize, self.positions[i as usize]);
                }
                scratch.cand = cand;
            }
            None => {
                for (i, &pos) in self.positions.iter().enumerate() {
                    f(i, pos);
                }
            }
        }
    }

    /// Every other node within radio range of `from`, with its distance,
    /// in ascending id order — the broadcast target set.
    pub(crate) fn broadcast_targets(
        &self,
        scratch: &mut TopoScratch,
        metrics: &mut Metrics,
        from: usize,
        out: &mut Vec<(u32, f64)>,
    ) {
        out.clear();
        let src = self.positions[from];
        let range = self.radio_range;
        self.for_each_candidate(scratch, metrics, from, |i, pos| {
            if i != from {
                let d = distance(src, pos);
                if d <= range {
                    out.push((i as u32, d));
                }
            }
        });
    }

    /// The `k` nearest other nodes within radio range of `from` (ties at
    /// equal distance break toward the smaller id), returned in ascending
    /// *id* order — the fan-out-capped broadcast target set. Under
    /// [`SpatialMode::HexIndex`] the set comes from
    /// [`SpatialIndex::k_nearest_into`]; under [`SpatialMode::NaiveScan`]
    /// from a full scan ranked the same way — both select identical
    /// targets, which the spatial differential suite pins.
    pub(crate) fn k_nearest(
        &self,
        scratch: &mut TopoScratch,
        metrics: &mut Metrics,
        from: usize,
        k: usize,
        out: &mut Vec<u32>,
    ) {
        metrics.neighbor_queries += 1;
        let src = self.positions[from];
        let range = self.radio_range;
        match &self.index {
            Some(index) => {
                // k + 1 slots so the querying node (distance 0) never
                // crowds out a real neighbor.
                let positions = &self.positions;
                metrics.cells_scanned += index.k_nearest_into(
                    &mut scratch.spatial,
                    src,
                    k + 1,
                    range,
                    |i| positions[i as usize],
                    out,
                );
                out.retain(|&i| i != from as u32);
                out.truncate(k);
            }
            None => {
                let mut ranked: Vec<(f64, u32)> = self
                    .positions
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != from)
                    .map(|(i, &pos)| (distance(src, pos), i as u32))
                    .filter(|&(d, _)| d <= range)
                    .collect();
                ranked.sort_unstable_by(|a, b| {
                    a.partial_cmp(b).expect("distances are finite, never NaN")
                });
                ranked.truncate(k);
                out.clear();
                out.extend(ranked.into_iter().map(|(_, i)| i));
            }
        }
        // Deliver in ascending id order, like a full broadcast.
        out.sort_unstable();
    }

    /// BFS shortest path over the current connectivity graph (nodes
    /// within radio range are neighbors) — the route unicasts follow.
    /// Neighbor discovery goes through the spatial index, so a lookup
    /// visits each reachable node once and scans only its nearby cells,
    /// instead of probing all O(n²) node pairs.
    pub(crate) fn shortest_path(
        &self,
        scratch: &mut TopoScratch,
        metrics: &mut Metrics,
        from: usize,
        to: usize,
    ) -> Option<Vec<u32>> {
        let n = self.positions.len();
        let range = self.radio_range;
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                let mut path = vec![to as u32];
                let mut node = to;
                while let Some(p) = prev[node] {
                    path.push(p as u32);
                    node = p;
                }
                path.reverse();
                return Some(path);
            }
            let cur_pos = self.positions[cur];
            self.for_each_candidate(scratch, metrics, cur, |i, pos| {
                if !visited[i] && distance(cur_pos, pos) <= range {
                    visited[i] = true;
                    prev[i] = Some(cur);
                    queue.push_back(i);
                }
            });
        }
        None
    }

    /// Connected components of the current connectivity graph (diagnostic
    /// for partitioned topologies), via the same indexed BFS as
    /// [`Topology::shortest_path`].
    pub(crate) fn connected_components(
        &self,
        scratch: &mut TopoScratch,
        metrics: &mut Metrics,
    ) -> Vec<Vec<u32>> {
        let n = self.positions.len();
        let range = self.radio_range;
        let mut visited = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = std::collections::VecDeque::new();
            visited[start] = true;
            queue.push_back(start);
            while let Some(cur) = queue.pop_front() {
                comp.push(cur as u32);
                let cur_pos = self.positions[cur];
                self.for_each_candidate(scratch, metrics, cur, |i, pos| {
                    if !visited[i] && distance(cur_pos, pos) <= range {
                        visited[i] = true;
                        queue.push_back(i);
                    }
                });
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }
}
