//! Per-sender rate limiting — the paper's DoS defence.
//!
//! "The DoS attack can be prevented by restricting the frequency of relay
//! and reply requests from the same user" (§II-B), and "all participants
//! won't reply the request from the same user within a short time
//! interval" (§III-E). [`RateGuard`] implements exactly that sliding
//! window.

use std::collections::HashMap;
use std::hash::Hash;

/// A sliding-window rate limiter keyed by sender.
///
/// # Example
///
/// ```
/// use msb_net::guard::RateGuard;
///
/// let mut g: RateGuard<u32> = RateGuard::new(1_000_000, 2); // 2 per second
/// assert!(g.allow(7, 0));
/// assert!(g.allow(7, 1000));
/// assert!(!g.allow(7, 2000));      // third within the window
/// assert!(g.allow(7, 1_000_001));  // window slid
/// ```
#[derive(Debug, Clone)]
pub struct RateGuard<K: Eq + Hash> {
    window_us: u64,
    max_in_window: usize,
    history: HashMap<K, Vec<u64>>,
    sheds: u64,
}

impl<K: Eq + Hash> RateGuard<K> {
    /// Creates a guard allowing `max_in_window` events per `window_us`.
    ///
    /// # Panics
    ///
    /// Panics if `max_in_window` is zero.
    pub fn new(window_us: u64, max_in_window: usize) -> Self {
        assert!(max_in_window > 0, "window must allow at least one event");
        RateGuard { window_us, max_in_window, history: HashMap::new(), sheds: 0 }
    }

    /// Records an event from `sender` at `now_us`; returns whether it is
    /// within policy. Rejected events are *not* recorded (an attacker
    /// cannot extend their own penalty).
    pub fn allow(&mut self, sender: K, now_us: u64) -> bool {
        // Subtraction form: `t + window` would overflow u64 for
        // timestamps near u64::MAX (e.g. wall-clock-derived micros fed
        // in by a server). `saturating_sub` keeps events from the
        // "future" (t > now_us, possible across clock adjustments)
        // counted as in-window, matching the additive form's behaviour
        // everywhere the addition doesn't wrap.
        let window = self.window_us;
        let entry = self.history.entry(sender).or_default();
        entry.retain(|&t| now_us.saturating_sub(t) < window);
        if entry.len() >= self.max_in_window {
            self.sheds += 1;
            return false;
        }
        entry.push(now_us);
        true
    }

    /// Current in-window count for `sender`.
    pub fn pressure(&self, sender: &K, now_us: u64) -> usize {
        self.history
            .get(sender)
            .map(|v| v.iter().filter(|&&t| now_us.saturating_sub(t) < self.window_us).count())
            .unwrap_or(0)
    }

    /// Drops senders with no in-window events. Long-running swarm nodes
    /// hear from every initiator whose flood reaches them, so call this
    /// periodically (e.g. on a housekeeping timer) to keep the table
    /// proportional to *active* senders rather than all senders ever
    /// seen.
    pub fn compact(&mut self, now_us: u64) {
        let window = self.window_us;
        self.history.retain(|_, v| {
            v.retain(|&t| now_us.saturating_sub(t) < window);
            !v.is_empty()
        });
    }

    /// Number of tracked senders.
    pub fn tracked_senders(&self) -> usize {
        self.history.len()
    }

    /// The sliding window length in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The per-sender event budget within one window.
    pub fn max_in_window(&self) -> usize {
        self.max_in_window
    }

    /// Total events rejected by [`RateGuard::allow`] over this guard's
    /// lifetime (never reset by `compact`).
    pub fn sheds(&self) -> u64 {
        self.sheds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_senders() {
        let mut g: RateGuard<u32> = RateGuard::new(1000, 1);
        assert!(g.allow(1, 0));
        assert!(g.allow(2, 0));
        assert!(!g.allow(1, 10));
    }

    #[test]
    fn window_slides() {
        let mut g: RateGuard<u32> = RateGuard::new(1000, 1);
        assert!(g.allow(1, 0));
        assert!(!g.allow(1, 999)); // still inside the window

        // At now = 1000 the cutoff is 0 and the t = 0 event has aged out.
        assert!(g.allow(1, 1000));
    }

    #[test]
    fn rejections_not_recorded() {
        let mut g: RateGuard<u32> = RateGuard::new(1000, 1);
        assert!(g.allow(1, 500));
        for t in 600..610 {
            assert!(!g.allow(1, t));
        }
        // First event expires at 1501.
        assert!(g.allow(1, 1501));
    }

    #[test]
    fn pressure_reports_live_count() {
        let mut g: RateGuard<u32> = RateGuard::new(1000, 3);
        for t in [100u64, 200, 300] {
            assert!(g.allow(9, t));
        }
        assert_eq!(g.pressure(&9, 300), 3);
        assert_eq!(g.pressure(&9, 1500), 0);
        assert_eq!(g.pressure(&42, 0), 0);
    }

    #[test]
    fn compact_drops_idle_senders() {
        let mut g: RateGuard<u32> = RateGuard::new(100, 1);
        let _ = g.allow(1, 0);
        let _ = g.allow(2, 500);
        g.compact(550); // sender 1's event has aged out, sender 2's lives
        assert_eq!(g.tracked_senders(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_budget_rejected() {
        let _: RateGuard<u32> = RateGuard::new(100, 0);
    }

    #[test]
    fn timestamps_near_u64_max_do_not_overflow() {
        // Regression: the additive form `t + window > now_us` wrapped
        // for large t, so an event recorded at u64::MAX - 10 vanished
        // from its own window and the limiter waved the flood through.
        let hi = u64::MAX - 10;
        let mut g: RateGuard<u32> = RateGuard::new(1000, 1);
        assert!(g.allow(1, hi));
        assert!(!g.allow(1, hi + 5), "event at u64::MAX - 10 must still be in-window");
        assert_eq!(g.pressure(&1, hi + 5), 1);
        assert_eq!(g.pressure(&1, u64::MAX), 1);

        // compact must keep the live event too.
        g.compact(hi + 5);
        assert_eq!(g.tracked_senders(), 1);

        // And an event from the "future" (clock steps backwards between
        // calls) still counts, as it did in the non-overflowing range.
        let mut g: RateGuard<u32> = RateGuard::new(1000, 1);
        assert!(g.allow(1, 5000));
        assert!(!g.allow(1, 4500));
    }

    #[test]
    fn policy_accessors_echo_config() {
        let g: RateGuard<u32> = RateGuard::new(2_000_000, 16);
        assert_eq!(g.window_us(), 2_000_000);
        assert_eq!(g.max_in_window(), 16);
    }

    #[test]
    fn sheds_count_rejections_only() {
        let mut g: RateGuard<u32> = RateGuard::new(1000, 1);
        assert_eq!(g.sheds(), 0);
        assert!(g.allow(1, 0));
        assert!(!g.allow(1, 10));
        assert!(!g.allow(1, 20));
        assert!(g.allow(2, 20)); // other senders unaffected
        assert_eq!(g.sheds(), 2);
        g.compact(5000);
        assert_eq!(g.sheds(), 2, "compact must not reset the lifetime counter");
    }
}
