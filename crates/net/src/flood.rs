//! TTL-bounded flooding with duplicate suppression.
//!
//! In the paper's decentralized model, "a request will be spread by relays
//! until hitting a matching user or meeting a stop condition, e.g.
//! expiration time". [`FloodState`] tracks seen request ids and TTL/expiry
//! so applications can implement that relay rule in a few lines.

use std::collections::HashMap;

/// Identifier of a flooded item (in the protocols: the hash of the request
/// package).
pub type FloodId = [u8; 32];

/// Per-node flooding state.
#[derive(Debug, Clone, Default)]
pub struct FloodState {
    seen: HashMap<FloodId, u64>,
}

/// Decision for an incoming flooded item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodDecision {
    /// First sighting and TTL/expiry allow relaying onward.
    Relay,
    /// First sighting, but the item must not be forwarded further
    /// (TTL exhausted or expired) — still process locally.
    Absorb,
    /// Already seen; drop silently.
    Duplicate,
    /// Expired; drop silently without processing.
    Expired,
}

impl FloodState {
    /// Creates an empty flood table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies an incoming item.
    ///
    /// * `id` — the flood id.
    /// * `ttl` — remaining hops *after* this node (0 = do not forward).
    /// * `now_us` / `expires_us` — expiry handling; an item with
    ///   `expires_us <= now_us` is [`FloodDecision::Expired`].
    pub fn classify(
        &mut self,
        id: FloodId,
        ttl: u8,
        now_us: u64,
        expires_us: u64,
    ) -> FloodDecision {
        if expires_us <= now_us {
            return FloodDecision::Expired;
        }
        // One hash lookup for the lookup-or-record, not two: in a dense
        // swarm a node classifies the same id once per in-range neighbor,
        // and the duplicate path is the hot one.
        match self.seen.entry(id) {
            std::collections::hash_map::Entry::Occupied(_) => FloodDecision::Duplicate,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(now_us);
                if ttl == 0 {
                    FloodDecision::Absorb
                } else {
                    FloodDecision::Relay
                }
            }
        }
    }

    /// Whether this node has already processed the item.
    pub fn has_seen(&self, id: &FloodId) -> bool {
        self.seen.contains_key(id)
    }

    /// Drops table entries first seen before `cutoff_us` (bounding the
    /// table size in long-running nodes).
    pub fn evict_older_than(&mut self, cutoff_us: u64) {
        self.seen.retain(|_, &mut t| t >= cutoff_us);
    }

    /// Number of remembered ids.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u8) -> FloodId {
        [v; 32]
    }

    #[test]
    fn first_sighting_relays() {
        let mut f = FloodState::new();
        assert_eq!(f.classify(id(1), 3, 0, 100), FloodDecision::Relay);
    }

    #[test]
    fn duplicate_dropped() {
        let mut f = FloodState::new();
        let _ = f.classify(id(1), 3, 0, 100);
        assert_eq!(f.classify(id(1), 3, 1, 100), FloodDecision::Duplicate);
    }

    #[test]
    fn ttl_zero_absorbs() {
        let mut f = FloodState::new();
        assert_eq!(f.classify(id(2), 0, 0, 100), FloodDecision::Absorb);
    }

    #[test]
    fn expired_dropped_and_not_recorded() {
        let mut f = FloodState::new();
        assert_eq!(f.classify(id(3), 3, 100, 100), FloodDecision::Expired);
        assert!(!f.has_seen(&id(3)));
    }

    #[test]
    fn eviction_bounds_table() {
        let mut f = FloodState::new();
        for v in 0..10 {
            let _ = f.classify(id(v), 1, v as u64, 1000);
        }
        assert_eq!(f.len(), 10);
        f.evict_older_than(5);
        assert_eq!(f.len(), 5);
        // Evicted ids are relayable again (duplicate window passed).
        assert_eq!(f.classify(id(0), 1, 20, 1000), FloodDecision::Relay);
    }
}
