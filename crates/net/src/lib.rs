//! A deterministic discrete-event simulator for decentralized multi-hop
//! mobile social networks.
//!
//! The paper evaluates its protocols in ad hoc networks of phones using
//! short-range radio (WiFi/Bluetooth) with no infrastructure. This crate
//! supplies that substrate: nodes with positions and a radio range,
//! broadcast within range, (reverse-path) unicast across hops, message
//! latency and loss, TTL-based flooding with duplicate suppression,
//! per-sender rate limiting (the paper's DoS defence), and a
//! random-waypoint mobility model. All randomness flows from per-node
//! RNG streams derived from one seed, so every run is reproducible.
//!
//! Range queries (who hears a broadcast, who is a BFS neighbor) are
//! answered by a hex-grid [`spatial::SpatialIndex`] keyed on the same
//! hexagonal lattice the paper uses for vicinity privacy, scaling swarms
//! to 10k+ nodes; the pre-index linear scan survives as
//! [`sim::SpatialMode::NaiveScan`], the differential oracle both modes
//! are proven bit-identical against. The event queue itself is
//! pluggable the same way ([`sched`], selected by
//! [`sim::SimConfig::scheduler`]): a hierarchical calendar queue with
//! O(1)-amortized operations for the bounded-horizon bulk of the
//! traffic, with the original binary heap kept as the bit-identical
//! oracle — the full engine contract (ordering, tie-breaking,
//! recurring events, re-flood scenarios) lives in `docs/SIM.md`.
//!
//! For multi-core scale, the whole engine shards spatially:
//! [`shard::ShardedSimulator`] partitions the hex tiles across
//! [`sim::SimConfig::shards`] worker cores synchronized by conservative
//! lookahead, bit-identical to the single-threaded [`sim::Simulator`]
//! at any shard count (the shard contract is `docs/SIM.md` §6).
//!
//! # Example
//!
//! ```
//! use msb_net::sim::{NodeApp, NodeCtx, SimConfig, Simulator};
//!
//! struct Echo;
//! impl NodeApp for Echo {
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
//!         if ctx.node_id().index() == 0 {
//!             ctx.broadcast(b"ping".to_vec());
//!         }
//!     }
//!     fn on_message(
//!         &mut self,
//!         ctx: &mut NodeCtx<'_>,
//!         _from: msb_net::sim::NodeId,
//!         payload: &msb_net::Payload,
//!     ) {
//!         if payload.as_bytes() == Some(b"ping") {
//!             ctx.unicast(msb_net::sim::NodeId::new(0), b"pong".to_vec());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(SimConfig::default(), 7);
//! sim.add_node((0.0, 0.0), Echo);
//! sim.add_node((10.0, 0.0), Echo);
//! sim.start();
//! sim.run();
//! assert!(sim.metrics().unicasts >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod flood;
pub mod guard;
mod halo;
pub mod harness;
pub mod mobility;
pub mod payload;
pub mod sched;
pub mod shard;
pub mod sim;
pub mod spatial;
mod topo;

pub use harness::{AppAction, AppHarness};
pub use payload::Payload;
pub use sched::{
    CalendarScheduler, EventKey, HeapScheduler, Recurrence, ScheduledEvent, Scheduler,
    SchedulerMode,
};
pub use shard::ShardedSimulator;
pub use sim::{
    DeliveryMode, Metrics, NodeApp, NodeCtx, NodeId, SimConfig, SimDriver, Simulator, SpatialMode,
};
pub use spatial::{SpatialIndex, SpatialScratch};
