//! What a simulated transmission carries.
//!
//! The simulator is payload-agnostic: applications hand it a
//! [`Payload`], it delivers that payload to every receiver and accounts
//! [`crate::sim::Metrics::payload_bytes`] from [`Payload::wire_len`].
//! Two representations exist, selected by the application (typically
//! from [`crate::sim::SimConfig::delivery`]):
//!
//! * **Encoded** ([`Payload::frame`]) — real wire bytes. Receivers
//!   decode them; the byte metric *measures* the buffer. Cloning for a
//!   broadcast fan-out is zero-copy ([`bytes::Bytes`] is
//!   reference-counted).
//! * **In-memory** ([`Payload::mem`]) — the message struct itself rides
//!   the event queue (no serialization anywhere), tagged with its exact
//!   encoded length so byte metrics agree with the encoded mode to the
//!   byte. This is the fast path and the differential oracle the
//!   encoded mode is tested against.

use bytes::Bytes;
use std::any::Any;
use std::sync::Arc;

/// A message in flight — encoded frame bytes or a shared in-memory
/// message. Cloning is O(1) for both representations.
#[derive(Clone)]
pub struct Payload(Repr);

#[derive(Clone)]
enum Repr {
    Frame(Bytes),
    Mem { msg: Arc<dyn Any + Send + Sync>, wire_len: usize },
}

impl Payload {
    /// An encoded payload: these bytes are what travels.
    pub fn frame(bytes: impl Into<Bytes>) -> Self {
        Payload(Repr::Frame(bytes.into()))
    }

    /// An in-memory payload: `msg` travels unserialized, accounted as
    /// `wire_len` bytes (the exact length its encoding would have).
    pub fn mem<T: Any + Send + Sync>(msg: T, wire_len: usize) -> Self {
        Payload(Repr::Mem { msg: Arc::new(msg), wire_len })
    }

    /// The number of bytes this payload occupies on the (simulated)
    /// air: the buffer length for frames, the declared exact encoded
    /// length for in-memory messages.
    pub fn wire_len(&self) -> usize {
        match &self.0 {
            Repr::Frame(b) => b.len(),
            Repr::Mem { wire_len, .. } => *wire_len,
        }
    }

    /// The encoded bytes, when this payload is a frame.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match &self.0 {
            Repr::Frame(b) => Some(b),
            Repr::Mem { .. } => None,
        }
    }

    /// The in-memory message, when this payload is one of type `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match &self.0 {
            Repr::Frame(_) => None,
            Repr::Mem { msg, .. } => msg.downcast_ref::<T>(),
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Repr::Frame(b) => write!(f, "Payload::Frame({} B)", b.len()),
            Repr::Mem { wire_len, .. } => write!(f, "Payload::Mem({wire_len} B)"),
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::frame(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::frame(Bytes::copy_from_slice(v))
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload::frame(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_payload_measures_bytes() {
        let p = Payload::from(vec![0u8; 37]);
        assert_eq!(p.wire_len(), 37);
        assert_eq!(p.as_bytes().map(<[u8]>::len), Some(37));
        assert!(p.downcast_ref::<Vec<u8>>().is_none());
    }

    #[test]
    fn mem_payload_declares_bytes() {
        #[derive(Debug, PartialEq)]
        struct Msg(u32);
        let p = Payload::mem(Msg(7), 123);
        assert_eq!(p.wire_len(), 123);
        assert!(p.as_bytes().is_none());
        assert_eq!(p.downcast_ref::<Msg>(), Some(&Msg(7)));
        assert!(p.downcast_ref::<String>().is_none());
    }

    #[test]
    fn clone_shares_the_message() {
        let p = Payload::mem(vec![1u8, 2, 3], 3);
        let q = p.clone();
        let a: *const Vec<u8> = p.downcast_ref::<Vec<u8>>().unwrap();
        let b: *const Vec<u8> = q.downcast_ref::<Vec<u8>>().unwrap();
        assert_eq!(a, b, "clones must share one allocation");
    }
}
