//! Pluggable event schedulers for the simulator.
//!
//! The simulator's hot loop is `schedule` / `pop` on a priority queue of
//! timestamped events. This module abstracts that queue behind the
//! [`Scheduler`] trait and ships two implementations selected by
//! [`SchedulerMode`] (see `docs/SIM.md` for the full engine contract):
//!
//! * [`HeapScheduler`] — the classic `BinaryHeap` engine. O(log n) per
//!   operation with n the *total* queue depth, including far-future
//!   entries (recurring re-flood timers, long deadlines) that every
//!   near-term delivery must sift past. Kept as the differential oracle
//!   and speedup baseline, exactly like
//!   [`SpatialMode::NaiveScan`](crate::sim::SpatialMode::NaiveScan).
//! * [`CalendarScheduler`] — a hierarchical calendar (bucket) queue
//!   tuned to the simulator's bounded-horizon event distribution:
//!   almost every event lands within a few milliseconds of *now*
//!   (radio latency, jitter, per-key computation delays), while a
//!   minority (re-flood periods, expiry deadlines) sits seconds out.
//!   Near-term events go into a ring of fixed-width time buckets
//!   (insert and extract O(1) amortized, located via an occupancy
//!   bitmap); far-future events wait in an overflow heap and migrate
//!   into the ring when the clock approaches them, so they are touched
//!   O(log overflow) times *total* instead of taxing every operation.
//!
//! # Ordering contract
//!
//! Both schedulers are *bit-identical*: events pop in ascending
//! `(at_us, seq)` order, where `seq` is a global sequence number
//! assigned at [`Scheduler::schedule`] time — same-instant events pop
//! in FIFO schedule order. Recurring entries
//! ([`Scheduler::schedule_recurring`]) re-arm at pop time, drawing the
//! next sequence number *before* anything the popped event's handler
//! schedules. A simulation run is therefore a pure function of
//! `(seed, config, apps)` regardless of [`SchedulerMode`]; the
//! differential suites (`tests/sched_differential.rs`, the root churn
//! tests) pin this down at the event, trace, and application levels.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which event engine the simulator runs on. See the module docs.
///
/// Both modes produce bit-identical runs; only wall-clock and
/// [`Metrics::events_scheduled`](crate::sim::Metrics::events_scheduled) /
/// [`Metrics::peak_queue_len`](crate::sim::Metrics::peak_queue_len)
/// observability (identical across modes by construction) distinguish
/// them externally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Hierarchical calendar queue ([`CalendarScheduler`]):
    /// O(1)-amortized insert/extract for the bounded-horizon bulk of
    /// the traffic. The default.
    #[default]
    Calendar,
    /// Binary heap ([`HeapScheduler`]) — the pre-refactor reference
    /// engine, kept as the differential oracle and speedup baseline.
    BinaryHeap,
}

/// Re-arming rule for a recurring scheduled item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recurrence {
    /// Distance between consecutive firings, in microseconds.
    /// Must be nonzero (a zero period would re-fire at the same
    /// instant forever and the queue would never drain).
    pub period_us: u64,
    /// Last instant (inclusive) a firing may be scheduled at. The
    /// entry stops re-arming once `at + period > until_us`, which is
    /// what lets [`Simulator::run`](crate::sim::Simulator::run) drain
    /// a queue containing recurring events.
    pub until_us: u64,
}

impl Recurrence {
    /// Creates a recurrence rule.
    ///
    /// # Panics
    ///
    /// Panics if `period_us` is zero.
    pub fn new(period_us: u64, until_us: u64) -> Self {
        assert!(period_us > 0, "a recurrence period must be nonzero");
        Recurrence { period_us, until_us }
    }
}

/// A priority queue of timestamped items with FIFO tie-breaking and
/// optional recurrence — the simulator's event engine.
///
/// Implementations must satisfy the ordering contract in the module
/// docs; everything observable (pop order, sequence assignment, the
/// [`Scheduler::events_scheduled`] / [`Scheduler::peak_len`] counters)
/// is identical across conforming implementations.
pub trait Scheduler<T: Clone> {
    /// Enqueues `item` to pop at `at_us`, assigning the next sequence
    /// number.
    fn schedule(&mut self, at_us: u64, item: T);

    /// Enqueues `item` to first pop at `at_us` and then re-arm every
    /// `recur.period_us` while the next firing is `<= recur.until_us`.
    /// Each firing (including re-arms) counts toward
    /// [`Scheduler::events_scheduled`].
    fn schedule_recurring(&mut self, at_us: u64, recur: Recurrence, item: T);

    /// The earliest pending `(at_us, item)` without removing it, or
    /// `None` when empty. Takes `&mut self` because locating the
    /// minimum may reorganize internal storage (calendar refill).
    fn peek(&mut self) -> Option<(u64, &T)>;

    /// Removes and returns the earliest pending `(at_us, item)`;
    /// recurring entries re-arm their next firing first (drawing the
    /// next sequence number before anything the caller schedules).
    fn pop(&mut self) -> Option<(u64, T)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever enqueued (schedule calls plus recurrence
    /// re-arms) — the queue-pressure counter behind
    /// [`Metrics::events_scheduled`](crate::sim::Metrics::events_scheduled).
    fn events_scheduled(&self) -> u64;

    /// High-water mark of [`Scheduler::len`] over the queue's lifetime.
    fn peak_len(&self) -> usize;
}

/// One queue entry. Ordered by `(at_us, seq)`; the item does not
/// participate in comparisons.
#[derive(Debug, Clone)]
struct Entry<T> {
    at_us: u64,
    seq: u64,
    recur: Option<Recurrence>,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// Shared sequence/statistics bookkeeping, identical across engines so
/// the counters are comparable bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
struct Stats {
    next_seq: u64,
    scheduled: u64,
    peak: usize,
}

impl Stats {
    /// Draws the next sequence number and accounts one enqueued event
    /// at the given post-insert queue length.
    fn on_insert(&mut self, len_after: usize) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.peak = self.peak.max(len_after);
        seq
    }
}

/// The binary-heap engine: `BinaryHeap<Reverse<Entry>>`, exactly the
/// structure the simulator used before the scheduler refactor. The
/// differential oracle.
#[derive(Debug, Clone)]
pub struct HeapScheduler<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    stats: Stats,
}

impl<T> Default for HeapScheduler<T> {
    fn default() -> Self {
        HeapScheduler { heap: BinaryHeap::new(), stats: Stats::default() }
    }
}

impl<T> HeapScheduler<T> {
    /// Creates an empty heap scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, at_us: u64, recur: Option<Recurrence>, item: T) {
        let seq = self.stats.on_insert(self.heap.len() + 1);
        self.heap.push(Reverse(Entry { at_us, seq, recur, item }));
    }
}

impl<T: Clone> Scheduler<T> for HeapScheduler<T> {
    fn schedule(&mut self, at_us: u64, item: T) {
        self.insert(at_us, None, item);
    }

    fn schedule_recurring(&mut self, at_us: u64, recur: Recurrence, item: T) {
        self.insert(at_us, Some(recur), item);
    }

    fn peek(&mut self) -> Option<(u64, &T)> {
        self.heap.peek().map(|Reverse(e)| (e.at_us, &e.item))
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        let Reverse(e) = self.heap.pop()?;
        if let Some(recur) = e.recur {
            let next = e.at_us + recur.period_us;
            if next <= recur.until_us {
                self.insert(next, Some(recur), e.item.clone());
            }
        }
        Some((e.at_us, e.item))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn events_scheduled(&self) -> u64 {
        self.stats.scheduled
    }

    fn peak_len(&self) -> usize {
        self.stats.peak
    }
}

/// Microseconds covered by one calendar bucket. Deliberately fine:
/// the simulator's in-flight deliveries concentrate inside the radio
/// horizon (base latency + jitter, under a millisecond), so at swarm
/// scale tens of thousands of events share that window — wide buckets
/// would pile them into one slot and the per-bucket sort would
/// degenerate toward a global sort. At 4 µs a 50k-deep in-flight set
/// spreads to a few hundred entries per bucket: the lazy sort costs a
/// handful of comparisons per event on contiguous memory, and inserts
/// stay `Vec::push`.
const BUCKET_WIDTH_US: u64 = 4;

/// Buckets in the ring; with [`BUCKET_WIDTH_US`] the ring covers
/// ~33 ms of simulated time — enough for every latency/jitter draw and
/// the modelled per-key computation timers, while second-scale entries
/// (re-flood periods, expiry deadlines) go to the overflow heap. Must
/// be a multiple of 64 (the occupancy bitmap is a `u64` array).
const RING_SLOTS: usize = 8192;

/// The hierarchical calendar-queue engine. See the module docs for the
/// design; in short: a ring of [`RING_SLOTS`] buckets of
/// [`BUCKET_WIDTH_US`] each holds the near future (located through an
/// occupancy bitmap), a `BinaryHeap` overflow holds everything beyond
/// the ring's window, and the bucket at the current epoch is kept
/// sorted for in-order popping.
#[derive(Debug, Clone)]
pub struct CalendarScheduler<T> {
    /// Ring of future buckets; each non-empty slot holds entries of
    /// exactly one absolute epoch, in insertion order (sorted lazily
    /// when the slot becomes current).
    slots: Vec<Vec<Entry<T>>>,
    /// One bit per slot: set iff the slot is non-empty. `u64` words so
    /// the next occupied slot is found by word scan + trailing_zeros.
    occupied: Vec<u64>,
    /// Entries of the current epoch, sorted *descending* by
    /// `(at_us, seq)` so popping the minimum is `Vec::pop`.
    cur: Vec<Entry<T>>,
    /// Absolute epoch (`at_us / BUCKET_WIDTH_US`) the drain cursor is
    /// at; the ring window is `[cur_epoch, cur_epoch + RING_SLOTS)`.
    cur_epoch: u64,
    /// Entries across all ring slots (excluding `cur`).
    ring_len: usize,
    /// Events beyond the ring window, keyed like the heap engine.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
    stats: Stats,
}

impl<T> Default for CalendarScheduler<T> {
    fn default() -> Self {
        CalendarScheduler {
            slots: (0..RING_SLOTS).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; RING_SLOTS / 64],
            cur: Vec::new(),
            cur_epoch: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            stats: Stats::default(),
        }
    }
}

impl<T> CalendarScheduler<T> {
    /// Creates an empty calendar scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn epoch(at_us: u64) -> u64 {
        at_us / BUCKET_WIDTH_US
    }

    fn mark(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    fn unmark(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    fn insert(&mut self, at_us: u64, recur: Option<Recurrence>, item: T) {
        self.len += 1;
        let seq = self.stats.on_insert(self.len);
        let entry = Entry { at_us, seq, recur, item };
        let epoch = Self::epoch(at_us);
        if epoch <= self.cur_epoch {
            // Lands at (or before — possible right after a `run_until`
            // fast-forward) the epoch being drained: merge into the
            // sorted current block. `partition_point` finds the spot
            // that keeps the descending (at, seq) order, so a
            // same-instant insert pops after everything already queued
            // at that instant (FIFO).
            let key = (entry.at_us, entry.seq);
            let pos = self.cur.partition_point(|e| (e.at_us, e.seq) > key);
            self.cur.insert(pos, entry);
        } else if epoch < self.cur_epoch + RING_SLOTS as u64 {
            let slot = (epoch % RING_SLOTS as u64) as usize;
            self.slots[slot].push(entry);
            self.ring_len += 1;
            self.mark(slot);
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// First occupied ring slot strictly after `cur_epoch` (in epoch
    /// order, which equals circular slot order from the cursor), as an
    /// absolute epoch.
    fn next_ring_epoch(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let n = RING_SLOTS as u64;
        let start = ((self.cur_epoch + 1) % n) as usize;
        // Scan the bitmap from `start`, wrapping once around the ring.
        let mut dist = 0u64; // circular distance - 1 of the word scan start
        let mut idx = start;
        while dist < n {
            let word_idx = idx / 64;
            let bit = idx % 64;
            let word = self.occupied[word_idx] >> bit;
            if word != 0 {
                let hop = word.trailing_zeros() as u64;
                if dist + hop < n {
                    let slot = (idx as u64 + hop) % n;
                    // Slot order equals epoch order inside one window.
                    let delta = (slot + n - (self.cur_epoch + 1) % n) % n + 1;
                    return Some(self.cur_epoch + delta);
                }
                return None;
            }
            let hop = 64 - bit as u64;
            dist += hop;
            idx = (idx + hop as usize) % RING_SLOTS;
        }
        None
    }

    /// Refills `cur` from the earliest non-empty epoch across ring and
    /// overflow. No-op when nothing is pending.
    fn refill(&mut self) {
        debug_assert!(self.cur.is_empty());
        let ring_epoch = self.next_ring_epoch();
        let over_epoch = self.overflow.peek().map(|Reverse(e)| Self::epoch(e.at_us));
        let target = match (ring_epoch, over_epoch) {
            (Some(r), Some(o)) => r.min(o),
            (Some(r), None) => r,
            (None, Some(o)) => o,
            (None, None) => return,
        };
        self.cur_epoch = target;
        if ring_epoch == Some(target) {
            let slot = (target % RING_SLOTS as u64) as usize;
            self.cur = std::mem::take(&mut self.slots[slot]);
            self.ring_len -= self.cur.len();
            self.unmark(slot);
        }
        // Overflow entries whose epoch the cursor has reached join the
        // same block (the ring may hold the same epoch when entries
        // were inserted after the window slid over it).
        while let Some(Reverse(e)) = self.overflow.peek() {
            if Self::epoch(e.at_us) != target {
                break;
            }
            let Some(Reverse(e)) = self.overflow.pop() else { unreachable!() };
            self.cur.push(e);
        }
        self.cur.sort_unstable_by_key(|e| Reverse((e.at_us, e.seq)));
    }
}

impl<T: Clone> Scheduler<T> for CalendarScheduler<T> {
    fn schedule(&mut self, at_us: u64, item: T) {
        self.insert(at_us, None, item);
    }

    fn schedule_recurring(&mut self, at_us: u64, recur: Recurrence, item: T) {
        self.insert(at_us, Some(recur), item);
    }

    fn peek(&mut self) -> Option<(u64, &T)> {
        if self.cur.is_empty() {
            self.refill();
        }
        self.cur.last().map(|e| (e.at_us, &e.item))
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        if self.cur.is_empty() {
            self.refill();
        }
        let e = self.cur.pop()?;
        self.len -= 1;
        if let Some(recur) = e.recur {
            let next = e.at_us + recur.period_us;
            if next <= recur.until_us {
                self.insert(next, Some(recur), e.item.clone());
            }
        }
        Some((e.at_us, e.item))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn events_scheduled(&self) -> u64 {
        self.stats.scheduled
    }

    fn peak_len(&self) -> usize {
        self.stats.peak
    }
}

/// A [`Scheduler`] chosen at runtime by [`SchedulerMode`] — what the
/// simulator embeds (enum dispatch keeps the hot path free of virtual
/// calls while staying pluggable through the trait).
#[derive(Debug, Clone)]
pub enum AnyScheduler<T> {
    /// The binary-heap oracle engine.
    Heap(HeapScheduler<T>),
    /// The calendar-queue engine.
    Calendar(CalendarScheduler<T>),
}

impl<T> AnyScheduler<T> {
    /// Creates the engine `mode` selects.
    pub fn for_mode(mode: SchedulerMode) -> Self {
        match mode {
            SchedulerMode::BinaryHeap => AnyScheduler::Heap(HeapScheduler::new()),
            SchedulerMode::Calendar => AnyScheduler::Calendar(CalendarScheduler::new()),
        }
    }
}

impl<T: Clone> Scheduler<T> for AnyScheduler<T> {
    fn schedule(&mut self, at_us: u64, item: T) {
        match self {
            AnyScheduler::Heap(s) => s.schedule(at_us, item),
            AnyScheduler::Calendar(s) => s.schedule(at_us, item),
        }
    }

    fn schedule_recurring(&mut self, at_us: u64, recur: Recurrence, item: T) {
        match self {
            AnyScheduler::Heap(s) => s.schedule_recurring(at_us, recur, item),
            AnyScheduler::Calendar(s) => s.schedule_recurring(at_us, recur, item),
        }
    }

    fn peek(&mut self) -> Option<(u64, &T)> {
        match self {
            AnyScheduler::Heap(s) => s.peek(),
            AnyScheduler::Calendar(s) => s.peek(),
        }
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        match self {
            AnyScheduler::Heap(s) => s.pop(),
            AnyScheduler::Calendar(s) => s.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyScheduler::Heap(s) => s.len(),
            AnyScheduler::Calendar(s) => s.len(),
        }
    }

    fn events_scheduled(&self) -> u64 {
        match self {
            AnyScheduler::Heap(s) => s.events_scheduled(),
            AnyScheduler::Calendar(s) => s.events_scheduled(),
        }
    }

    fn peak_len(&self) -> usize {
        match self {
            AnyScheduler::Heap(s) => s.peak_len(),
            AnyScheduler::Calendar(s) => s.peak_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<S: Scheduler<u32>>(s: &mut S) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = s.pop() {
            out.push(ev);
        }
        out
    }

    fn both() -> [AnyScheduler<u32>; 2] {
        [
            AnyScheduler::for_mode(SchedulerMode::BinaryHeap),
            AnyScheduler::for_mode(SchedulerMode::Calendar),
        ]
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        for mut s in both() {
            s.schedule(500, 1);
            s.schedule(100, 2);
            s.schedule(500, 3); // same instant as item 1 → FIFO after it
            s.schedule(0, 4);
            assert_eq!(drain(&mut s), vec![(0, 4), (100, 2), (500, 1), (500, 3)]);
        }
    }

    #[test]
    fn far_future_and_near_events_interleave_correctly() {
        for mut s in both() {
            // Far beyond the calendar ring window (~33 ms).
            s.schedule(10_000_000, 1);
            s.schedule(300, 2);
            s.schedule(9_999_999, 3);
            s.schedule(BUCKET_WIDTH_US * RING_SLOTS as u64 * 3, 4);
            let order = drain(&mut s);
            assert_eq!(
                order,
                vec![
                    (300, 2),
                    (BUCKET_WIDTH_US * RING_SLOTS as u64 * 3, 4),
                    (9_999_999, 3),
                    (10_000_000, 1)
                ]
            );
        }
    }

    #[test]
    fn mid_drain_insertion_lands_in_order() {
        for mut s in both() {
            s.schedule(100, 1);
            s.schedule(200, 2);
            assert_eq!(s.pop(), Some((100, 1)));
            // Insert at the *current* instant and between pending ones.
            s.schedule(100, 3);
            s.schedule(150, 4);
            assert_eq!(drain(&mut s), vec![(100, 3), (150, 4), (200, 2)]);
        }
    }

    #[test]
    fn recurring_fires_every_period_until_deadline() {
        for mut s in both() {
            s.schedule_recurring(1_000, Recurrence::new(1_000, 3_500), 7);
            assert_eq!(drain(&mut s), vec![(1_000, 7), (2_000, 7), (3_000, 7)]);
            assert_eq!(s.events_scheduled(), 3, "each firing is accounted");
        }
    }

    #[test]
    fn recurring_rearm_draws_seq_before_later_schedules() {
        // The re-arm happens inside pop, so a same-period one-shot
        // scheduled *after* the pop queues behind the re-armed firing.
        for mut s in both() {
            s.schedule_recurring(100, Recurrence::new(100, 250), 1);
            assert_eq!(s.pop(), Some((100, 1)));
            s.schedule(200, 2);
            assert_eq!(drain(&mut s), vec![(200, 1), (200, 2)]);
        }
    }

    #[test]
    fn len_and_peak_track_depth() {
        for mut s in both() {
            assert!(s.is_empty());
            s.schedule(10, 1);
            s.schedule(20_000_000, 2); // overflow territory for the calendar
            s.schedule(30, 3);
            assert_eq!(s.len(), 3);
            assert_eq!(s.peak_len(), 3);
            let _ = s.pop();
            let _ = s.pop();
            assert_eq!(s.len(), 1);
            assert_eq!(s.peak_len(), 3, "peak is a high-water mark");
            assert_eq!(s.events_scheduled(), 3);
        }
    }

    #[test]
    fn peek_matches_pop_without_consuming() {
        for mut s in both() {
            assert_eq!(s.peek(), None);
            s.schedule(40, 9);
            s.schedule(5, 8);
            assert_eq!(s.peek(), Some((5, &8)));
            assert_eq!(s.len(), 2);
            assert_eq!(s.pop(), Some((5, 8)));
            assert_eq!(s.peek(), Some((40, &9)));
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_period_recurrence_rejected() {
        let _ = Recurrence::new(0, 100);
    }

    /// A quick deterministic shuffle of mixed horizons: both engines
    /// must agree event for event (the heavyweight randomized version
    /// lives in `tests/sched_differential.rs`).
    #[test]
    fn engines_agree_on_a_mixed_stream() {
        fn drive(s: &mut AnyScheduler<u32>) -> Vec<(u64, u32)> {
            let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift
            let mut now = 0;
            let mut log = Vec::new();
            for i in 0..500u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let delay = match x % 5 {
                    0 => 0,                      // same-instant tie
                    1 => x % 700,                // radio horizon
                    2 => 5_000 + x % 2_000,      // computation timer
                    3 => 2_000_000 + x % 50_000, // beyond the ring window
                    _ => x % 50,
                };
                s.schedule(now + delay, i);
                if x.is_multiple_of(3) {
                    if let Some((at, item)) = s.pop() {
                        now = at;
                        log.push((at, item));
                    }
                }
            }
            while let Some(ev) = s.pop() {
                log.push(ev);
            }
            log
        }
        let mut heap = AnyScheduler::for_mode(SchedulerMode::BinaryHeap);
        let mut cal = AnyScheduler::for_mode(SchedulerMode::Calendar);
        assert_eq!(drive(&mut heap), drive(&mut cal));
        assert_eq!(heap.events_scheduled(), cal.events_scheduled());
        assert_eq!(heap.peak_len(), cal.peak_len());
    }
}
