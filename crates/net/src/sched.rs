//! Pluggable event schedulers for the simulator.
//!
//! The simulator's hot loop is `schedule` / `pop` on a priority queue of
//! timestamped events. This module abstracts that queue behind the
//! [`Scheduler`] trait and ships two implementations selected by
//! [`SchedulerMode`] (see `docs/SIM.md` for the full engine contract):
//!
//! * [`HeapScheduler`] — the classic `BinaryHeap` engine. O(log n) per
//!   operation with n the *total* queue depth, including far-future
//!   entries (recurring re-flood timers, long deadlines) that every
//!   near-term delivery must sift past. Kept as the differential oracle
//!   and speedup baseline, exactly like
//!   [`SpatialMode::NaiveScan`](crate::sim::SpatialMode::NaiveScan).
//! * [`CalendarScheduler`] — a hierarchical calendar (bucket) queue
//!   tuned to the simulator's bounded-horizon event distribution:
//!   almost every event lands within a few milliseconds of *now*
//!   (radio latency, jitter, per-key computation delays), while a
//!   minority (re-flood periods, expiry deadlines) sits seconds out.
//!   Near-term events go into a ring of fixed-width time buckets
//!   (insert and extract O(1) amortized, located via an occupancy
//!   bitmap); far-future events wait in an overflow heap and migrate
//!   into the ring when the clock approaches them, so they are touched
//!   O(log overflow) times *total* instead of taxing every operation.
//!   The bucket width *adapts* to the observed inter-event spacing
//!   (see [`CalendarScheduler::bucket_width_us`]), so server-paced,
//!   seconds-scale workloads keep O(1) scheduling instead of falling
//!   into the overflow heap.
//!
//! # Ordering contract
//!
//! Both schedulers are *bit-identical*: events pop in ascending
//! `(at_us, key)` order, where [`EventKey`] is a **content-derived**
//! key supplied by the caller — `(source node, per-source emission
//! counter)` for the simulator, never an engine-assigned global
//! sequence. Because the key is a function of the event's *origin*
//! rather than of insertion order, the pop order is independent of
//! which engine (or which spatial shard — see [`crate::shard`])
//! inserted the entry. Callers must keep keys unique; the simulator
//! guarantees this by never reusing an emission number. Recurring
//! entries ([`Scheduler::schedule_recurring`]) re-arm at pop time and
//! *keep their original key*, so a re-armed firing ties against other
//! events at its new instant exactly as its creation order dictates. A
//! simulation run is therefore a pure function of `(seed, config,
//! apps)` regardless of [`SchedulerMode`]; the differential suites
//! (`tests/sched_differential.rs`, the root churn tests) pin this down
//! at the event, trace, and application levels.
//!
//! # Handoff support
//!
//! Spatial sharding moves nodes between engine instances at mobility
//! quiesce points. [`Scheduler::extract`] removes every pending entry
//! matching a predicate (returned in ascending `(at_us, key)` order),
//! and [`Scheduler::transfer`] re-inserts an extracted entry into
//! another scheduler *without* counting it toward
//! [`Scheduler::events_scheduled`] — a moved event was already
//! accounted once at its original insertion, and the merged counters
//! must be independent of how often it migrates.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which event engine the simulator runs on. See the module docs.
///
/// Both modes produce bit-identical runs; only wall-clock and
/// [`Metrics::events_scheduled`](crate::sim::Metrics::events_scheduled) /
/// [`Metrics::peak_queue_len`](crate::sim::Metrics::peak_queue_len)
/// observability (identical across modes by construction) distinguish
/// them externally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Hierarchical calendar queue ([`CalendarScheduler`]):
    /// O(1)-amortized insert/extract for the bounded-horizon bulk of
    /// the traffic. The default.
    #[default]
    Calendar,
    /// Binary heap ([`HeapScheduler`]) — the pre-refactor reference
    /// engine, kept as the differential oracle and speedup baseline.
    BinaryHeap,
}

/// Content-derived tie-break key of a scheduled event.
///
/// Two events at the same instant pop in ascending `(src, emit)`
/// order. The simulator derives the key from the event's *origin* —
/// the emitting node and that node's private emission counter — so the
/// global pop order is a pure function of simulation content, not of
/// which engine or shard performed the insertion. External injections
/// use the [`EventKey::EXTERNAL_SRC`] sentinel, ordering them after
/// every node-emitted event at the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Emitting node id, or [`EventKey::EXTERNAL_SRC`].
    pub src: u32,
    /// The source's emission counter at emit time (unique per source).
    pub emit: u64,
}

impl EventKey {
    /// Sentinel source for events injected from outside the simulated
    /// network ([`Simulator::inject`](crate::sim::Simulator::inject));
    /// sorts after every real node at the same instant.
    pub const EXTERNAL_SRC: u32 = u32::MAX;

    /// A key for an event emitted by node `src`.
    pub fn new(src: u32, emit: u64) -> Self {
        EventKey { src, emit }
    }

    /// A key for an externally injected event.
    pub fn external(emit: u64) -> Self {
        EventKey { src: Self::EXTERNAL_SRC, emit }
    }
}

/// Re-arming rule for a recurring scheduled item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recurrence {
    /// Distance between consecutive firings, in microseconds.
    /// Must be nonzero (a zero period would re-fire at the same
    /// instant forever and the queue would never drain).
    pub period_us: u64,
    /// Last instant (inclusive) a firing may be scheduled at. The
    /// entry stops re-arming once `at + period > until_us`, which is
    /// what lets [`Simulator::run`](crate::sim::Simulator::run) drain
    /// a queue containing recurring events.
    pub until_us: u64,
}

impl Recurrence {
    /// Creates a recurrence rule.
    ///
    /// # Panics
    ///
    /// Panics if `period_us` is zero.
    pub fn new(period_us: u64, until_us: u64) -> Self {
        assert!(period_us > 0, "a recurrence period must be nonzero");
        Recurrence { period_us, until_us }
    }
}

/// One pending queue entry, as stored by (and movable between)
/// schedulers: timestamp, content key, optional recurrence, payload.
/// Ordered by `(at_us, key)`; the item does not participate in
/// comparisons.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    /// The instant the event fires.
    pub at_us: u64,
    /// Content-derived tie-break key (see [`EventKey`]).
    pub key: EventKey,
    /// Re-arming rule, if the entry is recurring.
    pub recur: Option<Recurrence>,
    /// The scheduled payload.
    pub item: T,
}

impl<T> ScheduledEvent<T> {
    fn sort_key(&self) -> (u64, EventKey) {
        (self.at_us, self.key)
    }
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.sort_key() == other.sort_key()
    }
}
impl<T> Eq for ScheduledEvent<T> {}
impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

/// A priority queue of timestamped items with content-keyed
/// tie-breaking and optional recurrence — the simulator's event engine.
///
/// Implementations must satisfy the ordering contract in the module
/// docs; everything observable (pop order, the
/// [`Scheduler::events_scheduled`] / [`Scheduler::peak_len`] counters)
/// is identical across conforming implementations.
pub trait Scheduler<T: Clone> {
    /// Enqueues `item` to pop at `(at_us, key)`.
    fn schedule(&mut self, at_us: u64, key: EventKey, item: T);

    /// Enqueues `item` to first pop at `at_us` and then re-arm every
    /// `recur.period_us` while the next firing is `<= recur.until_us`,
    /// keeping `key` across re-arms. Each firing (including re-arms)
    /// counts toward [`Scheduler::events_scheduled`].
    fn schedule_recurring(&mut self, at_us: u64, key: EventKey, recur: Recurrence, item: T);

    /// The earliest pending `(at_us, item)` without removing it, or
    /// `None` when empty. Takes `&mut self` because locating the
    /// minimum may reorganize internal storage (calendar refill).
    fn peek(&mut self) -> Option<(u64, &T)>;

    /// Removes and returns the earliest pending `(at_us, item)`;
    /// recurring entries re-arm their next firing first (with their
    /// original key, before anything the caller schedules).
    fn pop(&mut self) -> Option<(u64, T)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever enqueued (schedule calls plus recurrence
    /// re-arms, *excluding* [`Scheduler::transfer`]s) — the
    /// queue-pressure counter behind
    /// [`Metrics::events_scheduled`](crate::sim::Metrics::events_scheduled).
    fn events_scheduled(&self) -> u64;

    /// High-water mark of [`Scheduler::len`] over the queue's lifetime.
    fn peak_len(&self) -> usize;

    /// Re-inserts an entry extracted from another scheduler, keeping
    /// its timestamp, key, and recurrence, *without* counting it
    /// toward [`Scheduler::events_scheduled`] (it was accounted at its
    /// original insertion). [`Scheduler::peak_len`] still observes the
    /// resulting depth.
    fn transfer(&mut self, ev: ScheduledEvent<T>);

    /// Removes every pending entry whose item matches `pred`,
    /// returning them in ascending `(at_us, key)` order — the mobility
    /// handoff primitive. Counters other than [`Scheduler::len`] are
    /// unaffected.
    fn extract(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Vec<ScheduledEvent<T>>;

    /// Enqueues a whole batch — the coalesced cross-shard envelope
    /// transfer. The batch is first sorted by its content sort key
    /// `(at_us, key)`, so the insertion order a sender accumulated it
    /// in is immaterial; each entry then counts toward
    /// [`Scheduler::events_scheduled`] exactly like an individual
    /// [`Scheduler::schedule`] call (a cross-shard event is *not*
    /// scheduled at its source, so this is its single accounting).
    fn schedule_all(&mut self, mut events: Vec<ScheduledEvent<T>>) {
        events.sort_unstable();
        for ev in events {
            debug_assert!(ev.recur.is_none(), "recurring entries never cross shards");
            self.schedule(ev.at_us, ev.key, ev.item);
        }
    }
}

/// Shared statistics bookkeeping, identical across engines so the
/// counters are comparable bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
struct Stats {
    scheduled: u64,
    peak: usize,
}

impl Stats {
    /// Accounts one enqueued event at the given post-insert length.
    fn on_insert(&mut self, len_after: usize) {
        self.scheduled += 1;
        self.peak = self.peak.max(len_after);
    }

    /// Accounts a transferred-in entry: depth only, no schedule count.
    fn on_transfer(&mut self, len_after: usize) {
        self.peak = self.peak.max(len_after);
    }
}

/// The binary-heap engine: `BinaryHeap<Reverse<ScheduledEvent>>`,
/// exactly the structure the simulator used before the scheduler
/// refactor. The differential oracle.
#[derive(Debug, Clone)]
pub struct HeapScheduler<T> {
    heap: BinaryHeap<Reverse<ScheduledEvent<T>>>,
    stats: Stats,
}

impl<T> Default for HeapScheduler<T> {
    fn default() -> Self {
        HeapScheduler { heap: BinaryHeap::new(), stats: Stats::default() }
    }
}

impl<T> HeapScheduler<T> {
    /// Creates an empty heap scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, at_us: u64, key: EventKey, recur: Option<Recurrence>, item: T) {
        self.stats.on_insert(self.heap.len() + 1);
        self.heap.push(Reverse(ScheduledEvent { at_us, key, recur, item }));
    }
}

impl<T: Clone> Scheduler<T> for HeapScheduler<T> {
    fn schedule(&mut self, at_us: u64, key: EventKey, item: T) {
        self.insert(at_us, key, None, item);
    }

    fn schedule_recurring(&mut self, at_us: u64, key: EventKey, recur: Recurrence, item: T) {
        self.insert(at_us, key, Some(recur), item);
    }

    fn peek(&mut self) -> Option<(u64, &T)> {
        self.heap.peek().map(|Reverse(e)| (e.at_us, &e.item))
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        let Reverse(e) = self.heap.pop()?;
        if let Some(recur) = e.recur {
            let next = e.at_us + recur.period_us;
            if next <= recur.until_us {
                self.insert(next, e.key, Some(recur), e.item.clone());
            }
        }
        Some((e.at_us, e.item))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn events_scheduled(&self) -> u64 {
        self.stats.scheduled
    }

    fn peak_len(&self) -> usize {
        self.stats.peak
    }

    fn transfer(&mut self, ev: ScheduledEvent<T>) {
        self.heap.push(Reverse(ev));
        self.stats.on_transfer(self.heap.len());
    }

    fn extract(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Vec<ScheduledEvent<T>> {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(entries.len());
        for Reverse(e) in entries {
            if pred(&e.item) {
                out.push(e);
            } else {
                kept.push(Reverse(e));
            }
        }
        self.heap = BinaryHeap::from(kept);
        out.sort_unstable();
        out
    }
}

/// Default microseconds covered by one calendar bucket. Deliberately
/// fine: the simulator's in-flight deliveries concentrate inside the
/// radio horizon (base latency + jitter, under a millisecond), so at
/// swarm scale tens of thousands of events share that window — wide
/// buckets would pile them into one slot and the per-bucket sort would
/// degenerate toward a global sort. At 4 µs a 50k-deep in-flight set
/// spreads to a few hundred entries per bucket: the lazy sort costs a
/// handful of comparisons per event on contiguous memory, and inserts
/// stay `Vec::push`.
const DEFAULT_BUCKET_WIDTH_US: u64 = 4;

/// Buckets in the ring; with [`DEFAULT_BUCKET_WIDTH_US`] the ring
/// covers ~33 ms of simulated time — enough for every latency/jitter
/// draw and the modelled per-key computation timers, while second-scale
/// entries (re-flood periods, expiry deadlines) go to the overflow heap
/// until the adaptive width catches up. Must be a multiple of 64 (the
/// occupancy bitmap is a `u64` array).
const RING_SLOTS: usize = 8192;

/// Pops between bucket-width adaptation checks. Frequent enough that a
/// workload shifting to a different time scale re-tunes within a few
/// hundred events; rare enough that the check never shows on profiles.
const RESIZE_CHECK_EVERY: u32 = 512;

/// Width must be off by ≥ this factor from the observed spacing before
/// a rebuild triggers — hysteresis keeping the standard radio-horizon
/// workload (whose mean gap sits within an order of magnitude of the
/// default width) on the untouched fast path.
const RESIZE_FACTOR: u64 = 8;

/// The hierarchical calendar-queue engine. See the module docs for the
/// design; in short: a ring of [`RING_SLOTS`] buckets of
/// [`CalendarScheduler::bucket_width_us`] each holds the near future
/// (located through an occupancy bitmap), a `BinaryHeap` overflow holds
/// everything beyond the ring's window, and the bucket at the current
/// epoch is kept sorted for in-order popping.
///
/// The bucket width starts at 4 µs (the radio-horizon sweet spot) and
/// **adapts**: an exponential moving average of the inter-pop gap is
/// maintained, and when it drifts a factor of 8 away from the current
/// width the ring is rebuilt around the observed scale. A server-paced
/// workload whose events are seconds apart therefore migrates out of
/// the overflow heap into O(1) ring scheduling after a few hundred
/// pops, while the swarm workloads never resize at all. Resizing never
/// affects ordering — that is governed entirely by `(at_us, key)` —
/// only the cost profile; [`CalendarScheduler::resizes`] observes it.
#[derive(Debug, Clone)]
pub struct CalendarScheduler<T> {
    /// Ring of future buckets; each non-empty slot holds entries of
    /// exactly one absolute epoch, in insertion order (sorted lazily
    /// when the slot becomes current).
    slots: Vec<Vec<ScheduledEvent<T>>>,
    /// One bit per slot: set iff the slot is non-empty. `u64` words so
    /// the next occupied slot is found by word scan + trailing_zeros.
    occupied: Vec<u64>,
    /// Entries of the current epoch, sorted *descending* by
    /// `(at_us, key)` so popping the minimum is `Vec::pop`.
    cur: Vec<ScheduledEvent<T>>,
    /// Absolute epoch (`at_us / width_us`) the drain cursor is at; the
    /// ring window is `[cur_epoch, cur_epoch + RING_SLOTS)`.
    cur_epoch: u64,
    /// Entries across all ring slots (excluding `cur`).
    ring_len: usize,
    /// Events beyond the ring window, keyed like the heap engine.
    overflow: BinaryHeap<Reverse<ScheduledEvent<T>>>,
    len: usize,
    stats: Stats,
    /// Current bucket width in microseconds (adaptive).
    width_us: u64,
    /// Timestamp of the most recent pop (gap measurement anchor).
    last_pop_at: u64,
    /// EMA of the inter-pop gap, scaled ×8 (integer arithmetic).
    gap_ema_x8: u64,
    /// Pops since the last adaptation check.
    pops_since_check: u32,
    /// Ring rebuilds performed by the adaptive width.
    resizes: u64,
}

impl<T> Default for CalendarScheduler<T> {
    fn default() -> Self {
        CalendarScheduler {
            slots: (0..RING_SLOTS).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; RING_SLOTS / 64],
            cur: Vec::new(),
            cur_epoch: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            stats: Stats::default(),
            width_us: DEFAULT_BUCKET_WIDTH_US,
            last_pop_at: 0,
            gap_ema_x8: DEFAULT_BUCKET_WIDTH_US * 8,
            pops_since_check: 0,
            resizes: 0,
        }
    }
}

impl<T> CalendarScheduler<T> {
    /// Creates an empty calendar scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current (adaptive) bucket width in microseconds.
    pub fn bucket_width_us(&self) -> u64 {
        self.width_us
    }

    /// How many times the adaptive width has rebuilt the ring.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    fn epoch_of(&self, at_us: u64) -> u64 {
        at_us / self.width_us
    }

    fn mark(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    fn unmark(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Files an entry into `cur` / ring / overflow. Does not touch
    /// `len` or `stats` — callers account those (insertion, transfer,
    /// and rebuild account differently).
    fn place(&mut self, entry: ScheduledEvent<T>) {
        let epoch = self.epoch_of(entry.at_us);
        if epoch <= self.cur_epoch {
            // Lands at (or before — possible right after a `run_until`
            // fast-forward) the epoch being drained: merge into the
            // sorted current block. `partition_point` finds the spot
            // that keeps the descending (at, key) order.
            let key = entry.sort_key();
            let pos = self.cur.partition_point(|e| e.sort_key() > key);
            self.cur.insert(pos, entry);
        } else if epoch < self.cur_epoch + RING_SLOTS as u64 {
            let slot = (epoch % RING_SLOTS as u64) as usize;
            self.slots[slot].push(entry);
            self.ring_len += 1;
            self.mark(slot);
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    fn insert(&mut self, at_us: u64, key: EventKey, recur: Option<Recurrence>, item: T) {
        self.len += 1;
        self.stats.on_insert(self.len);
        self.place(ScheduledEvent { at_us, key, recur, item });
    }

    /// First occupied ring slot strictly after `cur_epoch` (in epoch
    /// order, which equals circular slot order from the cursor), as an
    /// absolute epoch.
    fn next_ring_epoch(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let n = RING_SLOTS as u64;
        let start = ((self.cur_epoch + 1) % n) as usize;
        // Scan the bitmap from `start`, wrapping once around the ring.
        let mut dist = 0u64; // circular distance - 1 of the word scan start
        let mut idx = start;
        while dist < n {
            let word_idx = idx / 64;
            let bit = idx % 64;
            let word = self.occupied[word_idx] >> bit;
            if word != 0 {
                let hop = word.trailing_zeros() as u64;
                if dist + hop < n {
                    let slot = (idx as u64 + hop) % n;
                    // Slot order equals epoch order inside one window.
                    let delta = (slot + n - (self.cur_epoch + 1) % n) % n + 1;
                    return Some(self.cur_epoch + delta);
                }
                return None;
            }
            let hop = 64 - bit as u64;
            dist += hop;
            idx = (idx + hop as usize) % RING_SLOTS;
        }
        None
    }

    /// Refills `cur` from the earliest non-empty epoch across ring and
    /// overflow. No-op when nothing is pending.
    fn refill(&mut self) {
        debug_assert!(self.cur.is_empty());
        let ring_epoch = self.next_ring_epoch();
        let over_epoch = self.overflow.peek().map(|Reverse(e)| self.epoch_of(e.at_us));
        let target = match (ring_epoch, over_epoch) {
            (Some(r), Some(o)) => r.min(o),
            (Some(r), None) => r,
            (None, Some(o)) => o,
            (None, None) => return,
        };
        self.cur_epoch = target;
        if ring_epoch == Some(target) {
            let slot = (target % RING_SLOTS as u64) as usize;
            self.cur = std::mem::take(&mut self.slots[slot]);
            self.ring_len -= self.cur.len();
            self.unmark(slot);
        }
        // Overflow entries whose epoch the cursor has reached join the
        // same block (the ring may hold the same epoch when entries
        // were inserted after the window slid over it).
        while let Some(Reverse(e)) = self.overflow.peek() {
            if self.epoch_of(e.at_us) != target {
                break;
            }
            let Some(Reverse(e)) = self.overflow.pop() else { unreachable!() };
            self.cur.push(e);
        }
        self.cur.sort_unstable_by_key(|e| Reverse(e.sort_key()));
    }

    /// Gap-EMA update on every pop; every [`RESIZE_CHECK_EVERY`] pops,
    /// rebuild the ring if the observed spacing has drifted a factor of
    /// [`RESIZE_FACTOR`] away from the current width.
    fn observe_pop(&mut self, at_us: u64) {
        let gap = at_us - self.last_pop_at; // pops are time-monotone
        self.last_pop_at = at_us;
        self.gap_ema_x8 = self.gap_ema_x8 - self.gap_ema_x8 / 8 + gap;
        self.pops_since_check += 1;
        if self.pops_since_check < RESIZE_CHECK_EVERY {
            return;
        }
        self.pops_since_check = 0;
        // Classic calendar-queue rule: bucket width ≈ mean gap, so the
        // drain cursor finds ~one event per bucket.
        let target = (self.gap_ema_x8 / 8).max(1).next_power_of_two();
        if target >= self.width_us.saturating_mul(RESIZE_FACTOR)
            || self.width_us >= target.saturating_mul(RESIZE_FACTOR)
        {
            self.rebuild(target);
        }
    }

    /// Re-files every pending entry under a new bucket width. Ordering
    /// is untouched (it lives in the entries, not the buckets); only
    /// where entries sit changes.
    fn rebuild(&mut self, new_width: u64) {
        self.resizes += 1;
        let mut entries: Vec<ScheduledEvent<T>> = Vec::with_capacity(self.len);
        entries.append(&mut self.cur);
        for slot in &mut self.slots {
            entries.append(slot);
        }
        entries.extend(std::mem::take(&mut self.overflow).into_vec().into_iter().map(|r| r.0));
        self.ring_len = 0;
        self.occupied.fill(0);
        self.width_us = new_width;
        self.cur_epoch = self.last_pop_at / new_width;
        for entry in entries {
            let epoch = self.epoch_of(entry.at_us);
            if epoch <= self.cur_epoch {
                self.cur.push(entry); // sorted once below
            } else if epoch < self.cur_epoch + RING_SLOTS as u64 {
                let slot = (epoch % RING_SLOTS as u64) as usize;
                self.slots[slot].push(entry);
                self.ring_len += 1;
                self.mark(slot);
            } else {
                self.overflow.push(Reverse(entry));
            }
        }
        self.cur.sort_unstable_by_key(|e| Reverse(e.sort_key()));
    }
}

impl<T: Clone> Scheduler<T> for CalendarScheduler<T> {
    fn schedule(&mut self, at_us: u64, key: EventKey, item: T) {
        self.insert(at_us, key, None, item);
    }

    fn schedule_recurring(&mut self, at_us: u64, key: EventKey, recur: Recurrence, item: T) {
        self.insert(at_us, key, Some(recur), item);
    }

    fn peek(&mut self) -> Option<(u64, &T)> {
        if self.cur.is_empty() {
            self.refill();
        }
        self.cur.last().map(|e| (e.at_us, &e.item))
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        if self.cur.is_empty() {
            self.refill();
        }
        let e = self.cur.pop()?;
        self.len -= 1;
        if let Some(recur) = e.recur {
            let next = e.at_us + recur.period_us;
            if next <= recur.until_us {
                self.insert(next, e.key, Some(recur), e.item.clone());
            }
        }
        self.observe_pop(e.at_us);
        Some((e.at_us, e.item))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn events_scheduled(&self) -> u64 {
        self.stats.scheduled
    }

    fn peak_len(&self) -> usize {
        self.stats.peak
    }

    fn transfer(&mut self, ev: ScheduledEvent<T>) {
        self.len += 1;
        self.stats.on_transfer(self.len);
        self.place(ev);
    }

    fn extract(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Vec<ScheduledEvent<T>> {
        let mut out = Vec::new();
        let take = |store: &mut Vec<ScheduledEvent<T>>,
                    out: &mut Vec<ScheduledEvent<T>>,
                    pred: &mut dyn FnMut(&T) -> bool| {
            let mut kept = Vec::with_capacity(store.len());
            for e in store.drain(..) {
                if pred(&e.item) {
                    out.push(e);
                } else {
                    kept.push(e);
                }
            }
            *store = kept;
        };
        take(&mut self.cur, &mut out, pred);
        let before_ring = out.len();
        for i in 0..RING_SLOTS {
            if self.slots[i].is_empty() {
                continue;
            }
            take(&mut self.slots[i], &mut out, pred);
            if self.slots[i].is_empty() {
                self.unmark(i);
            }
        }
        self.ring_len -= out.len() - before_ring;
        let overflow = std::mem::take(&mut self.overflow).into_vec();
        let mut kept = Vec::with_capacity(overflow.len());
        for Reverse(e) in overflow {
            if pred(&e.item) {
                out.push(e);
            } else {
                kept.push(Reverse(e));
            }
        }
        self.overflow = BinaryHeap::from(kept);
        self.len -= out.len();
        out.sort_unstable();
        out
    }
}

/// A [`Scheduler`] chosen at runtime by [`SchedulerMode`] — what the
/// simulator embeds (enum dispatch keeps the hot path free of virtual
/// calls while staying pluggable through the trait).
#[derive(Debug, Clone)]
pub enum AnyScheduler<T> {
    /// The binary-heap oracle engine.
    Heap(HeapScheduler<T>),
    /// The calendar-queue engine.
    Calendar(CalendarScheduler<T>),
}

impl<T> AnyScheduler<T> {
    /// Creates the engine `mode` selects.
    pub fn for_mode(mode: SchedulerMode) -> Self {
        match mode {
            SchedulerMode::BinaryHeap => AnyScheduler::Heap(HeapScheduler::new()),
            SchedulerMode::Calendar => AnyScheduler::Calendar(CalendarScheduler::new()),
        }
    }

    /// How many times the adaptive calendar width has rebuilt the ring
    /// (0 for the heap engine, which never resizes).
    pub fn resizes(&self) -> u64 {
        match self {
            AnyScheduler::Heap(_) => 0,
            AnyScheduler::Calendar(s) => s.resizes(),
        }
    }

    /// The calendar's current bucket width in microseconds (`None` for
    /// the heap engine).
    pub fn bucket_width_us(&self) -> Option<u64> {
        match self {
            AnyScheduler::Heap(_) => None,
            AnyScheduler::Calendar(s) => Some(s.bucket_width_us()),
        }
    }
}

impl<T: Clone> Scheduler<T> for AnyScheduler<T> {
    fn schedule(&mut self, at_us: u64, key: EventKey, item: T) {
        match self {
            AnyScheduler::Heap(s) => s.schedule(at_us, key, item),
            AnyScheduler::Calendar(s) => s.schedule(at_us, key, item),
        }
    }

    fn schedule_recurring(&mut self, at_us: u64, key: EventKey, recur: Recurrence, item: T) {
        match self {
            AnyScheduler::Heap(s) => s.schedule_recurring(at_us, key, recur, item),
            AnyScheduler::Calendar(s) => s.schedule_recurring(at_us, key, recur, item),
        }
    }

    fn peek(&mut self) -> Option<(u64, &T)> {
        match self {
            AnyScheduler::Heap(s) => s.peek(),
            AnyScheduler::Calendar(s) => s.peek(),
        }
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        match self {
            AnyScheduler::Heap(s) => s.pop(),
            AnyScheduler::Calendar(s) => s.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyScheduler::Heap(s) => s.len(),
            AnyScheduler::Calendar(s) => s.len(),
        }
    }

    fn events_scheduled(&self) -> u64 {
        match self {
            AnyScheduler::Heap(s) => s.events_scheduled(),
            AnyScheduler::Calendar(s) => s.events_scheduled(),
        }
    }

    fn peak_len(&self) -> usize {
        match self {
            AnyScheduler::Heap(s) => s.peak_len(),
            AnyScheduler::Calendar(s) => s.peak_len(),
        }
    }

    fn transfer(&mut self, ev: ScheduledEvent<T>) {
        match self {
            AnyScheduler::Heap(s) => s.transfer(ev),
            AnyScheduler::Calendar(s) => s.transfer(ev),
        }
    }

    fn extract(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Vec<ScheduledEvent<T>> {
        match self {
            AnyScheduler::Heap(s) => s.extract(pred),
            AnyScheduler::Calendar(s) => s.extract(pred),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique, ascending-by-call-order keys for tests that only care
    /// about time ordering.
    fn key(emit: u64) -> EventKey {
        EventKey::new(0, emit)
    }

    fn drain<S: Scheduler<u32>>(s: &mut S) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = s.pop() {
            out.push(ev);
        }
        out
    }

    fn both() -> [AnyScheduler<u32>; 2] {
        [
            AnyScheduler::for_mode(SchedulerMode::BinaryHeap),
            AnyScheduler::for_mode(SchedulerMode::Calendar),
        ]
    }

    #[test]
    fn pops_in_time_then_key_order() {
        for mut s in both() {
            s.schedule(500, key(0), 1);
            s.schedule(100, key(1), 2);
            s.schedule(500, key(2), 3); // same instant as item 1 → larger key after it
            s.schedule(0, key(3), 4);
            assert_eq!(drain(&mut s), vec![(0, 4), (100, 2), (500, 1), (500, 3)]);
        }
    }

    #[test]
    fn key_order_is_content_not_insertion_order() {
        // The same instant pops in (src, emit) order however the
        // entries arrived — the property sharded execution relies on.
        for mut s in both() {
            s.schedule(700, EventKey::new(2, 0), 20);
            s.schedule(700, EventKey::new(0, 5), 5);
            s.schedule(700, EventKey::external(0), 99); // sentinel src sorts last
            s.schedule(700, EventKey::new(0, 1), 1);
            s.schedule(700, EventKey::new(1, 3), 13);
            assert_eq!(drain(&mut s), vec![(700, 1), (700, 5), (700, 13), (700, 20), (700, 99)]);
        }
    }

    #[test]
    fn far_future_and_near_events_interleave_correctly() {
        for mut s in both() {
            // Far beyond the calendar ring window (~33 ms).
            s.schedule(10_000_000, key(0), 1);
            s.schedule(300, key(1), 2);
            s.schedule(9_999_999, key(2), 3);
            s.schedule(DEFAULT_BUCKET_WIDTH_US * RING_SLOTS as u64 * 3, key(3), 4);
            let order = drain(&mut s);
            assert_eq!(
                order,
                vec![
                    (300, 2),
                    (DEFAULT_BUCKET_WIDTH_US * RING_SLOTS as u64 * 3, 4),
                    (9_999_999, 3),
                    (10_000_000, 1)
                ]
            );
        }
    }

    #[test]
    fn mid_drain_insertion_lands_in_order() {
        for mut s in both() {
            s.schedule(100, key(0), 1);
            s.schedule(200, key(1), 2);
            assert_eq!(s.pop(), Some((100, 1)));
            // Insert at the *current* instant and between pending ones.
            s.schedule(100, key(2), 3);
            s.schedule(150, key(3), 4);
            assert_eq!(drain(&mut s), vec![(100, 3), (150, 4), (200, 2)]);
        }
    }

    #[test]
    fn recurring_fires_every_period_until_deadline() {
        for mut s in both() {
            s.schedule_recurring(1_000, key(0), Recurrence::new(1_000, 3_500), 7);
            assert_eq!(drain(&mut s), vec![(1_000, 7), (2_000, 7), (3_000, 7)]);
            assert_eq!(s.events_scheduled(), 3, "each firing is accounted");
        }
    }

    #[test]
    fn recurring_rearm_keeps_its_key() {
        // The re-armed firing carries its creation key, so it ties
        // against later same-instant entries purely by key comparison —
        // not by when the re-arm happened to be scheduled.
        for mut s in both() {
            s.schedule_recurring(100, key(1), Recurrence::new(100, 250), 1);
            assert_eq!(s.pop(), Some((100, 1)));
            s.schedule(200, key(0), 2); // smaller key → pops before the re-arm
            s.schedule(200, key(2), 3); // larger key → after it
            assert_eq!(drain(&mut s), vec![(200, 2), (200, 1), (200, 3)]);
        }
    }

    #[test]
    fn len_and_peak_track_depth() {
        for mut s in both() {
            assert!(s.is_empty());
            s.schedule(10, key(0), 1);
            s.schedule(20_000_000, key(1), 2); // overflow territory for the calendar
            s.schedule(30, key(2), 3);
            assert_eq!(s.len(), 3);
            assert_eq!(s.peak_len(), 3);
            let _ = s.pop();
            let _ = s.pop();
            assert_eq!(s.len(), 1);
            assert_eq!(s.peak_len(), 3, "peak is a high-water mark");
            assert_eq!(s.events_scheduled(), 3);
        }
    }

    #[test]
    fn peek_matches_pop_without_consuming() {
        for mut s in both() {
            assert_eq!(s.peek(), None);
            s.schedule(40, key(0), 9);
            s.schedule(5, key(1), 8);
            assert_eq!(s.peek(), Some((5, &8)));
            assert_eq!(s.len(), 2);
            assert_eq!(s.pop(), Some((5, 8)));
            assert_eq!(s.peek(), Some((40, &9)));
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_period_recurrence_rejected() {
        let _ = Recurrence::new(0, 100);
    }

    #[test]
    fn transfer_moves_entries_without_recounting() {
        // Every (source engine, destination engine) pairing.
        for src_mode in [SchedulerMode::BinaryHeap, SchedulerMode::Calendar] {
            for dst_mode in [SchedulerMode::BinaryHeap, SchedulerMode::Calendar] {
                let mut src: AnyScheduler<u32> = AnyScheduler::for_mode(src_mode);
                let mut dst: AnyScheduler<u32> = AnyScheduler::for_mode(dst_mode);
                src.schedule(100, key(0), 1);
                src.schedule_recurring(50, key(1), Recurrence::new(100, 160), 2);
                src.schedule(10_000_000, key(2), 3); // overflow territory
                dst.schedule(150, key(3), 4);
                let moved = src.extract(&mut |&item| item != 1);
                assert_eq!(moved.len(), 2);
                assert!(moved.windows(2).all(|w| w[0].sort_key() <= w[1].sort_key()));
                assert_eq!(src.len(), 1);
                assert_eq!(src.events_scheduled(), 3, "extract never uncounts");
                for ev in moved {
                    dst.transfer(ev);
                }
                assert_eq!(dst.len(), 3);
                assert_eq!(dst.events_scheduled(), 1, "transfer adds depth, not schedule count");
                // The recurring entry still re-arms at its new home;
                // item 1 stayed behind in the source.
                assert_eq!(drain(&mut dst), vec![(50, 2), (150, 2), (150, 4), (10_000_000, 3)]);
                assert_eq!(drain(&mut src), vec![(100, 1)]);
                assert_eq!(dst.events_scheduled(), 2, "one local schedule + one re-arm");
            }
        }
    }

    #[test]
    fn extract_from_every_region_of_the_calendar() {
        let mut s: CalendarScheduler<u32> = CalendarScheduler::new();
        s.schedule(2, key(0), 10); // current epoch region
        let _ = s.peek(); // force a refill so `cur` is populated
        s.schedule(3, key(1), 11); // joins cur
        s.schedule(500, key(2), 12); // ring
        s.schedule(40_000_000, key(3), 13); // overflow
        s.schedule(41_000_000, key(4), 14); // overflow, kept
        let out = s.extract(&mut |&item| item != 12 && item != 14);
        assert_eq!(out.iter().map(|e| e.item).collect::<Vec<_>>(), vec![10, 11, 13]);
        assert_eq!(s.len(), 2);
        assert_eq!(drain(&mut s), vec![(500, 12), (41_000_000, 14)]);
    }

    /// A quick deterministic shuffle of mixed horizons: both engines
    /// must agree event for event (the heavyweight randomized version
    /// lives in `tests/sched_differential.rs`).
    #[test]
    fn engines_agree_on_a_mixed_stream() {
        fn drive(s: &mut AnyScheduler<u32>) -> Vec<(u64, u32)> {
            let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift
            let mut now = 0;
            let mut log = Vec::new();
            for i in 0..500u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let delay = match x % 5 {
                    0 => 0,                      // same-instant tie
                    1 => x % 700,                // radio horizon
                    2 => 5_000 + x % 2_000,      // computation timer
                    3 => 2_000_000 + x % 50_000, // beyond the ring window
                    _ => x % 50,
                };
                s.schedule(now + delay, EventKey::new((x % 7) as u32, i as u64), i);
                if x.is_multiple_of(3) {
                    if let Some((at, item)) = s.pop() {
                        now = at;
                        log.push((at, item));
                    }
                }
            }
            while let Some(ev) = s.pop() {
                log.push(ev);
            }
            log
        }
        let mut heap = AnyScheduler::for_mode(SchedulerMode::BinaryHeap);
        let mut cal = AnyScheduler::for_mode(SchedulerMode::Calendar);
        assert_eq!(drive(&mut heap), drive(&mut cal));
        assert_eq!(heap.events_scheduled(), cal.events_scheduled());
        assert_eq!(heap.peak_len(), cal.peak_len());
    }

    #[test]
    fn adaptive_width_tracks_seconds_scale_workloads() {
        // Server-paced stream: events ~1 s apart. Under the fixed 4 µs
        // width every entry would live in the overflow heap; the
        // adaptive width must rebuild the ring around the observed gap
        // and keep the stream identical to the heap oracle.
        let mut cal: CalendarScheduler<u32> = CalendarScheduler::new();
        let mut heap: HeapScheduler<u32> = HeapScheduler::new();
        let mut x = 0x9E37_79B9u64;
        let mut at = 0u64;
        for i in 0..3_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            at += 800_000 + x % 400_000; // ~1 s mean spacing
            cal.schedule(at, key(u64::from(i)), i);
            heap.schedule(at, key(u64::from(i)), i);
            // Interleave pops so the EMA observes the spacing.
            if i % 2 == 0 {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        while let Some(ev) = cal.pop() {
            assert_eq!(Some(ev), heap.pop());
        }
        assert!(cal.resizes() >= 1, "seconds-scale spacing must trigger a resize");
        assert!(
            cal.bucket_width_us() >= 100_000,
            "width must approach the observed gap, got {}",
            cal.bucket_width_us()
        );
    }

    #[test]
    fn adaptive_width_shrinks_back_for_dense_streams() {
        // A seconds-scale phase grows the buckets; a following dense
        // microsecond-scale phase must shrink them again.
        let mut cal: CalendarScheduler<u32> = CalendarScheduler::new();
        let mut emit = 0u64;
        let mut at = 0u64;
        for i in 0..2_000u32 {
            at += 1_000_000;
            cal.schedule(at, key(emit), i);
            emit += 1;
            let _ = cal.pop();
        }
        let wide = cal.bucket_width_us();
        assert!(wide >= 100_000, "phase one must widen the buckets, got {wide}");
        for i in 0..20_000u32 {
            at += 3;
            cal.schedule(at, key(emit), i);
            emit += 1;
            let _ = cal.pop();
        }
        assert!(
            cal.bucket_width_us() < wide,
            "dense phase must shrink the buckets again, got {}",
            cal.bucket_width_us()
        );
    }

    #[test]
    fn default_width_is_stable_on_radio_horizon_streams() {
        // The standard swarm profile (gaps well under the resize
        // hysteresis factor from 4 µs) must never pay for a rebuild.
        let mut cal: CalendarScheduler<u32> = CalendarScheduler::new();
        let mut at = 0u64;
        for i in 0..10_000u32 {
            at += u64::from(i % 12); // mean gap ≈ 5.5 µs
            cal.schedule(at, key(i as u64), i);
            let _ = cal.pop();
        }
        assert_eq!(cal.resizes(), 0);
        assert_eq!(cal.bucket_width_us(), DEFAULT_BUCKET_WIDTH_US);
    }
}
