//! The discrete-event simulation engine.
//!
//! Time is measured in integer microseconds. All randomness (latency
//! jitter, loss) flows from one seeded RNG, making runs reproducible
//! bit-for-bit. Events are ordered by `(timestamp, sequence)` — FIFO
//! among same-instant events — by a pluggable [`crate::sched`] engine
//! selected through [`SimConfig::scheduler`]; see `docs/SIM.md` for the
//! full event-engine contract.

use crate::payload::Payload;
use crate::sched::{AnyScheduler, Scheduler};
use crate::spatial::SpatialIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use crate::sched::{Recurrence, SchedulerMode};

/// Identifier of a node in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a raw index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index (also the insertion order of `add_node`).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// How the simulator answers "which nodes are within radio range?".
///
/// Both modes are *bit-identical*: candidates survive the same distance
/// comparison in the same (ascending node id) order and draw the same RNG
/// stream, so a run is a pure function of `(seed, SimConfig, apps)`
/// regardless of mode — the differential test suites pin this down. The
/// naive scan exists as the oracle for those tests and as the baseline
/// for speedup measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpatialMode {
    /// Hex-grid bucket index ([`crate::spatial::SpatialIndex`]): query
    /// cost proportional to local density, not swarm size. The default.
    #[default]
    HexIndex,
    /// Linear scan over all nodes — O(n) per broadcast and per BFS
    /// visit, the pre-index reference behaviour.
    NaiveScan,
}

/// How applications should put messages on the air.
///
/// The simulator itself transports any [`Payload`]; this switch tells
/// payload-aware applications (e.g. `msb_core::app::FriendingApp`)
/// which representation to construct. Both modes are proven to produce
/// identical recipients, event order, match results *and byte metrics*
/// (in-memory payloads declare their exact encoded length) — the
/// in-memory mode is the oracle the codec path is differentially tested
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Message structs ride the event queue unserialized (shared, not
    /// copied); byte metrics use each message's exact computed frame
    /// length. The default: no codec work on the hot path.
    #[default]
    InMemory,
    /// Every message is encoded into its canonical `msb-wire` frame at
    /// the sender and decoded at each receiver; byte metrics measure
    /// the actual frames.
    EncodedFrames,
}

/// Radio, timing, and engine parameters.
///
/// Every field participates in determinism: two runs with equal seeds,
/// equal configs, and equal apps produce identical event streams and
/// [`Metrics`]. Fields that change only *how fast* the engine answers
/// queries ([`SimConfig::spatial`], [`SimConfig::cell_d`],
/// [`SimConfig::delivery`]) do not change the stream at all — only
/// [`Metrics::cells_scanned`] reflects them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Radio range in meters: broadcasts reach nodes within this distance
    /// (inclusive), and two nodes within it are connectivity-graph
    /// neighbors for unicast routing.
    pub radio_range: f64,
    /// Fixed per-transmission latency in microseconds.
    pub base_latency_us: u64,
    /// Additional latency per meter of distance, in microseconds.
    pub per_meter_latency_us: f64,
    /// Uniform jitter added to each transmission, in microseconds. Each
    /// in-range delivery draws one jitter sample from the shared RNG.
    pub jitter_us: u64,
    /// Probability that any single transmission is lost. Each scheduled
    /// transmission draws one loss sample when nonzero.
    pub loss_rate: f64,
    /// Coalesce same-instant deliveries to one node into a single
    /// [`NodeApp::on_batch`] call, letting applications process message
    /// chunks (e.g. batched responder handling) instead of one at a
    /// time. Off by default: the unbatched event loop is the historical
    /// reference behaviour, bit-for-bit.
    pub batch_delivery: bool,
    /// Event-queue engine; see [`SchedulerMode`]. Like
    /// [`SimConfig::spatial`], this changes only how fast the engine
    /// runs, never the event stream — both modes are bit-identical.
    pub scheduler: SchedulerMode,
    /// Neighbor-query engine; see [`SpatialMode`].
    pub spatial: SpatialMode,
    /// Hex cell scale for [`SpatialMode::HexIndex`], in meters. `None`
    /// (the default) uses [`SimConfig::radio_range`], the sweet spot of
    /// the cell-size heuristic (see [`crate::spatial`] module docs).
    /// Ignored under [`SpatialMode::NaiveScan`].
    pub cell_d: Option<f64>,
    /// Message representation payload-aware applications should send;
    /// see [`DeliveryMode`].
    pub delivery: DeliveryMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            radio_range: 50.0, // the paper's "within 50 meters" example
            base_latency_us: 500,
            per_meter_latency_us: 3.3e-3, // ~speed of light, negligible
            jitter_us: 200,
            loss_rate: 0.0,
            batch_delivery: false,
            scheduler: SchedulerMode::Calendar,
            spatial: SpatialMode::HexIndex,
            cell_d: None,
            delivery: DeliveryMode::InMemory,
        }
    }
}

/// Application logic attached to each node.
pub trait NodeApp {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, payload: &Payload);
    /// Called for timers set through [`NodeCtx::set_timer`].
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}
    /// Called instead of [`NodeApp::on_message`] when
    /// [`SimConfig::batch_delivery`] is on and several messages reach
    /// this node at the same instant. The default forwards each message
    /// in arrival order, so enabling batching changes nothing for apps
    /// that don't override this.
    fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, batch: &[(NodeId, Payload)]) {
        for (from, payload) in batch {
            self.on_message(ctx, *from, payload);
        }
    }
}

/// What a node may do while handling an event.
#[derive(Debug)]
enum Action {
    Broadcast(Payload),
    BroadcastK(usize, Payload),
    Unicast(NodeId, Payload),
    Timer(u64, u64),                      // delay_us, token
    RecurringTimer(u64, Recurrence, u64), // delay_us, recurrence, token
}

/// Handle given to application callbacks.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    id: NodeId,
    now_us: u64,
    position: (f64, f64),
    delivery: DeliveryMode,
    rng: &'a mut StdRng,
    actions: Vec<Action>,
}

impl NodeCtx<'_> {
    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// Current simulation time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// This node's current position.
    pub fn position(&self) -> (f64, f64) {
        self.position
    }

    /// The message representation this simulation asks applications to
    /// send ([`SimConfig::delivery`]).
    pub fn delivery(&self) -> DeliveryMode {
        self.delivery
    }

    /// Shared deterministic randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues a broadcast to every node in radio range.
    pub fn broadcast(&mut self, payload: impl Into<Payload>) {
        self.actions.push(Action::Broadcast(payload.into()));
    }

    /// Queues a fan-out-capped broadcast: the transmission reaches only
    /// the `k` nearest other nodes in radio range (ties at equal
    /// distance break toward the smaller id), modelling a gossip
    /// push to a bounded neighbor set — the re-flood policy's cap.
    /// `k = 0` transmits to nobody but still counts as a broadcast.
    pub fn broadcast_k_nearest(&mut self, k: usize, payload: impl Into<Payload>) {
        self.actions.push(Action::BroadcastK(k, payload.into()));
    }

    /// Queues a unicast. Delivered directly when in range, otherwise
    /// relayed along the shortest connectivity path (modelling the
    /// reverse route a reply follows); each hop counts as a transmission.
    pub fn unicast(&mut self, to: NodeId, payload: impl Into<Payload>) {
        self.actions.push(Action::Unicast(to, payload.into()));
    }

    /// Schedules [`NodeApp::on_timer`] after `delay_us`.
    pub fn set_timer(&mut self, delay_us: u64, token: u64) {
        self.actions.push(Action::Timer(delay_us, token));
    }

    /// Schedules a recurring [`NodeApp::on_timer`]: first fires after
    /// `delay_us`, then every `period_us` for as long as the next
    /// firing lands at or before `until_us` (so a run with recurring
    /// timers still drains — see [`crate::sched::Recurrence`]). Every
    /// firing delivers the same `token`.
    ///
    /// # Panics
    ///
    /// Panics if `period_us` is zero.
    pub fn set_recurring_timer(
        &mut self,
        delay_us: u64,
        period_us: u64,
        until_us: u64,
        token: u64,
    ) {
        self.actions.push(Action::RecurringTimer(
            delay_us,
            Recurrence::new(period_us, until_us),
            token,
        ));
    }
}

/// Aggregate transmission statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Broadcast transmissions performed.
    pub broadcasts: u64,
    /// Unicast messages initiated.
    pub unicasts: u64,
    /// Individual hop transmissions for unicasts.
    pub unicast_hops: u64,
    /// Messages delivered to applications.
    pub delivered: u64,
    /// Transmissions lost to the configured loss rate.
    pub lost: u64,
    /// Unicasts abandoned because no route existed.
    pub unroutable: u64,
    /// Total payload bytes put on the air (once per transmission).
    pub payload_bytes: u64,
    /// Neighbor range queries answered: one per broadcast plus one per
    /// node visited by [`Simulator::shortest_path`] /
    /// [`Simulator::connected_components`] BFS. Identical across
    /// [`SpatialMode`]s (part of the differential oracle).
    pub neighbor_queries: u64,
    /// Hex cells examined to answer those queries — the index-efficiency
    /// observable: `cells_scanned / neighbor_queries` stays ≈ constant
    /// (19 measured at the default cell size) however large the swarm
    /// grows.
    /// Always 0 under [`SpatialMode::NaiveScan`], which scans nodes, not
    /// cells; differential comparisons must mask this one field.
    pub cells_scanned: u64,
    /// Events ever enqueued: every delivery, timer firing, and
    /// recurrence re-arm. Identical across [`SchedulerMode`]s (part of
    /// the differential oracle) — the queue-pressure observable the
    /// churn benches report.
    pub events_scheduled: u64,
    /// High-water mark of the pending-event queue over the run, also
    /// identical across [`SchedulerMode`]s.
    pub peak_queue_len: u64,
}

/// What rides the event queue. Cloneable so recurring entries can
/// re-arm (payload clones are O(1) — `Payload` is reference-counted).
#[derive(Debug, Clone)]
enum EventKind {
    Deliver { to: NodeId, from: NodeId, payload: Payload },
    Timer { node: NodeId, token: u64 },
}

struct NodeEntry<A> {
    position: (f64, f64),
    app: A,
}

/// The simulator: owns nodes, the event queue, the clock, and the
/// spatial index answering range queries.
pub struct Simulator<A: NodeApp> {
    nodes: Vec<NodeEntry<A>>,
    /// The event engine ([`SimConfig::scheduler`]); assigns the global
    /// `(timestamp, sequence)` order every run is defined by.
    queue: AnyScheduler<EventKind>,
    now_us: u64,
    config: SimConfig,
    rng: StdRng,
    metrics: Metrics,
    /// `Some` under [`SpatialMode::HexIndex`], kept in lockstep with node
    /// positions by [`Simulator::add_node`] / [`Simulator::set_position`].
    index: Option<SpatialIndex>,
    /// Scratch buffer for index candidate lists, reused across queries.
    cand_buf: Vec<u32>,
}

impl<A: NodeApp> Simulator<A> {
    /// Creates a simulator with the given config and RNG seed.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let index = match config.spatial {
            SpatialMode::HexIndex => {
                Some(SpatialIndex::new(config.cell_d.unwrap_or(config.radio_range)))
            }
            SpatialMode::NaiveScan => None,
        };
        Simulator {
            nodes: Vec::new(),
            queue: AnyScheduler::for_mode(config.scheduler),
            now_us: 0,
            config,
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            index,
            cand_buf: Vec::new(),
        }
    }

    /// Adds a node at `position`, returning its id.
    pub fn add_node(&mut self, position: (f64, f64), app: A) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeEntry { position, app });
        if let Some(index) = &mut self.index {
            index.push(position);
        }
        id
    }

    /// Adds many nodes at once (bulk swarm construction), returning their
    /// ids in insertion order.
    pub fn add_nodes(&mut self, nodes: impl IntoIterator<Item = ((f64, f64), A)>) -> Vec<NodeId> {
        let iter = nodes.into_iter();
        let mut ids = Vec::with_capacity(iter.size_hint().0);
        for (position, app) in iter {
            ids.push(self.add_node(position, app));
        }
        ids
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Borrow a node's application state (e.g. to inspect results).
    pub fn app(&self, id: NodeId) -> &A {
        &self.nodes[id.index()].app
    }

    /// Mutably borrow a node's application state.
    pub fn app_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.nodes[id.index()].app
    }

    /// A node's position.
    pub fn position(&self, id: NodeId) -> (f64, f64) {
        self.nodes[id.index()].position
    }

    /// Moves a node (mobility models drive this), keeping the spatial
    /// index in sync.
    pub fn set_position(&mut self, id: NodeId, position: (f64, f64)) {
        self.nodes[id.index()].position = position;
        if let Some(index) = &mut self.index {
            index.update(id.0, position);
        }
    }

    /// Bulk position update, index-aligned with node ids — the mobility
    /// tick: `model.advance(dt); sim.set_positions(&model.positions())`.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one position per node is supplied.
    pub fn set_positions(&mut self, positions: &[(f64, f64)]) {
        assert_eq!(positions.len(), self.nodes.len(), "one position per node");
        for (i, &position) in positions.iter().enumerate() {
            self.set_position(NodeId(i as u32), position);
        }
    }

    /// Calls `on_start` on every node (in id order).
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            self.with_ctx(id, |app, ctx| app.on_start(ctx));
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or the clock passes `deadline_us`.
    pub fn run_until(&mut self, deadline_us: u64) {
        while let Some((at_us, _)) = self.queue.peek() {
            if at_us > deadline_us {
                break;
            }
            self.step();
        }
        self.now_us = self.now_us.max(deadline_us);
    }

    /// Processes one event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at_us, kind)) = self.queue.pop() else {
            return false;
        };
        // A recurring entry may have re-armed inside the pop.
        self.note_queue();
        self.now_us = at_us;
        match kind {
            EventKind::Deliver { to, from, payload } => {
                if self.config.batch_delivery {
                    let batch = self.drain_batch(to, from, payload);
                    self.metrics.delivered += batch.len() as u64;
                    self.with_ctx(to, |app, ctx| app.on_batch(ctx, &batch));
                } else {
                    self.metrics.delivered += 1;
                    self.with_ctx(to, |app, ctx| app.on_message(ctx, from, &payload));
                }
            }
            EventKind::Timer { node, token } => {
                self.with_ctx(node, |app, ctx| app.on_timer(ctx, token));
            }
        }
        true
    }

    /// Pops the run of queued deliveries that share this event's instant
    /// and destination. Only *consecutive* queue entries are coalesced,
    /// preserving the global (time, sequence) processing order exactly.
    fn drain_batch(
        &mut self,
        to: NodeId,
        from: NodeId,
        payload: Payload,
    ) -> Vec<(NodeId, Payload)> {
        let mut batch = vec![(from, payload)];
        loop {
            let same = match self.queue.peek() {
                Some((at_us, kind)) => {
                    at_us == self.now_us
                        && matches!(kind, EventKind::Deliver { to: t, .. } if *t == to)
                }
                None => false,
            };
            if !same {
                break;
            }
            let Some((_, EventKind::Deliver { from, payload, .. })) = self.queue.pop() else {
                unreachable!("peeked a same-instant delivery");
            };
            batch.push((from, payload));
        }
        batch
    }

    /// Injects a message from "outside" the network (tests, harnesses).
    pub fn inject(&mut self, to: NodeId, from: NodeId, payload: impl Into<Payload>) {
        let at = self.now_us;
        self.push_event(at, EventKind::Deliver { to, from, payload: payload.into() });
    }

    fn with_ctx(&mut self, id: NodeId, f: impl FnOnce(&mut A, &mut NodeCtx<'_>)) {
        let position = self.nodes[id.index()].position;
        let mut ctx = NodeCtx {
            id,
            now_us: self.now_us,
            position,
            delivery: self.config.delivery,
            rng: &mut self.rng,
            actions: Vec::new(),
        };
        // Split borrow: the app lives in self.nodes, ctx borrows self.rng.
        let entry = &mut self.nodes[id.index()];
        f(&mut entry.app, &mut ctx);
        let actions = ctx.actions;
        for action in actions {
            match action {
                Action::Broadcast(payload) => self.do_broadcast(id, payload),
                Action::BroadcastK(k, payload) => self.do_broadcast_k(id, k, payload),
                Action::Unicast(to, payload) => self.do_unicast(id, to, payload),
                Action::Timer(delay, token) => {
                    let at = self.now_us + delay;
                    self.push_event(at, EventKind::Timer { node: id, token });
                }
                Action::RecurringTimer(delay, recur, token) => {
                    let at = self.now_us + delay;
                    self.queue.schedule_recurring(at, recur, EventKind::Timer { node: id, token });
                    self.note_queue();
                }
            }
        }
    }

    /// One neighbor range query around node `cur`: invokes `f(i, pos_i)`
    /// for every node that *may* be within radio range, in ascending id
    /// order. Under [`SpatialMode::HexIndex`] only nodes in nearby cells
    /// are offered; under [`SpatialMode::NaiveScan`] every node is. The
    /// caller applies the exact `distance <= range` filter — candidates
    /// surviving it are therefore identical (same ids, same order) in
    /// both modes, which is the bit-identity the differential oracle
    /// proves.
    fn for_each_candidate(&mut self, cur: usize, mut f: impl FnMut(usize, (f64, f64))) {
        self.metrics.neighbor_queries += 1;
        match &mut self.index {
            Some(index) => {
                let center = self.nodes[cur].position;
                let range = self.config.radio_range;
                let mut cand = std::mem::take(&mut self.cand_buf);
                self.metrics.cells_scanned += index.candidates_into(center, range, &mut cand);
                for &i in &cand {
                    f(i as usize, self.nodes[i as usize].position);
                }
                self.cand_buf = cand;
            }
            None => {
                for (i, n) in self.nodes.iter().enumerate() {
                    f(i, n.position);
                }
            }
        }
    }

    fn do_broadcast(&mut self, from: NodeId, payload: Payload) {
        self.metrics.broadcasts += 1;
        self.metrics.payload_bytes += payload.wire_len() as u64;
        let src = self.nodes[from.index()].position;
        let range = self.config.radio_range;
        let mut targets: Vec<(NodeId, f64)> = Vec::new();
        self.for_each_candidate(from.index(), |i, pos| {
            if i != from.index() {
                let d = distance(src, pos);
                if d <= range {
                    targets.push((NodeId(i as u32), d));
                }
            }
        });
        for (to, dist) in targets {
            if self.roll_loss() {
                self.metrics.lost += 1;
                continue;
            }
            let at = self.now_us + self.latency(dist);
            self.push_event(at, EventKind::Deliver { to, from, payload: payload.clone() });
        }
    }

    /// One fan-out-capped broadcast ([`NodeCtx::broadcast_k_nearest`]):
    /// transmits to the `k` nearest other nodes within radio range.
    /// Under [`SpatialMode::HexIndex`] the set comes from
    /// [`SpatialIndex::k_nearest_into`]; under
    /// [`SpatialMode::NaiveScan`] from a full scan ranked the same way
    /// — both select identical targets (ascending `(distance, id)`,
    /// self excluded) and deliver in ascending id order with identical
    /// RNG draws, which the scheduler/spatial differential suites pin.
    fn do_broadcast_k(&mut self, from: NodeId, k: usize, payload: Payload) {
        self.metrics.broadcasts += 1;
        self.metrics.payload_bytes += payload.wire_len() as u64;
        self.metrics.neighbor_queries += 1;
        let src = self.nodes[from.index()].position;
        let range = self.config.radio_range;
        let mut cand = std::mem::take(&mut self.cand_buf);
        match &mut self.index {
            Some(index) => {
                // k + 1 slots so the querying node (distance 0) never
                // crowds out a real neighbor.
                let nodes = &self.nodes;
                self.metrics.cells_scanned += index.k_nearest_into(
                    src,
                    k + 1,
                    range,
                    |i| nodes[i as usize].position,
                    &mut cand,
                );
                cand.retain(|&i| i != from.index() as u32);
                cand.truncate(k);
            }
            None => {
                let mut ranked: Vec<(f64, u32)> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != from.index())
                    .map(|(i, n)| (distance(src, n.position), i as u32))
                    .filter(|&(d, _)| d <= range)
                    .collect();
                ranked.sort_unstable_by(|a, b| {
                    a.partial_cmp(b).expect("distances are finite, never NaN")
                });
                ranked.truncate(k);
                cand.clear();
                cand.extend(ranked.into_iter().map(|(_, i)| i));
            }
        }
        // Deliver in ascending id order, like a full broadcast.
        cand.sort_unstable();
        for &i in &cand {
            let to = NodeId(i);
            let dist = distance(src, self.nodes[i as usize].position);
            if self.roll_loss() {
                self.metrics.lost += 1;
                continue;
            }
            let at = self.now_us + self.latency(dist);
            self.push_event(at, EventKind::Deliver { to, from, payload: payload.clone() });
        }
        self.cand_buf = cand;
    }

    fn do_unicast(&mut self, from: NodeId, to: NodeId, payload: Payload) {
        self.metrics.unicasts += 1;
        if from == to {
            let at = self.now_us;
            self.push_event(at, EventKind::Deliver { to, from, payload });
            return;
        }
        let Some(path) = self.shortest_path(from, to) else {
            self.metrics.unroutable += 1;
            return;
        };
        // Each hop is a transmission; loss anywhere kills the message.
        let mut at = self.now_us;
        for hop in path.windows(2) {
            let d =
                distance(self.nodes[hop[0].index()].position, self.nodes[hop[1].index()].position);
            self.metrics.unicast_hops += 1;
            self.metrics.payload_bytes += payload.wire_len() as u64;
            if self.roll_loss() {
                self.metrics.lost += 1;
                return;
            }
            at += self.latency(d);
        }
        self.push_event(at, EventKind::Deliver { to, from, payload });
    }

    fn latency(&mut self, dist: f64) -> u64 {
        let jitter = if self.config.jitter_us > 0 {
            self.rng.gen_range(0..=self.config.jitter_us)
        } else {
            0
        };
        self.config.base_latency_us + (dist * self.config.per_meter_latency_us) as u64 + jitter
    }

    fn roll_loss(&mut self) -> bool {
        self.config.loss_rate > 0.0 && self.rng.gen_bool(self.config.loss_rate.min(1.0))
    }

    fn push_event(&mut self, at_us: u64, kind: EventKind) {
        self.queue.schedule(at_us, kind);
        self.note_queue();
    }

    /// Mirrors the scheduler's queue-pressure counters into [`Metrics`].
    /// Both counters are engine-independent by construction (same event
    /// stream → same counts), so differential comparisons need no mask.
    fn note_queue(&mut self) {
        self.metrics.events_scheduled = self.queue.events_scheduled();
        self.metrics.peak_queue_len = self.queue.peak_len() as u64;
    }

    /// BFS shortest path over the current connectivity graph (nodes
    /// within radio range are neighbors) — the route unicasts follow.
    /// Neighbor discovery goes through the spatial index, so a lookup
    /// visits each reachable node once and scans only its nearby cells,
    /// instead of probing all O(n²) node pairs.
    pub fn shortest_path(&mut self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let range = self.config.radio_range;
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from.index()] = true;
        queue.push_back(from.index());
        while let Some(cur) = queue.pop_front() {
            if cur == to.index() {
                let mut path = vec![to];
                let mut node = to.index();
                while let Some(p) = prev[node] {
                    path.push(NodeId(p as u32));
                    node = p;
                }
                path.reverse();
                return Some(path);
            }
            let cur_pos = self.nodes[cur].position;
            self.for_each_candidate(cur, |i, pos| {
                if !visited[i] && distance(cur_pos, pos) <= range {
                    visited[i] = true;
                    prev[i] = Some(cur);
                    queue.push_back(i);
                }
            });
        }
        None
    }

    /// Connected components of the current connectivity graph (diagnostic
    /// for partitioned topologies), via the same indexed BFS as
    /// [`Simulator::shortest_path`].
    pub fn connected_components(&mut self) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let range = self.config.radio_range;
        let mut visited = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = std::collections::VecDeque::new();
            visited[start] = true;
            queue.push_back(start);
            while let Some(cur) = queue.pop_front() {
                comp.push(NodeId(cur as u32));
                let cur_pos = self.nodes[cur].position;
                self.for_each_candidate(cur, |i, pos| {
                    if !visited[i] && distance(cur_pos, pos) <= range {
                        visited[i] = true;
                        queue.push_back(i);
                    }
                });
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }
}

impl<A: NodeApp> std::fmt::Debug for Simulator<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("now_us", &self.now_us)
            .field("pending_events", &self.queue.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

fn distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records everything it hears.
    struct Recorder {
        heard: Vec<(NodeId, Vec<u8>)>,
        timers: Vec<u64>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder { heard: Vec::new(), timers: Vec::new() }
        }
    }

    impl NodeApp for Recorder {
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, from: NodeId, payload: &Payload) {
            self.heard.push((from, payload.as_bytes().expect("test payloads are bytes").to_vec()));
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, token: u64) {
            self.timers.push(token);
        }
    }

    fn line_topology(n: usize, spacing: f64) -> Simulator<Recorder> {
        let mut sim = Simulator::new(SimConfig::default(), 1);
        for i in 0..n {
            sim.add_node((i as f64 * spacing, 0.0), Recorder::new());
        }
        sim
    }

    #[test]
    fn broadcast_reaches_only_in_range() {
        struct Caster;
        impl NodeApp for Caster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.broadcast(b"hello".to_vec());
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Caster);
        sim.add_node((40.0, 0.0), Caster);
        sim.add_node((80.0, 0.0), Caster); // out of 50m range of node 0
        sim.start();
        sim.run();
        assert_eq!(sim.metrics().broadcasts, 1);
        assert_eq!(sim.metrics().delivered, 1, "only the neighbour hears it");
    }

    #[test]
    fn unicast_routes_across_hops() {
        struct Fire(NodeId);
        impl NodeApp for Fire {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.unicast(self.0, b"reply".to_vec());
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let dst = NodeId::new(3);
        let mut sim = Simulator::new(SimConfig::default(), 1);
        for i in 0..4 {
            sim.add_node((i as f64 * 40.0, 0.0), Fire(dst));
        }
        sim.start();
        sim.run();
        assert_eq!(sim.metrics().unicasts, 1);
        assert_eq!(sim.metrics().unicast_hops, 3);
        assert_eq!(sim.metrics().delivered, 1);
    }

    #[test]
    fn unroutable_unicast_counted() {
        struct Fire;
        impl NodeApp for Fire {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.unicast(NodeId::new(1), b"x".to_vec());
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Fire);
        sim.add_node((1000.0, 0.0), Fire); // unreachable
        sim.start();
        sim.run();
        assert_eq!(sim.metrics().unroutable, 1);
        assert_eq!(sim.metrics().delivered, 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed;
        impl NodeApp for Timed {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(2000, 2);
                ctx.set_timer(1000, 1);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
                // Record ordering through time.
                assert!(ctx.now_us() >= 1000);
                let _ = token;
            }
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Timed);
        sim.start();
        sim.run();
        assert_eq!(sim.now_us(), 2000);
    }

    #[test]
    fn deterministic_runs() {
        fn run_once() -> (u64, Metrics) {
            let mut sim =
                Simulator::new(SimConfig { loss_rate: 0.3, ..SimConfig::default() }, 1234);
            struct Chatty;
            impl NodeApp for Chatty {
                fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                    ctx.broadcast(vec![ctx.node_id().index() as u8]);
                }
                fn on_message(&mut self, ctx: &mut NodeCtx<'_>, _: NodeId, payload: &Payload) {
                    let bytes = payload.as_bytes().expect("test payloads are bytes");
                    if bytes.len() < 3 {
                        let mut p = bytes.to_vec();
                        p.push(ctx.node_id().index() as u8);
                        ctx.broadcast(p);
                    }
                }
            }
            for i in 0..10 {
                sim.add_node(((i % 5) as f64 * 30.0, (i / 5) as f64 * 30.0), Chatty);
            }
            sim.start();
            sim.run();
            (sim.now_us(), *sim.metrics())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn loss_rate_one_drops_everything() {
        struct Caster;
        impl NodeApp for Caster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.broadcast(b"gone".to_vec());
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {
                panic!("nothing should arrive");
            }
        }
        let mut sim = Simulator::new(SimConfig { loss_rate: 1.0, ..SimConfig::default() }, 1);
        sim.add_node((0.0, 0.0), Caster);
        sim.add_node((10.0, 0.0), Caster);
        sim.start();
        sim.run();
        assert_eq!(sim.metrics().delivered, 0);
        assert_eq!(sim.metrics().lost, 2);
    }

    #[test]
    fn connected_components_split() {
        let mut sim = line_topology(2, 40.0);
        sim.add_node((500.0, 0.0), Recorder::new());
        let comps = sim.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[1].len(), 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Timed;
        impl NodeApp for Timed {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(10_000, 1);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: u64) {
                panic!("timer beyond deadline must not fire");
            }
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Timed);
        sim.start();
        sim.run_until(5_000);
        assert_eq!(sim.now_us(), 5_000);
    }

    #[test]
    fn batch_delivery_coalesces_same_instant_messages() {
        struct BatchRecorder {
            batches: Vec<usize>,
        }
        impl NodeApp for BatchRecorder {
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {
                panic!("batch mode must route through on_batch");
            }
            fn on_batch(&mut self, _: &mut NodeCtx<'_>, batch: &[(NodeId, Payload)]) {
                self.batches.push(batch.len());
            }
        }
        let config = SimConfig { batch_delivery: true, ..SimConfig::default() };
        let mut sim = Simulator::new(config, 1);
        let id = sim.add_node((0.0, 0.0), BatchRecorder { batches: Vec::new() });
        for i in 0..3u8 {
            sim.inject(id, NodeId::new(9), vec![i]);
        }
        sim.run();
        assert_eq!(sim.app(id).batches, vec![3]);
        assert_eq!(sim.metrics().delivered, 3);
    }

    #[test]
    fn default_on_batch_preserves_message_order() {
        // An app that does not override on_batch sees the same per-message
        // callbacks, in the same order, whether batching is on or off.
        let run = |batch_delivery: bool| -> Vec<(NodeId, Vec<u8>)> {
            let config = SimConfig { batch_delivery, ..SimConfig::default() };
            let mut sim = Simulator::new(config, 1);
            let id = sim.add_node((0.0, 0.0), Recorder::new());
            for i in 0..4u8 {
                sim.inject(id, NodeId::new(7), vec![i, i + 1]);
            }
            sim.run();
            sim.app(id).heard.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn recurring_timer_fires_until_deadline_and_drains() {
        struct Periodic;
        impl NodeApp for Periodic {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_recurring_timer(1_000, 1_000, 3_500, 9);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
                assert_eq!(token, 9);
                assert!(ctx.now_us().is_multiple_of(1_000));
            }
        }
        for mode in [SchedulerMode::Calendar, SchedulerMode::BinaryHeap] {
            let config = SimConfig { scheduler: mode, ..SimConfig::default() };
            let mut sim = Simulator::new(config, 1);
            sim.add_node((0.0, 0.0), Periodic);
            sim.start();
            sim.run(); // terminates: recurrence stops past 3 500 us
            assert_eq!(sim.now_us(), 3_000, "{mode:?}");
            assert_eq!(sim.metrics().events_scheduled, 3, "{mode:?}: 1 schedule + 2 re-arms");
        }
    }

    #[test]
    fn broadcast_k_nearest_caps_fanout_to_closest() {
        struct Caster;
        impl NodeApp for Caster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.broadcast_k_nearest(2, b"gossip".to_vec());
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let run = |spatial: SpatialMode| {
            let config = SimConfig { spatial, ..SimConfig::default() };
            let mut sim = Simulator::new(config, 1);
            sim.add_node((0.0, 0.0), Caster); // sender
            sim.add_node((10.0, 0.0), Caster); // nearest
            sim.add_node((20.0, 0.0), Caster); // second nearest
            sim.add_node((30.0, 0.0), Caster); // in range but capped away
            sim.add_node((80.0, 0.0), Caster); // out of range anyway
            sim.start();
            sim.run();
            *sim.metrics()
        };
        let indexed = run(SpatialMode::HexIndex);
        let naive = run(SpatialMode::NaiveScan);
        assert_eq!(indexed.broadcasts, 1);
        assert_eq!(indexed.delivered, 2, "fan-out capped at k = 2");
        assert_eq!(Metrics { cells_scanned: 0, ..indexed }, naive, "spatial modes diverged");
    }

    #[test]
    fn scheduler_modes_produce_identical_runs() {
        // The gossiping scenario from `deterministic_runs`, swept across
        // engines: final clock and full metrics must agree (the
        // heavyweight version lives in tests/sched_differential.rs).
        fn run_once(mode: SchedulerMode) -> (u64, Metrics) {
            let config = SimConfig { loss_rate: 0.3, scheduler: mode, ..SimConfig::default() };
            let mut sim = Simulator::new(config, 1234);
            struct Chatty;
            impl NodeApp for Chatty {
                fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                    ctx.broadcast(vec![ctx.node_id().index() as u8]);
                }
                fn on_message(&mut self, ctx: &mut NodeCtx<'_>, _: NodeId, payload: &Payload) {
                    let bytes = payload.as_bytes().expect("test payloads are bytes");
                    if bytes.len() < 3 {
                        let mut p = bytes.to_vec();
                        p.push(ctx.node_id().index() as u8);
                        ctx.broadcast(p);
                    }
                }
            }
            for i in 0..10 {
                sim.add_node(((i % 5) as f64 * 30.0, (i / 5) as f64 * 30.0), Chatty);
            }
            sim.start();
            sim.run();
            (sim.now_us(), *sim.metrics())
        }
        let calendar = run_once(SchedulerMode::Calendar);
        let heap = run_once(SchedulerMode::BinaryHeap);
        assert_eq!(calendar, heap);
        assert!(calendar.1.events_scheduled > 0);
        assert!(calendar.1.peak_queue_len > 0);
    }

    #[test]
    fn payload_bytes_counted_per_transmission() {
        struct Caster;
        impl NodeApp for Caster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.broadcast(vec![0u8; 100]);
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Caster);
        sim.add_node((10.0, 0.0), Caster);
        sim.add_node((20.0, 0.0), Caster);
        sim.start();
        sim.run();
        // One broadcast transmission of 100 bytes (not per receiver).
        assert_eq!(sim.metrics().payload_bytes, 100);
    }
}
