//! The discrete-event simulation engine.
//!
//! Time is measured in integer microseconds. Every event carries a
//! **content-derived** key `(at_us, EventKey)` — the emitting node and
//! that node's private emission counter — and the engine processes
//! events in strictly ascending key order (see [`crate::sched`]).
//! Randomness (latency jitter, loss) flows from *per-node* RNG streams
//! derived from the simulation seed, drawn on the emitting node in
//! event-processing order. Both choices make a run a pure function of
//! `(seed, SimConfig, apps)` that is independent of *which engine
//! executes it*: the pluggable scheduler ([`SimConfig::scheduler`]),
//! the spatial index ([`SimConfig::spatial`]), and — new — the
//! spatially-sharded parallel engine ([`crate::shard::ShardedSimulator`],
//! [`SimConfig::shards`]) all reproduce the identical stream
//! bit-for-bit. See `docs/SIM.md` for the full event-engine and shard
//! contracts.

use crate::payload::Payload;
use crate::sched::{AnyScheduler, EventKey, Scheduler};
use crate::topo::{distance, TopoScratch, Topology};
use msb_telemetry::{Recorder, TraceTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use crate::sched::{Recurrence, SchedulerMode};

/// Identifier of a node in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates an id from a raw index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index (also the insertion order of `add_node`).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// How the simulator answers "which nodes are within radio range?".
///
/// Both modes are *bit-identical*: candidates survive the same distance
/// comparison in the same (ascending node id) order and draw the same RNG
/// stream, so a run is a pure function of `(seed, SimConfig, apps)`
/// regardless of mode — the differential test suites pin this down. The
/// naive scan exists as the oracle for those tests and as the baseline
/// for speedup measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpatialMode {
    /// Hex-grid bucket index ([`crate::spatial::SpatialIndex`]): query
    /// cost proportional to local density, not swarm size. The default.
    #[default]
    HexIndex,
    /// Linear scan over all nodes — O(n) per broadcast and per BFS
    /// visit, the pre-index reference behaviour.
    NaiveScan,
}

/// How applications should put messages on the air.
///
/// The simulator itself transports any [`Payload`]; this switch tells
/// payload-aware applications (e.g. `msb_core::app::FriendingApp`)
/// which representation to construct. Both modes are proven to produce
/// identical recipients, event order, match results *and byte metrics*
/// (in-memory payloads declare their exact encoded length) — the
/// in-memory mode is the oracle the codec path is differentially tested
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Message structs ride the event queue unserialized (shared, not
    /// copied); byte metrics use each message's exact computed frame
    /// length. The default: no codec work on the hot path.
    #[default]
    InMemory,
    /// Every message is encoded into its canonical `msb-wire` frame at
    /// the sender and decoded at each receiver; byte metrics measure
    /// the actual frames.
    EncodedFrames,
}

/// Radio, timing, and engine parameters.
///
/// Every field participates in determinism: two runs with equal seeds,
/// equal configs, and equal apps produce identical event streams and
/// [`Metrics`]. Fields that change only *how fast* the engine answers
/// queries ([`SimConfig::spatial`], [`SimConfig::cell_d`],
/// [`SimConfig::delivery`], [`SimConfig::shards`]) do not change the
/// stream at all — only [`Metrics::cells_scanned`] (spatial mode) and
/// [`Metrics::peak_queue_len`] (shard count) reflect them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Radio range in meters: broadcasts reach nodes within this distance
    /// (inclusive), and two nodes within it are connectivity-graph
    /// neighbors for unicast routing.
    pub radio_range: f64,
    /// Fixed per-transmission latency in microseconds. Under sharded
    /// execution this is also the conservative lookahead: every
    /// cross-shard event lands at least this far in the future, which is
    /// what lets shards advance in parallel (must be nonzero when
    /// `shards > 1`).
    pub base_latency_us: u64,
    /// Additional latency per meter of distance, in microseconds.
    pub per_meter_latency_us: f64,
    /// Uniform jitter added to each transmission, in microseconds. Each
    /// in-range delivery draws one jitter sample from the *sender's* RNG
    /// stream.
    pub jitter_us: u64,
    /// Probability that any single transmission is lost. Each scheduled
    /// transmission draws one loss sample (from the sender's stream)
    /// when nonzero.
    pub loss_rate: f64,
    /// Coalesce same-instant deliveries to one node into a single
    /// [`NodeApp::on_batch`] call, letting applications process message
    /// chunks (e.g. batched responder handling) instead of one at a
    /// time. Off by default: the unbatched event loop is the historical
    /// reference behaviour, bit-for-bit.
    pub batch_delivery: bool,
    /// Event-queue engine; see [`SchedulerMode`]. Like
    /// [`SimConfig::spatial`], this changes only how fast the engine
    /// runs, never the event stream — both modes are bit-identical.
    pub scheduler: SchedulerMode,
    /// Neighbor-query engine; see [`SpatialMode`].
    pub spatial: SpatialMode,
    /// Hex cell scale for [`SpatialMode::HexIndex`], in meters. `None`
    /// (the default) uses [`SimConfig::radio_range`], the sweet spot of
    /// the cell-size heuristic (see [`crate::spatial`] module docs).
    /// Ignored under [`SpatialMode::NaiveScan`]. Also the tile scale the
    /// sharded engine partitions the plane by.
    pub cell_d: Option<f64>,
    /// Message representation payload-aware applications should send;
    /// see [`DeliveryMode`].
    pub delivery: DeliveryMode,
    /// Worker shards for [`crate::shard::ShardedSimulator`]: the hex
    /// tiles of the plane are partitioned across this many engine cores
    /// running in parallel under conservative-lookahead sync. `1` (the
    /// default) runs the core inline without threads. The
    /// single-threaded [`Simulator`] ignores this field — it is *the*
    /// oracle any shard count is proven bit-identical to.
    pub shards: usize,
    /// Side length, in hex tiles, of the square tile *regions* the
    /// sharded engine assigns to shards: ownership is hashed per
    /// `region_tiles × region_tiles` block of tiles rather than per
    /// tile. `1` (the default) reproduces the historical per-tile hash
    /// exactly. Larger regions give each shard spatially contiguous
    /// territory, which shrinks its halo fringe (neighbor tiles owned
    /// by *other* shards) and therefore its resident topology memory —
    /// the large-swarm configurations set 8–16. Another
    /// speed/memory-only knob: the event stream is bit-identical at
    /// any value (the differential suites sweep it). Ignored when
    /// `shards == 1`.
    pub region_tiles: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            radio_range: 50.0, // the paper's "within 50 meters" example
            base_latency_us: 500,
            per_meter_latency_us: 3.3e-3, // ~speed of light, negligible
            jitter_us: 200,
            loss_rate: 0.0,
            batch_delivery: false,
            scheduler: SchedulerMode::Calendar,
            spatial: SpatialMode::HexIndex,
            cell_d: None,
            delivery: DeliveryMode::InMemory,
            shards: 1,
            region_tiles: 1,
        }
    }
}

/// Application logic attached to each node.
pub trait NodeApp {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, payload: &Payload);
    /// Called for timers set through [`NodeCtx::set_timer`].
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}
    /// Called instead of [`NodeApp::on_message`] when
    /// [`SimConfig::batch_delivery`] is on and several messages reach
    /// this node at the same instant. The default forwards each message
    /// in arrival order, so enabling batching changes nothing for apps
    /// that don't override this.
    fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, batch: &[(NodeId, Payload)]) {
        for (from, payload) in batch {
            self.on_message(ctx, *from, payload);
        }
    }
}

/// What a node may do while handling an event.
#[derive(Debug)]
pub(crate) enum Action {
    Broadcast(Payload),
    BroadcastK(usize, Payload),
    Unicast(NodeId, Payload),
    Timer(u64, u64),                      // delay_us, token
    RecurringTimer(u64, Recurrence, u64), // delay_us, recurrence, token
}

/// Handle given to application callbacks.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    pub(crate) id: NodeId,
    pub(crate) now_us: u64,
    pub(crate) position: (f64, f64),
    pub(crate) delivery: DeliveryMode,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) actions: Vec<Action>,
}

impl NodeCtx<'_> {
    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// Current simulation time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// This node's current position.
    pub fn position(&self) -> (f64, f64) {
        self.position
    }

    /// The message representation this simulation asks applications to
    /// send ([`SimConfig::delivery`]).
    pub fn delivery(&self) -> DeliveryMode {
        self.delivery
    }

    /// This node's private deterministic RNG stream, derived from the
    /// simulation seed and the node id — independent of every other
    /// node's stream, so the draws a node makes are a pure function of
    /// the events *it* processes, whatever engine (or shard) runs it.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues a broadcast to every node in radio range.
    pub fn broadcast(&mut self, payload: impl Into<Payload>) {
        self.actions.push(Action::Broadcast(payload.into()));
    }

    /// Queues a fan-out-capped broadcast: the transmission reaches only
    /// the `k` nearest other nodes in radio range (ties at equal
    /// distance break toward the smaller id), modelling a gossip
    /// push to a bounded neighbor set — the re-flood policy's cap.
    /// `k = 0` transmits to nobody but still counts as a broadcast.
    pub fn broadcast_k_nearest(&mut self, k: usize, payload: impl Into<Payload>) {
        self.actions.push(Action::BroadcastK(k, payload.into()));
    }

    /// Queues a unicast. Delivered directly when in range, otherwise
    /// relayed along the shortest connectivity path (modelling the
    /// reverse route a reply follows); each hop counts as a transmission.
    pub fn unicast(&mut self, to: NodeId, payload: impl Into<Payload>) {
        self.actions.push(Action::Unicast(to, payload.into()));
    }

    /// Schedules [`NodeApp::on_timer`] after `delay_us`.
    pub fn set_timer(&mut self, delay_us: u64, token: u64) {
        self.actions.push(Action::Timer(delay_us, token));
    }

    /// Schedules a recurring [`NodeApp::on_timer`]: first fires after
    /// `delay_us`, then every `period_us` for as long as the next
    /// firing lands at or before `until_us` (so a run with recurring
    /// timers still drains — see [`crate::sched::Recurrence`]). Every
    /// firing delivers the same `token`.
    ///
    /// # Panics
    ///
    /// Panics if `period_us` is zero.
    pub fn set_recurring_timer(
        &mut self,
        delay_us: u64,
        period_us: u64,
        until_us: u64,
        token: u64,
    ) {
        self.actions.push(Action::RecurringTimer(
            delay_us,
            Recurrence::new(period_us, until_us),
            token,
        ));
    }
}

/// Aggregate transmission statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Broadcast transmissions performed.
    pub broadcasts: u64,
    /// Unicast messages initiated.
    pub unicasts: u64,
    /// Individual hop transmissions for unicasts.
    pub unicast_hops: u64,
    /// Messages delivered to applications.
    pub delivered: u64,
    /// Transmissions lost to the configured loss rate.
    pub lost: u64,
    /// Unicasts abandoned because no route existed.
    pub unroutable: u64,
    /// Total payload bytes put on the air (once per transmission).
    pub payload_bytes: u64,
    /// Neighbor range queries answered: one per broadcast plus one per
    /// node visited by [`Simulator::shortest_path`] /
    /// [`Simulator::connected_components`] BFS. Identical across
    /// [`SpatialMode`]s (part of the differential oracle).
    pub neighbor_queries: u64,
    /// Hex cells examined to answer those queries — the index-efficiency
    /// observable: `cells_scanned / neighbor_queries` stays ≈ constant
    /// (19 measured at the default cell size) however large the swarm
    /// grows.
    /// Always 0 under [`SpatialMode::NaiveScan`], which scans nodes, not
    /// cells; differential comparisons must mask this one field.
    pub cells_scanned: u64,
    /// Events ever enqueued: every delivery, timer firing, and
    /// recurrence re-arm, each counted exactly once however many times
    /// a shard handoff moves it. Identical across [`SchedulerMode`]s
    /// *and shard counts* (part of the differential oracle) — the
    /// queue-pressure observable the churn benches report.
    pub events_scheduled: u64,
    /// High-water mark of the pending-event queue over the run.
    /// Identical across [`SchedulerMode`]s; under sharded execution it
    /// merges as the **max over per-shard peaks**, which genuinely
    /// depends on how nodes split across shards — differential
    /// comparisons across shard counts must mask this one field
    /// ([`Metrics::without_queue_pressure`]).
    pub peak_queue_len: u64,
}

impl Metrics {
    /// Combines two metric sets: counters add; [`Metrics::peak_queue_len`]
    /// — a high-water mark, not a count — takes the max.
    ///
    /// The operation is associative and commutative, so folding any
    /// partition of a run's shards in any grouping yields the same
    /// total; the sharded engine relies on this to report one
    /// engine-independent [`Metrics`] from per-shard cores (it still
    /// merges in ascending shard order, for the avoidance of doubt).
    #[must_use]
    pub fn merge(self, other: Metrics) -> Metrics {
        Metrics {
            broadcasts: self.broadcasts + other.broadcasts,
            unicasts: self.unicasts + other.unicasts,
            unicast_hops: self.unicast_hops + other.unicast_hops,
            delivered: self.delivered + other.delivered,
            lost: self.lost + other.lost,
            unroutable: self.unroutable + other.unroutable,
            payload_bytes: self.payload_bytes + other.payload_bytes,
            neighbor_queries: self.neighbor_queries + other.neighbor_queries,
            cells_scanned: self.cells_scanned + other.cells_scanned,
            events_scheduled: self.events_scheduled + other.events_scheduled,
            peak_queue_len: self.peak_queue_len.max(other.peak_queue_len),
        }
    }

    /// This metric set with [`Metrics::peak_queue_len`] masked to zero —
    /// the comparison form for differentials across *shard counts*,
    /// where the queue high-water mark legitimately differs (each shard
    /// queue holds only its own nodes' events). Every other field is
    /// shard-count-independent and stays comparable unmasked.
    #[must_use]
    pub fn without_queue_pressure(self) -> Metrics {
        Metrics { peak_queue_len: 0, ..self }
    }
}

/// What rides the event queue. Cloneable so recurring entries can
/// re-arm (payload clones are O(1) — `Payload` is reference-counted).
#[derive(Debug, Clone)]
pub(crate) enum EventKind {
    Deliver { to: NodeId, from: NodeId, payload: Payload },
    Timer { node: NodeId, token: u64 },
}

impl EventKind {
    /// The node an event is destined for — the routing key shards
    /// partition the queue by.
    pub(crate) fn target(&self) -> NodeId {
        match self {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { node, .. } => *node,
        }
    }
}

/// The per-node simulation state an engine owns: the application, the
/// node's private RNG stream, and its emission counter (the source of
/// its [`EventKey`]s). Under sharding this whole record migrates with
/// the node.
pub(crate) struct NodeState<A> {
    pub(crate) app: A,
    pub(crate) rng: StdRng,
    pub(crate) emit: u64,
}

impl<A> NodeState<A> {
    pub(crate) fn new(app: A, seed: u64, node: u32) -> Self {
        NodeState { app, rng: StdRng::seed_from_u64(node_rng_seed(seed, node)), emit: 0 }
    }

    /// The next emission key for this node (consumes one emission).
    pub(crate) fn next_key(&mut self, node: u32) -> EventKey {
        let key = EventKey::new(node, self.emit);
        self.emit += 1;
        key
    }
}

/// SplitMix64 finalizer — the shared bit-mixer behind per-node RNG
/// seeding and shard tile hashing.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of node `node`'s private RNG stream under simulation seed
/// `seed`. **Every engine must use this exact derivation** — it is part
/// of the determinism contract the sharded differentials prove.
pub(crate) fn node_rng_seed(seed: u64, node: u32) -> u64 {
    splitmix64(seed ^ splitmix64(u64::from(node)))
}

/// One transmission latency draw **from the sender's stream**: base +
/// distance term + uniform jitter.
pub(crate) fn draw_latency(config: &SimConfig, dist: f64, rng: &mut StdRng) -> u64 {
    let jitter = if config.jitter_us > 0 { rng.gen_range(0..=config.jitter_us) } else { 0 };
    config.base_latency_us + (dist * config.per_meter_latency_us) as u64 + jitter
}

/// One loss draw **from the sender's stream**. Rolled before the
/// latency draw; a lost transmission draws no latency and consumes no
/// emission key.
pub(crate) fn roll_loss(config: &SimConfig, rng: &mut StdRng) -> bool {
    config.loss_rate > 0.0 && rng.gen_bool(config.loss_rate.min(1.0))
}

/// The driving surface shared by the single-threaded [`Simulator`] and
/// the sharded [`crate::shard::ShardedSimulator`]: scenario harnesses
/// (e.g. `msb_bench::swarm::drive_churn`) are generic over it, so the
/// same mobility loop runs against either engine.
pub trait SimDriver {
    /// Calls `on_start` on every node (in id order).
    fn start(&mut self);
    /// Runs until the event queue drains.
    fn run(&mut self);
    /// Runs until the queue drains or the clock passes `deadline_us`.
    fn run_until(&mut self, deadline_us: u64);
    /// Bulk position update, index-aligned with node ids — the mobility
    /// tick. Must only be called at quiesce points (between `run_until`
    /// windows), which is what keeps sharded position replicas exact.
    fn set_positions(&mut self, positions: &[(f64, f64)]);
    /// Current simulation time in microseconds.
    fn now_us(&self) -> u64;
}

/// The single-threaded simulator: owns nodes, the event queue, the
/// clock, and the spatial topology answering range queries. This is
/// the reference engine — the bit-identity oracle the sharded
/// [`crate::shard::ShardedSimulator`] is differentially proven
/// against, exactly as [`SpatialMode::NaiveScan`] and
/// [`SchedulerMode::BinaryHeap`] serve the spatial and scheduler
/// layers.
pub struct Simulator<A: NodeApp> {
    nodes: Vec<NodeState<A>>,
    topo: Topology,
    /// The event engine ([`SimConfig::scheduler`]); orders the run by
    /// `(timestamp, content key)`.
    queue: AnyScheduler<EventKind>,
    now_us: u64,
    config: SimConfig,
    seed: u64,
    metrics: Metrics,
    /// External-injection emission counter ([`Simulator::inject`]).
    ext_seq: u64,
    /// Scratch for broadcast target lists, reused across events.
    targets_buf: Vec<(u32, f64)>,
    /// Scratch for fan-out-capped target lists.
    knear_buf: Vec<u32>,
    /// Reusable topology-query buffers (candidate lists, cell covers).
    scratch: TopoScratch,
    /// Observability sink — [`Recorder::off`] (a no-op) unless
    /// [`Simulator::enable_telemetry`] was called. Everything recorded
    /// here is derived from sim state (sim clock, queue lengths, pop
    /// counts), never wall clock, so traces are deterministic — and
    /// recording never feeds back into the run (the differential suite
    /// pins on-vs-off bit-identity).
    telemetry: Recorder,
    /// Calendar resizes already reported as trace events.
    seen_resizes: u64,
}

impl<A: NodeApp> Simulator<A> {
    /// Creates a simulator with the given config and RNG seed.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            topo: Topology::new(&config),
            queue: AnyScheduler::for_mode(config.scheduler),
            now_us: 0,
            config,
            seed,
            metrics: Metrics::default(),
            ext_seq: 0,
            targets_buf: Vec::new(),
            knear_buf: Vec::new(),
            scratch: TopoScratch::default(),
            telemetry: Recorder::off(),
            seen_resizes: 0,
        }
    }

    /// Turns the telemetry sink on, keeping the most recent
    /// `trace_cap` trace events. Enabling telemetry changes no
    /// simulated outcome (same events, matches, RNG draws, and
    /// [`Metrics`]) — it only records.
    pub fn enable_telemetry(&mut self, trace_cap: usize) {
        self.telemetry = Recorder::on(trace_cap);
    }

    /// The telemetry sink (empty and off by default).
    pub fn telemetry(&self) -> &Recorder {
        &self.telemetry
    }

    /// Adds a node at `position`, returning its id.
    pub fn add_node(&mut self, position: (f64, f64), app: A) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeState::new(app, self.seed, id.0));
        self.topo.push(position);
        id
    }

    /// Adds many nodes at once (bulk swarm construction), returning their
    /// ids in insertion order.
    pub fn add_nodes(&mut self, nodes: impl IntoIterator<Item = ((f64, f64), A)>) -> Vec<NodeId> {
        let iter = nodes.into_iter();
        let mut ids = Vec::with_capacity(iter.size_hint().0);
        for (position, app) in iter {
            ids.push(self.add_node(position, app));
        }
        ids
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Borrow a node's application state (e.g. to inspect results).
    pub fn app(&self, id: NodeId) -> &A {
        &self.nodes[id.index()].app
    }

    /// Mutably borrow a node's application state.
    pub fn app_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.nodes[id.index()].app
    }

    /// A node's position.
    pub fn position(&self, id: NodeId) -> (f64, f64) {
        self.topo.position(id.index())
    }

    /// Moves a node (mobility models drive this), keeping the spatial
    /// index in sync.
    pub fn set_position(&mut self, id: NodeId, position: (f64, f64)) {
        self.topo.set_position(id.index(), position);
    }

    /// Bulk position update, index-aligned with node ids — the mobility
    /// tick: `model.advance(dt); sim.set_positions(&model.positions())`.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one position per node is supplied.
    pub fn set_positions(&mut self, positions: &[(f64, f64)]) {
        assert_eq!(positions.len(), self.nodes.len(), "one position per node");
        for (i, &position) in positions.iter().enumerate() {
            self.topo.set_position(i, position);
        }
        // A quiesce point: release index capacity churn left behind.
        self.topo.compact();
    }

    /// Calls `on_start` on every node (in id order).
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            self.with_ctx(id, |app, ctx| app.on_start(ctx));
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or the clock passes `deadline_us`.
    pub fn run_until(&mut self, deadline_us: u64) {
        while let Some((at_us, _)) = self.queue.peek() {
            if at_us > deadline_us {
                break;
            }
            self.step();
        }
        self.now_us = self.now_us.max(deadline_us);
    }

    /// Processes one event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at_us, kind)) = self.queue.pop() else {
            return false;
        };
        // A recurring entry may have re-armed inside the pop.
        self.note_queue();
        self.now_us = at_us;
        if self.telemetry.is_on() {
            self.telemetry.incr("sim.pops", 0, 1);
            self.telemetry.gauge_max("sim.queue_depth", 0, self.queue.len() as u64);
            let resizes = self.queue.resizes();
            if resizes > self.seen_resizes {
                self.seen_resizes = resizes;
                let width = self.queue.bucket_width_us().unwrap_or(0);
                self.telemetry.event(TraceTag::SchedResize, 0, at_us, resizes, width);
            }
        }
        match kind {
            EventKind::Deliver { to, from, payload } => {
                if self.config.batch_delivery {
                    let batch = self.drain_batch(to, from, payload);
                    self.metrics.delivered += batch.len() as u64;
                    self.with_ctx(to, |app, ctx| app.on_batch(ctx, &batch));
                } else {
                    self.metrics.delivered += 1;
                    self.with_ctx(to, |app, ctx| app.on_message(ctx, from, &payload));
                }
            }
            EventKind::Timer { node, token } => {
                self.with_ctx(node, |app, ctx| app.on_timer(ctx, token));
            }
        }
        true
    }

    /// Pops the run of queued deliveries that share this event's instant
    /// and destination. Only *consecutive* queue entries are coalesced,
    /// preserving the global (time, key) processing order exactly.
    fn drain_batch(
        &mut self,
        to: NodeId,
        from: NodeId,
        payload: Payload,
    ) -> Vec<(NodeId, Payload)> {
        let mut batch = vec![(from, payload)];
        loop {
            let same = match self.queue.peek() {
                Some((at_us, kind)) => {
                    at_us == self.now_us
                        && matches!(kind, EventKind::Deliver { to: t, .. } if *t == to)
                }
                None => false,
            };
            if !same {
                break;
            }
            let Some((_, EventKind::Deliver { from, payload, .. })) = self.queue.pop() else {
                unreachable!("peeked a same-instant delivery");
            };
            batch.push((from, payload));
        }
        batch
    }

    /// Injects a message from "outside" the network (tests, harnesses).
    /// Injections carry the [`EventKey::EXTERNAL_SRC`] sentinel source,
    /// ordering them after node-emitted events at the same instant.
    pub fn inject(&mut self, to: NodeId, from: NodeId, payload: impl Into<Payload>) {
        let at = self.now_us;
        let key = EventKey::external(self.ext_seq);
        self.ext_seq += 1;
        self.push_event(at, key, EventKind::Deliver { to, from, payload: payload.into() });
    }

    fn with_ctx(&mut self, id: NodeId, f: impl FnOnce(&mut A, &mut NodeCtx<'_>)) {
        let position = self.topo.position(id.index());
        let NodeState { app, rng, .. } = &mut self.nodes[id.index()];
        let mut ctx = NodeCtx {
            id,
            now_us: self.now_us,
            position,
            delivery: self.config.delivery,
            rng,
            actions: Vec::new(),
        };
        f(app, &mut ctx);
        let actions = ctx.actions;
        for action in actions {
            match action {
                Action::Broadcast(payload) => self.do_broadcast(id, payload),
                Action::BroadcastK(k, payload) => self.do_broadcast_k(id, k, payload),
                Action::Unicast(to, payload) => self.do_unicast(id, to, payload),
                Action::Timer(delay, token) => {
                    let at = self.now_us + delay;
                    let key = self.nodes[id.index()].next_key(id.0);
                    self.push_event(at, key, EventKind::Timer { node: id, token });
                }
                Action::RecurringTimer(delay, recur, token) => {
                    let at = self.now_us + delay;
                    let key = self.nodes[id.index()].next_key(id.0);
                    self.queue.schedule_recurring(
                        at,
                        key,
                        recur,
                        EventKind::Timer { node: id, token },
                    );
                    self.note_queue();
                }
            }
        }
    }

    fn do_broadcast(&mut self, from: NodeId, payload: Payload) {
        self.metrics.broadcasts += 1;
        self.metrics.payload_bytes += payload.wire_len() as u64;
        let mut targets = std::mem::take(&mut self.targets_buf);
        self.topo.broadcast_targets(
            &mut self.scratch,
            &mut self.metrics,
            from.index(),
            &mut targets,
        );
        for &(i, dist) in &targets {
            let sender = &mut self.nodes[from.index()];
            if roll_loss(&self.config, &mut sender.rng) {
                self.metrics.lost += 1;
                continue;
            }
            let at = self.now_us + draw_latency(&self.config, dist, &mut sender.rng);
            let key = sender.next_key(from.0);
            self.push_event(
                at,
                key,
                EventKind::Deliver { to: NodeId(i), from, payload: payload.clone() },
            );
        }
        self.targets_buf = targets;
    }

    /// One fan-out-capped broadcast ([`NodeCtx::broadcast_k_nearest`]):
    /// transmits to the `k` nearest other nodes within radio range (see
    /// [`Topology::k_nearest`] for the spatial-mode equivalence),
    /// delivering in ascending id order with the same per-target RNG
    /// draws as a full broadcast.
    fn do_broadcast_k(&mut self, from: NodeId, k: usize, payload: Payload) {
        self.metrics.broadcasts += 1;
        self.metrics.payload_bytes += payload.wire_len() as u64;
        let mut cand = std::mem::take(&mut self.knear_buf);
        self.topo.k_nearest(&mut self.scratch, &mut self.metrics, from.index(), k, &mut cand);
        let src = self.topo.position(from.index());
        for &i in &cand {
            let dist = distance(src, self.topo.position(i as usize));
            let sender = &mut self.nodes[from.index()];
            if roll_loss(&self.config, &mut sender.rng) {
                self.metrics.lost += 1;
                continue;
            }
            let at = self.now_us + draw_latency(&self.config, dist, &mut sender.rng);
            let key = sender.next_key(from.0);
            self.push_event(
                at,
                key,
                EventKind::Deliver { to: NodeId(i), from, payload: payload.clone() },
            );
        }
        self.knear_buf = cand;
    }

    fn do_unicast(&mut self, from: NodeId, to: NodeId, payload: Payload) {
        self.metrics.unicasts += 1;
        if from == to {
            let at = self.now_us;
            let key = self.nodes[from.index()].next_key(from.0);
            self.push_event(at, key, EventKind::Deliver { to, from, payload });
            return;
        }
        let Some(path) =
            self.topo.shortest_path(&mut self.scratch, &mut self.metrics, from.index(), to.index())
        else {
            self.metrics.unroutable += 1;
            return;
        };
        // Each hop is a transmission; loss anywhere kills the message.
        let mut at = self.now_us;
        for hop in path.windows(2) {
            let d =
                distance(self.topo.position(hop[0] as usize), self.topo.position(hop[1] as usize));
            self.metrics.unicast_hops += 1;
            self.metrics.payload_bytes += payload.wire_len() as u64;
            let sender = &mut self.nodes[from.index()];
            if roll_loss(&self.config, &mut sender.rng) {
                self.metrics.lost += 1;
                return;
            }
            at += draw_latency(&self.config, d, &mut sender.rng);
        }
        let key = self.nodes[from.index()].next_key(from.0);
        self.push_event(at, key, EventKind::Deliver { to, from, payload });
    }

    fn push_event(&mut self, at_us: u64, key: EventKey, kind: EventKind) {
        self.queue.schedule(at_us, key, kind);
        self.note_queue();
    }

    /// Mirrors the scheduler's queue-pressure counters into [`Metrics`].
    /// Both counters are engine-independent by construction (same event
    /// stream → same counts), so differential comparisons need no mask.
    fn note_queue(&mut self) {
        self.metrics.events_scheduled = self.queue.events_scheduled();
        self.metrics.peak_queue_len = self.queue.peak_len() as u64;
    }

    /// BFS shortest path over the current connectivity graph (nodes
    /// within radio range are neighbors) — the route unicasts follow.
    /// See [`Topology::shortest_path`].
    pub fn shortest_path(&mut self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        self.topo
            .shortest_path(&mut self.scratch, &mut self.metrics, from.index(), to.index())
            .map(|path| path.into_iter().map(NodeId).collect())
    }

    /// Connected components of the current connectivity graph (diagnostic
    /// for partitioned topologies), via the same indexed BFS as
    /// [`Simulator::shortest_path`].
    pub fn connected_components(&mut self) -> Vec<Vec<NodeId>> {
        self.topo
            .connected_components(&mut self.scratch, &mut self.metrics)
            .into_iter()
            .map(|comp| comp.into_iter().map(NodeId).collect())
            .collect()
    }
}

impl<A: NodeApp> SimDriver for Simulator<A> {
    fn start(&mut self) {
        Simulator::start(self);
    }

    fn run(&mut self) {
        Simulator::run(self);
    }

    fn run_until(&mut self, deadline_us: u64) {
        Simulator::run_until(self, deadline_us);
    }

    fn set_positions(&mut self, positions: &[(f64, f64)]) {
        Simulator::set_positions(self, positions);
    }

    fn now_us(&self) -> u64 {
        Simulator::now_us(self)
    }
}

impl<A: NodeApp> std::fmt::Debug for Simulator<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("now_us", &self.now_us)
            .field("pending_events", &self.queue.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records everything it hears.
    struct Recorder {
        heard: Vec<(NodeId, Vec<u8>)>,
        timers: Vec<u64>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder { heard: Vec::new(), timers: Vec::new() }
        }
    }

    impl NodeApp for Recorder {
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, from: NodeId, payload: &Payload) {
            self.heard.push((from, payload.as_bytes().expect("test payloads are bytes").to_vec()));
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, token: u64) {
            self.timers.push(token);
        }
    }

    fn line_topology(n: usize, spacing: f64) -> Simulator<Recorder> {
        let mut sim = Simulator::new(SimConfig::default(), 1);
        for i in 0..n {
            sim.add_node((i as f64 * spacing, 0.0), Recorder::new());
        }
        sim
    }

    #[test]
    fn broadcast_reaches_only_in_range() {
        struct Caster;
        impl NodeApp for Caster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.broadcast(b"hello".to_vec());
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Caster);
        sim.add_node((40.0, 0.0), Caster);
        sim.add_node((80.0, 0.0), Caster); // out of 50m range of node 0
        sim.start();
        sim.run();
        assert_eq!(sim.metrics().broadcasts, 1);
        assert_eq!(sim.metrics().delivered, 1, "only the neighbour hears it");
    }

    #[test]
    fn unicast_routes_across_hops() {
        struct Fire(NodeId);
        impl NodeApp for Fire {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.unicast(self.0, b"reply".to_vec());
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let dst = NodeId::new(3);
        let mut sim = Simulator::new(SimConfig::default(), 1);
        for i in 0..4 {
            sim.add_node((i as f64 * 40.0, 0.0), Fire(dst));
        }
        sim.start();
        sim.run();
        assert_eq!(sim.metrics().unicasts, 1);
        assert_eq!(sim.metrics().unicast_hops, 3);
        assert_eq!(sim.metrics().delivered, 1);
    }

    #[test]
    fn unroutable_unicast_counted() {
        struct Fire;
        impl NodeApp for Fire {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.unicast(NodeId::new(1), b"x".to_vec());
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Fire);
        sim.add_node((1000.0, 0.0), Fire); // unreachable
        sim.start();
        sim.run();
        assert_eq!(sim.metrics().unroutable, 1);
        assert_eq!(sim.metrics().delivered, 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed;
        impl NodeApp for Timed {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(2000, 2);
                ctx.set_timer(1000, 1);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
                // Record ordering through time.
                assert!(ctx.now_us() >= 1000);
                let _ = token;
            }
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Timed);
        sim.start();
        sim.run();
        assert_eq!(sim.now_us(), 2000);
    }

    #[test]
    fn same_instant_ties_break_by_source_then_emission() {
        // Two nodes each set two zero-delay timers; node 1's run on_start
        // *after* node 0's, but insertion order is irrelevant: the pop
        // order is source-major, emission-minor. The recorder observes it
        // through the tokens (10·node + set_timer call index).
        let mut sim = Simulator::new(SimConfig::default(), 1);
        for _ in 0..2 {
            sim.add_node((0.0, 0.0), Recorder::new());
        }
        for node in [1u32, 0] {
            // Interleave insertions against id order on purpose.
            for call in 0..2u64 {
                let id = NodeId::new(node);
                sim.with_ctx(id, |_, ctx| ctx.set_timer(0, u64::from(node) * 10 + call));
            }
        }
        while sim.step() {}
        assert_eq!(sim.app(NodeId::new(0)).timers, vec![0, 1]);
        assert_eq!(sim.app(NodeId::new(1)).timers, vec![10, 11]);
        assert_eq!(sim.now_us(), 0);
    }

    #[test]
    fn deterministic_runs() {
        fn run_once() -> (u64, Metrics) {
            let mut sim =
                Simulator::new(SimConfig { loss_rate: 0.3, ..SimConfig::default() }, 1234);
            struct Chatty;
            impl NodeApp for Chatty {
                fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                    ctx.broadcast(vec![ctx.node_id().index() as u8]);
                }
                fn on_message(&mut self, ctx: &mut NodeCtx<'_>, _: NodeId, payload: &Payload) {
                    let bytes = payload.as_bytes().expect("test payloads are bytes");
                    if bytes.len() < 3 {
                        let mut p = bytes.to_vec();
                        p.push(ctx.node_id().index() as u8);
                        ctx.broadcast(p);
                    }
                }
            }
            for i in 0..10 {
                sim.add_node(((i % 5) as f64 * 30.0, (i / 5) as f64 * 30.0), Chatty);
            }
            sim.start();
            sim.run();
            (sim.now_us(), *sim.metrics())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn loss_rate_one_drops_everything() {
        struct Caster;
        impl NodeApp for Caster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.broadcast(b"gone".to_vec());
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {
                panic!("nothing should arrive");
            }
        }
        let mut sim = Simulator::new(SimConfig { loss_rate: 1.0, ..SimConfig::default() }, 1);
        sim.add_node((0.0, 0.0), Caster);
        sim.add_node((10.0, 0.0), Caster);
        sim.start();
        sim.run();
        assert_eq!(sim.metrics().delivered, 0);
        assert_eq!(sim.metrics().lost, 2);
    }

    #[test]
    fn connected_components_split() {
        let mut sim = line_topology(2, 40.0);
        sim.add_node((500.0, 0.0), Recorder::new());
        let comps = sim.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[1].len(), 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Timed;
        impl NodeApp for Timed {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(10_000, 1);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: u64) {
                panic!("timer beyond deadline must not fire");
            }
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Timed);
        sim.start();
        sim.run_until(5_000);
        assert_eq!(sim.now_us(), 5_000);
    }

    #[test]
    fn batch_delivery_coalesces_same_instant_messages() {
        struct BatchRecorder {
            batches: Vec<usize>,
        }
        impl NodeApp for BatchRecorder {
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {
                panic!("batch mode must route through on_batch");
            }
            fn on_batch(&mut self, _: &mut NodeCtx<'_>, batch: &[(NodeId, Payload)]) {
                self.batches.push(batch.len());
            }
        }
        let config = SimConfig { batch_delivery: true, ..SimConfig::default() };
        let mut sim = Simulator::new(config, 1);
        let id = sim.add_node((0.0, 0.0), BatchRecorder { batches: Vec::new() });
        for i in 0..3u8 {
            sim.inject(id, NodeId::new(9), vec![i]);
        }
        sim.run();
        assert_eq!(sim.app(id).batches, vec![3]);
        assert_eq!(sim.metrics().delivered, 3);
    }

    #[test]
    fn default_on_batch_preserves_message_order() {
        // An app that does not override on_batch sees the same per-message
        // callbacks, in the same order, whether batching is on or off.
        let run = |batch_delivery: bool| -> Vec<(NodeId, Vec<u8>)> {
            let config = SimConfig { batch_delivery, ..SimConfig::default() };
            let mut sim = Simulator::new(config, 1);
            let id = sim.add_node((0.0, 0.0), Recorder::new());
            for i in 0..4u8 {
                sim.inject(id, NodeId::new(7), vec![i, i + 1]);
            }
            sim.run();
            sim.app(id).heard.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn injections_order_after_node_events_at_the_same_instant() {
        // An injected message at t=0 carries the external sentinel key,
        // so a node-emitted timer at the same instant fires first.
        struct TimerThenHear;
        impl NodeApp for TimerThenHear {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(0, 42);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        let id = sim.add_node((0.0, 0.0), TimerThenHear);
        sim.inject(id, NodeId::new(9), b"ext".to_vec());
        sim.start();
        // First event must be the timer (node source 0 < EXTERNAL_SRC).
        assert!(sim.step());
        assert_eq!(sim.metrics().delivered, 0, "timer fires before the injection");
        assert!(sim.step());
        assert_eq!(sim.metrics().delivered, 1);
    }

    #[test]
    fn recurring_timer_fires_until_deadline_and_drains() {
        struct Periodic;
        impl NodeApp for Periodic {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_recurring_timer(1_000, 1_000, 3_500, 9);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
                assert_eq!(token, 9);
                assert!(ctx.now_us().is_multiple_of(1_000));
            }
        }
        for mode in [SchedulerMode::Calendar, SchedulerMode::BinaryHeap] {
            let config = SimConfig { scheduler: mode, ..SimConfig::default() };
            let mut sim = Simulator::new(config, 1);
            sim.add_node((0.0, 0.0), Periodic);
            sim.start();
            sim.run(); // terminates: recurrence stops past 3 500 us
            assert_eq!(sim.now_us(), 3_000, "{mode:?}");
            assert_eq!(sim.metrics().events_scheduled, 3, "{mode:?}: 1 schedule + 2 re-arms");
        }
    }

    #[test]
    fn broadcast_k_nearest_caps_fanout_to_closest() {
        struct Caster;
        impl NodeApp for Caster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.broadcast_k_nearest(2, b"gossip".to_vec());
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let run = |spatial: SpatialMode| {
            let config = SimConfig { spatial, ..SimConfig::default() };
            let mut sim = Simulator::new(config, 1);
            sim.add_node((0.0, 0.0), Caster); // sender
            sim.add_node((10.0, 0.0), Caster); // nearest
            sim.add_node((20.0, 0.0), Caster); // second nearest
            sim.add_node((30.0, 0.0), Caster); // in range but capped away
            sim.add_node((80.0, 0.0), Caster); // out of range anyway
            sim.start();
            sim.run();
            *sim.metrics()
        };
        let indexed = run(SpatialMode::HexIndex);
        let naive = run(SpatialMode::NaiveScan);
        assert_eq!(indexed.broadcasts, 1);
        assert_eq!(indexed.delivered, 2, "fan-out capped at k = 2");
        assert_eq!(Metrics { cells_scanned: 0, ..indexed }, naive, "spatial modes diverged");
    }

    #[test]
    fn scheduler_modes_produce_identical_runs() {
        // The gossiping scenario from `deterministic_runs`, swept across
        // engines: final clock and full metrics must agree (the
        // heavyweight version lives in tests/sched_differential.rs).
        fn run_once(mode: SchedulerMode) -> (u64, Metrics) {
            let config = SimConfig { loss_rate: 0.3, scheduler: mode, ..SimConfig::default() };
            let mut sim = Simulator::new(config, 1234);
            struct Chatty;
            impl NodeApp for Chatty {
                fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                    ctx.broadcast(vec![ctx.node_id().index() as u8]);
                }
                fn on_message(&mut self, ctx: &mut NodeCtx<'_>, _: NodeId, payload: &Payload) {
                    let bytes = payload.as_bytes().expect("test payloads are bytes");
                    if bytes.len() < 3 {
                        let mut p = bytes.to_vec();
                        p.push(ctx.node_id().index() as u8);
                        ctx.broadcast(p);
                    }
                }
            }
            for i in 0..10 {
                sim.add_node(((i % 5) as f64 * 30.0, (i / 5) as f64 * 30.0), Chatty);
            }
            sim.start();
            sim.run();
            (sim.now_us(), *sim.metrics())
        }
        let calendar = run_once(SchedulerMode::Calendar);
        let heap = run_once(SchedulerMode::BinaryHeap);
        assert_eq!(calendar, heap);
        assert!(calendar.1.events_scheduled > 0);
        assert!(calendar.1.peak_queue_len > 0);
    }

    #[test]
    fn payload_bytes_counted_per_transmission() {
        struct Caster;
        impl NodeApp for Caster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node_id().index() == 0 {
                    ctx.broadcast(vec![0u8; 100]);
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_>, _: NodeId, _: &Payload) {}
        }
        let mut sim = Simulator::new(SimConfig::default(), 1);
        sim.add_node((0.0, 0.0), Caster);
        sim.add_node((10.0, 0.0), Caster);
        sim.add_node((20.0, 0.0), Caster);
        sim.start();
        sim.run();
        // One broadcast transmission of 100 bytes (not per receiver).
        assert_eq!(sim.metrics().payload_bytes, 100);
    }

    #[test]
    fn metrics_merge_sums_counters_and_maxes_peak() {
        let a = Metrics {
            broadcasts: 1,
            unicasts: 2,
            unicast_hops: 3,
            delivered: 4,
            lost: 5,
            unroutable: 6,
            payload_bytes: 7,
            neighbor_queries: 8,
            cells_scanned: 9,
            events_scheduled: 10,
            peak_queue_len: 11,
        };
        let b = Metrics { peak_queue_len: 3, delivered: 40, ..Metrics::default() };
        let m = a.merge(b);
        assert_eq!(m.delivered, 44);
        assert_eq!(m.broadcasts, 1);
        assert_eq!(m.peak_queue_len, 11, "peak merges as max, not sum");
        assert_eq!(a.merge(Metrics::default()), a, "default is the identity");
        assert_eq!(a.merge(b), b.merge(a), "merge commutes");
    }
}
