//! The gateway layer: TCP accept loop and per-connection read loops.
//!
//! The gateway's entire job is moving bytes between sockets and the
//! [services layer](crate::service): each connection's stream is
//! reassembled by an [`msb_wire::stream::FrameStream`] bounded at
//! [`ServerConfig::max_frame_len`](crate::ServerConfig::max_frame_len),
//! every complete frame is routed through
//! [`Services::handle_frame`](crate::service::Services::handle_frame),
//! and the response is written back — strict request/response lockstep.
//!
//! Reframing errors are connection-fatal (see
//! [`msb_wire::stream`]): the gateway counts the reject (splitting the
//! oversize-declaration case for the stats endpoint), best-effort
//! writes a rejecting [`Ack`](crate::proto::Ack), and drops the
//! connection. A mid-frame disconnect is just an EOF with residual
//! buffered bytes — logged in no counter, harmful to no one.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use msb_wire::stream::FrameStream;
use msb_wire::Message;

use crate::metrics::ServerStats;
use crate::proto::{Ack, AckCode};
use crate::service::Services;
use crate::{worker, ServerConfig};

/// State shared by the accept loop, every connection thread, and the
/// cleanup worker.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) services: Services,
    pub(crate) shutdown: AtomicBool,
    /// The server's monotonic epoch; `now_us` everywhere is micros
    /// since this instant (so the guard and TTLs never see wall-clock
    /// steps).
    pub(crate) start: Instant,
    pub(crate) cleanup_interval_ms: u64,
}

impl Shared {
    pub(crate) fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// A running relay server: spawn with [`RelayServer::spawn`], connect
/// [`RelayClient`](crate::client::RelayClient)s to
/// [`RelayServer::addr`], stop with [`RelayServer::shutdown`] (also
/// runs on drop).
#[derive(Debug)]
pub struct RelayServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    cleanup_handle: Option<JoinHandle<()>>,
}

impl RelayServer {
    /// Binds a loopback listener on an OS-assigned port and starts the
    /// accept loop and cleanup worker.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            cleanup_interval_ms: config.cleanup_interval_ms,
            services: Services::new(config),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
        });
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let cleanup_handle = Some(worker::spawn_cleanup(Arc::clone(&shared)));
        Ok(RelayServer { addr, shared, accept_handle: Some(accept_handle), cleanup_handle })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live stats snapshot, read in-process (the wire endpoint is
    /// [`StatsReq`](crate::proto::StatsReq)).
    pub fn stats(&self) -> crate::metrics::StatsSnapshot {
        let mut conn = None;
        let req = crate::proto::StatsReq.encode();
        let resp = self.shared.services.handle_frame(
            &mut conn,
            &bytes::Bytes::from(req),
            self.shared.now_us(),
        );
        crate::metrics::StatsSnapshot::decode(&resp).expect("server encoded its own snapshot")
    }

    /// A live metrics dump — the stats snapshot plus peak gauges and
    /// per-op service-time histograms — read in-process (the wire
    /// endpoint is [`MetricsReq`](crate::proto::MetricsReq)).
    pub fn metrics(&self) -> crate::metrics::MetricsDump {
        let mut conn = None;
        let req = crate::proto::MetricsReq.encode();
        let resp = self.shared.services.handle_frame(
            &mut conn,
            &bytes::Bytes::from(req),
            self.shared.now_us(),
        );
        crate::metrics::MetricsDump::decode(&resp).expect("server encoded its own dump")
    }

    /// The current metrics as a Prometheus-style text exposition.
    pub fn exposition(&self) -> String {
        self.metrics().exposition()
    }

    /// Stops the accept loop, every connection, and the cleanup
    /// worker, joining them all — after this returns, no server thread
    /// is running.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.cleanup_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RelayServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections until shutdown; joins every connection thread
/// before returning (clean shutdown means *no* thread outlives the
/// server handle).
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                conns.push(std::thread::spawn(move || connection_loop(stream, shared)));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
        // Reap finished connection threads so the list stays small.
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// One connection: read → reframe → route → respond, until EOF,
/// shutdown, or a fatal framing error.
fn connection_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    if stream.set_read_timeout(Some(Duration::from_millis(20))).is_err() {
        return;
    }
    let mut frames = FrameStream::new(shared.services.max_frame_len());
    let mut client: Option<u32> = None;
    let mut buf = vec![0u8; 16 * 1024];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return, // EOF — possibly mid-frame; nothing owed
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => return,
        };
        if let Err(e) = frames.push(&buf[..n]) {
            reject_and_close(&mut stream, &shared, &e);
            return;
        }
        loop {
            match frames.next_frame() {
                Ok(Some(frame)) => {
                    ServerStats::bump(&shared.services.stats.frames_in);
                    let resp = shared.services.handle_frame(&mut client, &frame, shared.now_us());
                    if stream.write_all(&resp).is_err() {
                        return;
                    }
                    ServerStats::bump(&shared.services.stats.frames_out);
                }
                Ok(None) => break,
                Err(e) => {
                    reject_and_close(&mut stream, &shared, &e);
                    return;
                }
            }
        }
    }
}

/// Counts a fatal framing error and best-effort tells the peer why
/// before the connection drops.
fn reject_and_close(stream: &mut TcpStream, shared: &Shared, err: &msb_wire::DecodeError) {
    shared.services.note_stream_error(err);
    let _ = stream.write_all(&Ack::err(AckCode::Rejected).encode());
    let _ = stream.flush();
}
