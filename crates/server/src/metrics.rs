//! Health and telemetry: lock-free counters incremented on the hot
//! path, snapshotted into a wire message on demand — the relay's
//! health/stats endpoint ([`crate::proto::StatsReq`]) and the richer
//! metrics endpoint ([`crate::proto::MetricsReq`] →
//! [`MetricsDump`]), which adds per-op service-time histograms and a
//! Prometheus-style text exposition.

use std::sync::atomic::{AtomicU64, Ordering};

use msb_telemetry::{AtomicLogHistogram, LogHistogram, HIST_BUCKETS};
use msb_wire::{DecodeError, FrameKind, Message, Reader, WireDecode, WireEncode, Writer};

/// Wire version of [`StatsSnapshot`]. v2 added `reframe_rejects` and
/// `guard_sheds`; the version byte leads the encoding so a v3 can add
/// fields without silently misparsing as ten shifted u64s.
pub const STATS_VERSION: u8 = 2;

/// Wire version of [`MetricsDump`].
pub const METRICS_DUMP_VERSION: u8 = 1;

/// Shared counters, one instance per server, updated with relaxed
/// atomics (monotonic counters; no ordering between them matters).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Complete frames read off all connections.
    pub frames_in: AtomicU64,
    /// Response frames written to all connections.
    pub frames_out: AtomicU64,
    /// Deposits accepted into at least one inbox queue.
    pub deposits_accepted: AtomicU64,
    /// Deposits dropped by the per-sender rate guard.
    pub rejected_rate: AtomicU64,
    /// Frames rejected for declaring a length above `max_frame_len`.
    pub rejected_oversize: AtomicU64,
    /// Frames rejected as malformed (bad envelope, bad body, policy).
    pub rejected_malformed: AtomicU64,
    /// Bottles handed to fetching clients.
    pub messages_delivered: AtomicU64,
    /// Bottles purged after outliving the inbox TTL.
    pub inbox_expired: AtomicU64,
    /// Connection-fatal reframing failures reported by the gateway
    /// (oversize declaration *or* garbage — the union of the two
    /// `rejected_*` splits that come from the stream layer).
    pub reframe_rejects: AtomicU64,
    /// High-water mark of total queued bottles, updated at each
    /// accepted deposit (a peak gauge, never reset).
    pub inbox_depth_peak: AtomicU64,
    /// Service time of each deposit-path frame (wrapped or bare), in
    /// microseconds, measured around the services layer.
    pub deposit_service_us: AtomicLogHistogram,
    /// Service time of each fetch, in microseconds.
    pub fetch_service_us: AtomicLogHistogram,
}

impl ServerStats {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Freezes the counters into a reply, attaching the gauges the
    /// counters can't know: current storage depth, registered
    /// population, and the rate guard's lifetime shed count.
    pub fn snapshot(
        &self,
        inbox_depth: u64,
        registered_clients: u64,
        guard_sheds: u64,
    ) -> StatsSnapshot {
        StatsSnapshot {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            deposits_accepted: self.deposits_accepted.load(Ordering::Relaxed),
            rejected_rate: self.rejected_rate.load(Ordering::Relaxed),
            rejected_oversize: self.rejected_oversize.load(Ordering::Relaxed),
            rejected_malformed: self.rejected_malformed.load(Ordering::Relaxed),
            messages_delivered: self.messages_delivered.load(Ordering::Relaxed),
            inbox_expired: self.inbox_expired.load(Ordering::Relaxed),
            inbox_depth,
            registered_clients,
            reframe_rejects: self.reframe_rejects.load(Ordering::Relaxed),
            guard_sheds,
        }
    }
}

/// The health/stats endpoint's reply ([`FrameKind::RelayStats`]): every
/// counter plus the storage gauges, as one versioned wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Complete frames read off all connections.
    pub frames_in: u64,
    /// Response frames written to all connections.
    pub frames_out: u64,
    /// Deposits accepted into at least one inbox queue.
    pub deposits_accepted: u64,
    /// Deposits dropped by the per-sender rate guard.
    pub rejected_rate: u64,
    /// Frames rejected for declaring a length above `max_frame_len`.
    pub rejected_oversize: u64,
    /// Frames rejected as malformed (bad envelope, bad body, policy).
    pub rejected_malformed: u64,
    /// Bottles handed to fetching clients.
    pub messages_delivered: u64,
    /// Bottles purged after outliving the inbox TTL.
    pub inbox_expired: u64,
    /// Bottles currently queued across all recipients.
    pub inbox_depth: u64,
    /// Clients that have said [`Hello`](crate::proto::Hello).
    pub registered_clients: u64,
    /// Connection-fatal [`FrameStream`](msb_wire::stream::FrameStream)
    /// reframing failures (v2).
    pub reframe_rejects: u64,
    /// Lifetime denials recorded by the per-sender
    /// [`RateGuard`](msb_net::guard::RateGuard) — unlike
    /// `rejected_rate` this survives guard compaction by construction
    /// because it is read straight from the guard (v2).
    pub guard_sheds: u64,
}

impl WireEncode for StatsSnapshot {
    fn encoded_len(&self) -> usize {
        1 + 8 * 12
    }
    fn encode_into(&self, w: &mut Writer) {
        w.u8(STATS_VERSION);
        w.u64(self.frames_in);
        w.u64(self.frames_out);
        w.u64(self.deposits_accepted);
        w.u64(self.rejected_rate);
        w.u64(self.rejected_oversize);
        w.u64(self.rejected_malformed);
        w.u64(self.messages_delivered);
        w.u64(self.inbox_expired);
        w.u64(self.inbox_depth);
        w.u64(self.registered_clients);
        w.u64(self.reframe_rejects);
        w.u64(self.guard_sheds);
    }
}

impl WireDecode for StatsSnapshot {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let start = r.offset();
        let version = r.u8()?;
        if version != STATS_VERSION {
            return Err(r.invalid(start, "stats snapshot version"));
        }
        Ok(StatsSnapshot {
            frames_in: r.u64()?,
            frames_out: r.u64()?,
            deposits_accepted: r.u64()?,
            rejected_rate: r.u64()?,
            rejected_oversize: r.u64()?,
            rejected_malformed: r.u64()?,
            messages_delivered: r.u64()?,
            inbox_expired: r.u64()?,
            inbox_depth: r.u64()?,
            registered_clients: r.u64()?,
            reframe_rejects: r.u64()?,
            guard_sheds: r.u64()?,
        })
    }
}

impl Message for StatsSnapshot {
    const KIND: FrameKind = FrameKind::RelayStats;
}

/// Sparse histogram encoding: `sum`, `min`, `max`, then a count of
/// occupied buckets followed by `(index, count)` pairs. Decode rebuilds
/// through [`LogHistogram::from_parts`], so the sample count is derived
/// from the buckets and can't disagree with them.
fn hist_encoded_len(h: &LogHistogram) -> usize {
    let occupied = h.buckets().iter().filter(|&&c| c != 0).count();
    8 * 3 + 1 + occupied * (1 + 8)
}

fn encode_hist_into(h: &LogHistogram, w: &mut Writer) {
    w.u64(h.sum());
    w.u64(h.min().unwrap_or(u64::MAX));
    w.u64(h.max().unwrap_or(0));
    let occupied = h.buckets().iter().filter(|&&c| c != 0).count();
    w.u8(occupied as u8);
    for (i, &c) in h.buckets().iter().enumerate() {
        if c != 0 {
            w.u8(i as u8);
            w.u64(c);
        }
    }
}

fn decode_hist_from(r: &mut Reader<'_>) -> Result<LogHistogram, DecodeError> {
    let sum = r.u64()?;
    let min = r.u64()?;
    let max = r.u64()?;
    let occupied = r.u8()? as usize;
    if occupied > HIST_BUCKETS {
        return Err(r.invalid(r.offset().saturating_sub(1), "histogram bucket count"));
    }
    let mut buckets = [0u64; HIST_BUCKETS];
    let mut prev: Option<usize> = None;
    for _ in 0..occupied {
        let start = r.offset();
        let i = r.u8()? as usize;
        // Strictly increasing indices: rejects duplicates and
        // out-of-range buckets in one check, keeping decode canonical.
        if i >= HIST_BUCKETS || prev.is_some_and(|p| i <= p) {
            return Err(r.invalid(start, "histogram bucket index"));
        }
        buckets[i] = r.u64()?;
        prev = Some(i);
    }
    Ok(LogHistogram::from_parts(buckets, sum, min, max))
}

/// The metrics endpoint's reply ([`FrameKind::RelayMetricsDump`]): the
/// v2 stats snapshot plus the gauges and service-time histograms that
/// don't fit a flat counter row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsDump {
    /// The same snapshot [`StatsReq`](crate::proto::StatsReq) returns.
    pub stats: StatsSnapshot,
    /// High-water mark of total queued bottles.
    pub inbox_depth_peak: u64,
    /// Deposit-path service time, microseconds.
    pub deposit_service_us: LogHistogram,
    /// Fetch-path service time, microseconds.
    pub fetch_service_us: LogHistogram,
}

impl WireEncode for MetricsDump {
    fn encoded_len(&self) -> usize {
        1 + self.stats.encoded_len()
            + 8
            + hist_encoded_len(&self.deposit_service_us)
            + hist_encoded_len(&self.fetch_service_us)
    }
    fn encode_into(&self, w: &mut Writer) {
        w.u8(METRICS_DUMP_VERSION);
        self.stats.encode_into(w);
        w.u64(self.inbox_depth_peak);
        encode_hist_into(&self.deposit_service_us, w);
        encode_hist_into(&self.fetch_service_us, w);
    }
}

impl WireDecode for MetricsDump {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let start = r.offset();
        let version = r.u8()?;
        if version != METRICS_DUMP_VERSION {
            return Err(r.invalid(start, "metrics dump version"));
        }
        Ok(MetricsDump {
            stats: StatsSnapshot::decode_from(r)?,
            inbox_depth_peak: r.u64()?,
            deposit_service_us: decode_hist_from(r)?,
            fetch_service_us: decode_hist_from(r)?,
        })
    }
}

impl Message for MetricsDump {
    const KIND: FrameKind = FrameKind::RelayMetricsDump;
}

impl MetricsDump {
    /// Renders a Prometheus-style text exposition: every counter as a
    /// `counter`, the storage gauges as `gauge`s, and each service-time
    /// series as a cumulative `histogram` with `_sum`/`_count` rows.
    pub fn exposition(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counters: [(&str, u64); 10] = [
            ("msb_relay_frames_in", self.stats.frames_in),
            ("msb_relay_frames_out", self.stats.frames_out),
            ("msb_relay_deposits_accepted", self.stats.deposits_accepted),
            ("msb_relay_rejected_rate", self.stats.rejected_rate),
            ("msb_relay_rejected_oversize", self.stats.rejected_oversize),
            ("msb_relay_rejected_malformed", self.stats.rejected_malformed),
            ("msb_relay_messages_delivered", self.stats.messages_delivered),
            ("msb_relay_inbox_expired", self.stats.inbox_expired),
            ("msb_relay_reframe_rejects", self.stats.reframe_rejects),
            ("msb_relay_guard_sheds", self.stats.guard_sheds),
        ];
        for (name, v) in counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        let gauges: [(&str, u64); 3] = [
            ("msb_relay_inbox_depth", self.stats.inbox_depth),
            ("msb_relay_inbox_depth_peak", self.inbox_depth_peak),
            ("msb_relay_registered_clients", self.stats.registered_clients),
        ];
        for (name, v) in gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        expose_histogram(&mut out, "msb_relay_deposit_service_us", &self.deposit_service_us);
        expose_histogram(&mut out, "msb_relay_fetch_service_us", &self.fetch_service_us);
        out
    }
}

/// One histogram in exposition format: cumulative `le` buckets (only
/// the occupied ones, plus the mandatory `+Inf`), then `_sum`/`_count`.
fn expose_histogram(out: &mut String, name: &str, h: &LogHistogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for (i, &c) in h.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let le = msb_telemetry::bucket_upper_bound(i);
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dump() -> MetricsDump {
        let mut dep = LogHistogram::new();
        for v in [3u64, 9, 40, 41, 1000] {
            dep.record(v);
        }
        let mut fch = LogHistogram::new();
        fch.record(0);
        fch.record(17);
        MetricsDump {
            stats: StatsSnapshot {
                frames_in: 12,
                frames_out: 11,
                deposits_accepted: 5,
                guard_sheds: 2,
                reframe_rejects: 1,
                inbox_depth: 3,
                registered_clients: 4,
                ..StatsSnapshot::default()
            },
            inbox_depth_peak: 7,
            deposit_service_us: dep,
            fetch_service_us: fch,
        }
    }

    #[test]
    fn stats_snapshot_roundtrip_v2() {
        let snap = sample_dump().stats;
        let bytes = snap.encode();
        assert_eq!(StatsSnapshot::decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn stats_snapshot_rejects_unknown_version() {
        let snap = StatsSnapshot::default();
        let mut bytes = snap.encode();
        bytes[msb_wire::FRAME_HEADER_LEN] = 99;
        assert!(StatsSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn metrics_dump_roundtrip() {
        let dump = sample_dump();
        let bytes = dump.encode();
        assert_eq!(bytes.len(), msb_wire::FRAME_HEADER_LEN + dump.encoded_len());
        assert_eq!(MetricsDump::decode(&bytes).unwrap(), dump);
    }

    #[test]
    fn metrics_dump_rejects_bad_bucket_order() {
        let dump = sample_dump();
        let bytes = dump.encode();
        // Find the first histogram's first bucket index (after the
        // dump version, the nested snapshot, the peak gauge, and the
        // histogram's sum/min/max + occupied count) and un-sort it.
        let off = msb_wire::FRAME_HEADER_LEN + 1 + dump.stats.encoded_len() + 8 + 8 * 3 + 1;
        let mut bad = bytes.clone();
        bad[off] = 64; // > every later index → next pair violates order
        assert!(MetricsDump::decode(&bad).is_err());
    }

    #[test]
    fn exposition_has_cumulative_buckets_and_totals() {
        let dump = sample_dump();
        let text = dump.exposition();
        assert!(text.contains("msb_relay_frames_in 12"));
        assert!(text.contains("msb_relay_guard_sheds 2"));
        assert!(text.contains("msb_relay_inbox_depth_peak 7"));
        // 5 deposit samples: cumulative reaches 5 at +Inf.
        assert!(text.contains("msb_relay_deposit_service_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("msb_relay_deposit_service_us_count 5"));
        // 40 and 41 share bucket 6 (le=63): cumulative 4 there.
        assert!(text.contains("msb_relay_deposit_service_us_bucket{le=\"63\"} 4"));
        assert!(text.contains("msb_relay_fetch_service_us_sum 17"));
    }

    #[test]
    fn empty_histograms_roundtrip() {
        let dump = MetricsDump {
            stats: StatsSnapshot::default(),
            inbox_depth_peak: 0,
            deposit_service_us: LogHistogram::new(),
            fetch_service_us: LogHistogram::new(),
        };
        let bytes = dump.encode();
        let back = MetricsDump::decode(&bytes).unwrap();
        assert!(back.deposit_service_us.is_empty());
        assert_eq!(back, dump);
    }
}
