//! Health and telemetry: lock-free counters incremented on the hot
//! path, snapshotted into a wire message on demand — the relay's
//! health/stats endpoint ([`crate::proto::StatsReq`]).

use std::sync::atomic::{AtomicU64, Ordering};

use msb_wire::{DecodeError, FrameKind, Message, Reader, WireDecode, WireEncode, Writer};

/// Shared counters, one instance per server, updated with relaxed
/// atomics (monotonic counters; no ordering between them matters).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Complete frames read off all connections.
    pub frames_in: AtomicU64,
    /// Response frames written to all connections.
    pub frames_out: AtomicU64,
    /// Deposits accepted into at least one inbox queue.
    pub deposits_accepted: AtomicU64,
    /// Deposits dropped by the per-sender rate guard.
    pub rejected_rate: AtomicU64,
    /// Frames rejected for declaring a length above `max_frame_len`.
    pub rejected_oversize: AtomicU64,
    /// Frames rejected as malformed (bad envelope, bad body, policy).
    pub rejected_malformed: AtomicU64,
    /// Bottles handed to fetching clients.
    pub messages_delivered: AtomicU64,
    /// Bottles purged after outliving the inbox TTL.
    pub inbox_expired: AtomicU64,
}

impl ServerStats {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Freezes the counters into a reply, attaching the storage gauges
    /// the counters can't know (current depth, registered population).
    pub fn snapshot(&self, inbox_depth: u64, registered_clients: u64) -> StatsSnapshot {
        StatsSnapshot {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            deposits_accepted: self.deposits_accepted.load(Ordering::Relaxed),
            rejected_rate: self.rejected_rate.load(Ordering::Relaxed),
            rejected_oversize: self.rejected_oversize.load(Ordering::Relaxed),
            rejected_malformed: self.rejected_malformed.load(Ordering::Relaxed),
            messages_delivered: self.messages_delivered.load(Ordering::Relaxed),
            inbox_expired: self.inbox_expired.load(Ordering::Relaxed),
            inbox_depth,
            registered_clients,
        }
    }
}

/// The health/stats endpoint's reply ([`FrameKind::RelayStats`]): every
/// counter plus the storage gauges, as one flat wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Complete frames read off all connections.
    pub frames_in: u64,
    /// Response frames written to all connections.
    pub frames_out: u64,
    /// Deposits accepted into at least one inbox queue.
    pub deposits_accepted: u64,
    /// Deposits dropped by the per-sender rate guard.
    pub rejected_rate: u64,
    /// Frames rejected for declaring a length above `max_frame_len`.
    pub rejected_oversize: u64,
    /// Frames rejected as malformed (bad envelope, bad body, policy).
    pub rejected_malformed: u64,
    /// Bottles handed to fetching clients.
    pub messages_delivered: u64,
    /// Bottles purged after outliving the inbox TTL.
    pub inbox_expired: u64,
    /// Bottles currently queued across all recipients.
    pub inbox_depth: u64,
    /// Clients that have said [`Hello`](crate::proto::Hello).
    pub registered_clients: u64,
}

impl WireEncode for StatsSnapshot {
    fn encoded_len(&self) -> usize {
        8 * 10
    }
    fn encode_into(&self, w: &mut Writer) {
        w.u64(self.frames_in);
        w.u64(self.frames_out);
        w.u64(self.deposits_accepted);
        w.u64(self.rejected_rate);
        w.u64(self.rejected_oversize);
        w.u64(self.rejected_malformed);
        w.u64(self.messages_delivered);
        w.u64(self.inbox_expired);
        w.u64(self.inbox_depth);
        w.u64(self.registered_clients);
    }
}

impl WireDecode for StatsSnapshot {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StatsSnapshot {
            frames_in: r.u64()?,
            frames_out: r.u64()?,
            deposits_accepted: r.u64()?,
            rejected_rate: r.u64()?,
            rejected_oversize: r.u64()?,
            rejected_malformed: r.u64()?,
            messages_delivered: r.u64()?,
            inbox_expired: r.u64()?,
            inbox_depth: r.u64()?,
            registered_clients: r.u64()?,
        })
    }
}

impl Message for StatsSnapshot {
    const KIND: FrameKind = FrameKind::RelayStats;
}
