//! The services layer: one fully-reassembled frame in, one response
//! frame out.
//!
//! The gateway never interprets bytes beyond reframing; everything
//! protocol-shaped happens here, under three policies:
//!
//! - **Identity**: a connection must [`Hello`](crate::proto::Hello)
//!   before depositing or fetching. The claimed id keys the rate guard
//!   and the inbox.
//! - **Rate** (the paper's §II-B DoS defence): deposits are admitted
//!   through a per-sender [`RateGuard`] fed with the server's
//!   monotonic microseconds.
//! - **Routing**: the relay inspects only the *envelope kind* of a
//!   carried frame. Request frames may broadcast to the registered
//!   population or unicast; reply frames must name their recipient (a
//!   reply's destination — the initiator — is part of what the sealed
//!   bottle hides, so the depositor must say it); nothing else may
//!   ride inside a deposit. A bare request frame sent without a
//!   [`Deposit`](crate::proto::Deposit) wrapper is accepted as a
//!   broadcast deposit — the radio-style "flood it" idiom.

use std::sync::atomic::Ordering;
use std::sync::Mutex;

use bytes::Bytes;
use msb_net::guard::RateGuard;
use msb_wire::{peek_kind, FrameKind, Message};

use crate::metrics::ServerStats;
use crate::proto::{Ack, AckCode, Delivered, Deposit, Fetch, Hello, InboxBatch, BROADCAST};
use crate::storage::Inbox;
use crate::ServerConfig;

/// Per-delivered-bottle overhead inside an [`InboxBatch`] body
/// (`from` + length prefix), plus the batch's envelope + count. A
/// deposited frame must leave this much headroom under `max_frame_len`
/// so that delivering it back can never exceed the same bound.
const DELIVERY_OVERHEAD: usize = msb_wire::FRAME_HEADER_LEN + 2 + 8;

/// The shared, connection-independent server state: storage, guard,
/// counters, config. One instance per server, behind an `Arc`; every
/// connection thread calls [`Services::handle_frame`].
#[derive(Debug)]
pub struct Services {
    config: ServerConfig,
    inbox: Mutex<Inbox>,
    guard: Mutex<RateGuard<u32>>,
    /// The telemetry counters (the gateway bumps the frame I/O pair).
    pub stats: ServerStats,
}

impl Services {
    /// Creates the service state for `config`.
    pub fn new(config: ServerConfig) -> Self {
        let inbox = Inbox::new(config.inbox_ttl_us, config.max_per_recipient);
        let guard = RateGuard::new(config.guard_window_us, config.guard_max_in_window);
        Services {
            config,
            inbox: Mutex::new(inbox),
            guard: Mutex::new(guard),
            stats: ServerStats::default(),
        }
    }

    /// Routes one complete frame from a connection whose current
    /// identity is `client` (updated in place by a `Hello`). Returns
    /// the encoded response frame — every request gets exactly one
    /// response.
    pub fn handle_frame(&self, client: &mut Option<u32>, frame: &Bytes, now_us: u64) -> Vec<u8> {
        match peek_kind(frame) {
            Ok(FrameKind::RelayHello) => self.on_hello(client, frame),
            Ok(FrameKind::RelayDeposit) => {
                timed(&self.stats.deposit_service_us, || self.on_deposit(*client, frame, now_us))
            }
            Ok(FrameKind::RelayFetch) => {
                timed(&self.stats.fetch_service_us, || self.on_fetch(*client, frame, now_us))
            }
            Ok(FrameKind::RelayStatsReq) => self.on_stats(),
            Ok(FrameKind::RelayMetricsReq) => self.on_metrics(),
            // The radio idiom: a bare request frame floods to everyone.
            Ok(FrameKind::Request) => timed(&self.stats.deposit_service_us, || {
                self.admit_deposit(*client, BROADCAST, frame.clone(), now_us)
            }),
            // A bare reply is unroutable: its destination (the
            // initiator) is exactly what the bottle hides. It must
            // arrive wrapped in a Deposit naming the recipient.
            Ok(_) | Err(_) => self.reject_malformed(),
        }
    }

    fn on_hello(&self, client: &mut Option<u32>, frame: &Bytes) -> Vec<u8> {
        let hello = match Hello::decode(frame) {
            Ok(h) if h.client != BROADCAST => h,
            _ => return self.reject_malformed(),
        };
        self.inbox.lock().unwrap().register(hello.client);
        *client = Some(hello.client);
        encode_ack(Ack::ok(0))
    }

    fn on_deposit(&self, client: Option<u32>, frame: &Bytes, now_us: u64) -> Vec<u8> {
        let deposit = match Deposit::decode(frame) {
            Ok(d) => d,
            Err(_) => return self.reject_malformed(),
        };
        self.admit_deposit(client, deposit.to, deposit.frame, now_us)
    }

    /// The shared deposit path (wrapped deposits and bare request
    /// frames): identity, rate guard, routing policy, then fan-out.
    fn admit_deposit(&self, client: Option<u32>, to: u32, inner: Bytes, now_us: u64) -> Vec<u8> {
        let Some(sender) = client else {
            return encode_ack(Ack::err(AckCode::NotRegistered));
        };
        match peek_kind(&inner) {
            Ok(FrameKind::Request) => {}
            // A reply's recipient must be named explicitly.
            Ok(FrameKind::Reply) if to != BROADCAST => {}
            _ => return self.reject_malformed(),
        }
        // Delivering this bottle back must fit the same frame bound
        // its deposit did; see DELIVERY_OVERHEAD.
        if inner.len() + DELIVERY_OVERHEAD > self.config.max_frame_len {
            return self.reject_malformed();
        }
        if !self.guard.lock().unwrap().allow(sender, now_us) {
            ServerStats::bump(&self.stats.rejected_rate);
            return encode_ack(Ack::err(AckCode::RateLimited));
        }
        let mut inbox = self.inbox.lock().unwrap();
        let copies = if to == BROADCAST {
            let recipients: Vec<u32> =
                inbox.registered().iter().copied().filter(|&r| r != sender).collect();
            let mut queued = 0u32;
            for r in recipients {
                if inbox.push(r, sender, inner.clone(), now_us) {
                    queued += 1;
                }
            }
            queued
        } else if inbox.push(to, sender, inner, now_us) {
            1
        } else {
            // Unknown recipient or a queue at its cap.
            drop(inbox);
            return self.reject_malformed();
        };
        let depth = inbox.depth() as u64;
        drop(inbox);
        self.stats.inbox_depth_peak.fetch_max(depth, Ordering::Relaxed);
        ServerStats::bump(&self.stats.deposits_accepted);
        encode_ack(Ack::ok(copies))
    }

    fn on_fetch(&self, client: Option<u32>, frame: &Bytes, now_us: u64) -> Vec<u8> {
        let Some(me) = client else {
            return encode_ack(Ack::err(AckCode::NotRegistered));
        };
        let fetch = match Fetch::decode(frame) {
            Ok(f) => f,
            Err(_) => return self.reject_malformed(),
        };
        let mut inbox = self.inbox.lock().unwrap();
        let drained = inbox.drain(me, fetch.max as usize, now_us);
        // Greedy byte-budget batching: the reply must respect the same
        // max_frame_len bound as anything else on the wire, so stop
        // before overflowing and requeue the remainder (in order) for
        // the next fetch. The deposit-side headroom check guarantees
        // any single bottle fits.
        let mut batch = InboxBatch::default();
        let mut body = 2usize; // the count field
        let mut requeue = Vec::new();
        for msg in drained {
            let cost = 8 + msg.frame.len();
            if !batch.messages.is_empty()
                && msb_wire::FRAME_HEADER_LEN + body + cost > self.config.max_frame_len
            {
                requeue.push(msg);
                continue;
            }
            body += cost;
            batch.messages.push(Delivered { from: msg.from, frame: msg.frame });
        }
        for msg in requeue.into_iter().rev() {
            inbox.requeue_front(me, msg);
        }
        drop(inbox);
        ServerStats::add(&self.stats.messages_delivered, batch.messages.len() as u64);
        match batch.try_encode() {
            Ok(bytes) => bytes,
            // Unreachable given the byte budget, but a fetch must
            // never panic the server.
            Err(_) => encode_ack(Ack::err(AckCode::Rejected)),
        }
    }

    fn on_stats(&self) -> Vec<u8> {
        self.snapshot_now().encode()
    }

    fn on_metrics(&self) -> Vec<u8> {
        crate::metrics::MetricsDump {
            stats: self.snapshot_now(),
            inbox_depth_peak: self.stats.inbox_depth_peak.load(Ordering::Relaxed),
            deposit_service_us: self.stats.deposit_service_us.snapshot(),
            fetch_service_us: self.stats.fetch_service_us.snapshot(),
        }
        .encode()
    }

    /// One consistent snapshot: counters, storage gauges, and the rate
    /// guard's lifetime shed count (read from the guard itself, so it
    /// survives [`RateGuard::compact`]).
    fn snapshot_now(&self) -> crate::metrics::StatsSnapshot {
        let (depth, registered) = {
            let inbox = self.inbox.lock().unwrap();
            (inbox.depth() as u64, inbox.registered().len() as u64)
        };
        let sheds = self.guard.lock().unwrap().sheds();
        self.stats.snapshot(depth, registered, sheds)
    }

    /// Purges expired bottles (the cleanup worker's entry point);
    /// returns how many died. Also compacts the rate guard so it
    /// tracks active senders only.
    pub fn purge_expired(&self, now_us: u64) -> usize {
        let purged = self.inbox.lock().unwrap().purge_expired(now_us);
        ServerStats::add(&self.stats.inbox_expired, purged as u64);
        self.guard.lock().unwrap().compact(now_us);
        purged
    }

    /// Counts a reframing failure reported by the gateway, splitting
    /// the oversize-declaration case (the hostile-length defence) from
    /// garbage.
    pub fn note_stream_error(&self, err: &msb_wire::DecodeError) {
        ServerStats::bump(&self.stats.reframe_rejects);
        match err {
            msb_wire::DecodeError::FrameTooLarge { .. } => {
                ServerStats::bump(&self.stats.rejected_oversize);
            }
            _ => ServerStats::bump(&self.stats.rejected_malformed),
        }
    }

    /// The configured frame-size bound (the gateway sizes each
    /// connection's [`msb_wire::stream::FrameStream`] with this).
    pub fn max_frame_len(&self) -> usize {
        self.config.max_frame_len
    }

    /// Current rejected-frames total (oversize + malformed + rate).
    pub fn rejected_total(&self) -> u64 {
        self.stats.rejected_oversize.load(Ordering::Relaxed)
            + self.stats.rejected_malformed.load(Ordering::Relaxed)
            + self.stats.rejected_rate.load(Ordering::Relaxed)
    }

    fn reject_malformed(&self) -> Vec<u8> {
        ServerStats::bump(&self.stats.rejected_malformed);
        encode_ack(Ack::err(AckCode::Rejected))
    }
}

fn encode_ack(ack: Ack) -> Vec<u8> {
    ack.encode()
}

/// Times one op into a service-time histogram. Wall clock is correct
/// here: the relay is real infrastructure, not a simulated path — the
/// determinism contract (`docs/TELEMETRY.md`) covers sim time only.
fn timed(hist: &msb_telemetry::AtomicLogHistogram, op: impl FnOnce() -> Vec<u8>) -> Vec<u8> {
    let t0 = std::time::Instant::now();
    let out = op();
    hist.record(t0.elapsed().as_micros() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    /// A minimal well-formed frame of the given kind (empty payload).
    fn bare_frame(kind: FrameKind) -> Bytes {
        let mut w = msb_wire::Writer::new();
        w.bytes(&msb_wire::MAGIC);
        w.u8(msb_wire::VERSION);
        w.u8(kind as u8);
        w.u32(0);
        Bytes::from(w.into_vec())
    }

    fn hello_frame(id: u32) -> Bytes {
        Bytes::from(Hello { client: id }.encode())
    }

    fn services() -> Services {
        Services::new(ServerConfig::default())
    }

    #[test]
    fn deposit_requires_hello() {
        let s = services();
        let mut conn = None;
        let dep = Deposit { to: 1, frame: bare_frame(FrameKind::Request) };
        let resp = s.handle_frame(&mut conn, &Bytes::from(dep.encode()), 0);
        assert_eq!(Ack::decode(&resp).unwrap().code, AckCode::NotRegistered);
    }

    #[test]
    fn hello_deposit_fetch_roundtrip() {
        let s = services();
        let mut alice = None;
        let mut bob = None;
        s.handle_frame(&mut alice, &hello_frame(1), 0);
        s.handle_frame(&mut bob, &hello_frame(2), 0);
        assert_eq!(alice, Some(1));

        let inner = bare_frame(FrameKind::Request);
        let dep = Deposit { to: 2, frame: inner.clone() };
        let resp = s.handle_frame(&mut alice, &Bytes::from(dep.encode()), 10);
        assert_eq!(Ack::decode(&resp).unwrap(), Ack::ok(1));

        let resp = s.handle_frame(&mut bob, &Bytes::from(Fetch { max: 0 }.encode()), 20);
        let batch = InboxBatch::decode(&resp).unwrap();
        assert_eq!(batch.messages.len(), 1);
        assert_eq!(batch.messages[0].from, 1);
        assert_eq!(batch.messages[0].frame, inner);
    }

    #[test]
    fn broadcast_fans_out_to_everyone_but_sender() {
        let s = services();
        let mut conns: Vec<Option<u32>> = vec![None; 4];
        for (i, conn) in conns.iter_mut().enumerate() {
            s.handle_frame(conn, &hello_frame(i as u32), 0);
        }
        let dep = Deposit { to: BROADCAST, frame: bare_frame(FrameKind::Request) };
        let resp = s.handle_frame(&mut conns[0], &Bytes::from(dep.encode()), 0);
        assert_eq!(Ack::decode(&resp).unwrap(), Ack::ok(3));
    }

    #[test]
    fn bare_request_is_broadcast_but_bare_reply_is_not() {
        let s = services();
        let mut a = None;
        let mut b = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        s.handle_frame(&mut b, &hello_frame(2), 0);

        let resp = s.handle_frame(&mut a, &bare_frame(FrameKind::Request), 0);
        assert_eq!(Ack::decode(&resp).unwrap(), Ack::ok(1));

        let resp = s.handle_frame(&mut a, &bare_frame(FrameKind::Reply), 0);
        assert_eq!(Ack::decode(&resp).unwrap().code, AckCode::Rejected);
    }

    #[test]
    fn broadcast_reply_rejected_inside_deposit() {
        let s = services();
        let mut a = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        let dep = Deposit { to: BROADCAST, frame: bare_frame(FrameKind::Reply) };
        let resp = s.handle_frame(&mut a, &Bytes::from(dep.encode()), 0);
        assert_eq!(Ack::decode(&resp).unwrap().code, AckCode::Rejected);
    }

    #[test]
    fn rate_guard_kicks_in() {
        let config = ServerConfig { guard_max_in_window: 2, ..ServerConfig::default() };
        let s = Services::new(config);
        let mut a = None;
        let mut b = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        s.handle_frame(&mut b, &hello_frame(2), 0);
        let dep = Bytes::from(Deposit { to: 2, frame: bare_frame(FrameKind::Request) }.encode());
        for t in 0..2 {
            let resp = s.handle_frame(&mut a, &dep, t);
            assert_eq!(Ack::decode(&resp).unwrap().code, AckCode::Ok);
        }
        let resp = s.handle_frame(&mut a, &dep, 2);
        assert_eq!(Ack::decode(&resp).unwrap().code, AckCode::RateLimited);
        assert_eq!(s.stats.rejected_rate.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fetch_reply_respects_frame_bound() {
        let config = ServerConfig { max_frame_len: 256, ..ServerConfig::default() };
        let s = Services::new(config);
        let mut a = None;
        let mut b = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        s.handle_frame(&mut b, &hello_frame(2), 0);

        // Each deposited request is 10 + 80 = 90 bytes; three of them
        // (8 + 90 = 98 each in a batch) exceed the 256-byte reply
        // budget, so a fetch returns two and keeps one for later.
        let mut w = msb_wire::Writer::new();
        w.bytes(&msb_wire::MAGIC);
        w.u8(msb_wire::VERSION);
        w.u8(FrameKind::Request as u8);
        w.u32(80);
        w.bytes(&[0xCC; 80]);
        let inner = Bytes::from(w.into_vec());
        let dep = Bytes::from(Deposit { to: 2, frame: inner.clone() }.encode());
        for t in 0..3 {
            let resp = s.handle_frame(&mut a, &dep, t);
            assert_eq!(Ack::decode(&resp).unwrap().code, AckCode::Ok);
        }

        let fetch = Bytes::from(Fetch { max: 0 }.encode());
        let resp = s.handle_frame(&mut b, &fetch, 10);
        assert!(resp.len() <= 256, "reply frame {} bytes over budget", resp.len());
        assert_eq!(InboxBatch::decode(&resp).unwrap().messages.len(), 2);
        let resp = s.handle_frame(&mut b, &fetch, 11);
        assert_eq!(InboxBatch::decode(&resp).unwrap().messages.len(), 1);
    }

    #[test]
    fn oversized_inner_frame_rejected_at_deposit() {
        let config = ServerConfig { max_frame_len: 128, ..ServerConfig::default() };
        let s = Services::new(config);
        let mut a = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        let mut w = msb_wire::Writer::new();
        w.bytes(&msb_wire::MAGIC);
        w.u8(msb_wire::VERSION);
        w.u8(FrameKind::Request as u8);
        w.u32(110);
        w.bytes(&[0; 110]);
        let dep = Deposit { to: BROADCAST, frame: Bytes::from(w.into_vec()) };
        let resp = s.handle_frame(&mut a, &Bytes::from(dep.encode()), 0);
        assert_eq!(Ack::decode(&resp).unwrap().code, AckCode::Rejected);
    }

    #[test]
    fn stats_snapshot_reports_gauges() {
        let s = services();
        let mut a = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        let mut b = None;
        s.handle_frame(&mut b, &hello_frame(2), 0);
        let dep = Deposit { to: 2, frame: bare_frame(FrameKind::Request) };
        s.handle_frame(&mut a, &Bytes::from(dep.encode()), 0);

        let resp = s.handle_frame(&mut a, &bare_frame(FrameKind::RelayStatsReq), 0);
        let snap = crate::metrics::StatsSnapshot::decode(&resp).unwrap();
        assert_eq!(snap.registered_clients, 2);
        assert_eq!(snap.inbox_depth, 1);
        assert_eq!(snap.deposits_accepted, 1);
    }

    #[test]
    fn metrics_dump_reports_histograms_and_peaks() {
        let config = ServerConfig { guard_max_in_window: 2, ..ServerConfig::default() };
        let s = Services::new(config);
        let mut a = None;
        let mut b = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        s.handle_frame(&mut b, &hello_frame(2), 0);
        let dep = Bytes::from(Deposit { to: 2, frame: bare_frame(FrameKind::Request) }.encode());
        for t in 0..3 {
            s.handle_frame(&mut a, &dep, t);
        }
        s.handle_frame(&mut b, &Bytes::from(Fetch { max: 0 }.encode()), 10);

        let resp = s.handle_frame(&mut a, &bare_frame(FrameKind::RelayMetricsReq), 20);
        let dump = crate::metrics::MetricsDump::decode(&resp).unwrap();
        // 3 deposit attempts timed (the shed one included), 1 fetch.
        assert_eq!(dump.deposit_service_us.count(), 3);
        assert_eq!(dump.fetch_service_us.count(), 1);
        assert_eq!(dump.inbox_depth_peak, 2);
        assert_eq!(dump.stats.guard_sheds, 1);
        assert_eq!(dump.stats.rejected_rate, 1);
        assert_eq!(dump.stats.deposits_accepted, 2);
        // The exposition renders without panicking and carries the
        // histogram totals.
        let text = dump.exposition();
        assert!(text.contains("msb_relay_deposit_service_us_count 3"));
        assert!(text.contains("msb_relay_guard_sheds 1"));
    }

    #[test]
    fn guard_sheds_survive_compaction() {
        let config = ServerConfig { guard_max_in_window: 1, ..ServerConfig::default() };
        let s = Services::new(config);
        let mut a = None;
        let mut b = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        s.handle_frame(&mut b, &hello_frame(2), 0);
        let dep = Bytes::from(Deposit { to: 2, frame: bare_frame(FrameKind::Request) }.encode());
        s.handle_frame(&mut a, &dep, 0);
        s.handle_frame(&mut a, &dep, 1); // shed
                                         // Compaction (the cleanup worker's path) far past the window
                                         // drops the sender's slot but must not lose the shed count.
        s.purge_expired(u64::MAX / 2);
        let resp = s.handle_frame(&mut a, &bare_frame(FrameKind::RelayStatsReq), u64::MAX / 2);
        let snap = crate::metrics::StatsSnapshot::decode(&resp).unwrap();
        assert_eq!(snap.guard_sheds, 1);
        assert_eq!(snap.rejected_rate, 1);
    }

    #[test]
    fn reframe_rejects_totals_stream_errors() {
        let s = services();
        s.note_stream_error(&msb_wire::DecodeError::FrameTooLarge { declared: 1 << 30, max: 64 });
        s.note_stream_error(&msb_wire::DecodeError::Truncated { offset: 0 });
        let snap = s.stats.snapshot(0, 0, 0);
        assert_eq!(snap.reframe_rejects, 2);
        assert_eq!(snap.rejected_oversize, 1);
        assert_eq!(snap.rejected_malformed, 1);
    }

    #[test]
    fn cleanup_purges_and_counts() {
        let config = ServerConfig { inbox_ttl_us: 100, ..ServerConfig::default() };
        let s = Services::new(config);
        let mut a = None;
        let mut b = None;
        s.handle_frame(&mut a, &hello_frame(1), 0);
        s.handle_frame(&mut b, &hello_frame(2), 0);
        let dep = Deposit { to: 2, frame: bare_frame(FrameKind::Request) };
        s.handle_frame(&mut a, &Bytes::from(dep.encode()), 0);
        assert_eq!(s.purge_expired(50), 0);
        assert_eq!(s.purge_expired(100), 1);
        assert_eq!(s.stats.inbox_expired.load(Ordering::Relaxed), 1);
    }
}
