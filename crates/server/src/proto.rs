//! The relay control-plane messages (frame kinds `0x20`–`0x28`).
//!
//! Sealed bottles themselves — request and reply frames — are opaque to
//! the relay: they travel *inside* a [`Deposit`], which adds the one
//! thing the bottle deliberately omits: who the relay should hold it
//! for. Everything here is an [`msb_wire::Message`], so the same strict
//! envelope, golden-fixture, and fuzz machinery covers the control
//! plane (`tests/wire_golden.rs` at the workspace root).

use bytes::Bytes;
use msb_wire::{DecodeError, FrameKind, Message, Reader, WireDecode, WireEncode, Writer};

/// The pseudo-recipient meaning "every registered client except the
/// sender" — how a flooded request frame reaches the whole population.
pub const BROADCAST: u32 = u32::MAX;

/// A client identifying itself. First frame on every connection; the
/// claimed id keys the rate guard and the inbox.
///
/// (The reproduction trusts the claim, like the simulator trusts its
/// node ids; an authenticating handshake would slot in here.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The claimed client id. Must not be [`BROADCAST`].
    pub client: u32,
}

impl WireEncode for Hello {
    fn encoded_len(&self) -> usize {
        4
    }
    fn encode_into(&self, w: &mut Writer) {
        w.u32(self.client);
    }
}

impl WireDecode for Hello {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Hello { client: r.u32()? })
    }
}

impl Message for Hello {
    const KIND: FrameKind = FrameKind::RelayHello;
}

/// A sealed bottle handed to the relay for `to`'s inbox (or for every
/// registered client when `to` is [`BROADCAST`]). `frame` is a complete
/// MSBW frame — the relay validates its envelope kind but never decodes
/// its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deposit {
    /// Recipient id, or [`BROADCAST`].
    pub to: u32,
    /// The carried frame, envelope and all.
    pub frame: Bytes,
}

impl WireEncode for Deposit {
    fn encoded_len(&self) -> usize {
        4 + 4 + self.frame.len()
    }
    fn encode_into(&self, w: &mut Writer) {
        w.u32(self.to);
        w.u32(self.frame.len() as u32);
        w.bytes(&self.frame);
    }
}

impl WireDecode for Deposit {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let to = r.u32()?;
        let len = r.u32()? as usize;
        let frame = Bytes::copy_from_slice(r.take(len)?);
        Ok(Deposit { to, frame })
    }
}

impl Message for Deposit {
    const KIND: FrameKind = FrameKind::RelayDeposit;
}

/// A poll of the caller's inbox: drain up to `max` pending bottles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fetch {
    /// Maximum bottles to drain in this fetch (0 means "no limit").
    pub max: u16,
}

impl WireEncode for Fetch {
    fn encoded_len(&self) -> usize {
        2
    }
    fn encode_into(&self, w: &mut Writer) {
        w.u16(self.max);
    }
}

impl WireDecode for Fetch {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Fetch { max: r.u16()? })
    }
}

impl Message for Fetch {
    const KIND: FrameKind = FrameKind::RelayFetch;
}

/// One delivered bottle: who deposited it, and the frame itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// The depositing client.
    pub from: u32,
    /// The carried frame, exactly as deposited.
    pub frame: Bytes,
}

/// The bottles drained by a [`Fetch`], oldest first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InboxBatch {
    /// Drained bottles in deposit order.
    pub messages: Vec<Delivered>,
}

impl WireEncode for InboxBatch {
    fn encoded_len(&self) -> usize {
        2 + self.messages.iter().map(|m| 4 + 4 + m.frame.len()).sum::<usize>()
    }
    fn encode_into(&self, w: &mut Writer) {
        w.u16(self.messages.len() as u16);
        for m in &self.messages {
            w.u32(m.from);
            w.u32(m.frame.len() as u32);
            w.bytes(&m.frame);
        }
    }
}

impl WireDecode for InboxBatch {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.u16()? as usize;
        let mut messages = Vec::with_capacity(count.min(256));
        for _ in 0..count {
            let from = r.u32()?;
            let len = r.u32()? as usize;
            let frame = Bytes::copy_from_slice(r.take(len)?);
            messages.push(Delivered { from, frame });
        }
        Ok(InboxBatch { messages })
    }
}

impl Message for InboxBatch {
    const KIND: FrameKind = FrameKind::RelayInbox;
}

/// Per-request status codes carried by [`Ack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum AckCode {
    /// Accepted.
    Ok = 0,
    /// Dropped by the per-sender rate guard (the paper's DoS defence).
    RateLimited = 1,
    /// Rejected by policy (bad recipient, bad inner frame, queue full).
    Rejected = 2,
    /// The connection has not identified itself with a [`Hello`].
    NotRegistered = 3,
}

impl AckCode {
    /// Parses a status byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(AckCode::Ok),
            1 => Some(AckCode::RateLimited),
            2 => Some(AckCode::Rejected),
            3 => Some(AckCode::NotRegistered),
            _ => None,
        }
    }
}

/// The relay's answer to a [`Hello`] or [`Deposit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// What happened.
    pub code: AckCode,
    /// Code-specific detail: for an accepted deposit, the number of
    /// inbox copies queued (fan-out of a broadcast); otherwise 0.
    pub info: u32,
}

impl Ack {
    /// An accepting ack carrying `info`.
    pub fn ok(info: u32) -> Self {
        Ack { code: AckCode::Ok, info }
    }

    /// A rejecting ack with the given code.
    pub fn err(code: AckCode) -> Self {
        Ack { code, info: 0 }
    }
}

impl WireEncode for Ack {
    fn encoded_len(&self) -> usize {
        1 + 4
    }
    fn encode_into(&self, w: &mut Writer) {
        w.u8(self.code as u8);
        w.u32(self.info);
    }
}

impl WireDecode for Ack {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let start = r.offset();
        let raw = r.u8()?;
        let code = AckCode::from_u8(raw).ok_or_else(|| r.invalid(start, "ack status code"))?;
        Ok(Ack { code, info: r.u32()? })
    }
}

impl Message for Ack {
    const KIND: FrameKind = FrameKind::RelayAck;
}

/// A health/stats query (empty body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReq;

impl WireEncode for StatsReq {
    fn encoded_len(&self) -> usize {
        0
    }
    fn encode_into(&self, _w: &mut Writer) {}
}

impl WireDecode for StatsReq {
    fn decode_from(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StatsReq)
    }
}

impl Message for StatsReq {
    const KIND: FrameKind = FrameKind::RelayStatsReq;
}

/// A metrics query (empty body). Answered with a
/// [`MetricsDump`](crate::metrics::MetricsDump): the stats snapshot
/// plus peak gauges and per-op service-time histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsReq;

impl WireEncode for MetricsReq {
    fn encoded_len(&self) -> usize {
        0
    }
    fn encode_into(&self, _w: &mut Writer) {}
}

impl WireDecode for MetricsReq {
    fn decode_from(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MetricsReq)
    }
}

impl Message for MetricsReq {
    const KIND: FrameKind = FrameKind::RelayMetricsReq;
}
