//! Background workers. One for now: the inbox cleanup thread, which
//! purges expired bottles (and compacts the rate guard) every
//! [`cleanup_interval_ms`](crate::ServerConfig::cleanup_interval_ms),
//! keeping the message repo proportional to *live* traffic however
//! long the server runs.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::gateway::Shared;

/// Spawns the cleanup thread; it exits promptly (within ~10 ms) once
/// the shared shutdown flag is set.
pub(crate) fn spawn_cleanup(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let interval = Duration::from_millis(shared.cleanup_interval_ms.max(1));
        let slice = Duration::from_millis(10).min(interval);
        let mut slept = Duration::ZERO;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Sleep in short slices so shutdown never waits a whole
            // cleanup interval.
            std::thread::sleep(slice);
            slept += slice;
            if slept >= interval {
                slept = Duration::ZERO;
                shared.services.purge_expired(shared.now_us());
            }
        }
    })
}
