//! The store-and-forward inbox: per-recipient queues of TTL-stamped
//! sealed bottles.
//!
//! This is what lets a bottle outlive radio contact (and, here, TCP
//! contact): a deposit parks the frame under the recipient's id; the
//! recipient drains it on a later fetch. Entries expire after the
//! configured TTL — the serverside mirror of the paper's request
//! validity period — and the [`worker`](crate::worker) purges them on
//! an interval, so the repo tracks *live* bottles, not all bottles
//! ever.
//!
//! All times are microseconds on the server's monotonic clock
//! (supplied by the caller; storage never reads a clock itself, which
//! keeps every policy here unit-testable at exact instants).

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;

/// One parked bottle.
#[derive(Debug, Clone)]
pub struct StoredMessage {
    /// The depositing client.
    pub from: u32,
    /// The carried frame, exactly as deposited.
    pub frame: Bytes,
    /// The instant this entry stops being fetchable.
    pub expires_at_us: u64,
}

/// Per-recipient message repository. Doubles as the client registry:
/// only registered ([`Hello`](crate::proto::Hello)-ed) ids can deposit
/// or fetch, and the registry is the fan-out population for
/// [`BROADCAST`](crate::proto::BROADCAST) deposits.
#[derive(Debug)]
pub struct Inbox {
    ttl_us: u64,
    max_per_recipient: usize,
    /// Registered client ids in registration order — the broadcast
    /// fan-out walks this, so delivery order across recipients is
    /// deterministic.
    registered: Vec<u32>,
    queues: HashMap<u32, VecDeque<StoredMessage>>,
}

impl Inbox {
    /// Creates an empty inbox with the given TTL and per-recipient cap.
    pub fn new(ttl_us: u64, max_per_recipient: usize) -> Self {
        Inbox { ttl_us, max_per_recipient, registered: Vec::new(), queues: HashMap::new() }
    }

    /// Registers a client id (idempotent).
    pub fn register(&mut self, client: u32) {
        if !self.registered.contains(&client) {
            self.registered.push(client);
            self.queues.entry(client).or_default();
        }
    }

    /// Whether `client` has registered.
    pub fn is_registered(&self, client: u32) -> bool {
        self.registered.contains(&client)
    }

    /// Registered ids, in registration order.
    pub fn registered(&self) -> &[u32] {
        &self.registered
    }

    /// Parks a bottle for `to`. Returns `false` (dropping the bottle)
    /// when the recipient is unknown or their queue is at the cap —
    /// the deposit-side backpressure that keeps one slow reader from
    /// growing the repo without bound.
    pub fn push(&mut self, to: u32, from: u32, frame: Bytes, now_us: u64) -> bool {
        let Some(queue) = self.queues.get_mut(&to) else {
            return false;
        };
        if queue.len() >= self.max_per_recipient {
            return false;
        }
        queue.push_back(StoredMessage { from, frame, expires_at_us: now_us + self.ttl_us });
        true
    }

    /// Drains up to `max` live bottles for `client` (0 = no limit),
    /// oldest first. Expired entries encountered on the way are
    /// silently dropped here and counted by the cleanup worker's purge
    /// — a fetch never delivers a dead bottle.
    pub fn drain(&mut self, client: u32, max: usize, now_us: u64) -> Vec<StoredMessage> {
        let Some(queue) = self.queues.get_mut(&client) else {
            return Vec::new();
        };
        let cap = if max == 0 { usize::MAX } else { max };
        let mut out = Vec::new();
        while out.len() < cap {
            let Some(msg) = queue.pop_front() else {
                break;
            };
            if msg.expires_at_us > now_us {
                out.push(msg);
            }
        }
        out
    }

    /// Returns a drained bottle to the *front* of `client`'s queue —
    /// used by the services layer when a fetch reply's byte budget
    /// fills before the queue empties, so the undelivered remainder
    /// keeps its order for the next fetch.
    pub fn requeue_front(&mut self, client: u32, msg: StoredMessage) {
        self.queues.entry(client).or_default().push_front(msg);
    }

    /// Drops every expired bottle; returns how many died.
    pub fn purge_expired(&mut self, now_us: u64) -> usize {
        let mut purged = 0;
        for queue in self.queues.values_mut() {
            let before = queue.len();
            queue.retain(|m| m.expires_at_us > now_us);
            purged += before - queue.len();
        }
        purged
    }

    /// Bottles currently parked across all recipients.
    pub fn depth(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 4])
    }

    #[test]
    fn deposit_fetch_roundtrip_in_order() {
        let mut inbox = Inbox::new(1_000, 16);
        inbox.register(7);
        assert!(inbox.push(7, 1, frame(0xA), 0));
        assert!(inbox.push(7, 2, frame(0xB), 10));
        let got = inbox.drain(7, 0, 20);
        assert_eq!(got.iter().map(|m| m.from).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(inbox.depth(), 0);
    }

    #[test]
    fn unknown_recipient_and_full_queue_rejected() {
        let mut inbox = Inbox::new(1_000, 2);
        assert!(!inbox.push(9, 1, frame(1), 0), "unregistered recipient");
        inbox.register(9);
        assert!(inbox.push(9, 1, frame(1), 0));
        assert!(inbox.push(9, 1, frame(2), 0));
        assert!(!inbox.push(9, 1, frame(3), 0), "queue at cap");
        assert_eq!(inbox.depth(), 2);
    }

    #[test]
    fn ttl_expiry_via_drain_and_purge() {
        let mut inbox = Inbox::new(100, 16);
        inbox.register(1);
        inbox.register(2);
        inbox.push(1, 0, frame(1), 0); // expires at 100
        inbox.push(2, 0, frame(2), 50); // expires at 150

        // Drain never hands out a dead bottle.
        assert!(inbox.drain(1, 0, 100).is_empty(), "expires_at == now is dead");

        assert_eq!(inbox.purge_expired(120), 0); // client 1's already drained
        assert_eq!(inbox.depth(), 1);
        assert_eq!(inbox.purge_expired(150), 1);
        assert_eq!(inbox.depth(), 0);
    }

    #[test]
    fn registry_is_idempotent_and_ordered() {
        let mut inbox = Inbox::new(1, 1);
        inbox.register(5);
        inbox.register(3);
        inbox.register(5);
        assert_eq!(inbox.registered(), &[5, 3]);
        assert!(inbox.is_registered(3));
        assert!(!inbox.is_registered(4));
    }
}
