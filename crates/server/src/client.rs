//! The matching blocking client: one TCP connection, strict
//! request/response lockstep (every call writes one frame and reads
//! exactly one response frame through its own bounded
//! [`FrameStream`]).
//!
//! ```no_run
//! use msb_server::{RelayClient, RelayServer, ServerConfig, BROADCAST};
//!
//! let server = RelayServer::spawn(ServerConfig::default())?;
//! let mut client = RelayClient::connect(server.addr())?;
//! client.hello(7)?;
//! // deposit / fetch sealed bottles…
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use bytes::Bytes;
use msb_wire::stream::FrameStream;
use msb_wire::{peek_kind, FrameKind, Message};

use crate::metrics::{MetricsDump, StatsSnapshot};
use crate::proto::{Ack, Delivered, Deposit, Fetch, Hello, InboxBatch, MetricsReq, StatsReq};

/// A blocking relay client. See the [module docs](self).
#[derive(Debug)]
pub struct RelayClient {
    stream: TcpStream,
    frames: FrameStream,
}

impl RelayClient {
    /// Connects with the default frame bound
    /// ([`ServerConfig::default`](crate::ServerConfig)'s
    /// `max_frame_len`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_bounded(addr, crate::ServerConfig::default().max_frame_len)
    }

    /// Connects with an explicit receive-side frame bound (match the
    /// server's configured `max_frame_len`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect_bounded(addr: SocketAddr, max_frame_len: usize) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RelayClient { stream, frames: FrameStream::new(max_frame_len) })
    }

    /// Identifies this connection as `client`.
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-[`Ack`] response.
    pub fn hello(&mut self, client: u32) -> std::io::Result<Ack> {
        self.send(&Hello { client }.encode())?;
        self.read_ack()
    }

    /// Deposits `frame` (a complete MSBW frame) for `to` — use
    /// [`BROADCAST`](crate::proto::BROADCAST) to reach every
    /// registered client except this one.
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-[`Ack`] response.
    pub fn deposit(&mut self, to: u32, frame: impl Into<Bytes>) -> std::io::Result<Ack> {
        self.send(&Deposit { to, frame: frame.into() }.encode())?;
        self.read_ack()
    }

    /// Drains up to `max` pending bottles (0 = as many as fit one
    /// response frame).
    ///
    /// # Errors
    ///
    /// I/O failures, an [`Ack`]-signalled rejection (e.g. fetching
    /// before [`RelayClient::hello`]), or a malformed response.
    pub fn fetch(&mut self, max: u16) -> std::io::Result<Vec<Delivered>> {
        self.send(&Fetch { max }.encode())?;
        let frame = self.read_frame()?;
        match peek_kind(&frame) {
            Ok(FrameKind::RelayInbox) => {
                InboxBatch::decode(&frame).map(|b| b.messages).map_err(into_io)
            }
            Ok(FrameKind::RelayAck) => {
                let ack = Ack::decode(&frame).map_err(into_io)?;
                Err(std::io::Error::other(format!("fetch rejected: {:?}", ack.code)))
            }
            _ => Err(std::io::Error::other("unexpected response to fetch")),
        }
    }

    /// Queries the health/stats endpoint.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed response.
    pub fn stats(&mut self) -> std::io::Result<StatsSnapshot> {
        self.send(&StatsReq.encode())?;
        let frame = self.read_frame()?;
        StatsSnapshot::decode(&frame).map_err(into_io)
    }

    /// Queries the metrics endpoint: the stats snapshot plus peak
    /// gauges and per-op service-time histograms.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed response.
    pub fn metrics_dump(&mut self) -> std::io::Result<MetricsDump> {
        self.send(&MetricsReq.encode())?;
        let frame = self.read_frame()?;
        MetricsDump::decode(&frame).map_err(into_io)
    }

    /// Writes raw bytes to the server — the hostile-input path the
    /// hardening suite uses; a well-behaved client never needs it.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.send(bytes)
    }

    /// Reads one response frame — paired with [`RelayClient::send_raw`].
    ///
    /// # Errors
    ///
    /// I/O failures or a reframing error.
    pub fn read_response(&mut self) -> std::io::Result<Bytes> {
        self.read_frame()
    }

    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn read_ack(&mut self) -> std::io::Result<Ack> {
        let frame = self.read_frame()?;
        Ack::decode(&frame).map_err(into_io)
    }

    fn read_frame(&mut self) -> std::io::Result<Bytes> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = self.frames.next_frame().map_err(into_io)? {
                return Ok(frame);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            self.frames.push(&buf[..n]).map_err(into_io)?;
        }
    }
}

fn into_io(e: msb_wire::DecodeError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}
