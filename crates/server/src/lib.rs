//! The sealed-bottle relay server: friending beyond radio contact.
//!
//! The paper's protocols run over opportunistic short-range radio; its
//! DoS defence ("restricting the frequency of relay and reply requests
//! from the same user", §II-B) and the evaluation's scale both point at
//! infrastructure. This crate is that infrastructure: a TCP service
//! that relays [MSBW-framed](msb_wire) sealed bottles between clients
//! that are never online — or in range — at the same time.
//!
//! The server never opens a bottle. Request and reply frames pass
//! through exactly as encoded by the sender; all the server learns is
//! routing metadata (who deposits, for whom, how often) — the same
//! exposure the paper grants any relay node.
//!
//! # Layering
//!
//! Four layers, each a module (`docs/SERVER.md` has the full tour):
//!
//! - **gateway** ([`gateway`]): TCP accept loop and per-connection
//!   read loops. Reframes the byte stream with
//!   [`msb_wire::stream::FrameStream`], so a declared frame length is
//!   bounded by [`ServerConfig::max_frame_len`] *before* any payload
//!   is buffered.
//! - **services** ([`service`]): routes each frame — hello, deposit,
//!   fetch, stats — enforcing registration, the per-sender
//!   [`msb_net::guard::RateGuard`], and the inner-frame routing policy
//!   (request frames may broadcast; reply frames must name their
//!   initiator).
//! - **storage** ([`storage`]): the store-and-forward [`storage::Inbox`] —
//!   per-recipient TTL-stamped queues that let a bottle outlive the
//!   depositor's connection.
//! - **workers** ([`worker`]): the background cleanup thread that
//!   purges expired bottles on an interval.
//!
//! A matching blocking [`client::RelayClient`] lives here too, and the
//! simulator stays the oracle: the loopback parity suite drives real
//! `FriendingApp` nodes through [`msb_net::harness::AppHarness`] over
//! sockets and asserts the same matches and payload byte counts as the
//! `EncodedFrames` simulator run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod gateway;
pub mod metrics;
pub mod proto;
pub mod service;
pub mod storage;
pub mod worker;

pub use client::RelayClient;
pub use gateway::RelayServer;
pub use metrics::{MetricsDump, StatsSnapshot};
pub use proto::{
    Ack, AckCode, Delivered, Deposit, Fetch, Hello, InboxBatch, MetricsReq, StatsReq, BROADCAST,
};

/// Server tuning knobs. The defaults suit the loopback suites; a real
/// deployment mainly raises `max_per_recipient` and the guard budget.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest acceptable total frame size (envelope + payload) on any
    /// connection. A header declaring more is rejected before any
    /// payload is buffered ([`msb_wire::DecodeError::FrameTooLarge`]).
    pub max_frame_len: usize,
    /// How long a deposited bottle stays fetchable, in microseconds —
    /// mirrors the paper's request validity period `T` (the protocol
    /// default is 60 s).
    pub inbox_ttl_us: u64,
    /// How often the cleanup worker purges expired bottles.
    pub cleanup_interval_ms: u64,
    /// Sliding window of the per-sender deposit guard, in microseconds.
    pub guard_window_us: u64,
    /// Deposits allowed per sender per window.
    pub guard_max_in_window: usize,
    /// Pending-bottle cap per recipient queue; deposits beyond it are
    /// dropped (and counted) rather than growing without bound.
    pub max_per_recipient: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame_len: 64 * 1024,
            inbox_ttl_us: 60_000_000,
            cleanup_interval_ms: 50,
            // The paper's guard is 3 per 10 s per *radio* neighborhood;
            // a server fronts many interactions per user, so the
            // default budget is wider while keeping the same window.
            guard_window_us: 10_000_000,
            guard_max_in_window: 32,
            max_per_recipient: 1024,
        }
    }
}
