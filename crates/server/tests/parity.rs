//! The oracle-parity contract: a seeded `FriendingApp` scenario driven
//! through the relay server over real loopback TCP must produce the
//! same outcomes — the full `SwarmSummary`, the confirmed responder
//! set, and the payload byte count — as the same scenario inside the
//! simulator's `EncodedFrames` mode.
//!
//! The two runs share everything that matters: the apps are built
//! identically, the per-node RNG streams are the same derivation
//! (`AppHarness` reuses the simulator's), and the driver below replays
//! the simulator's timing model (uniform latency `L`, ties processed
//! in ascending node id order — the simulator's `(src, emit)` event
//! ordering for this topology). What differs is the transport: every
//! transmission becomes a real `Deposit` over a socket and every
//! delivery a real `Fetch`, so any server-side reordering, loss,
//! corruption, or double-delivery breaks the equality.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use msb_core::app::{FriendingApp, SwarmSummary};
use msb_core::protocol::{ProtocolConfig, ProtocolKind};
use msb_net::harness::{AppAction, AppHarness};
use msb_net::sim::{DeliveryMode, NodeId, SimConfig, Simulator};
use msb_net::Payload;
use msb_profile::{Attribute, Profile, RequestProfile};
use msb_server::{RelayClient, RelayServer, ServerConfig, BROADCAST};

const SEED: u64 = 20130708;
/// Uniform per-transmission latency (the parity config zeroes the
/// distance term and jitter, so every hop costs exactly this).
const L: u64 = 500;
const NODES: usize = 5;

fn interest(name: &str) -> Attribute {
    Attribute::new("interest", name)
}

/// The scenario: one initiator (node 0) looking for salsa plus two of
/// {jazz, sushi, poetry}; nodes 1 and 2 match, node 3 passes only the
/// fast check, node 4 isn't even a candidate. All five sit in one
/// radio clique.
fn build_apps() -> Vec<FriendingApp> {
    let config = ProtocolConfig::new(ProtocolKind::P2, 11);
    let request = RequestProfile::new(
        vec![interest("salsa")],
        vec![interest("jazz"), interest("sushi"), interest("poetry")],
        2,
    )
    .expect("static request profile");
    let initiator_profile = Profile::from_attributes(vec![interest("salsa"), interest("jazz")]);
    vec![
        FriendingApp::initiator(initiator_profile, request, config.clone()),
        FriendingApp::participant(
            Profile::from_attributes(vec![interest("salsa"), interest("jazz"), interest("poetry")]),
            config.clone(),
        ),
        FriendingApp::participant(
            Profile::from_attributes(vec![interest("salsa"), interest("jazz"), interest("sushi")]),
            config.clone(),
        ),
        FriendingApp::participant(
            Profile::from_attributes(vec![interest("salsa"), interest("chess")]),
            config.clone(),
        ),
        FriendingApp::participant(
            Profile::from_attributes(vec![interest("chess"), interest("go")]),
            config,
        ),
    ]
}

fn position(i: usize) -> (f64, f64) {
    (i as f64 * 10.0, 0.0) // 40 m end to end: everyone hears everyone
}

/// The simulator half: the oracle.
fn run_simulator() -> (SwarmSummary, u64, Vec<u32>) {
    let config = SimConfig {
        per_meter_latency_us: 0.0,
        jitter_us: 0,
        delivery: DeliveryMode::EncodedFrames,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(config, SEED);
    for (i, app) in build_apps().into_iter().enumerate() {
        sim.add_node(position(i), app);
    }
    sim.start();
    sim.run();
    let summary = SwarmSummary::collect(&sim);
    let mut matched: Vec<u32> =
        sim.app(NodeId::new(0)).matches().iter().map(|m| m.responder).collect();
    matched.sort_unstable();
    (summary, sim.metrics().payload_bytes, matched)
}

/// The server half: the same apps behind `AppHarness`, every
/// transmission a deposit, every delivery a fetch, over loopback TCP.
fn run_server() -> (SwarmSummary, u64, Vec<u32>) {
    let mut server = RelayServer::spawn(ServerConfig::default()).expect("bind loopback");
    let mut clients: Vec<RelayClient> = (0..NODES)
        .map(|i| {
            let mut c = RelayClient::connect(server.addr()).expect("connect");
            assert_eq!(c.hello(i as u32).expect("hello").code, msb_server::AckCode::Ok);
            c
        })
        .collect();
    let mut harnesses: Vec<AppHarness<FriendingApp>> = build_apps()
        .into_iter()
        .enumerate()
        .map(|(i, app)| {
            let mut h =
                AppHarness::new(NodeId::new(i as u32), app, SEED, DeliveryMode::EncodedFrames);
            h.set_position(position(i));
            h
        })
        .collect();

    // Virtual arrivals: (at_us, seq, recipient). seq preserves dispatch
    // order, which the uniform latency turns into arrival order — the
    // simulator's (src, emit) tie-break for this topology.
    let mut arrivals: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut sent_bytes = 0u64;

    // One closure-free dispatch helper: route one node's actions at
    // time `t` through the server and schedule their arrivals.
    fn dispatch(
        node: usize,
        t: u64,
        actions: Vec<AppAction>,
        clients: &mut [RelayClient],
        arrivals: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
        seq: &mut u64,
        sent_bytes: &mut u64,
    ) {
        for action in actions {
            match action {
                AppAction::Broadcast(payload) => {
                    let bytes = payload.as_bytes().expect("EncodedFrames payload").to_vec();
                    *sent_bytes += bytes.len() as u64;
                    let ack = clients[node].deposit(BROADCAST, bytes).expect("deposit");
                    assert_eq!(ack.code, msb_server::AckCode::Ok);
                    assert_eq!(ack.info as usize, NODES - 1, "broadcast fan-out");
                    for r in 0..NODES {
                        if r != node {
                            arrivals.push(Reverse((t + L, *seq, r)));
                            *seq += 1;
                        }
                    }
                }
                AppAction::Unicast { to, payload } => {
                    let bytes = payload.as_bytes().expect("EncodedFrames payload").to_vec();
                    *sent_bytes += bytes.len() as u64;
                    let ack = clients[node].deposit(to.index() as u32, bytes).expect("deposit");
                    assert_eq!(ack.code, msb_server::AckCode::Ok);
                    arrivals.push(Reverse((t + L, *seq, to.index())));
                    *seq += 1;
                }
                AppAction::BroadcastK { .. } => {
                    panic!("scenario has no re-flood policy; BroadcastK is unexpected")
                }
            }
        }
    }

    // t = 0: every node starts, in id order (the simulator's order).
    for (i, h) in harnesses.iter_mut().enumerate() {
        let actions = h.start(0);
        dispatch(i, 0, actions, &mut clients, &mut arrivals, &mut seq, &mut sent_bytes);
    }

    // The event loop: earliest of (next arrival, next timer); ties
    // between node timers break toward the smaller id. The scenario's
    // constants (L = 500, per-key cost 7 ms) make arrival/timer ties
    // impossible, mirroring the simulator run exactly.
    loop {
        let next_arrival = arrivals.peek().map(|Reverse((at, s, r))| (*at, *s, *r));
        let next_timer =
            (0..NODES).filter_map(|i| harnesses[i].next_timer_at().map(|at| (at, i))).min();
        match (next_arrival, next_timer) {
            (None, None) => break,
            (arrival, timer) => {
                let take_arrival = match (arrival, timer) {
                    (Some((aa, _, _)), Some((ta, _))) => {
                        assert_ne!(aa, ta, "scenario constants must avoid arrival/timer ties");
                        aa < ta
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if take_arrival {
                    let Reverse((at, _, to)) = arrivals.pop().expect("peeked");
                    let fetched = clients[to].fetch(1).expect("fetch");
                    assert_eq!(fetched.len(), 1, "one bottle per scheduled arrival");
                    let msg = &fetched[0];
                    let payload = Payload::frame(msg.frame.clone());
                    let actions = harnesses[to].deliver(NodeId::new(msg.from), &payload, at);
                    dispatch(
                        to,
                        at,
                        actions,
                        &mut clients,
                        &mut arrivals,
                        &mut seq,
                        &mut sent_bytes,
                    );
                } else {
                    let (at, node) = next_timer.expect("chose timer");
                    let actions = harnesses[node].fire_timers_until(at);
                    dispatch(
                        node,
                        at,
                        actions,
                        &mut clients,
                        &mut arrivals,
                        &mut seq,
                        &mut sent_bytes,
                    );
                }
            }
        }
    }

    let summary = SwarmSummary::from_event_logs(harnesses.iter().map(|h| h.app()));
    let mut matched: Vec<u32> = harnesses[0].app().matches().iter().map(|m| m.responder).collect();
    matched.sort_unstable();

    // The server's own books must balance: every deposited copy was
    // fetched exactly once (seq counts scheduled arrivals == delivered
    // copies), nothing was rejected, nothing was left behind.
    let stats = server.stats();
    assert_eq!(stats.inbox_depth, 0, "every bottle was fetched");
    assert_eq!(stats.messages_delivered, seq, "one delivery per scheduled arrival");
    assert_eq!(stats.rejected_rate + stats.rejected_oversize + stats.rejected_malformed, 0);
    assert_eq!(stats.registered_clients, NODES as u64);

    server.shutdown();
    (summary, sent_bytes, matched)
}

#[test]
fn loopback_run_matches_simulator_oracle() {
    let (sim_summary, sim_bytes, sim_matches) = run_simulator();

    // Sanity: the scenario actually exercises the protocol.
    assert_eq!(sim_summary.matches, 2, "nodes 1 and 2 must match");
    assert!(sim_summary.relays >= 1);
    assert!(sim_bytes > 0);

    let (srv_summary, srv_bytes, srv_matches) = run_server();

    // The contract: identical outcomes, including per-match latencies.
    assert_eq!(srv_summary, sim_summary, "SwarmSummary must be bit-identical");
    assert_eq!(srv_matches, sim_matches, "same responders confirmed");
    assert_eq!(srv_bytes, sim_bytes, "payload byte counts must agree");
}
