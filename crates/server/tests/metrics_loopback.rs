//! The metrics endpoint over real sockets: a client fetches the
//! `MetricsDump` (frame kind 0x27) after live traffic, the histograms
//! and v2 snapshot fields agree with what the traffic did, and the
//! in-process exposition renders the same numbers.

use msb_server::{AckCode, RelayClient, RelayServer, ServerConfig};
use msb_wire::{FrameKind, FRAME_HEADER_LEN, MAGIC, VERSION};

fn bare_frame(kind: FrameKind) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAME_HEADER_LEN);
    f.extend_from_slice(&MAGIC);
    f.push(VERSION);
    f.push(kind as u8);
    f.extend_from_slice(&0u32.to_be_bytes());
    f
}

#[test]
fn metrics_dump_round_trips_over_the_wire() {
    let mut server = RelayServer::spawn(ServerConfig::default()).expect("spawn");
    let mut alice = RelayClient::connect(server.addr()).expect("connect");
    let mut bob = RelayClient::connect(server.addr()).expect("connect");
    assert_eq!(alice.hello(1).expect("hello").code, AckCode::Ok);
    assert_eq!(bob.hello(2).expect("hello").code, AckCode::Ok);

    for _ in 0..3 {
        let ack = alice.deposit(2, bare_frame(FrameKind::Request)).expect("deposit");
        assert_eq!(ack.code, AckCode::Ok);
    }
    assert_eq!(bob.fetch(0).expect("fetch").len(), 3);

    let dump = bob.metrics_dump().expect("metrics dump");
    assert_eq!(dump.stats.deposits_accepted, 3);
    assert_eq!(dump.stats.messages_delivered, 3);
    assert_eq!(dump.stats.registered_clients, 2);
    assert_eq!(dump.stats.guard_sheds, 0);
    assert_eq!(dump.stats.reframe_rejects, 0);
    assert_eq!(dump.inbox_depth_peak, 3);
    assert_eq!(dump.deposit_service_us.count(), 3);
    assert_eq!(dump.fetch_service_us.count(), 1);
    // Percentile queries answer on live data (p99 ≥ p50 by layout).
    let p50 = dump.deposit_service_us.percentile(0.50).expect("p50");
    let p99 = dump.deposit_service_us.percentile(0.99).expect("p99");
    assert!(p99 >= p50);

    // The wire dump and the in-process dump agree on the monotone
    // counters (gauge-ish fields can move between the two reads).
    let local = server.metrics();
    assert_eq!(local.stats.deposits_accepted, dump.stats.deposits_accepted);
    assert_eq!(local.deposit_service_us.count(), dump.deposit_service_us.count());

    // The exposition carries the same series.
    let text = server.exposition();
    assert!(text.contains("msb_relay_deposits_accepted 3"));
    assert!(text.contains("msb_relay_deposit_service_us_count 3"));
    assert!(text.contains("msb_relay_fetch_service_us_bucket{le=\"+Inf\"} 1"));
    server.shutdown();
}

#[test]
fn stats_v2_surfaces_sheds_and_reframe_rejects_over_the_wire() {
    let config = ServerConfig { guard_max_in_window: 1, ..ServerConfig::default() };
    let mut server = RelayServer::spawn(config).expect("spawn");
    let mut alice = RelayClient::connect(server.addr()).expect("connect");
    let mut bob = RelayClient::connect(server.addr()).expect("connect");
    assert_eq!(alice.hello(1).expect("hello").code, AckCode::Ok);
    assert_eq!(bob.hello(2).expect("hello").code, AckCode::Ok);

    assert_eq!(alice.deposit(2, bare_frame(FrameKind::Request)).expect("ok").code, AckCode::Ok);
    let shed = alice.deposit(2, bare_frame(FrameKind::Request)).expect("shed");
    assert_eq!(shed.code, AckCode::RateLimited);

    // Garbage that can never reframe: wrong magic is connection-fatal.
    alice.send_raw(b"NOPE------").expect("send garbage");
    let _ = alice.read_response(); // best-effort rejecting ack

    let stats = server.stats();
    assert_eq!(stats.guard_sheds, 1);
    assert_eq!(stats.rejected_rate, 1);
    assert_eq!(stats.reframe_rejects, 1);

    let snap = bob.stats().expect("stats over the wire");
    assert_eq!(snap.guard_sheds, 1);
    assert_eq!(snap.reframe_rejects, 1);
    server.shutdown();
}
