//! Hostile-input hardening over real sockets: each of the three
//! attack shapes named by the acceptance criteria — an oversized
//! declared frame length, a mid-frame disconnect, and a per-sender
//! flood — must be rejected (or shrugged off) without a panic or an
//! unbounded allocation, and the server must keep serving well-behaved
//! clients afterwards. A fourth test drives the TTL cleanup worker
//! end-to-end.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use msb_server::{Ack, AckCode, RelayClient, RelayServer, ServerConfig, StatsSnapshot, BROADCAST};
use msb_wire::{FrameKind, Message, FRAME_HEADER_LEN, MAGIC, VERSION};

/// A minimal, valid, empty-payload MSBW frame of the given kind — the
/// smallest thing the services layer will accept as a sealed bottle.
fn bare_frame(kind: FrameKind) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAME_HEADER_LEN);
    f.extend_from_slice(&MAGIC);
    f.push(VERSION);
    f.push(kind as u8);
    f.extend_from_slice(&0u32.to_be_bytes());
    f
}

/// A frame header whose declared payload length is `declared` — the
/// body never follows, because the point is that the server must
/// reject it from the header alone.
fn header_declaring(declared: u32) -> Vec<u8> {
    let mut f = bare_frame(FrameKind::Request);
    let len_at = FRAME_HEADER_LEN - 4;
    f[len_at..].copy_from_slice(&declared.to_be_bytes());
    f
}

/// The server must still be fully functional: a fresh client can
/// register, deposit to itself via broadcast-partner, and fetch.
fn assert_server_alive(server: &RelayServer, a: u32, b: u32) {
    let mut alice = RelayClient::connect(server.addr()).expect("connect");
    let mut bob = RelayClient::connect(server.addr()).expect("connect");
    assert_eq!(alice.hello(a).expect("hello").code, AckCode::Ok);
    assert_eq!(bob.hello(b).expect("hello").code, AckCode::Ok);
    let ack = alice.deposit(b, bare_frame(FrameKind::Request)).expect("deposit");
    assert_eq!(ack.code, AckCode::Ok);
    let got = bob.fetch(0).expect("fetch");
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].from, a);
}

#[test]
fn oversized_declared_length_is_rejected_from_the_header_alone() {
    let mut server = RelayServer::spawn(ServerConfig::default()).expect("spawn");
    let max = ServerConfig::default().max_frame_len;

    let mut client = RelayClient::connect(server.addr()).expect("connect");
    assert_eq!(client.hello(99).expect("hello").code, AckCode::Ok);

    // Declare a ~4 GiB payload. The server must answer with a
    // rejecting Ack from the ten header bytes — it never waits for
    // (or allocates) the declared body.
    client.send_raw(&header_declaring(u32::MAX - 16)).expect("send header");
    let resp = client.read_response().expect("rejecting ack");
    let ack = Ack::decode(&resp).expect("ack frame");
    assert_eq!(ack.code, AckCode::Rejected);

    // The offending connection is then closed: the next read hits EOF.
    let err = client.read_response().expect_err("connection must be closed");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

    // ...the reject is visible on the stats endpoint, and the server
    // keeps serving everyone else.
    let stats: StatsSnapshot = server.stats();
    assert_eq!(stats.rejected_oversize, 1);
    assert!(stats.rejected_oversize + stats.rejected_rate + stats.rejected_malformed == 1);
    assert!(max > FRAME_HEADER_LEN);
    assert_server_alive(&server, 1, 2);
    server.shutdown();
}

#[test]
fn garbage_bytes_are_rejected_at_the_first_bad_byte() {
    let mut server = RelayServer::spawn(ServerConfig::default()).expect("spawn");
    let mut client = RelayClient::connect(server.addr()).expect("connect");

    client.send_raw(b"GET / HTTP/1.1\r\n\r\n").expect("send garbage");
    let resp = client.read_response().expect("rejecting ack");
    assert_eq!(Ack::decode(&resp).expect("ack").code, AckCode::Rejected);

    assert_eq!(server.stats().rejected_malformed, 1);
    assert_server_alive(&server, 3, 4);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_leaves_the_server_healthy() {
    let mut server = RelayServer::spawn(ServerConfig::default()).expect("spawn");

    // Send a valid header declaring 64 bytes, deliver only 5 of them,
    // then vanish.
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut partial = bare_frame(FrameKind::Request);
        let len_at = FRAME_HEADER_LEN - 4;
        partial[len_at..].copy_from_slice(&64u32.to_be_bytes());
        partial.extend_from_slice(&[0xAB; 5]);
        stream.write_all(&partial).expect("send partial frame");
        stream.flush().expect("flush");
        // Dropping the stream closes the socket mid-frame.
    }

    // Give the connection thread a moment to observe the EOF, then
    // confirm: no reject counted (an EOF owes nobody anything), and
    // the server still serves.
    std::thread::sleep(Duration::from_millis(100));
    let stats = server.stats();
    assert_eq!(stats.rejected_oversize + stats.rejected_rate + stats.rejected_malformed, 0);
    assert_eq!(stats.deposits_accepted, 0);
    assert_server_alive(&server, 5, 6);
    server.shutdown();
}

#[test]
fn per_sender_flood_is_rate_limited_with_exact_accounting() {
    // A tight guard so the test floods cheaply: 4 deposits per window.
    let config = ServerConfig { guard_max_in_window: 4, ..ServerConfig::default() };
    let mut server = RelayServer::spawn(config).expect("spawn");

    let mut sender = RelayClient::connect(server.addr()).expect("connect");
    let mut receiver = RelayClient::connect(server.addr()).expect("connect");
    assert_eq!(sender.hello(10).expect("hello").code, AckCode::Ok);
    assert_eq!(receiver.hello(11).expect("hello").code, AckCode::Ok);

    let mut ok = 0u64;
    let mut limited = 0u64;
    for _ in 0..10 {
        let ack = sender.deposit(11, bare_frame(FrameKind::Request)).expect("deposit");
        match ack.code {
            AckCode::Ok => ok += 1,
            AckCode::RateLimited => limited += 1,
            other => panic!("unexpected ack under flood: {other:?}"),
        }
    }
    // Exact split: the first 4 pass, the remaining 6 are shed — and
    // the shed deposits never reach the inbox.
    assert_eq!((ok, limited), (4, 6));
    let stats = server.stats();
    assert_eq!(stats.rejected_rate, 6);
    assert_eq!(stats.deposits_accepted, 4);
    assert_eq!(stats.inbox_depth, 4);

    // The victim of the flood still gets exactly the admitted copies.
    assert_eq!(receiver.fetch(0).expect("fetch").len(), 4);

    // A different sender is not penalised by the flooder's budget.
    let mut other = RelayClient::connect(server.addr()).expect("connect");
    assert_eq!(other.hello(12).expect("hello").code, AckCode::Ok);
    let ack = other.deposit(BROADCAST, bare_frame(FrameKind::Request)).expect("deposit");
    assert_eq!(ack.code, AckCode::Ok);
    server.shutdown();
}

#[test]
fn expired_bottles_are_purged_by_the_cleanup_worker() {
    // Messages live 5 ms; the worker sweeps every few ms.
    let config =
        ServerConfig { inbox_ttl_us: 5_000, cleanup_interval_ms: 2, ..ServerConfig::default() };
    let mut server = RelayServer::spawn(config).expect("spawn");

    let mut sender = RelayClient::connect(server.addr()).expect("connect");
    let mut receiver = RelayClient::connect(server.addr()).expect("connect");
    assert_eq!(sender.hello(20).expect("hello").code, AckCode::Ok);
    assert_eq!(receiver.hello(21).expect("hello").code, AckCode::Ok);

    assert_eq!(
        sender.deposit(21, bare_frame(FrameKind::Request)).expect("deposit").code,
        AckCode::Ok
    );
    assert_eq!(server.stats().inbox_depth, 1);

    // Outlive the TTL by a wide margin, then confirm the worker (not a
    // fetch) removed the bottle.
    std::thread::sleep(Duration::from_millis(100));
    let stats = server.stats();
    assert_eq!(stats.inbox_depth, 0, "cleanup worker purged the expired bottle");
    assert_eq!(stats.inbox_expired, 1);
    assert_eq!(receiver.fetch(0).expect("fetch").len(), 0);
    server.shutdown();
}
